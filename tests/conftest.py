"""Shared fixtures: small deterministic graphs, embedding models, workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embeddings.model import WordEmbeddingModel
from repro.embeddings.synthetic import SyntheticCorpusConfig, synthetic_word_embeddings
from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.generators import connected_watts_strogatz, grid_graph
from repro.graphs.social import FacebookLikeConfig, facebook_like_graph
from repro.simulation.workload import RetrievalWorkload, build_workload


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_world_adjacency() -> CompressedAdjacency:
    """A 60-node small-world overlay (deterministic)."""
    return CompressedAdjacency.from_networkx(
        connected_watts_strogatz(60, 6, 0.15, seed=7)
    )


@pytest.fixture(scope="session")
def grid_adjacency() -> CompressedAdjacency:
    """A 7x7 grid: deterministic topology with long hop distances."""
    return CompressedAdjacency.from_networkx(grid_graph(7, 7))


@pytest.fixture(scope="session")
def social_adjacency() -> CompressedAdjacency:
    """A small Facebook-like graph with communities and hubs."""
    graph = facebook_like_graph(
        FacebookLikeConfig(n_nodes=300, target_edges=3600, n_egos=6), seed=3
    )
    return CompressedAdjacency.from_networkx(graph)


@pytest.fixture(scope="session")
def tiny_model() -> WordEmbeddingModel:
    """A small clustered embedding model (2,000 words, 64 dims)."""
    return synthetic_word_embeddings(
        SyntheticCorpusConfig(
            n_words=2000, dim=64, n_clusters=150, intra_cluster_cosine=0.75
        ),
        seed=21,
    )


@pytest.fixture(scope="session")
def tiny_workload(tiny_model: WordEmbeddingModel) -> RetrievalWorkload:
    """A retrieval workload over the tiny model (threshold 0.6, as in §V-B)."""
    return build_workload(tiny_model, n_queries=40, threshold=0.6, seed=22)
