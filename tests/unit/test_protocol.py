"""Tests for the event-driven query routing protocol (messages + backtracking)."""

import networkx as nx
import numpy as np
import pytest

from repro.core.protocol import QueryMessage, QueryResponse, QueryRoutingNode
from repro.graphs.adjacency import CompressedAdjacency
from repro.retrieval.vector_store import DocumentStore
from repro.runtime.network import LatencyModel, SimNetwork


def build_network(graph, stores=None, embeddings=None, dim=2):
    """Wire QueryRoutingNodes over `graph` with per-node neighbor embeddings."""
    adjacency = CompressedAdjacency.from_networkx(graph)
    n = adjacency.n_nodes
    if embeddings is None:
        embeddings = np.zeros((n, dim))
    network = SimNetwork(adjacency, latency=LatencyModel(1.0, 0.0), seed=0)
    trace = []
    for node_id in range(n):
        store = (stores or {}).get(node_id) or DocumentStore(dim)
        neighbor_embeddings = {
            int(v): embeddings[int(v)] for v in adjacency.neighbors(node_id)
        }
        network.attach(
            QueryRoutingNode(node_id, store, neighbor_embeddings, trace=trace)
        )
    network.start()
    return network, trace


def store_with(dim, **docs):
    store = DocumentStore(dim)
    for doc_id, vec in docs.items():
        store.add(doc_id, np.asarray(vec, dtype=float))
    return store


class TestForwardPath:
    def test_walk_follows_best_neighbor(self):
        embeddings = np.array([[0.0, 0], [1.0, 0], [2.0, 0], [3.0, 0]])
        network, trace = build_network(nx.path_graph(4), embeddings=embeddings)
        source = network.actor(0)
        source.initiate(QueryMessage("q", np.array([1.0, 0.0]), ttl=4, k=1))
        network.run()
        assert [node for _, node in trace] == [0, 1, 2, 3]

    def test_ttl_one_only_source(self):
        network, trace = build_network(nx.path_graph(3))
        network.actor(0).initiate(QueryMessage("q", np.zeros(2), ttl=1, k=1))
        network.run()
        assert [node for _, node in trace] == [0]

    def test_memory_excludes_recent_interactions(self):
        network, trace = build_network(nx.path_graph(3))
        network.actor(1).initiate(QueryMessage("q", np.zeros(2), ttl=3, k=1))
        network.run()
        # from 1, tie -> 0; from 0, memory excludes 1... but 1 is the only
        # neighbor, so fallback re-forwards to 1 (footnote 9), which must
        # then go to 2 (0 is remembered).
        assert [node for _, node in trace] == [1, 0, 1]


class TestBacktracking:
    def test_source_receives_results(self):
        stores = {2: store_with(2, gold=[1.0, 0.0])}
        embeddings = np.array([[0.0, 0], [1.0, 0], [2.0, 0]])
        network, _ = build_network(nx.path_graph(3), stores, embeddings)
        source = network.actor(0)
        source.initiate(QueryMessage("q1", np.array([1.0, 0.0]), ttl=3, k=1))
        network.run()
        assert "q1" in source.completed
        items = source.completed["q1"]
        assert items[0].doc_id == "gold"
        assert items[0].node == 2

    def test_response_travels_reverse_path(self):
        """Responses cost one message per forward hop (pure backtracking)."""
        network, trace = build_network(nx.path_graph(4))
        network.actor(0).initiate(QueryMessage("q", np.zeros(2), ttl=4, k=1))
        network.run()
        forwards = len(trace) - 1
        assert network.stats.by_type["QueryMessage"] == forwards
        assert network.stats.by_type["QueryResponse"] == forwards

    def test_backtracking_with_revisits(self):
        """A walk that revisits a node still unwinds to the source."""
        network, trace = build_network(nx.path_graph(3))
        source = network.actor(1)
        source.initiate(QueryMessage("q", np.zeros(2), ttl=5, k=1))
        network.run()
        assert "q" in source.completed

    def test_ttl_expiry_at_source_completes_locally(self):
        stores = {0: store_with(2, only=[1.0, 0.0])}
        network, _ = build_network(nx.path_graph(2), stores)
        source = network.actor(0)
        source.initiate(QueryMessage("q", np.array([1.0, 0.0]), ttl=1, k=1))
        network.run()
        assert source.completed["q"][0].doc_id == "only"

    def test_isolated_source_completes_immediately(self):
        graph = nx.Graph()
        graph.add_nodes_from([0])
        network, _ = build_network(graph)
        source = network.actor(0)
        source.initiate(QueryMessage("q", np.zeros(2), ttl=5, k=1))
        network.run()
        assert "q" in source.completed


class TestResultAccumulation:
    def test_tracker_carried_and_extended(self):
        stores = {
            0: store_with(2, weak=[0.2, 0.0]),
            1: store_with(2, strong=[1.0, 0.0]),
        }
        network, _ = build_network(nx.path_graph(2), stores)
        source = network.actor(0)
        source.initiate(QueryMessage("q", np.array([1.0, 0.0]), ttl=2, k=2))
        network.run()
        doc_ids = [item.doc_id for item in source.completed["q"]]
        assert doc_ids == ["strong", "weak"]

    def test_k1_keeps_only_best(self):
        stores = {
            0: store_with(2, weak=[0.2, 0.0]),
            1: store_with(2, strong=[1.0, 0.0]),
        }
        network, _ = build_network(nx.path_graph(2), stores)
        source = network.actor(0)
        source.initiate(QueryMessage("q", np.array([1.0, 0.0]), ttl=2, k=1))
        network.run()
        doc_ids = [item.doc_id for item in source.completed["q"]]
        assert doc_ids == ["strong"]

    def test_concurrent_queries_do_not_interfere(self):
        stores = {1: store_with(2, gold=[1.0, 0.0])}
        network, _ = build_network(nx.path_graph(3), stores)
        a = network.actor(0)
        b = network.actor(2)
        a.initiate(QueryMessage("qa", np.array([1.0, 0.0]), ttl=3, k=1))
        b.initiate(QueryMessage("qb", np.array([1.0, 0.0]), ttl=3, k=1))
        network.run()
        assert "qa" in a.completed
        assert "qb" in b.completed
        assert a.completed["qa"][0].doc_id == "gold"
        assert b.completed["qb"][0].doc_id == "gold"


class TestMessages:
    def test_query_message_size(self):
        msg = QueryMessage("q", np.zeros(10), ttl=5, k=1)
        assert msg.size_bytes() >= 80.0

    def test_response_size_scales_with_items(self):
        from repro.retrieval.topk import ScoredDocument

        small = QueryResponse("q", ())
        large = QueryResponse("q", (ScoredDocument(1.0, "a"),) * 3)
        assert large.size_bytes() > small.size_bytes()

    def test_update_neighbor_embedding(self):
        network, _ = build_network(nx.path_graph(2))
        node = network.actor(0)
        node.update_neighbor_embedding(1, np.array([5.0, 5.0]))
        assert np.allclose(node.neighbor_embeddings[1], [5.0, 5.0])
