"""Tests for spectral analysis: the low-pass claims of §II-C."""

import networkx as nx
import numpy as np
import pytest

from repro.gsp.filters import HeatKernel, PersonalizedPageRank
from repro.gsp.normalization import transition_matrix
from repro.gsp.spectral import (
    SpectralDecomposition,
    compare_filters_table,
    empirical_frequency_response,
    heat_frequency_response,
    is_low_pass,
    ppr_frequency_response,
    smoothness,
)


@pytest.fixture(scope="module")
def sym_operator():
    graph = nx.connected_watts_strogatz_graph(30, 4, 0.2, seed=3)
    return transition_matrix(graph, "symmetric")


@pytest.fixture(scope="module")
def decomposition(sym_operator):
    return SpectralDecomposition.of(sym_operator)


class TestClosedForms:
    def test_ppr_response_at_dc(self):
        # λ = 1 (the DC / smoothest component) passes unattenuated
        assert ppr_frequency_response(np.array([1.0]), 0.3)[0] == pytest.approx(1.0)

    def test_ppr_response_monotone_in_lambda(self):
        lams = np.linspace(-1, 1, 21)
        response = ppr_frequency_response(lams, 0.3)
        assert np.all(np.diff(response) > 0)  # low-pass

    def test_ppr_alpha_one_flat(self):
        lams = np.linspace(-1, 1, 5)
        assert np.allclose(ppr_frequency_response(lams, 1.0), 1.0)

    def test_heavier_diffusion_sharper_filter(self):
        """Smaller alpha attenuates high frequencies more aggressively."""
        high_freq = np.array([-0.5])
        heavy = ppr_frequency_response(high_freq, 0.1)[0]
        light = ppr_frequency_response(high_freq, 0.9)[0]
        assert heavy < light

    def test_heat_response_at_dc(self):
        assert heat_frequency_response(np.array([1.0]), 3.0)[0] == pytest.approx(1.0)

    def test_heat_monotone(self):
        lams = np.linspace(-1, 1, 21)
        assert np.all(np.diff(heat_frequency_response(lams, 2.0)) > 0)


class TestDecomposition:
    def test_eigenvalues_sorted_descending(self, decomposition):
        assert np.all(np.diff(decomposition.eigenvalues) <= 1e-12)

    def test_eigenvalues_bounded(self, decomposition):
        assert decomposition.eigenvalues.max() <= 1.0 + 1e-9
        assert decomposition.eigenvalues.min() >= -1.0 - 1e-9

    def test_fourier_roundtrip(self, decomposition):
        rng = np.random.default_rng(0)
        signal = rng.standard_normal(30)
        coeffs = decomposition.transform(signal)
        assert np.allclose(decomposition.inverse(coeffs), signal, atol=1e-10)

    def test_asymmetric_operator_rejected(self):
        graph = nx.path_graph(5)
        with pytest.raises(ValueError, match="symmetric"):
            SpectralDecomposition.of(transition_matrix(graph, "column"))


class TestEmpiricalResponse:
    def test_ppr_matches_closed_form(self, sym_operator, decomposition):
        """Filtering eigenvectors recovers h(λ) = a / (1 − (1−a)λ)."""
        measured = empirical_frequency_response(
            PersonalizedPageRank(0.4, tol=1e-13), sym_operator, decomposition
        )
        expected = ppr_frequency_response(decomposition.eigenvalues, 0.4)
        assert np.allclose(measured, expected, atol=1e-6)

    def test_heat_matches_closed_form(self, sym_operator, decomposition):
        measured = empirical_frequency_response(
            HeatKernel(t=2.0, tol=1e-12), sym_operator, decomposition
        )
        expected = heat_frequency_response(decomposition.eigenvalues, 2.0)
        assert np.allclose(measured, expected, atol=1e-6)

    def test_both_filters_are_low_pass(self, sym_operator, decomposition):
        """The §II-C claim, verified empirically."""
        for graph_filter in (PersonalizedPageRank(0.3, tol=1e-12), HeatKernel(t=3.0)):
            response = empirical_frequency_response(
                graph_filter, sym_operator, decomposition
            )
            assert is_low_pass(response, decomposition.eigenvalues)


class TestSmoothness:
    def test_constant_signal_is_smoothest(self, sym_operator):
        graph = nx.complete_graph(5)
        operator = transition_matrix(graph, "symmetric")
        constant = np.ones(5)
        assert smoothness(operator, constant) == pytest.approx(0.0, abs=1e-9)

    def test_filtering_does_not_roughen(self, sym_operator):
        """Low-pass filtering never increases the Laplacian quadratic form."""
        rng = np.random.default_rng(1)
        signal = rng.standard_normal(30)
        before = smoothness(sym_operator, signal)
        filtered = PersonalizedPageRank(0.2, tol=1e-12).apply(sym_operator, signal)
        after = smoothness(sym_operator, filtered)
        assert after <= before + 1e-9

    def test_zero_signal(self, sym_operator):
        assert smoothness(sym_operator, np.zeros(30)) == 0.0


class TestCompareTable:
    def test_rows_cover_filters(self, sym_operator):
        rows = compare_filters_table(sym_operator)
        names = [row["filter"] for row in rows]
        assert any("PPR" in name for name in names)
        assert any("heat" in name for name in names)
