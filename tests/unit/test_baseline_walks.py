"""Tests for blind-walk baselines."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines.walks import (
    degree_biased_walk,
    parallel_random_walks,
    random_walk_query,
)
from repro.core.engine import WalkConfig
from repro.graphs.adjacency import CompressedAdjacency
from repro.retrieval.vector_store import DocumentStore


def store_with(dim, **docs):
    store = DocumentStore(dim)
    for doc_id, vec in docs.items():
        store.add(doc_id, np.asarray(vec, dtype=float))
    return store


class TestRandomWalk:
    def test_respects_ttl(self, small_world_adjacency):
        result = random_walk_query(
            small_world_adjacency, {}, np.ones(2), 0, WalkConfig(ttl=7), seed=0
        )
        assert len(result.visits) <= 7

    def test_deterministic_given_seed(self, small_world_adjacency):
        a = random_walk_query(
            small_world_adjacency, {}, np.ones(2), 0, WalkConfig(ttl=10), seed=5
        )
        b = random_walk_query(
            small_world_adjacency, {}, np.ones(2), 0, WalkConfig(ttl=10), seed=5
        )
        assert a.path == b.path

    def test_different_seeds_diverge(self, small_world_adjacency):
        paths = {
            tuple(
                random_walk_query(
                    small_world_adjacency, {}, np.ones(2), 0,
                    WalkConfig(ttl=10), seed=s,
                ).path
            )
            for s in range(6)
        }
        assert len(paths) > 1

    def test_finds_local_document(self):
        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(3))
        stores = {0: store_with(2, here=[1.0, 0.0])}
        result = random_walk_query(
            adjacency, stores, np.array([1.0, 0.0]), 0, WalkConfig(ttl=1), seed=0
        )
        assert result.found("here")


class TestParallelWalks:
    def test_spawns_requested_walkers(self):
        adjacency = CompressedAdjacency.from_networkx(nx.star_graph(6))
        result = parallel_random_walks(
            adjacency, {}, np.ones(2), 0, n_walkers=4, ttl=2, seed=1
        )
        hop1 = [node for hop, node in result.visits if hop == 1]
        assert len(hop1) == 4

    def test_more_walkers_more_coverage(self, small_world_adjacency):
        single = parallel_random_walks(
            small_world_adjacency, {}, np.ones(2), 0, n_walkers=1, ttl=8, seed=2
        )
        many = parallel_random_walks(
            small_world_adjacency, {}, np.ones(2), 0, n_walkers=4, ttl=8, seed=2
        )
        assert many.unique_nodes_visited >= single.unique_nodes_visited


class TestDegreeBiasedWalk:
    def test_walks_to_hub_first(self):
        # two stars joined: node 0 is a bigger hub than node 1
        graph = nx.star_graph(5)
        graph.add_edge(1, 6)
        adjacency = CompressedAdjacency.from_networkx(graph)
        result = degree_biased_walk(
            adjacency, {}, np.ones(2), 6, WalkConfig(ttl=3), seed=0
        )
        assert result.path[1] == 1
        assert result.path[2] == 0  # the biggest hub

    def test_ttl_respected(self, small_world_adjacency):
        result = degree_biased_walk(
            small_world_adjacency, {}, np.ones(2), 0, WalkConfig(ttl=5), seed=0
        )
        assert len(result.visits) <= 5
