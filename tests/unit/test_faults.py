"""Fault-injection subsystem: plans, injectors, and the resilient walk.

The equivalence classes pinned here are the contract of ISSUE 7: with no
faults injected the engine and runtime behave bit-identically to the
fault-free implementation, and with faults the walk degrades gracefully
instead of raising.
"""

import math

import networkx as nx
import numpy as np
import pytest

from repro.core.engine import ResilienceConfig, WalkConfig, run_query
from repro.core.forwarding import EmbeddingGuidedPolicy, PrecomputedScorePolicy
from repro.graphs.adjacency import CompressedAdjacency
from repro.retrieval.vector_store import DocumentStore
from repro.runtime.faults import (
    CrashWindow,
    FaultDecision,
    FaultInjector,
    FaultPlan,
    choose_live_starts,
)
from repro.runtime.network import LatencyModel, SimNetwork
from repro.runtime.node import SimNode


def make_store(dim, **docs):
    store = DocumentStore(dim)
    for doc_id, vector in docs.items():
        store.add(doc_id, np.asarray(vector, dtype=float))
    return store


@pytest.fixture
def path_adjacency():
    return CompressedAdjacency.from_networkx(nx.path_graph(6))


# --------------------------------------------------------------------- plans


class TestCrashWindow:
    def test_covers_half_open_interval(self):
        window = CrashWindow(3, start=2.0, end=5.0)
        assert not window.covers(1.9)
        assert window.covers(2.0)
        assert window.covers(4.999)
        assert not window.covers(5.0)

    def test_permanent_crash_by_default(self):
        assert CrashWindow(0).covers(1e12)

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            CrashWindow(0, start=3.0, end=3.0)
        with pytest.raises(ValueError):
            CrashWindow(0, start=3.0, end=1.0)
        with pytest.raises(ValueError):
            CrashWindow(0, start=-1.0)


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(4, drop_probability=1.5)
        with pytest.raises(ValueError):
            FaultPlan(4, duplicate_probability=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(4, extra_delay=-2.0)
        with pytest.raises(ValueError):
            FaultPlan(4, crashes=(CrashWindow(9),))
        with pytest.raises(ValueError):
            FaultPlan(4, zombies=frozenset({4}))

    def test_crashed_at_and_live_nodes(self):
        plan = FaultPlan(
            5, crashes=(CrashWindow(1, 0.0, 10.0), CrashWindow(3, 5.0))
        )
        assert plan.crashed_at(1, 0.0)
        assert not plan.crashed_at(1, 10.0)
        assert not plan.crashed_at(3, 4.9)
        assert plan.crashed_at(3, 1e9)
        assert plan.crashed_nodes(6.0) == frozenset({1, 3})
        assert plan.live_nodes(6.0) == [0, 2, 4]
        assert plan.live_nodes(20.0) == [0, 1, 2, 4]

    def test_trivial_plan(self):
        assert FaultPlan(10).is_trivial
        assert not FaultPlan(10, drop_probability=0.1).is_trivial
        assert not FaultPlan(10, zombies=frozenset({0})).is_trivial

    def test_generate_is_deterministic(self):
        kwargs = dict(
            crash_fraction=0.3,
            drop_probability=0.05,
            zombie_fraction=0.2,
            seed=11,
        )
        assert FaultPlan.generate(100, **kwargs) == FaultPlan.generate(
            100, **kwargs
        )
        other = FaultPlan.generate(100, **{**kwargs, "seed": 12})
        assert other != FaultPlan.generate(100, **kwargs)

    def test_generate_counts_and_disjointness(self):
        plan = FaultPlan.generate(
            200, crash_fraction=0.25, zombie_fraction=0.1, seed=3
        )
        crashed = {w.node for w in plan.crashes}
        assert len(crashed) == 50
        # zombies are sampled from the remaining live nodes
        assert len(plan.zombies) == round(0.1 * 150)
        assert not crashed & plan.zombies

    def test_generate_respects_protect(self):
        plan = FaultPlan.generate(
            50, crash_fraction=0.5, zombie_fraction=0.5, protect=[0, 1], seed=9
        )
        crashed = {w.node for w in plan.crashes}
        assert not {0, 1} & crashed
        assert not {0, 1} & plan.zombies

    def test_generate_recovery_window(self):
        plan = FaultPlan.generate(
            20, crash_fraction=0.5, crash_start=3.0, recover_after=4.0, seed=0
        )
        for window in plan.crashes:
            assert (window.start, window.end) == (3.0, 7.0)
        assert not plan.crashed_nodes(7.0)


# ----------------------------------------------------------------- injectors


class TestFaultInjector:
    def test_trivial_plan_always_delivers(self):
        injector = FaultInjector(FaultPlan(4))
        for _ in range(100):
            assert injector.deliver(0, 1)
        assert injector.decide(0, 1, 0.0) == FaultDecision()
        assert injector.dropped == 0

    def test_drop_lottery_counts(self):
        injector = FaultInjector(FaultPlan(4, drop_probability=0.5, seed=0))
        delivered = sum(injector.deliver(0, 1) for _ in range(400))
        assert 120 < delivered < 280
        assert injector.dropped == 400 - delivered

    def test_decide_duplicates_and_delays(self):
        injector = FaultInjector(
            FaultPlan(4, duplicate_probability=0.5, extra_delay=2.0, seed=1)
        )
        decisions = [injector.decide(0, 1, 0.0) for _ in range(200)]
        assert injector.duplicated == sum(d.copies == 2 for d in decisions)
        assert 40 < injector.duplicated < 160
        assert all(0.0 <= d.extra_delay < 2.0 for d in decisions)
        assert any(d.extra_delay > 0.0 for d in decisions)

    def test_reset_replays_exactly(self):
        injector = FaultInjector(FaultPlan(4, drop_probability=0.3, seed=7))
        first = [injector.deliver(0, 1) for _ in range(50)]
        injector.reset()
        assert injector.crash_detections == 0
        assert [injector.deliver(0, 1) for _ in range(50)] == first

    def test_pick_live_start_avoids_crashed(self):
        plan = FaultPlan(4, crashes=(CrashWindow(0), CrashWindow(2)))
        injector = FaultInjector(plan)
        rng = np.random.default_rng(0)
        picks = {injector.pick_live_start(rng) for _ in range(40)}
        assert picks <= {1, 3}

    def test_choose_live_starts(self):
        plan = FaultPlan(6, crashes=(CrashWindow(5),))
        starts = choose_live_starts(plan, 64, np.random.default_rng(2))
        assert starts.shape == (64,)
        assert 5 not in set(starts.tolist())
        dead = FaultPlan(2, crashes=(CrashWindow(0), CrashWindow(1)))
        with pytest.raises(ValueError, match="no live start"):
            choose_live_starts(dead, 4, np.random.default_rng(0))


# ------------------------------------------------------ network integration


class _Counter(SimNode):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = 0

    def on_message(self, src, message):
        self.received += 1


def _counter_network(n=2, **kwargs):
    adjacency = CompressedAdjacency.from_networkx(nx.path_graph(n))
    net = SimNetwork(
        adjacency, latency=LatencyModel(1.0, 0.0), seed=0, **kwargs
    )
    nodes = [_Counter(i) for i in range(n)]
    net.attach_all(nodes)
    net.start()
    return net, nodes


class TestNetworkFaultIntegration:
    def test_install_schedules_crash_and_recovery(self):
        net, nodes = _counter_network(3)
        plan = FaultPlan(3, crashes=(CrashWindow(1, start=5.0, end=10.0),))
        FaultInjector(plan).install(net)
        assert not net.is_down(1)
        net.run(until=6.0)
        assert net.is_down(1)
        net.run(until=11.0)
        assert not net.is_down(1)

    def test_open_window_fails_immediately(self):
        net, _ = _counter_network(3)
        FaultInjector(FaultPlan(3, crashes=(CrashWindow(2),))).install(net)
        assert net.is_down(2)
        assert net.down_nodes == frozenset({2})

    def test_crashed_destination_loses_messages(self):
        net, nodes = _counter_network(2)
        FaultInjector(FaultPlan(2, crashes=(CrashWindow(1),))).install(net)
        for _ in range(10):
            nodes[0].send(1, "x")
        net.run()
        assert nodes[1].received == 0
        assert net.stats.dropped == 10
        assert net.stats.by_type["dropped:str"] == 10

    def test_crashed_source_sends_nothing(self):
        net, nodes = _counter_network(2)
        FaultInjector(FaultPlan(2, crashes=(CrashWindow(0),))).install(net)
        nodes[0].send(1, "x")
        net.run()
        # A crashed process produces no traffic at all — not even a send.
        assert net.stats.messages == 0
        assert nodes[1].received == 0

    def test_injector_drops_counted_in_stats(self):
        net, nodes = _counter_network(2)
        FaultInjector(FaultPlan(2, drop_probability=0.5, seed=4)).install(net)
        for _ in range(200):
            nodes[0].send(1, "x")
        net.run()
        assert nodes[1].received == 200 - net.stats.dropped
        assert 40 < net.stats.dropped < 160
        assert net.stats.by_type["dropped:str"] == net.stats.dropped

    def test_duplication_delivers_extra_copies(self):
        net, nodes = _counter_network(2)
        FaultInjector(
            FaultPlan(2, duplicate_probability=0.5, seed=4)
        ).install(net)
        for _ in range(100):
            nodes[0].send(1, "x")
        net.run()
        assert net.stats.duplicated > 0
        assert nodes[1].received == 100 + net.stats.duplicated

    def test_extra_delay_postpones_delivery(self):
        net, nodes = _counter_network(2)
        FaultInjector(FaultPlan(2, extra_delay=50.0, seed=4)).install(net)
        for _ in range(20):
            nodes[0].send(1, "x")
        net.run(until=1.0)  # base latency alone would have delivered all
        assert nodes[1].received < 20
        net.run()
        assert nodes[1].received == 20

    def test_recovered_node_receives_again(self):
        net, nodes = _counter_network(2)
        plan = FaultPlan(2, crashes=(CrashWindow(1, 0.0, 5.0),))
        FaultInjector(plan).install(net)
        nodes[0].send(1, "early")  # arrives at t=1 while 1 is down
        net.run(until=6.0)
        assert nodes[1].received == 0
        nodes[0].send(1, "late")  # arrives at t=7, node recovered
        net.run()
        assert nodes[1].received == 1


# -------------------------------------------------- engine: equivalence


def _walk_signature(result):
    return (
        result.visits,
        result.messages,
        [(d.doc_id, d.score, d.node) for d in result.tracker.items()],
        result.discovered_at,
        result.degraded,
    )


class TestEngineEquivalence:
    """Fault-free resilient walk ≡ the pre-resilience protocol, bit for bit."""

    @pytest.mark.parametrize("fanout", [1, 2])
    def test_trivial_injector_matches_plain_walk(
        self, small_world_adjacency, fanout
    ):
        rng = np.random.default_rng(0)
        n = small_world_adjacency.n_nodes
        embeddings = rng.standard_normal((n, 8))
        stores = {
            17: make_store(8, gold=embeddings[17] / np.linalg.norm(embeddings[17]))
        }
        policy = EmbeddingGuidedPolicy(embeddings)
        query = embeddings[17] / np.linalg.norm(embeddings[17])
        config = WalkConfig(ttl=20, fanout=fanout, k=3)
        plain = run_query(
            small_world_adjacency, stores, policy, query, 3, config
        )
        resilient = run_query(
            small_world_adjacency,
            stores,
            policy,
            query,
            3,
            config,
            faults=FaultInjector(FaultPlan(n)),
            resilience=ResilienceConfig(),
        )
        assert _walk_signature(resilient) == _walk_signature(plain)
        assert resilient.retries == 0
        assert resilient.rerouted == 0
        assert resilient.walkers_lost == 0

    def test_resilience_config_without_faults_is_inert(self, path_adjacency):
        scores = np.arange(6, dtype=float)
        plain = run_query(
            path_adjacency,
            {},
            PrecomputedScorePolicy(scores),
            np.ones(2),
            0,
            WalkConfig(ttl=5),
        )
        with_config = run_query(
            path_adjacency,
            {},
            PrecomputedScorePolicy(scores),
            np.ones(2),
            0,
            WalkConfig(ttl=5),
            resilience=ResilienceConfig(max_retries=5, retry_backoff=2),
        )
        assert _walk_signature(with_config) == _walk_signature(plain)

    def test_redundancy_without_faults_equals_fanout(self, path_adjacency):
        scores = np.arange(6, dtype=float)
        via_fanout = run_query(
            path_adjacency,
            {},
            PrecomputedScorePolicy(scores),
            np.ones(2),
            2,
            WalkConfig(ttl=4, fanout=2),
        )
        via_redundancy = run_query(
            path_adjacency,
            {},
            PrecomputedScorePolicy(scores),
            np.ones(2),
            2,
            WalkConfig(ttl=4, fanout=1),
            resilience=ResilienceConfig(redundancy=2),
        )
        assert _walk_signature(via_redundancy) == _walk_signature(via_fanout)


# -------------------------------------------------- engine: under faults


class TestResilientWalk:
    def test_crashed_source_degrades(self, path_adjacency):
        faults = FaultInjector(FaultPlan(6, crashes=(CrashWindow(2),)))
        result = run_query(
            path_adjacency,
            {2: make_store(2, doc=[1.0, 0.0])},
            PrecomputedScorePolicy(np.arange(6, dtype=float)),
            np.array([1.0, 0.0]),
            start_node=2,
            config=WalkConfig(ttl=5),
            faults=faults,
        )
        assert result.degraded
        assert result.visits == []
        assert result.results == []
        assert result.walkers_lost == 1

    def test_reroutes_around_dead_peer(self):
        """On a star, the best-scoring leaf is dead; the walker detects the
        failure and reroutes to the next-best live leaf."""
        adjacency = CompressedAdjacency.from_networkx(nx.star_graph(3))
        scores = np.array([0.0, 5.0, 1.0, 2.0])  # best leaf is 1
        faults = FaultInjector(FaultPlan(4, crashes=(CrashWindow(1),)))
        result = run_query(
            adjacency,
            {3: make_store(2, doc=[1.0, 0.0])},
            PrecomputedScorePolicy(scores),
            np.array([1.0, 0.0]),
            start_node=0,
            config=WalkConfig(ttl=4),
            faults=faults,
        )
        # hop 1 goes to 3 (next best after dead 1), not 1
        assert result.visits[1] == (1, 3)
        assert result.rerouted >= 1
        assert faults.crash_detections >= 1
        assert result.found("doc")
        assert not result.degraded

    def test_retry_backoff_burns_ttl(self):
        """Each failed attempt costs retry_backoff TTL, shortening the walk."""
        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(8))
        scores = np.arange(8, dtype=float)
        plan = FaultPlan(8, drop_probability=0.6, seed=5)
        faulty = run_query(
            adjacency,
            {},
            PrecomputedScorePolicy(scores),
            np.ones(2),
            0,
            WalkConfig(ttl=8),
            faults=FaultInjector(plan),
            resilience=ResilienceConfig(max_retries=10, retry_backoff=1),
        )
        clean = run_query(
            adjacency,
            {},
            PrecomputedScorePolicy(scores),
            np.ones(2),
            0,
            WalkConfig(ttl=8),
        )
        assert faulty.retries > 0
        assert len(faulty.visits) < len(clean.visits)
        # every attempt (delivered or dropped) is a message on the wire
        assert faulty.messages == (len(faulty.visits) - 1) + faulty.retries

    def test_exhausted_retries_degrade_with_partial_results(self):
        """All neighbors dead: the walker dies but local results survive."""
        adjacency = CompressedAdjacency.from_networkx(nx.star_graph(3))
        faults = FaultInjector(
            FaultPlan(
                4, crashes=(CrashWindow(1), CrashWindow(2), CrashWindow(3))
            )
        )
        result = run_query(
            adjacency,
            {0: make_store(2, local=[0.8, 0.0])},
            PrecomputedScorePolicy(np.arange(4, dtype=float)),
            np.array([1.0, 0.0]),
            start_node=0,
            config=WalkConfig(ttl=5),
            faults=faults,
            resilience=ResilienceConfig(max_retries=1),
        )
        assert result.degraded
        assert result.walkers_lost == 1
        assert result.found("local")  # best-so-far, not an exception
        assert result.path == [0]

    def test_zombie_routes_but_does_not_serve(self):
        """A zombie forwards the walk but its stale store yields nothing."""
        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(3))
        scores = np.array([0.0, 1.0, 2.0])
        stores = {
            1: make_store(2, stale=[1.0, 0.0]),
            2: make_store(2, fresh=[0.9, 0.0]),
        }
        faults = FaultInjector(FaultPlan(3, zombies=frozenset({1})))
        result = run_query(
            adjacency,
            stores,
            PrecomputedScorePolicy(scores),
            np.array([1.0, 0.0]),
            start_node=0,
            config=WalkConfig(ttl=3, k=2),
            faults=faults,
        )
        assert result.path == [0, 1, 2]  # the walk passes through the zombie
        assert result.zombie_visits == 1
        assert not result.found("stale")
        assert result.found("fresh")

    def test_redundant_walkers_beat_single_under_crashes(
        self, small_world_adjacency
    ):
        """k-redundant walking recovers coverage a lone walker loses."""
        n = small_world_adjacency.n_nodes
        rng = np.random.default_rng(1)
        scores = rng.standard_normal(n)
        plan = FaultPlan.generate(
            n, crash_fraction=0.2, protect=[3], seed=13
        )
        single = run_query(
            small_world_adjacency,
            {},
            PrecomputedScorePolicy(scores),
            np.ones(4),
            3,
            WalkConfig(ttl=15),
            faults=FaultInjector(plan),
            resilience=ResilienceConfig(redundancy=1),
        )
        redundant = run_query(
            small_world_adjacency,
            {},
            PrecomputedScorePolicy(scores),
            np.ones(4),
            3,
            WalkConfig(ttl=15),
            faults=FaultInjector(plan),
            resilience=ResilienceConfig(redundancy=3),
        )
        assert (
            redundant.unique_nodes_visited >= single.unique_nodes_visited
        )
        crashed = {w.node for w in plan.crashes}
        assert not crashed & {node for _, node in redundant.visits}

    def test_search_facade_threads_faults(self):
        """DiffusionSearchNetwork.search honors injector + resilience."""
        from repro.core.search import DiffusionSearchNetwork

        net = DiffusionSearchNetwork(nx.cycle_graph(8), dim=3, alpha=0.5)
        net.place_document("gold", np.array([1.0, 0.0, 0.0]), node=4)
        net.diffuse()
        query = np.array([1.0, 0.0, 0.0])
        plain = net.search(query, start_node=0, ttl=8)
        trivial = net.search(
            query,
            start_node=0,
            ttl=8,
            faults=FaultInjector(FaultPlan(8)),
            resilience=ResilienceConfig(),
        )
        assert _walk_signature(trivial) == _walk_signature(plain)
        crashed = net.search(
            query,
            start_node=0,
            ttl=8,
            faults=FaultInjector(FaultPlan(8, crashes=(CrashWindow(0),))),
        )
        assert crashed.degraded

    def test_deterministic_replay(self, small_world_adjacency):
        """Same plan seed, same walk — faults are exactly reproducible."""
        n = small_world_adjacency.n_nodes
        plan = FaultPlan.generate(
            n, crash_fraction=0.15, drop_probability=0.1, protect=[3], seed=2
        )
        runs = []
        for _ in range(2):
            result = run_query(
                small_world_adjacency,
                {},
                PrecomputedScorePolicy(np.arange(n, dtype=float)),
                np.ones(4),
                3,
                WalkConfig(ttl=12),
                faults=FaultInjector(plan),
                resilience=ResilienceConfig(redundancy=2),
            )
            runs.append(
                (_walk_signature(result), result.retries, result.rerouted)
            )
        assert runs[0] == runs[1]


class TestRuntimeSearchUnderFaults:
    """search_on_runtime: the event-driven walk degrades gracefully too."""

    def _network(self):
        from repro.core.search import DiffusionSearchNetwork

        net = DiffusionSearchNetwork(nx.path_graph(6), dim=3, alpha=0.5)
        net.place_document("near", np.array([1.0, 0.0, 0.0]), node=2)
        net.place_document("far", np.array([0.9, 0.1, 0.0]), node=5)
        net.diffuse()
        return net, np.array([1.0, 0.0, 0.0])

    def test_fault_free_injector_matches_plain(self):
        net, query = self._network()
        plain = net.search_on_runtime(query, start_node=0, ttl=6, k=2, seed=0)
        trivial = net.search_on_runtime(
            query,
            start_node=0,
            ttl=6,
            k=2,
            seed=0,
            faults=FaultInjector(FaultPlan(6)),
        )
        assert not trivial.degraded
        assert [d.doc_id for d in trivial.results] == [
            d.doc_id for d in plain.results
        ]
        assert trivial.visits == plain.visits

    def test_crashed_start_returns_degraded_empty(self):
        net, query = self._network()
        faults = FaultInjector(FaultPlan(6, crashes=(CrashWindow(0),)))
        result = net.search_on_runtime(
            query, start_node=0, ttl=6, faults=faults
        )
        assert result.degraded
        assert result.results == []
        assert result.walkers_lost == 1

    def test_walk_dying_midway_returns_partials(self):
        """A crashed peer swallows the query; the source's best-so-far
        is rebuilt from the trace instead of waiting forever."""
        net, query = self._network()
        # Node 4 is down: the walk 0-1-2-3 reaches node 3, whose forward
        # to 4 is lost, and the backtracking response chain never fires.
        faults = FaultInjector(FaultPlan(6, crashes=(CrashWindow(4),)))
        result = net.search_on_runtime(
            query, start_node=0, ttl=6, k=2, faults=faults
        )
        assert result.degraded
        assert result.found("near")  # node 2 was provably reached
        assert not result.found("far")  # node 5 lies beyond the crash


class TestResilienceConfigValidation:
    """Construction-time validation (integer fields, not just float checks)."""

    def test_defaults_valid(self):
        config = ResilienceConfig()
        assert config.max_retries >= 0

    def test_rejects_non_integer_fields(self):
        with pytest.raises(TypeError):
            ResilienceConfig(max_retries=1.5)
        with pytest.raises(TypeError):
            ResilienceConfig(retry_backoff=0.5)
        with pytest.raises(TypeError):
            ResilienceConfig(redundancy=1.5)
        with pytest.raises(TypeError):
            ResilienceConfig(redundancy=True)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ResilienceConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ResilienceConfig(retry_backoff=-2)
        with pytest.raises(ValueError):
            ResilienceConfig(redundancy=0)

    def test_accepts_numpy_ints(self):
        import numpy as np

        config = ResilienceConfig(
            max_retries=np.int64(4), retry_backoff=np.int32(2), redundancy=np.int64(2)
        )
        assert config.max_retries == 4
        assert config.retry_backoff == 2
        assert config.redundancy == 2
