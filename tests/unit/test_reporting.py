"""Tests for ASCII/CSV reporting."""

import csv
import json

import pytest

from repro.simulation.metrics import AccuracyGrid
from repro.simulation.reporting import (
    format_accuracy_grid,
    format_rows,
    format_table,
    sparkline,
    write_csv,
    write_json,
)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "----" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456]])
        assert "0.12" in out

    def test_nan_rendered_as_dash(self):
        out = format_table(["v"], [[float("nan")]])
        assert "-" in out.splitlines()[-1]


class TestFormatRows:
    def test_dict_rows(self):
        out = format_rows([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert "a" in out and "b" in out
        assert "3" in out

    def test_empty_rows(self):
        assert format_rows([], title="empty") == "empty"


class TestFormatAccuracyGrid:
    def test_one_row_per_alpha(self):
        grid = AccuracyGrid((0.1, 0.5), 3)
        grid.record(0.1, 0, True)
        out = format_accuracy_grid(grid)
        lines = out.splitlines()
        assert len(lines) == 4  # header + separator + 2 alphas
        assert "a=0.1" in out and "a=0.5" in out


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([0.0, 0.5, 1.0])) == 3

    def test_monotone_heights(self):
        blocks = sparkline([0.0, 1.0])
        assert blocks[0] < blocks[1]

    def test_nan_is_space(self):
        assert sparkline([float("nan")]) == " "

    def test_clamps_out_of_range(self):
        assert len(sparkline([-1.0, 2.0])) == 2


class TestWriters:
    def test_write_csv_roundtrip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = tmp_path / "out.csv"
        write_csv(path, rows)
        with open(path) as handle:
            loaded = list(csv.DictReader(handle))
        assert loaded[0]["a"] == "1"
        assert loaded[1]["b"] == "y"

    def test_write_csv_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_csv(path, [])
        assert path.read_text() == ""

    def test_write_json(self, tmp_path):
        path = tmp_path / "out.json"
        write_json(path, {"x": [1, 2, 3]})
        assert json.loads(path.read_text()) == {"x": [1, 2, 3]}
