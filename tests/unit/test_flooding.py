"""Tests for the flooding baseline."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines.flooding import flood_query
from repro.core.engine import WalkConfig
from repro.graphs.adjacency import CompressedAdjacency
from repro.retrieval.vector_store import DocumentStore


def store_with(dim, **docs):
    store = DocumentStore(dim)
    for doc_id, vec in docs.items():
        store.add(doc_id, np.asarray(vec, dtype=float))
    return store


@pytest.fixture
def star():
    return CompressedAdjacency.from_networkx(nx.star_graph(5))


class TestCoverage:
    def test_ttl1_visits_only_source(self, star):
        result = flood_query(star, {}, np.ones(2), 0, WalkConfig(ttl=1))
        assert result.path == [0]
        assert result.messages == 0

    def test_ttl2_visits_whole_star(self, star):
        result = flood_query(star, {}, np.ones(2), 0, WalkConfig(ttl=2))
        assert result.unique_nodes_visited == 6
        assert result.messages == 5

    def test_covers_ball_of_radius_ttl_minus_1(self, grid_adjacency):
        from repro.graphs.metrics import bfs_distances

        ttl = 4
        result = flood_query(grid_adjacency, {}, np.ones(2), 24, WalkConfig(ttl=ttl))
        distances = bfs_distances(grid_adjacency, 24)
        expected = set(np.flatnonzero(distances <= ttl - 1))
        assert {node for _, node in result.visits} == expected

    def test_hop_labels_match_bfs(self, grid_adjacency):
        from repro.graphs.metrics import bfs_distances

        result = flood_query(grid_adjacency, {}, np.ones(2), 0, WalkConfig(ttl=5))
        distances = bfs_distances(grid_adjacency, 0)
        for hop, node in result.visits:
            assert hop == distances[node]

    def test_finds_everything_in_radius(self, grid_adjacency):
        stores = {
            0: store_with(2, at0=[1.0, 0.0]),
            1: store_with(2, at1=[0.9, 0.0]),
            48: store_with(2, far=[0.8, 0.0]),
        }
        result = flood_query(
            grid_adjacency, stores, np.array([1.0, 0.0]), 0, WalkConfig(ttl=3, k=5)
        )
        assert result.found("at0") and result.found("at1")
        assert not result.found("far")  # outside the radius


class TestBudget:
    def test_message_budget_caps_flood(self, star):
        result = flood_query(
            star, {}, np.ones(2), 0, WalkConfig(ttl=3), max_messages=2
        )
        assert result.messages == 2
        assert result.unique_nodes_visited == 3  # source + 2 reached leaves

    def test_messages_count_duplicates(self):
        """Flooding pays for duplicate deliveries (triangle: 2 copies cross)."""
        adjacency = CompressedAdjacency.from_networkx(nx.complete_graph(3))
        result = flood_query(adjacency, {}, np.ones(2), 0, WalkConfig(ttl=3))
        # hop 1: source sends 2; hop 2: each of 1, 2 forwards to the other
        assert result.messages == 4
        assert result.unique_nodes_visited == 3


class TestValidation:
    def test_invalid_start(self, star):
        with pytest.raises(ValueError):
            flood_query(star, {}, np.ones(2), 99)
