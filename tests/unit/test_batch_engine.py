"""Batch/scalar walk-engine equivalence (the contract of repro.core.batch).

For deterministic policies every ``SearchResult`` field produced by
``run_queries`` must be bit-identical to a ``run_query`` loop over the same
walks; stochastic policies get per-walk spawned generators and are checked
for determinism-under-seed and structural validity instead.
"""

import networkx as nx
import numpy as np
import pytest

from repro.core.batch import run_queries
from repro.core.engine import WalkConfig, run_query
from repro.core.forwarding import (
    DegreeBiasedPolicy,
    EmbeddingGuidedPolicy,
    ForwardingPolicy,
    PrecomputedScorePolicy,
    RandomWalkPolicy,
)
from repro.graphs.adjacency import CompressedAdjacency
from repro.retrieval.vector_store import DocumentStore


def make_stores(adjacency, rng, n_store_nodes, dim, docs_per_node=3):
    stores = {}
    for node in rng.choice(adjacency.n_nodes, size=n_store_nodes, replace=False):
        store = DocumentStore(dim)
        for d in range(int(rng.integers(1, docs_per_node + 1))):
            store.add(f"d{node}_{d}", rng.standard_normal(dim))
        stores[int(node)] = store
    return stores


def assert_results_identical(batch_results, scalar_results):
    assert len(batch_results) == len(scalar_results)
    for got, want in zip(batch_results, scalar_results):
        assert got.query_id == want.query_id
        assert got.start_node == want.start_node
        assert got.visits == want.visits
        assert got.messages == want.messages
        assert got.discovered_at == want.discovered_at
        assert [(d.doc_id, d.score, d.node) for d in got.results] == [
            (d.doc_id, d.score, d.node) for d in want.results
        ]


@pytest.fixture(scope="module")
def setting(small_world_adjacency):
    rng = np.random.default_rng(7)
    dim = 16
    return {
        "adjacency": small_world_adjacency,
        "rng": rng,
        "dim": dim,
        "stores": make_stores(small_world_adjacency, rng, 20, dim),
        "query": rng.standard_normal(dim),
        "embeddings": rng.standard_normal((small_world_adjacency.n_nodes, dim)),
        "starts": list(range(0, small_world_adjacency.n_nodes, 6)),
    }


def run_both(setting, policies, *, config, query=None):
    starts = setting["starts"]
    query = setting["query"] if query is None else query
    batch = run_queries(
        setting["adjacency"],
        setting["stores"],
        policies,
        query,
        starts,
        config,
        query_ids=[f"q{i}" for i in range(len(starts))],
        seed=1,
    )
    policy_list = (
        policies if isinstance(policies, list) else [policies] * len(starts)
    )
    scalar = [
        run_query(
            setting["adjacency"],
            setting["stores"],
            policy,
            query,
            start,
            config,
            query_id=f"q{i}",
            seed=2,
        )
        for i, (policy, start) in enumerate(zip(policy_list, starts))
    ]
    return batch, scalar


class TestDeterministicEquivalence:
    @pytest.mark.parametrize("fanout", [1, 3])
    @pytest.mark.parametrize("k", [1, 3])
    def test_precomputed_policy(self, setting, fanout, k):
        policy = PrecomputedScorePolicy(
            np.random.default_rng(0).standard_normal(setting["adjacency"].n_nodes)
        )
        config = WalkConfig(ttl=15, fanout=fanout, k=k)
        batch, scalar = run_both(setting, policy, config=config)
        assert_results_identical(batch, scalar)

    @pytest.mark.parametrize("fanout", [1, 2])
    def test_embedding_guided_policy(self, setting, fanout):
        policy = EmbeddingGuidedPolicy(setting["embeddings"])
        config = WalkConfig(ttl=12, fanout=fanout, k=2)
        batch, scalar = run_both(setting, policy, config=config)
        assert_results_identical(batch, scalar)

    @pytest.mark.parametrize("fanout", [1, 2])
    def test_degree_biased_policy(self, setting, fanout):
        policy = DegreeBiasedPolicy(setting["adjacency"])
        config = WalkConfig(ttl=12, fanout=fanout, k=1)
        batch, scalar = run_both(setting, policy, config=config)
        assert_results_identical(batch, scalar)

    def test_mixed_policies_per_walk(self, setting):
        """One policy per walk (the accuracy driver's shape)."""
        rng = np.random.default_rng(3)
        n = setting["adjacency"].n_nodes
        distinct = [PrecomputedScorePolicy(rng.standard_normal(n)) for _ in range(3)]
        policies = [distinct[i % 3] for i in range(len(setting["starts"]))]
        batch, scalar = run_both(setting, policies, config=WalkConfig(ttl=20))
        assert_results_identical(batch, scalar)

    def test_per_walk_query_embeddings(self, setting):
        rng = np.random.default_rng(4)
        queries = rng.standard_normal((len(setting["starts"]), setting["dim"]))
        policy = EmbeddingGuidedPolicy(setting["embeddings"])
        config = WalkConfig(ttl=10, k=2)
        batch = run_queries(
            setting["adjacency"],
            setting["stores"],
            policy,
            queries,
            setting["starts"],
            config,
        )
        scalar = [
            run_query(
                setting["adjacency"],
                setting["stores"],
                policy,
                queries[i],
                start,
                config,
            )
            for i, start in enumerate(setting["starts"])
        ]
        assert_results_identical(batch, scalar)

    def test_non_finite_scores_fall_back_and_match(self, setting):
        """-inf scores bypass the fused argmax but stay bit-identical."""
        rng = np.random.default_rng(5)
        scores = rng.standard_normal(setting["adjacency"].n_nodes)
        scores[::7] = -np.inf
        policy = PrecomputedScorePolicy(scores)
        batch, scalar = run_both(setting, policy, config=WalkConfig(ttl=10))
        assert_results_identical(batch, scalar)


class TestEdgeCases:
    def test_ttl_exhaustion_single_hop(self, setting):
        """TTL 1 evaluates only the source; no messages are sent."""
        policy = RandomWalkPolicy()
        results = run_queries(
            setting["adjacency"],
            setting["stores"],
            policy,
            setting["query"],
            setting["starts"],
            WalkConfig(ttl=1),
            seed=0,
        )
        for result, start in zip(results, setting["starts"]):
            assert result.visits == [(0, start)]
            assert result.messages == 0

    def test_ttl_exceeding_graph(self, setting):
        """A TTL far beyond the node count still terminates and matches."""
        policy = PrecomputedScorePolicy(
            np.random.default_rng(1).standard_normal(setting["adjacency"].n_nodes)
        )
        batch, scalar = run_both(setting, policy, config=WalkConfig(ttl=150))
        assert_results_identical(batch, scalar)

    def test_footnote9_bounce_on_path_graph(self):
        """A dead-ended walk reconsiders all neighbors (footnote 9)."""
        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(2))
        result = run_queries(
            adjacency,
            {},
            PrecomputedScorePolicy(np.zeros(2)),
            np.ones(2),
            [0],
            WalkConfig(ttl=5),
        )[0]
        assert result.path == [0, 1, 0, 1, 0]

    def test_footnote9_star_center_exhaustion(self):
        adjacency = CompressedAdjacency.from_networkx(nx.star_graph(2))
        result = run_queries(
            adjacency,
            {},
            PrecomputedScorePolicy(np.array([0.0, 1.0, 2.0])),
            np.ones(2),
            [0],
            WalkConfig(ttl=6),
        )[0]
        assert result.path[:4] == [0, 2, 0, 1]
        assert len(result.visits) == 6

    def test_isolated_node_stops(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        adjacency = CompressedAdjacency.from_networkx(graph)
        results = run_queries(
            adjacency, {}, RandomWalkPolicy(), np.ones(2), [0, 1], WalkConfig(ttl=5)
        )
        assert [r.path for r in results] == [[0], [1]]
        assert [r.messages for r in results] == [0, 0]

    def test_empty_batch(self, setting):
        assert run_queries(
            setting["adjacency"], {}, RandomWalkPolicy(), setting["query"], []
        ) == []

    def test_invalid_start_rejected(self, setting):
        with pytest.raises(ValueError, match="out of range"):
            run_queries(
                setting["adjacency"],
                {},
                RandomWalkPolicy(),
                setting["query"],
                [0, 10_000],
            )

    def test_mismatched_policy_count_rejected(self, setting):
        with pytest.raises(ValueError, match="policies"):
            run_queries(
                setting["adjacency"],
                {},
                [RandomWalkPolicy()],
                setting["query"],
                setting["starts"],
            )

    def test_mismatched_query_ids_rejected(self, setting):
        with pytest.raises(ValueError, match="query ids"):
            run_queries(
                setting["adjacency"],
                {},
                RandomWalkPolicy(),
                setting["query"],
                setting["starts"],
                query_ids=["only-one"],
            )


class TestStochasticPolicies:
    def test_random_walk_deterministic_under_seed(self, setting):
        policy = RandomWalkPolicy()
        config = WalkConfig(ttl=10, fanout=2)
        a = run_queries(
            setting["adjacency"], setting["stores"], policy,
            setting["query"], setting["starts"], config, seed=11,
        )
        b = run_queries(
            setting["adjacency"], setting["stores"], policy,
            setting["query"], setting["starts"], config, seed=11,
        )
        assert [r.visits for r in a] == [r.visits for r in b]

    def test_random_walk_valid_structure(self, setting):
        """Every hop crosses a real edge and respects the TTL bound."""
        adjacency = setting["adjacency"]
        results = run_queries(
            adjacency, setting["stores"], RandomWalkPolicy(),
            setting["query"], setting["starts"], WalkConfig(ttl=8), seed=5,
        )
        for result, start in zip(results, setting["starts"]):
            assert result.visits[0] == (0, start)
            assert len(result.visits) <= 8
            walker = {0: [start]}
            for hop, node in result.visits[1:]:
                assert any(
                    adjacency.has_edge(parent, node)
                    for parent in walker.get(hop - 1, [])
                )
                walker.setdefault(hop, []).append(node)

    def test_softmax_policy_runs(self, setting):
        policy = EmbeddingGuidedPolicy(setting["embeddings"], temperature=0.7)
        results = run_queries(
            setting["adjacency"], setting["stores"], policy,
            setting["query"], setting["starts"], WalkConfig(ttl=6, fanout=2),
            seed=3,
        )
        assert all(len(r.visits) >= 1 for r in results)

    def test_chunked_batches_stay_equivalent(self, setting, monkeypatch):
        """A tiny visited-edge budget forces chunking; results must match."""
        from repro.core import batch as batch_module

        policy = PrecomputedScorePolicy(
            np.random.default_rng(6).standard_normal(setting["adjacency"].n_nodes)
        )
        config = WalkConfig(ttl=12, k=2)
        unchunked = run_queries(
            setting["adjacency"], setting["stores"], policy,
            setting["query"], setting["starts"], config, seed=1,
        )
        monkeypatch.setattr(batch_module, "VISITED_BUDGET_BYTES", 1)
        chunked = run_queries(
            setting["adjacency"], setting["stores"], policy,
            setting["query"], setting["starts"], config, seed=1,
        )
        assert_results_identical(chunked, unchunked)

    def test_per_walk_streams_are_independent(self, setting):
        """Walks from the same start with the same policy diverge."""
        starts = [setting["starts"][0]] * 8
        results = run_queries(
            setting["adjacency"], {}, RandomWalkPolicy(),
            setting["query"], starts, WalkConfig(ttl=6), seed=9,
        )
        paths = {tuple(r.path) for r in results}
        assert len(paths) > 1


class _EveryOtherPolicy(ForwardingPolicy):
    """Deterministic custom policy without a select_batch override."""

    def select(self, query_embedding, candidates, fanout, rng):
        candidates = np.asarray(candidates, dtype=np.int64)
        return candidates[::2][:fanout]


class _RoguePolicy(ForwardingPolicy):
    """Violates the contract: returns nodes outside its candidates."""

    def select(self, query_embedding, candidates, fanout, rng):
        return np.asarray([10_000_000], dtype=np.int64)


class TestCustomPolicies:
    def test_scalar_fallback_matches_run_query(self, setting):
        policy = _EveryOtherPolicy()
        batch, scalar = run_both(setting, policy, config=WalkConfig(ttl=10))
        assert_results_identical(batch, scalar)

    def test_contract_violation_is_reported(self, setting):
        with pytest.raises(ValueError, match="outside its candidate set"):
            run_queries(
                setting["adjacency"], {}, _RoguePolicy(),
                setting["query"], setting["starts"], WalkConfig(ttl=5),
            )


class TestSparseScoreStack:
    """CSR-backed PrecomputedScorePolicy batches hit the fused fast path
    and reproduce the dense-backed (and scalar) results bit for bit."""

    def _score_vectors(self, setting, count=3):
        import scipy.sparse as sp

        rng = np.random.default_rng(31)
        n = setting["adjacency"].n_nodes
        pairs = []
        for _ in range(count):
            scores = np.zeros(n)
            rows = rng.choice(n, n // 3, replace=False)
            scores[rows] = rng.standard_normal(rows.shape[0])
            pairs.append((scores, sp.csr_matrix(scores[:, None])))
        return pairs

    def test_sparse_policies_match_scalar_engine(self, setting):
        pairs = self._score_vectors(setting, count=1)
        policy = PrecomputedScorePolicy(pairs[0][1])
        batch, scalar = run_both(setting, policy, config=WalkConfig(ttl=12))
        assert_results_identical(batch, scalar)

    def test_sparse_stack_matches_dense_stack(self, setting):
        pairs = self._score_vectors(setting)
        starts = setting["starts"]
        dense_policies = [
            PrecomputedScorePolicy(dense) for dense, _ in pairs
        ] * (len(starts) // len(pairs) + 1)
        sparse_policies = [
            PrecomputedScorePolicy(vec) for _, vec in pairs
        ] * (len(starts) // len(pairs) + 1)
        config = WalkConfig(ttl=15)
        dense_results = run_queries(
            setting["adjacency"], setting["stores"],
            dense_policies[: len(starts)], setting["query"], starts, config,
        )
        sparse_results = run_queries(
            setting["adjacency"], setting["stores"],
            sparse_policies[: len(starts)], setting["query"], starts, config,
        )
        assert_results_identical(sparse_results, dense_results)

    def test_mixed_dense_sparse_batch_still_correct(self, setting):
        """A mixed batch skips the fused stack but stays bit-identical."""
        pairs = self._score_vectors(setting, count=2)
        starts = setting["starts"]
        policies = []
        for i in range(len(starts)):
            dense, vec = pairs[i % 2]
            policies.append(
                PrecomputedScorePolicy(dense if i % 2 == 0 else vec)
            )
        batch, scalar = run_both(setting, policies, config=WalkConfig(ttl=10))
        assert_results_identical(batch, scalar)

    def test_sparse_fanout_matches_scalar(self, setting):
        pairs = self._score_vectors(setting, count=1)
        policy = PrecomputedScorePolicy(pairs[0][1])
        batch, scalar = run_both(
            setting, policy, config=WalkConfig(ttl=8, fanout=3)
        )
        assert_results_identical(batch, scalar)


class TestHopBudgets:
    """Per-query deadline budgets match the scalar engine's semantics."""

    def _policy(self, setting):
        return PrecomputedScorePolicy(setting["embeddings"] @ setting["query"])

    def test_mixed_budgets_match_scalar(self, setting):
        policy = self._policy(setting)
        config = WalkConfig(ttl=12)
        starts = setting["starts"]
        budgets = [(3 if i % 3 == 0 else (7 if i % 3 == 1 else 12)) for i in range(len(starts))]
        batch = run_queries(
            setting["adjacency"],
            setting["stores"],
            policy,
            setting["query"],
            starts,
            config,
            hop_budgets=budgets,
        )
        for i, (result, budget) in enumerate(zip(batch, budgets)):
            scalar = run_query(
                setting["adjacency"],
                setting["stores"],
                policy,
                setting["query"],
                starts[i],
                config,
                hop_budget=budget,
            )
            assert result.visits == scalar.visits
            assert result.degraded == scalar.degraded
            assert result.deadline_hit == scalar.deadline_hit
            assert [(d.doc_id, d.score, d.node) for d in result.results] == [
                (d.doc_id, d.score, d.node) for d in scalar.results
            ]

    def test_budget_truncates_only_capped_queries(self, setting):
        policy = self._policy(setting)
        config = WalkConfig(ttl=10)
        starts = setting["starts"][:4]
        budgets = [2, 10, 3, 10]
        batch = run_queries(
            setting["adjacency"],
            setting["stores"],
            policy,
            setting["query"],
            starts,
            config,
            hop_budgets=budgets,
        )
        for result, budget in zip(batch, budgets):
            assert len(result.visits) <= budget
            if budget < config.ttl and len(result.visits) == budget:
                assert result.degraded and result.deadline_hit
            if budget >= config.ttl:
                assert not result.deadline_hit

    def test_none_budgets_bit_identical(self, setting):
        policy = self._policy(setting)
        config = WalkConfig(ttl=10)
        baseline = run_queries(
            setting["adjacency"],
            setting["stores"],
            policy,
            setting["query"],
            setting["starts"],
            config,
        )
        ttl_budgets = run_queries(
            setting["adjacency"],
            setting["stores"],
            policy,
            setting["query"],
            setting["starts"],
            config,
            hop_budgets=[config.ttl] * len(setting["starts"]),
        )
        assert_results_identical(ttl_budgets, baseline)
        for result in ttl_budgets:
            assert not result.degraded and not result.deadline_hit

    def test_budget_validation(self, setting):
        policy = self._policy(setting)
        kwargs = dict(
            config=WalkConfig(ttl=5),
        )
        with pytest.raises(ValueError):
            run_queries(
                setting["adjacency"],
                setting["stores"],
                policy,
                setting["query"],
                setting["starts"],
                hop_budgets=[0] * len(setting["starts"]),
                **kwargs,
            )
        with pytest.raises(TypeError):
            run_queries(
                setting["adjacency"],
                setting["stores"],
                policy,
                setting["query"],
                setting["starts"],
                hop_budgets=[1.5] * len(setting["starts"]),
                **kwargs,
            )
        with pytest.raises(ValueError):
            run_queries(
                setting["adjacency"],
                setting["stores"],
                policy,
                setting["query"],
                setting["starts"],
                hop_budgets=[3],  # wrong length
                **kwargs,
            )

    def test_budgets_survive_chunking(self, setting, monkeypatch):
        import repro.core.batch as batch_mod

        policy = self._policy(setting)
        config = WalkConfig(ttl=8)
        budgets = [3 + (i % 5) for i in range(len(setting["starts"]))]
        whole = run_queries(
            setting["adjacency"],
            setting["stores"],
            policy,
            setting["query"],
            setting["starts"],
            config,
            hop_budgets=budgets,
        )
        monkeypatch.setattr(batch_mod, "VISITED_BUDGET_BYTES", 1)
        chunked = run_queries(
            setting["adjacency"],
            setting["stores"],
            policy,
            setting["query"],
            setting["starts"],
            config,
            hop_budgets=budgets,
        )
        assert_results_identical(chunked, whole)
        assert [r.deadline_hit for r in chunked] == [r.deadline_hit for r in whole]
