"""Tests for document placement strategies."""

import numpy as np
import pytest

from repro.simulation.placement import (
    build_stores,
    community_correlated_placement,
    uniform_placement,
)


class TestUniformPlacement:
    def test_shape_and_range(self):
        nodes = uniform_placement(100, 10, seed=0)
        assert nodes.shape == (100,)
        assert nodes.min() >= 0 and nodes.max() < 10

    def test_deterministic(self):
        assert np.array_equal(
            uniform_placement(50, 7, seed=3), uniform_placement(50, 7, seed=3)
        )

    def test_roughly_uniform(self):
        nodes = uniform_placement(10_000, 10, seed=1)
        counts = np.bincount(nodes, minlength=10)
        assert counts.min() > 800 and counts.max() < 1200

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            uniform_placement(0, 5)


class TestCorrelatedPlacement:
    def test_same_cluster_same_community(self):
        doc_clusters = np.array([0, 0, 0, 1, 1, 1])
        node_communities = np.array([0, 0, 0, 1, 1, 1])  # two communities
        nodes = community_correlated_placement(
            doc_clusters, node_communities, mixing=0.0, seed=0
        )
        # all docs of one cluster land inside a single community
        for cluster in (0, 1):
            placed = nodes[doc_clusters == cluster]
            communities = set(node_communities[placed])
            assert len(communities) == 1

    def test_unclustered_docs_place_anywhere(self):
        doc_clusters = np.full(200, -1)
        node_communities = np.array([0] * 5 + [1] * 5)
        nodes = community_correlated_placement(
            doc_clusters, node_communities, seed=1
        )
        assert set(node_communities[nodes]) == {0, 1}

    def test_full_mixing_is_uniform_spread(self):
        doc_clusters = np.zeros(500, dtype=int)
        node_communities = np.array([0] * 5 + [1] * 5)
        nodes = community_correlated_placement(
            doc_clusters, node_communities, mixing=1.0, seed=2
        )
        # with mixing=1 every doc escapes: both communities get plenty
        fractions = np.bincount(node_communities[nodes], minlength=2) / 500
        assert fractions.min() > 0.3

    def test_deterministic(self):
        doc_clusters = np.array([0, 1, 2, 0, 1, 2])
        node_communities = np.arange(10) % 3
        a = community_correlated_placement(doc_clusters, node_communities, seed=5)
        b = community_correlated_placement(doc_clusters, node_communities, seed=5)
        assert np.array_equal(a, b)

    def test_empty_communities_rejected(self):
        with pytest.raises(ValueError):
            community_correlated_placement(np.zeros(3, int), np.array([], dtype=int))


class TestBuildStores:
    def test_groups_by_node(self):
        doc_ids = ["a", "b", "c", "d"]
        embeddings = np.eye(4)
        nodes = np.array([2, 0, 2, 5])
        stores = build_stores(doc_ids, embeddings, nodes, dim=4)
        assert sorted(stores) == [0, 2, 5]
        assert sorted(stores[2].doc_ids) == ["a", "c"]
        assert stores[0].doc_ids == ["b"]

    def test_embeddings_preserved(self):
        doc_ids = ["a", "b"]
        embeddings = np.array([[1.0, 2.0], [3.0, 4.0]])
        nodes = np.array([1, 1])
        stores = build_stores(doc_ids, embeddings, nodes, dim=2)
        assert np.allclose(stores[1].embedding_of("b"), [3.0, 4.0])

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            build_stores(["a"], np.eye(2), np.array([0, 1]), dim=2)

    def test_large_batch_matches_individual_adds(self):
        rng = np.random.default_rng(0)
        n = 500
        doc_ids = [f"d{i}" for i in range(n)]
        embeddings = rng.standard_normal((n, 8))
        nodes = rng.integers(0, 20, size=n)
        stores = build_stores(doc_ids, embeddings, nodes, dim=8)
        total = sum(len(store) for store in stores.values())
        assert total == n
        # spot-check a few documents land on the right node with right vector
        for i in (0, 123, 499):
            node = int(nodes[i])
            assert np.allclose(stores[node].embedding_of(f"d{i}"), embeddings[i])
