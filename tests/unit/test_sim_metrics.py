"""Tests for experiment metric aggregation."""

import math

import pytest

from repro.simulation.metrics import AccuracyGrid, HopStatistics, summarize_hops


class TestAccuracyGrid:
    def test_record_and_accuracy(self):
        grid = AccuracyGrid((0.5,), 3)
        grid.record(0.5, 1, True)
        grid.record(0.5, 1, True)
        grid.record(0.5, 1, False)
        assert grid.accuracy(0.5, 1) == pytest.approx(2 / 3)
        assert grid.sample_count(0.5, 1) == 3

    def test_empty_cell_nan(self):
        grid = AccuracyGrid((0.5,), 3)
        assert math.isnan(grid.accuracy(0.5, 0))

    def test_series_covers_all_distances(self):
        grid = AccuracyGrid((0.1,), 4)
        grid.record(0.1, 0, True)
        series = grid.series(0.1)
        assert len(series) == 5
        assert series[0] == 1.0

    def test_as_rows_complete(self):
        grid = AccuracyGrid((0.1, 0.9), 2)
        rows = grid.as_rows()
        assert len(rows) == 2 * 3
        assert {row["alpha"] for row in rows} == {0.1, 0.9}

    def test_merge_accumulates(self):
        a = AccuracyGrid((0.5,), 2)
        b = AccuracyGrid((0.5,), 2)
        a.record(0.5, 0, True)
        b.record(0.5, 0, False)
        b.record(0.5, 1, True)
        a.merge(b)
        assert a.accuracy(0.5, 0) == 0.5
        assert a.accuracy(0.5, 1) == 1.0

    def test_merge_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AccuracyGrid((0.5,), 2).merge(AccuracyGrid((0.1,), 2))


class TestSummarizeHops:
    def test_basic_statistics(self):
        stats = summarize_hops(100, [1, 3, 5, 7, 9], total_samples=10)
        assert stats.successes == 5
        assert stats.samples == 10
        assert stats.success_rate == 0.5
        assert stats.median_hops == 5.0
        assert stats.mean_hops == 5.0
        assert stats.std_hops == pytest.approx(math.sqrt(8.0))

    def test_skewed_distribution_mean_above_median(self):
        """The paper's signature: a few long walks drive the mean up."""
        hops = [2, 2, 3, 3, 3, 40, 45]
        stats = summarize_hops(10, hops, total_samples=20)
        assert stats.mean_hops > stats.median_hops
        assert stats.std_hops > 10

    def test_no_successes_gives_nan(self):
        stats = summarize_hops(10, [], total_samples=5)
        assert stats.successes == 0
        assert math.isnan(stats.median_hops)
        assert math.isnan(stats.mean_hops)

    def test_more_successes_than_samples_rejected(self):
        with pytest.raises(ValueError):
            summarize_hops(10, [1, 2, 3], total_samples=2)

    def test_as_row_format(self):
        stats = summarize_hops(1000, [4, 6], total_samples=8)
        row = stats.as_row()
        assert row["M documents"] == 1000
        assert row["success rate"] == "2 / 8"
        assert row["median hops"] == 5.0

    def test_zero_samples_rate_nan(self):
        stats = HopStatistics(10, 0, 0, float("nan"), float("nan"), float("nan"))
        assert math.isnan(stats.success_rate)
