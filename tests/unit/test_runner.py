"""Tests for the experiment runner (IterationSampler + drivers)."""

import numpy as np
import pytest

from repro.graphs.communities import label_propagation_communities
from repro.graphs.metrics import bfs_distances
from repro.simulation.runner import (
    IterationSampler,
    run_accuracy_experiment,
    run_hop_count_experiment,
    sample_start_nodes,
)
from repro.simulation.scenario import AccuracyScenario, HopCountScenario


@pytest.fixture(scope="module")
def sampler(social_adjacency, tiny_workload):
    return IterationSampler(social_adjacency, tiny_workload)


@pytest.fixture(scope="module")
def social_adjacency():
    from repro.graphs.adjacency import CompressedAdjacency
    from repro.graphs.social import FacebookLikeConfig, facebook_like_graph

    graph = facebook_like_graph(
        FacebookLikeConfig(n_nodes=300, target_edges=3600, n_egos=6), seed=3
    )
    return CompressedAdjacency.from_networkx(graph)


@pytest.fixture(scope="module")
def tiny_workload():
    from repro.embeddings.synthetic import (
        SyntheticCorpusConfig,
        synthetic_word_embeddings,
    )
    from repro.simulation.workload import build_workload

    model = synthetic_word_embeddings(
        SyntheticCorpusConfig(
            n_words=2000, dim=64, n_clusters=150, intra_cluster_cosine=0.75
        ),
        seed=21,
    )
    return build_workload(model, n_queries=40, threshold=0.6, seed=22)


class TestIterationSampler:
    def test_document_count(self, sampler):
        rng = np.random.default_rng(0)
        data = sampler.sample(50, rng)
        total = sum(len(store) for store in data.stores.values())
        assert total == 50

    def test_gold_placed_at_gold_node(self, sampler):
        rng = np.random.default_rng(1)
        data = sampler.sample(20, rng)
        assert data.gold_word in data.stores[data.gold_node]

    def test_gold_is_gold_for_query(self, sampler, tiny_workload):
        rng = np.random.default_rng(2)
        data = sampler.sample(20, rng)
        assert data.gold_word in tiny_workload.gold_of[data.query_word]

    def test_relevance_signal_matches_store_scores(self, sampler):
        """x0[u] must equal the summed doc scores at u (eq. 3)."""
        rng = np.random.default_rng(3)
        data = sampler.sample(30, rng)
        for node, store in data.stores.items():
            expected = store.score(data.query_embedding).sum()
            assert data.relevance_signal[node] == pytest.approx(expected)

    def test_relevance_signal_zero_elsewhere(self, sampler):
        rng = np.random.default_rng(4)
        data = sampler.sample(10, rng)
        occupied = set(data.stores)
        for node in range(sampler.adjacency.n_nodes):
            if node not in occupied:
                assert data.relevance_signal[node] == 0.0

    def test_diffuse_scores_matches_filter(self, sampler):
        from repro.gsp.filters import PersonalizedPageRank

        rng = np.random.default_rng(5)
        data = sampler.sample(10, rng)
        scores = sampler.diffuse_scores(data.relevance_signal, 0.5)
        expected = PersonalizedPageRank(0.5, tol=1e-10).apply(
            sampler.operator, data.relevance_signal
        )
        assert np.allclose(scores, expected)

    def test_weighting_variants_change_signal(self, social_adjacency, tiny_workload):
        rng_a, rng_b = np.random.default_rng(6), np.random.default_rng(6)
        sum_sampler = IterationSampler(social_adjacency, tiny_workload, weighting="sum")
        mean_sampler = IterationSampler(
            social_adjacency, tiny_workload, weighting="mean"
        )
        a = sum_sampler.sample(40, rng_a)
        b = mean_sampler.sample(40, rng_b)
        # same placement (same rng seed), different aggregation where nodes
        # hold more than one document
        multi = [n for n, s in a.stores.items() if len(s) > 1]
        if multi:
            node = multi[0]
            assert a.relevance_signal[node] != pytest.approx(
                b.relevance_signal[node]
            )

    def test_l2_weighting_signal_normalized(self, social_adjacency, tiny_workload):
        sampler = IterationSampler(social_adjacency, tiny_workload, weighting="l2")
        rng = np.random.default_rng(7)
        data = sampler.sample(30, rng)
        for node, store in data.stores.items():
            raw = store.matrix().sum(axis=0)
            norm = np.linalg.norm(raw)
            expected = (raw / norm) @ data.query_embedding if norm > 0 else 0.0
            assert data.relevance_signal[node] == pytest.approx(expected)

    def test_correlated_placement_runs(self, social_adjacency, tiny_workload):
        communities = label_propagation_communities(social_adjacency, seed=0)
        sampler = IterationSampler(
            social_adjacency,
            tiny_workload,
            placement="correlated",
            communities=communities,
        )
        data = sampler.sample(30, np.random.default_rng(8))
        assert sum(len(s) for s in data.stores.values()) == 30

    def test_invalid_weighting_rejected(self, social_adjacency, tiny_workload):
        with pytest.raises(ValueError):
            IterationSampler(social_adjacency, tiny_workload, weighting="max")


class TestSampleStartNodes:
    def test_one_node_per_available_radius(self, social_adjacency):
        rng = np.random.default_rng(0)
        distances = bfs_distances(social_adjacency, 0)
        starts = sample_start_nodes(distances, 8, rng)
        for radius, node in starts.items():
            assert distances[node] == radius
        assert starts[0] == 0

    def test_missing_radii_omitted(self, social_adjacency):
        rng = np.random.default_rng(1)
        distances = bfs_distances(social_adjacency, 0)
        starts = sample_start_nodes(distances, 50, rng)
        max_available = int(distances.max())
        assert max(starts) == max_available


class TestRunners:
    def test_accuracy_experiment_shape(self, social_adjacency, tiny_workload):
        scenario = AccuracyScenario(
            n_documents=20, alphas=(0.5,), max_distance=4, iterations=5, seed=0
        )
        grid = run_accuracy_experiment(social_adjacency, tiny_workload, scenario)
        # distance 0 always succeeds: querying node holds the gold document
        assert grid.accuracy(0.5, 0) == 1.0
        assert grid.sample_count(0.5, 0) == 5

    def test_accuracy_deterministic(self, social_adjacency, tiny_workload):
        scenario = AccuracyScenario(
            n_documents=20, alphas=(0.5,), max_distance=3, iterations=4, seed=7
        )
        a = run_accuracy_experiment(social_adjacency, tiny_workload, scenario)
        b = run_accuracy_experiment(social_adjacency, tiny_workload, scenario)
        assert a.successes == b.successes
        assert a.samples == b.samples

    def test_hop_count_experiment(self, social_adjacency, tiny_workload):
        scenario = HopCountScenario(
            n_documents=20, iterations=10, queries_per_iteration=5, seed=0
        )
        stats = run_hop_count_experiment(social_adjacency, tiny_workload, scenario)
        assert stats.samples == 50
        assert 0 <= stats.successes <= 50
        if stats.successes:
            assert stats.median_hops >= 0
            assert stats.mean_hops <= scenario.ttl

    def test_hop_count_deterministic(self, social_adjacency, tiny_workload):
        scenario = HopCountScenario(
            n_documents=15, iterations=6, queries_per_iteration=4, seed=9
        )
        a = run_hop_count_experiment(social_adjacency, tiny_workload, scenario)
        b = run_hop_count_experiment(social_adjacency, tiny_workload, scenario)
        assert a == b

    def test_policy_factory_override(self, social_adjacency, tiny_workload):
        """A blind policy must not beat the informed default."""
        from repro.core.forwarding import RandomWalkPolicy

        scenario = HopCountScenario(
            n_documents=30, iterations=15, queries_per_iteration=4, seed=3
        )
        informed = run_hop_count_experiment(
            social_adjacency, tiny_workload, scenario
        )
        blind = run_hop_count_experiment(
            social_adjacency,
            tiny_workload,
            scenario,
            policy_factory=lambda scores, adj: RandomWalkPolicy(),
        )
        assert informed.successes >= blind.successes


class TestMultiColumnDiffusion:
    ALPHAS = (0.1, 0.5, 0.9)

    def test_columns_match_single_alpha_diffusion(self, sampler):
        rng = np.random.default_rng(10)
        data = sampler.sample(25, rng)
        multi = sampler.diffuse_scores_multi(data.relevance_signal, self.ALPHAS)
        assert multi.shape == (sampler.adjacency.n_nodes, len(self.ALPHAS))
        for j, alpha in enumerate(self.ALPHAS):
            single = sampler.diffuse_scores(data.relevance_signal, alpha)
            assert np.allclose(multi[:, j], single, atol=1e-9)

    def test_power_method_is_bit_identical(self, sampler):
        rng = np.random.default_rng(11)
        data = sampler.sample(25, rng)
        multi = sampler.diffuse_scores_multi(
            data.relevance_signal, self.ALPHAS, method="power"
        )
        for j, alpha in enumerate(self.ALPHAS):
            single = sampler.diffuse_scores(data.relevance_signal, alpha)
            assert np.array_equal(multi[:, j], single)

    def test_single_alpha_column(self, sampler):
        rng = np.random.default_rng(12)
        data = sampler.sample(10, rng)
        multi = sampler.diffuse_scores_multi(data.relevance_signal, (0.5,))
        assert multi.shape == (sampler.adjacency.n_nodes, 1)
        single = sampler.diffuse_scores(data.relevance_signal, 0.5)
        assert np.allclose(multi[:, 0], single, atol=1e-9)

    def test_empty_alphas_rejected(self, sampler):
        with pytest.raises(ValueError, match="non-empty"):
            sampler.diffuse_scores_multi(
                np.zeros(sampler.adjacency.n_nodes), ()
            )


class TestEngineEquivalence:
    """The batched drivers must reproduce the scalar-loop drivers."""

    def test_accuracy_grids_identical(self, social_adjacency, tiny_workload):
        scenario = AccuracyScenario(
            n_documents=20,
            alphas=(0.1, 0.5, 0.9),
            max_distance=4,
            ttl=30,
            iterations=5,
            seed=2,
        )
        batch = run_accuracy_experiment(social_adjacency, tiny_workload, scenario)
        scalar = run_accuracy_experiment(
            social_adjacency, tiny_workload, scenario, engine="scalar"
        )
        assert batch.samples == scalar.samples
        assert batch.successes == scalar.successes

    def test_accuracy_grids_identical_with_fanout(
        self, social_adjacency, tiny_workload
    ):
        scenario = AccuracyScenario(
            n_documents=15,
            alphas=(0.5,),
            max_distance=3,
            ttl=20,
            fanout=3,
            iterations=4,
            seed=3,
        )
        batch = run_accuracy_experiment(social_adjacency, tiny_workload, scenario)
        scalar = run_accuracy_experiment(
            social_adjacency, tiny_workload, scenario, engine="scalar"
        )
        assert batch.samples == scalar.samples
        assert batch.successes == scalar.successes

    def test_hop_stats_identical(self, social_adjacency, tiny_workload):
        scenario = HopCountScenario(
            n_documents=20, iterations=6, queries_per_iteration=5, seed=4
        )
        batch = run_hop_count_experiment(social_adjacency, tiny_workload, scenario)
        scalar = run_hop_count_experiment(
            social_adjacency, tiny_workload, scenario, engine="scalar"
        )
        assert batch == scalar

    def test_unknown_engine_rejected(self, social_adjacency, tiny_workload):
        scenario = HopCountScenario(n_documents=5, iterations=1, seed=0)
        with pytest.raises(ValueError, match="engine"):
            run_hop_count_experiment(
                social_adjacency, tiny_workload, scenario, engine="turbo"
            )
