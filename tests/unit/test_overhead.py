"""Tests for advertisement overhead accounting."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.adjacency import CompressedAdjacency
from repro.simulation.overhead import (
    diffusion_overhead,
    full_replication_overhead,
    khop_index_overhead,
    measured_diffusion_overhead,
    overhead_comparison,
)


@pytest.fixture(scope="module")
def adjacency():
    return CompressedAdjacency.from_networkx(
        nx.connected_watts_strogatz_graph(60, 6, 0.2, seed=1)
    )


class TestDiffusionOverhead:
    def test_storage_scales_with_dim_and_degree(self, adjacency):
        small = diffusion_overhead(adjacency, dim=50)
        large = diffusion_overhead(adjacency, dim=300)
        assert large.storage_per_node_bytes == pytest.approx(
            6 * small.storage_per_node_bytes, rel=0.25
        )

    def test_traffic_grows_with_heavier_diffusion(self, adjacency):
        heavy = diffusion_overhead(adjacency, dim=100, alpha=0.1)
        light = diffusion_overhead(adjacency, dim=100, alpha=0.9)
        assert heavy.total_traffic_bytes > light.total_traffic_bytes

    def test_measured_close_to_estimate_order(self, adjacency):
        """The protocol's real traffic lands within ~10x of the bound."""
        estimate = diffusion_overhead(adjacency, dim=8, alpha=0.5, tol=1e-6)
        measured = measured_diffusion_overhead(
            adjacency, dim=8, alpha=0.5, tol=1e-6, seed=0
        )
        ratio = measured.total_traffic_bytes / estimate.total_traffic_bytes
        assert 0.1 < ratio < 10.0


class TestKHopOverhead:
    def test_storage_grows_with_radius(self, adjacency):
        one = khop_index_overhead(adjacency, radius=1, documents_per_node=3)
        two = khop_index_overhead(adjacency, radius=2, documents_per_node=3)
        assert two.storage_per_node_bytes > one.storage_per_node_bytes

    def test_radius_one_matches_mean_degree(self, adjacency):
        report = khop_index_overhead(
            adjacency, radius=1, documents_per_node=1, id_bytes=1.0,
            sample_sources=None,
        )
        mean_degree = float(adjacency.degrees.mean())
        assert report.storage_per_node_bytes == pytest.approx(mean_degree, rel=1e-6)

    def test_full_graph_radius_equals_replication_storage(self, adjacency):
        big = khop_index_overhead(
            adjacency, radius=100, documents_per_node=2, sample_sources=None
        )
        replication = full_replication_overhead(adjacency, documents_per_node=2)
        assert big.storage_per_node_bytes == pytest.approx(
            replication.storage_per_node_bytes, rel=1e-6
        )


class TestComparison:
    def test_table_has_all_schemes(self, adjacency):
        rows = overhead_comparison(adjacency, dim=100, radii=(1, 2))
        schemes = [row["scheme"] for row in rows]
        assert "diffusion (estimate)" in schemes
        assert "1-hop index" in schemes
        assert "2-hop index" in schemes
        assert "full replication" in schemes

    def test_replication_dominates_storage(self, adjacency):
        rows = overhead_comparison(adjacency, dim=100, documents_per_node=5)
        by_scheme = {row["scheme"]: row for row in rows}
        assert (
            by_scheme["full replication"]["storage/node (KiB)"]
            >= by_scheme["1-hop index"]["storage/node (KiB)"]
        )
