"""Tests for the retrieval workload construction (paper §V-B rules)."""

import numpy as np
import pytest

from repro.embeddings.model import WordEmbeddingModel
from repro.simulation.workload import (
    RetrievalWorkload,
    build_workload,
    poisson_arrival_times,
)


class TestBuildWorkload:
    def test_queries_and_golds_disjoint(self, tiny_workload):
        queries = set(tiny_workload.queries)
        golds = {g for gs in tiny_workload.gold_of.values() for g in gs}
        assert not queries & golds

    def test_pool_excludes_queries_and_golds(self, tiny_workload):
        queries = set(tiny_workload.queries)
        golds = {g for gs in tiny_workload.gold_of.values() for g in gs}
        pool = set(tiny_workload.irrelevant_pool)
        assert not pool & queries
        assert not pool & golds

    def test_every_query_has_gold(self, tiny_workload):
        for query in tiny_workload.queries:
            assert len(tiny_workload.gold_of[query]) >= 1

    def test_golds_satisfy_threshold(self, tiny_workload, tiny_model):
        for query in tiny_workload.queries[:10]:
            for gold in tiny_workload.gold_of[query]:
                assert tiny_model.similarity(query, gold) > 0.6

    def test_pool_below_threshold_for_their_queries(self, tiny_workload, tiny_model):
        """Irrelevant docs must not be gold-quality matches for any query."""
        rng = np.random.default_rng(0)
        pool = tiny_workload.irrelevant_pool
        sample = [pool[int(i)] for i in rng.integers(0, len(pool), size=30)]
        for query in tiny_workload.queries[:5]:
            for word in sample:
                assert tiny_model.similarity(query, word) <= 0.6

    def test_requested_count_or_fewer(self, tiny_model):
        workload = build_workload(tiny_model, n_queries=10, threshold=0.6, seed=1)
        assert workload.n_queries == 10

    def test_deterministic(self, tiny_model):
        a = build_workload(tiny_model, n_queries=15, threshold=0.6, seed=9)
        b = build_workload(tiny_model, n_queries=15, threshold=0.6, seed=9)
        assert a.queries == b.queries
        assert a.gold_of == b.gold_of

    def test_impossible_threshold_raises(self):
        rng = np.random.default_rng(0)
        # orthonormal vectors: no neighbors above any positive threshold
        model = WordEmbeddingModel(
            [f"w{i}" for i in range(8)], np.eye(8)
        )
        with pytest.raises(ValueError, match="no query words"):
            build_workload(model, n_queries=5, threshold=0.6, seed=0)


class TestSampling:
    def test_sample_case_returns_query_gold_pair(self, tiny_workload):
        rng = np.random.default_rng(1)
        query, gold = tiny_workload.sample_case(rng)
        assert query in tiny_workload.gold_of
        assert gold in tiny_workload.gold_of[query]

    def test_sample_irrelevant_distinct(self, tiny_workload):
        rng = np.random.default_rng(2)
        docs = tiny_workload.sample_irrelevant(rng, 50)
        assert len(docs) == len(set(docs)) == 50
        pool = set(tiny_workload.irrelevant_pool)
        assert all(doc in pool for doc in docs)

    def test_sample_irrelevant_exclude(self, tiny_workload):
        rng = np.random.default_rng(3)
        excluded = tiny_workload.irrelevant_pool[0]
        docs = tiny_workload.sample_irrelevant(rng, 20, exclude={excluded})
        assert excluded not in docs

    def test_sample_irrelevant_too_many_raises(self, tiny_workload):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError, match="pool"):
            tiny_workload.sample_irrelevant(
                rng, len(tiny_workload.irrelevant_pool) + 1
            )

    def test_query_embedding_lookup(self, tiny_workload, tiny_model):
        query = tiny_workload.queries[0]
        assert np.allclose(
            tiny_workload.query_embedding(query), tiny_model.vector(query)
        )


class TestValidationInConstructor:
    def test_overlapping_sets_rejected(self, tiny_model):
        with pytest.raises(ValueError, match="overlap"):
            RetrievalWorkload(
                model=tiny_model,
                queries=["word00001"],
                gold_of={"word00001": ["word00001"]},
                irrelevant_pool=[],
                threshold=0.6,
            )

    def test_pool_overlap_rejected(self, tiny_model):
        with pytest.raises(ValueError, match="overlaps"):
            RetrievalWorkload(
                model=tiny_model,
                queries=["word00001"],
                gold_of={"word00001": ["word00002"]},
                irrelevant_pool=["word00002"],
                threshold=0.6,
            )


class TestPoissonArrivals:
    def test_horizon_mode_bounds_and_sorts(self):
        times = poisson_arrival_times(2.0, horizon=100.0, seed=0)
        assert times.size > 0
        assert float(times[0]) > 0.0
        assert float(times[-1]) <= 100.0
        assert np.all(np.diff(times) >= 0)

    def test_horizon_mode_count_near_rate_times_horizon(self):
        times = poisson_arrival_times(5.0, horizon=1000.0, seed=1)
        # mean 5000, std ~71; 5 sigma.
        assert 4650 < times.size < 5350

    def test_n_mode_exact_count(self):
        times = poisson_arrival_times(3.0, n=250, seed=2)
        assert times.shape == (250,)
        assert np.all(np.diff(times) >= 0)

    def test_seed_reproducible(self):
        a = poisson_arrival_times(1.0, horizon=50.0, seed=9)
        b = poisson_arrival_times(1.0, horizon=50.0, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_argument_validation(self):
        with pytest.raises(ValueError):
            poisson_arrival_times(0.0, horizon=10.0)
        with pytest.raises(ValueError):
            poisson_arrival_times(1.0)  # neither horizon nor n
        with pytest.raises(ValueError):
            poisson_arrival_times(1.0, horizon=10.0, n=5)  # both

    def test_rate_boundary_rejected(self):
        """Rate → 0 is a degenerate process, rejected rather than hanging."""
        with pytest.raises(ValueError, match="rate"):
            poisson_arrival_times(0.0, n=5)
        with pytest.raises(ValueError, match="rate"):
            poisson_arrival_times(-1.0, horizon=10.0)

    def test_zero_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            poisson_arrival_times(1.0, horizon=0.0)

    def test_tiny_rate_long_horizon_may_be_empty(self):
        # ~1e-6 expected arrivals: overwhelmingly an empty (but valid) array.
        times = poisson_arrival_times(1e-8, horizon=100.0, seed=3)
        assert times.shape == (0,)

    def test_n_mode_unbounded_times(self):
        # n-mode has no horizon clamp; exactly n arrivals however long it takes.
        times = poisson_arrival_times(1e-3, n=4, seed=5)
        assert times.shape == (4,)
        assert float(times[-1]) > 100.0


class TestChurnQueryInterleaving:
    """Churn events and query arrivals merge deterministically on one clock."""

    def run_clock(self):
        from repro.churn import ChurnRates, ChurnStream
        from repro.runtime.events import EventQueue

        queue = EventQueue()
        log: list[tuple[float, str]] = []
        stream = ChurnStream(
            12, ChurnRates(doc_add=1.0, doc_move=2.0, doc_delete=0.5), seed=21
        )
        stream.install(queue, lambda e: log.append((e.time, e.kind)), horizon=20.0)
        for t in poisson_arrival_times(1.5, horizon=20.0, seed=22):
            queue.schedule_at(float(t), lambda t=t: log.append((float(t), "query")))
        while queue.step():
            pass
        return log

    def test_merge_is_deterministic(self):
        assert self.run_clock() == self.run_clock()

    def test_merge_is_time_ordered_and_complete(self):
        log = self.run_clock()
        times = [t for t, _ in log]
        assert times == sorted(times)
        n_queries = sum(1 for _, kind in log if kind == "query")
        n_churn = len(log) - n_queries
        assert n_queries == poisson_arrival_times(1.5, horizon=20.0, seed=22).size
        from repro.churn import ChurnRates, ChurnStream

        expected = ChurnStream(
            12, ChurnRates(doc_add=1.0, doc_move=2.0, doc_delete=0.5), seed=21
        ).events(horizon=20.0)
        assert n_churn == len(expected)
