"""Tests for the per-node document store."""

import numpy as np
import pytest

from repro.retrieval.vector_store import DocumentStore, StoredDocument


@pytest.fixture
def store() -> DocumentStore:
    s = DocumentStore(3)
    s.add("x", np.array([1.0, 0.0, 0.0]))
    s.add("y", np.array([0.0, 1.0, 0.0]))
    s.add("z", np.array([0.0, 0.0, 1.0]))
    return s


class TestMutation:
    def test_add_and_len(self, store):
        assert len(store) == 3
        assert "x" in store

    def test_re_add_replaces_embedding(self, store):
        store.add("x", np.array([5.0, 0.0, 0.0]))
        assert len(store) == 3
        assert store.embedding_of("x")[0] == 5.0

    def test_wrong_dim_rejected(self, store):
        with pytest.raises(ValueError):
            store.add("w", np.zeros(4))

    def test_remove_middle(self, store):
        store.remove("y")
        assert len(store) == 2
        assert "y" not in store
        assert np.allclose(store.embedding_of("z"), [0.0, 0.0, 1.0])

    def test_remove_last(self, store):
        store.remove("z")
        assert sorted(store.doc_ids) == ["x", "y"]

    def test_remove_unknown_raises(self, store):
        with pytest.raises(KeyError):
            store.remove("nope")

    def test_add_many_bulk(self):
        store = DocumentStore(2)
        store.add_many(
            StoredDocument(f"d{i}", np.array([float(i), 0.0])) for i in range(5)
        )
        assert len(store) == 5
        assert store.embedding_of("d3")[0] == 3.0

    def test_add_many_replaces_existing(self, store):
        store.add_many([StoredDocument("x", np.array([9.0, 0.0, 0.0]))])
        assert len(store) == 3
        assert store.embedding_of("x")[0] == 9.0

    def test_add_many_wrong_dim_rejected(self):
        store = DocumentStore(2)
        with pytest.raises(ValueError):
            store.add_many([StoredDocument("a", np.zeros(3))])

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            DocumentStore(0)

    def test_stored_document_validates_shape(self):
        with pytest.raises(ValueError):
            StoredDocument("a", np.zeros((2, 2)))


class TestScoring:
    def test_score_matches_dot(self, store):
        scores = store.score(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(sorted(scores), [1.0, 2.0, 3.0])

    def test_empty_store_scores_empty(self):
        store = DocumentStore(3)
        assert store.score(np.ones(3)).size == 0
        assert store.top_k(np.ones(3), 5) == []

    def test_top_k_order(self, store):
        hits = store.top_k(np.array([1.0, 2.0, 3.0]), 2)
        assert [doc for doc, _ in hits] == ["z", "y"]

    def test_top_k_larger_than_store(self, store):
        hits = store.top_k(np.ones(3), 10)
        assert len(hits) == 3

    def test_top_k_deterministic_ties(self):
        store = DocumentStore(1)
        store.add("b", np.array([1.0]))
        store.add("a", np.array([1.0]))
        hits = store.top_k(np.array([1.0]), 1)
        # tie broken by insertion index, deterministic across runs
        assert hits[0][0] == "b"

    def test_scores_after_removal_consistent(self, store):
        store.remove("x")
        hits = store.top_k(np.array([1.0, 0.0, 0.0]), 3)
        assert all(doc != "x" for doc, _ in hits)


class TestPersonalizationHook:
    def test_sum_of_embeddings(self, store):
        assert np.allclose(store.sum_of_embeddings(), [1.0, 1.0, 1.0])

    def test_sum_empty_is_zero(self):
        assert np.allclose(DocumentStore(4).sum_of_embeddings(), np.zeros(4))

    def test_matrix_copy(self, store):
        mat = store.matrix()
        mat[:] = 0.0
        assert store.embedding_of("x")[0] == 1.0


class TestCapacityBuffer:
    """Amortized-doubling growth semantics of the embedding buffer."""

    def test_incremental_adds_match_bulk(self):
        rng = np.random.default_rng(0)
        incremental = DocumentStore(4)
        vectors = rng.standard_normal((50, 4))
        for i in range(50):
            incremental.add(f"d{i}", vectors[i])
        assert np.allclose(incremental.matrix(), vectors)
        assert incremental.doc_ids == [f"d{i}" for i in range(50)]

    def test_buffer_grows_geometrically(self):
        store = DocumentStore(2)
        reallocations = 0
        last_buffer = store._matrix
        for i in range(64):
            store.add(f"d{i}", np.zeros(2))
            if store._matrix is not last_buffer:
                reallocations += 1
                last_buffer = store._matrix
        # doubling: ~log2(64) reallocations, not one per add
        assert reallocations <= 6

    def test_matrix_excludes_spare_capacity(self):
        store = DocumentStore(2)
        for i in range(5):
            store.add(f"d{i}", np.full(2, float(i)))
        assert store.matrix().shape == (5, 2)
        assert store.score(np.ones(2)).shape == (5,)
        assert np.allclose(store.sum_of_embeddings(), [10.0, 10.0])

    def test_remove_keeps_scores_consistent(self):
        store = DocumentStore(2)
        for i in range(8):
            store.add(f"d{i}", np.full(2, float(i)))
        store.remove("d3")
        store.remove("d0")
        assert len(store) == 6
        assert store.score(np.ones(2)).shape == (6,)
        assert "d3" not in store and "d0" not in store


class TestAtomicAddMany:
    def test_bad_embedding_mid_batch_leaves_store_unchanged(self):
        store = DocumentStore(2)
        store.add("keep", np.array([1.0, 2.0]))
        batch = [
            StoredDocument("a", np.array([0.0, 1.0])),
            StoredDocument("keep", np.array([9.0, 9.0])),
            StoredDocument("bad", np.array([0.0, 1.0, 2.0])),
        ]
        with pytest.raises(ValueError):
            store.add_many(batch)
        # nothing was applied: not the fresh doc, not the replacement
        assert len(store) == 1
        assert "a" not in store
        assert np.allclose(store.embedding_of("keep"), [1.0, 2.0])

    def test_duplicate_ids_within_batch_last_wins(self):
        store = DocumentStore(2)
        store.add_many(
            [
                StoredDocument("x", np.array([1.0, 0.0])),
                StoredDocument("x", np.array([2.0, 0.0])),
            ]
        )
        assert len(store) == 1
        assert store.embedding_of("x")[0] == 2.0


class TestFromDocuments:
    def test_bulk_equivalent_to_adds(self):
        rng = np.random.default_rng(1)
        vectors = rng.standard_normal((6, 3))
        ids = [f"d{i}" for i in range(6)]
        bulk = DocumentStore.from_documents(3, ids, vectors)
        manual = DocumentStore(3)
        for doc_id, vec in zip(ids, vectors):
            manual.add(doc_id, vec)
        assert bulk.doc_ids == manual.doc_ids
        assert np.allclose(bulk.matrix(), manual.matrix())

    def test_does_not_alias_caller_matrix(self):
        vectors = np.ones((2, 3))
        store = DocumentStore.from_documents(3, ["a", "b"], vectors)
        vectors[:] = 0.0
        assert store.embedding_of("a")[0] == 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DocumentStore.from_documents(3, ["a"], np.ones((1, 4)))
        with pytest.raises(ValueError):
            DocumentStore.from_documents(3, ["a", "b"], np.ones((1, 3)))

    def test_duplicate_ids_fall_back_to_sequential(self):
        store = DocumentStore.from_documents(
            2, ["x", "x", "y"], np.array([[1.0, 0.0], [2.0, 0.0], [3.0, 0.0]])
        )
        assert len(store) == 2
        assert store.embedding_of("x")[0] == 2.0
        assert store.embedding_of("y")[0] == 3.0
