"""Tests for label-propagation community detection."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.communities import label_propagation_communities


def two_cliques_with_bridge(size: int = 10) -> CompressedAdjacency:
    graph = nx.disjoint_union(nx.complete_graph(size), nx.complete_graph(size))
    graph.add_edge(0, size)  # single bridge
    return CompressedAdjacency.from_networkx(graph)


class TestLabelPropagation:
    def test_labels_compact(self):
        adj = two_cliques_with_bridge()
        labels = label_propagation_communities(adj, seed=0)
        assert labels.min() == 0
        assert set(labels) == set(range(labels.max() + 1))

    def test_two_cliques_separate(self):
        adj = two_cliques_with_bridge(12)
        labels = label_propagation_communities(adj, seed=0)
        left = labels[:12]
        right = labels[12:]
        # each clique is internally uniform
        assert len(set(left)) == 1
        assert len(set(right)) == 1
        # and the two cliques get different labels
        assert left[0] != right[0]

    def test_one_label_per_node_shape(self, social_adjacency):
        labels = label_propagation_communities(social_adjacency, seed=1)
        assert labels.shape == (social_adjacency.n_nodes,)

    def test_social_graph_finds_multiple_communities(self, social_adjacency):
        labels = label_propagation_communities(social_adjacency, seed=1)
        n_communities = labels.max() + 1
        assert 2 <= n_communities <= social_adjacency.n_nodes // 2

    def test_deterministic_given_seed(self, social_adjacency):
        a = label_propagation_communities(social_adjacency, seed=5)
        b = label_propagation_communities(social_adjacency, seed=5)
        assert np.array_equal(a, b)

    def test_isolated_node_keeps_own_label(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1, 2])
        graph.add_edge(0, 1)
        adj = CompressedAdjacency.from_networkx(graph)
        labels = label_propagation_communities(adj, seed=0)
        assert labels[2] not in (labels[0], labels[1])
