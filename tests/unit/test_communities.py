"""Tests for label-propagation community detection and shard partitioning."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.communities import (
    community_partition,
    cross_shard_fraction,
    degree_balanced_partition,
    fast_label_propagation,
    label_propagation_communities,
)
from repro.graphs.generators import community_cycle_adjacency


def two_cliques_with_bridge(size: int = 10) -> CompressedAdjacency:
    graph = nx.disjoint_union(nx.complete_graph(size), nx.complete_graph(size))
    graph.add_edge(0, size)  # single bridge
    return CompressedAdjacency.from_networkx(graph)


class TestLabelPropagation:
    def test_labels_compact(self):
        adj = two_cliques_with_bridge()
        labels = label_propagation_communities(adj, seed=0)
        assert labels.min() == 0
        assert set(labels) == set(range(labels.max() + 1))

    def test_two_cliques_separate(self):
        adj = two_cliques_with_bridge(12)
        labels = label_propagation_communities(adj, seed=0)
        left = labels[:12]
        right = labels[12:]
        # each clique is internally uniform
        assert len(set(left)) == 1
        assert len(set(right)) == 1
        # and the two cliques get different labels
        assert left[0] != right[0]

    def test_one_label_per_node_shape(self, social_adjacency):
        labels = label_propagation_communities(social_adjacency, seed=1)
        assert labels.shape == (social_adjacency.n_nodes,)

    def test_social_graph_finds_multiple_communities(self, social_adjacency):
        labels = label_propagation_communities(social_adjacency, seed=1)
        n_communities = labels.max() + 1
        assert 2 <= n_communities <= social_adjacency.n_nodes // 2

    def test_deterministic_given_seed(self, social_adjacency):
        a = label_propagation_communities(social_adjacency, seed=5)
        b = label_propagation_communities(social_adjacency, seed=5)
        assert np.array_equal(a, b)

    def test_isolated_node_keeps_own_label(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1, 2])
        graph.add_edge(0, 1)
        adj = CompressedAdjacency.from_networkx(graph)
        labels = label_propagation_communities(adj, seed=0)
        assert labels[2] not in (labels[0], labels[1])


@pytest.fixture(scope="module")
def planted_overlay():
    return community_cycle_adjacency(
        800, degree=8, n_communities=4, cross_fraction=0.05, seed=9
    )


class TestFastLabelPropagation:
    def test_two_cliques_separate(self):
        adj = two_cliques_with_bridge(12)
        labels = fast_label_propagation(adj, seed=0)
        assert len(set(labels[:12])) == 1
        assert len(set(labels[12:])) == 1
        assert labels[0] != labels[12]

    def test_labels_compact_and_shaped(self, planted_overlay):
        labels = fast_label_propagation(planted_overlay, seed=0)
        assert labels.shape == (planted_overlay.n_nodes,)
        assert set(labels) == set(range(labels.max() + 1))

    def test_deterministic_given_seed(self, planted_overlay):
        a = fast_label_propagation(planted_overlay, seed=4)
        b = fast_label_propagation(planted_overlay, seed=4)
        assert np.array_equal(a, b)

    def test_recovers_planted_communities(self, planted_overlay):
        # Nodes of each planted block (contiguous id ranges) should land in
        # one community almost everywhere.
        labels = fast_label_propagation(planted_overlay, seed=0)
        agreement = 0
        for c in range(4):
            block = labels[c * 200 : (c + 1) * 200]
            values, counts = np.unique(block, return_counts=True)
            agreement += counts.max()
        assert agreement / planted_overlay.n_nodes > 0.9


class TestPartitioners:
    @pytest.mark.parametrize("partitioner", ["community", "degree"])
    def test_every_node_assigned_exactly_once(self, planted_overlay, partitioner):
        if partitioner == "community":
            assignment = community_partition(planted_overlay, 4, seed=0)
        else:
            assignment = degree_balanced_partition(planted_overlay, 4)
        assert assignment.shape == (planted_overlay.n_nodes,)
        assert assignment.min() >= 0 and assignment.max() < 4
        # Every shard is non-empty on a graph this large.
        assert np.bincount(assignment, minlength=4).min() > 0

    def test_community_partition_deterministic(self, planted_overlay):
        a = community_partition(planted_overlay, 4, seed=3)
        b = community_partition(planted_overlay, 4, seed=3)
        assert np.array_equal(a, b)

    def test_degree_partition_balances_load(self, planted_overlay):
        assignment = degree_balanced_partition(planted_overlay, 4)
        weights = planted_overlay.degrees + 1
        loads = np.bincount(assignment, weights=weights, minlength=4)
        assert loads.max() - loads.min() <= weights.max()

    def test_community_beats_degree_on_planted_graph(self, planted_overlay):
        community = community_partition(planted_overlay, 4, seed=0)
        degree = degree_balanced_partition(planted_overlay, 4)
        assert cross_shard_fraction(
            planted_overlay, community
        ) < cross_shard_fraction(planted_overlay, degree)

    def test_two_cliques_stay_together(self):
        adj = two_cliques_with_bridge(12)
        assignment = community_partition(adj, 2, seed=0)
        # Each clique maps into a single shard; only the bridge crosses.
        assert len(set(assignment[:12])) == 1
        assert len(set(assignment[12:])) == 1
        assert cross_shard_fraction(adj, assignment) <= 2 / adj.indices.size

    def test_oversized_community_is_split(self, planted_overlay):
        # One giant label must not serialize the pool: chunking still
        # produces balanced shards.
        labels = np.zeros(planted_overlay.n_nodes, dtype=np.int64)
        assignment = community_partition(
            planted_overlay, 4, labels=labels
        )
        counts = np.bincount(assignment, minlength=4)
        assert counts.min() > 0
        assert counts.max() / counts.min() < 1.5


class TestCrossShardFraction:
    def test_range_and_reporting(self, planted_overlay):
        assignment = community_partition(planted_overlay, 4, seed=0)
        fraction = cross_shard_fraction(planted_overlay, assignment)
        assert 0.0 <= fraction <= 1.0

    def test_single_shard_is_zero(self, planted_overlay):
        assignment = np.zeros(planted_overlay.n_nodes, dtype=np.int64)
        assert cross_shard_fraction(planted_overlay, assignment) == 0.0

    def test_shape_mismatch_raises(self, planted_overlay):
        with pytest.raises(ValueError):
            cross_shard_fraction(planted_overlay, np.zeros(3, dtype=np.int64))
