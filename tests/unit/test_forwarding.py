"""Tests for forwarding policies (§IV-C next-hop selection)."""

import numpy as np
import pytest

from repro.core.forwarding import (
    DegreeBiasedPolicy,
    EmbeddingGuidedPolicy,
    PrecomputedScorePolicy,
    RandomWalkPolicy,
)
from repro.graphs.adjacency import CompressedAdjacency


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def embeddings():
    # node i's embedding is i * e1 + noise-free structure for predictability
    return np.array(
        [
            [0.0, 0.0],
            [1.0, 0.0],
            [2.0, 0.0],
            [0.0, 3.0],
            [0.5, 0.5],
        ]
    )


class TestEmbeddingGuided:
    def test_argmax_selection(self, embeddings, rng):
        policy = EmbeddingGuidedPolicy(embeddings)
        query = np.array([1.0, 0.0])
        chosen = policy.select(query, np.array([0, 1, 2, 3]), 1, rng)
        assert list(chosen) == [2]

    def test_query_direction_matters(self, embeddings, rng):
        policy = EmbeddingGuidedPolicy(embeddings)
        query = np.array([0.0, 1.0])
        chosen = policy.select(query, np.array([0, 1, 2, 3]), 1, rng)
        assert list(chosen) == [3]

    def test_fanout_top_k(self, embeddings, rng):
        policy = EmbeddingGuidedPolicy(embeddings)
        query = np.array([1.0, 0.0])
        chosen = policy.select(query, np.array([0, 1, 2, 4]), 2, rng)
        assert list(chosen) == [2, 1]

    def test_ties_broken_by_candidate_order(self, rng):
        tied = np.zeros((4, 2))
        policy = EmbeddingGuidedPolicy(tied)
        chosen = policy.select(np.ones(2), np.array([2, 3]), 1, rng)
        assert list(chosen) == [2]

    def test_empty_candidates(self, embeddings, rng):
        policy = EmbeddingGuidedPolicy(embeddings)
        out = policy.select(np.ones(2), np.array([], dtype=np.int64), 1, rng)
        assert out.size == 0

    def test_scores_helper(self, embeddings):
        policy = EmbeddingGuidedPolicy(embeddings)
        scores = policy.scores(np.array([1.0, 1.0]), np.array([3, 4]))
        assert np.allclose(scores, [3.0, 1.0])

    def test_temperature_sampling_varies(self, embeddings):
        policy = EmbeddingGuidedPolicy(embeddings, temperature=5.0)
        query = np.array([1.0, 0.0])
        rng = np.random.default_rng(1)
        draws = {
            int(policy.select(query, np.array([0, 1, 2, 3]), 1, rng)[0])
            for _ in range(50)
        }
        assert len(draws) > 1  # exploration actually explores

    def test_zero_temperature_deterministic(self, embeddings):
        policy = EmbeddingGuidedPolicy(embeddings)
        query = np.array([1.0, 0.0])
        out = [
            list(policy.select(query, np.array([0, 1, 2]), 1, np.random.default_rng(s)))
            for s in range(5)
        ]
        assert all(o == out[0] for o in out)

    def test_negative_temperature_rejected(self, embeddings):
        with pytest.raises(ValueError):
            EmbeddingGuidedPolicy(embeddings, temperature=-1.0)

    def test_describe(self, embeddings):
        assert "embedding-guided" in EmbeddingGuidedPolicy(embeddings).describe()


class TestPrecomputedScore:
    def test_matches_embedding_guided(self, embeddings, rng):
        """The linearity fast path: scores = E @ q gives identical selections."""
        query = np.array([0.7, -0.2])
        guided = EmbeddingGuidedPolicy(embeddings)
        precomputed = PrecomputedScorePolicy(embeddings @ query)
        candidates = np.array([0, 1, 2, 3, 4])
        for fanout in (1, 2, 3):
            a = guided.select(query, candidates, fanout, rng)
            b = precomputed.select(query, candidates, fanout, rng)
            assert np.array_equal(a, b)

    def test_rejects_matrix_scores(self):
        with pytest.raises(ValueError):
            PrecomputedScorePolicy(np.zeros((2, 2)))


class TestRandomWalk:
    def test_uniform_coverage(self):
        policy = RandomWalkPolicy()
        rng = np.random.default_rng(2)
        counts = {1: 0, 2: 0, 3: 0}
        for _ in range(600):
            chosen = policy.select(np.zeros(2), np.array([1, 2, 3]), 1, rng)
            counts[int(chosen[0])] += 1
        for count in counts.values():
            assert 120 <= count <= 280  # roughly uniform

    def test_fanout_without_replacement(self):
        policy = RandomWalkPolicy()
        rng = np.random.default_rng(3)
        chosen = policy.select(np.zeros(2), np.array([1, 2, 3]), 3, rng)
        assert sorted(chosen) == [1, 2, 3]

    def test_fanout_capped_at_candidates(self):
        policy = RandomWalkPolicy()
        rng = np.random.default_rng(4)
        chosen = policy.select(np.zeros(2), np.array([5]), 4, rng)
        assert list(chosen) == [5]


class TestDegreeBiased:
    def test_prefers_hub(self, rng):
        import networkx as nx

        adjacency = CompressedAdjacency.from_networkx(nx.star_graph(4))
        policy = DegreeBiasedPolicy(adjacency)
        chosen = policy.select(np.zeros(2), np.array([0, 1, 2]), 1, rng)
        assert list(chosen) == [0]  # the hub

    def test_describe(self):
        import networkx as nx

        adjacency = CompressedAdjacency.from_networkx(nx.star_graph(2))
        assert DegreeBiasedPolicy(adjacency).describe() == "degree-biased"


class TestSparseScoring:
    """CSR-backed policies decide identically to their dense twins.

    The sparse diffusion pipeline hands policies CSR embeddings (and CSR
    score vectors); stored entries carry the same values a densified copy
    would, and absent entries score exactly 0.0, so selections must be
    bit-identical across representations.
    """

    @pytest.fixture
    def sparse_embeddings(self, rng):
        import scipy.sparse as sp

        dense = np.zeros((30, 6))
        rows = rng.choice(30, 12, replace=False)
        dense[rows] = rng.standard_normal((12, 6))
        return dense, sp.csr_matrix(dense)

    def test_embedding_guided_select_matches_dense(self, sparse_embeddings, rng):
        dense, sparse = sparse_embeddings
        dense_policy = EmbeddingGuidedPolicy(dense)
        sparse_policy = EmbeddingGuidedPolicy(sparse)
        query = rng.standard_normal(6)
        candidates = np.arange(30, dtype=np.int64)
        for fanout in (1, 3):
            assert np.array_equal(
                dense_policy.select(query, candidates, fanout, rng),
                sparse_policy.select(query, candidates, fanout, rng),
            )

    def test_embedding_guided_scores_match_dense(self, sparse_embeddings, rng):
        dense, sparse = sparse_embeddings
        query = rng.standard_normal(6)
        candidates = np.array([0, 4, 7, 29])
        got = EmbeddingGuidedPolicy(sparse).scores(query, candidates)
        want = EmbeddingGuidedPolicy(dense).scores(query, candidates)
        assert np.allclose(got, want, atol=1e-14)

    def test_embedding_guided_select_batch_matches_dense(
        self, sparse_embeddings, rng
    ):
        dense, sparse = sparse_embeddings
        queries = rng.standard_normal((2, 6))
        candidates = np.concatenate(
            [np.arange(15, dtype=np.int64), np.arange(10, 30, dtype=np.int64)]
        )
        offsets = np.array([0, 15, 35])
        fanouts = np.array([2, 2])
        rngs = [np.random.default_rng(0), np.random.default_rng(1)]
        got = EmbeddingGuidedPolicy(sparse).select_batch(
            queries, candidates, offsets, fanouts, rngs
        )
        want = EmbeddingGuidedPolicy(dense).select_batch(
            queries, candidates, offsets, fanouts, rngs
        )
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1])

    def test_sparse_dim_mismatch_rejected(self, sparse_embeddings):
        _, sparse = sparse_embeddings
        policy = EmbeddingGuidedPolicy(sparse)
        with pytest.raises(ValueError, match="mismatch"):
            policy.scores(np.zeros(5), np.array([0, 1]))

    @pytest.mark.parametrize("orientation", ["column", "row"])
    def test_precomputed_sparse_vector_matches_dense(self, rng, orientation):
        import scipy.sparse as sp

        scores = np.zeros(40)
        nodes = rng.choice(40, 15, replace=False)
        scores[nodes] = rng.standard_normal(15)
        vector = (
            sp.csr_matrix(scores[:, None])
            if orientation == "column"
            else sp.csr_matrix(scores[None, :])
        )
        dense_policy = PrecomputedScorePolicy(scores)
        sparse_policy = PrecomputedScorePolicy(vector)
        assert sparse_policy.n_nodes == 40
        candidates = np.arange(40, dtype=np.int64)
        for fanout in (1, 2, 5):
            assert np.array_equal(
                dense_policy.select(np.zeros(2), candidates, fanout, rng),
                sparse_policy.select(np.zeros(2), candidates, fanout, rng),
            )

    def test_precomputed_candidate_scores_lookup(self, rng):
        import scipy.sparse as sp

        scores = np.zeros(20)
        scores[[3, 7, 11]] = [1.5, -2.0, 0.25]
        policy = PrecomputedScorePolicy(sp.csr_matrix(scores[:, None]))
        got = policy.candidate_scores(np.array([0, 3, 7, 11, 19]))
        assert np.array_equal(got, [0.0, 1.5, -2.0, 0.25, 0.0])

    def test_precomputed_all_zero_sparse_vector(self, rng):
        import scipy.sparse as sp

        policy = PrecomputedScorePolicy(sp.csr_matrix((10, 1)))
        got = policy.candidate_scores(np.array([0, 5, 9]))
        assert np.array_equal(got, np.zeros(3))

    def test_precomputed_sparse_matrix_rejected(self):
        import scipy.sparse as sp

        with pytest.raises(ValueError, match="vector"):
            PrecomputedScorePolicy(sp.csr_matrix((4, 4)))

    def test_precomputed_does_not_alias_caller_matrix(self, rng):
        import scipy.sparse as sp

        scores = np.zeros(10)
        scores[2] = 5.0
        owned = sp.csc_matrix(scores[:, None])
        policy = PrecomputedScorePolicy(owned)
        owned.data[0] = -7.0  # caller mutates their matrix afterwards
        assert policy.candidate_scores(np.array([2]))[0] == 5.0
