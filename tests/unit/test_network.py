"""Tests for the simulated network and node actors."""

import networkx as nx
import pytest

from repro.graphs.adjacency import CompressedAdjacency
from repro.runtime.network import LatencyModel, SimNetwork
from repro.runtime.node import SimNode


class Recorder(SimNode):
    """Test actor that logs everything it observes."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []
        self.timers = []
        self.started = False
        self.topology_events = []

    def on_start(self):
        self.started = True

    def on_message(self, src, message):
        self.received.append((src, message))

    def on_timer(self, tag):
        self.timers.append(tag)

    def on_neighbor_added(self, neighbor):
        self.topology_events.append(("added", neighbor))

    def on_neighbor_removed(self, neighbor):
        self.topology_events.append(("removed", neighbor))


@pytest.fixture
def network():
    adjacency = CompressedAdjacency.from_networkx(nx.path_graph(4))
    net = SimNetwork(adjacency, latency=LatencyModel(1.0, 0.0), seed=0)
    nodes = [Recorder(i) for i in range(4)]
    net.attach_all(nodes)
    return net, nodes


class TestMessaging:
    def test_delivery_to_neighbor(self, network):
        net, nodes = network
        net.start()
        nodes[0].send(1, "hello")
        net.run()
        assert nodes[1].received == [(0, "hello")]

    def test_send_to_non_neighbor_rejected(self, network):
        net, nodes = network
        net.start()
        with pytest.raises(ValueError, match="only message neighbors"):
            nodes[0].send(2, "nope")

    def test_latency_applied(self, network):
        net, nodes = network
        net.start()
        nodes[0].send(1, "x")
        net.run()
        assert net.now == pytest.approx(1.0)

    def test_message_counting(self, network):
        net, nodes = network
        net.start()
        nodes[0].send(1, "a")
        nodes[1].send(2, "b")
        net.run()
        assert net.stats.messages == 2
        assert net.stats.by_type["str"] == 2

    def test_bytes_use_size_hook(self, network):
        class Sized:
            def size_bytes(self):
                return 100.0

        net, nodes = network
        net.start()
        nodes[0].send(1, Sized())
        net.run()
        assert net.stats.bytes == pytest.approx(100.0)

    def test_detached_node_cannot_send(self):
        node = Recorder(0)
        with pytest.raises(RuntimeError, match="not attached"):
            node.send(1, "x")


class TestTimers:
    def test_timer_fires(self, network):
        net, nodes = network
        net.start()
        nodes[2].set_timer(3.0, "ping")
        net.run()
        assert nodes[2].timers == ["ping"]
        assert net.now == pytest.approx(3.0)

    def test_timer_cancel(self, network):
        net, nodes = network
        net.start()
        handle = nodes[2].set_timer(3.0, "ping")
        handle.cancel()
        net.run()
        assert nodes[2].timers == []


class TestLifecycle:
    def test_start_invokes_on_start(self, network):
        net, nodes = network
        net.start()
        assert all(node.started for node in nodes)

    def test_start_idempotent(self, network):
        net, nodes = network
        net.start()
        net.start()
        assert all(node.started for node in nodes)

    def test_attach_after_start_starts_node(self, network):
        net, nodes = network
        net.start()
        net.add_node(99)
        late = Recorder(99)
        net.attach(late)
        assert late.started

    def test_attach_unknown_node_rejected(self, network):
        net, _ = network
        with pytest.raises(ValueError, match="not in the topology"):
            net.attach(Recorder(42))

    def test_double_attach_rejected(self, network):
        net, _ = network
        with pytest.raises(ValueError, match="already has an actor"):
            net.attach(Recorder(0))


class TestTopologyChanges:
    def test_add_edge_notifies_both(self, network):
        net, nodes = network
        net.start()
        net.add_edge(0, 3)
        assert ("added", 3) in nodes[0].topology_events
        assert ("added", 0) in nodes[3].topology_events

    def test_remove_edge_notifies_both(self, network):
        net, nodes = network
        net.start()
        net.remove_edge(1, 2)
        assert ("removed", 2) in nodes[1].topology_events
        assert ("removed", 1) in nodes[2].topology_events

    def test_add_existing_edge_noop(self, network):
        net, nodes = network
        net.start()
        net.add_edge(0, 1)
        assert nodes[0].topology_events == []

    def test_self_loop_rejected(self, network):
        net, _ = network
        with pytest.raises(ValueError):
            net.add_edge(1, 1)

    def test_remove_node_strips_edges(self, network):
        net, nodes = network
        net.start()
        net.remove_node(1)
        assert 1 not in net.node_ids
        assert net.neighbors_of(0) == []
        assert net.neighbors_of(2) == [3]

    def test_message_to_departed_node_dropped(self, network):
        net, nodes = network
        net.start()
        nodes[0].send(1, "late")
        net.remove_node(1)  # departs while the message is in flight
        net.run()
        # no crash, nothing delivered anywhere
        assert all(not node.received for node in nodes if node.node_id != 1)

    def test_duplicate_node_id_rejected(self, network):
        net, _ = network
        with pytest.raises(ValueError, match="already exists"):
            net.add_node(2)

    def test_to_adjacency_snapshot(self, network):
        net, _ = network
        net.add_edge(0, 2)
        adjacency = net.to_adjacency()
        assert adjacency.has_edge(0, 2)
        assert adjacency.n_edges == 4


class TestLatencyModel:
    def test_zero_jitter_is_constant(self):
        import numpy as np

        model = LatencyModel(2.0, 0.0)
        rng = np.random.default_rng(0)
        assert model.sample(rng) == 2.0

    def test_jitter_within_bounds(self):
        import numpy as np

        model = LatencyModel(1.0, 0.5)
        rng = np.random.default_rng(0)
        for _ in range(100):
            delay = model.sample(rng)
            assert 1.0 <= delay <= 1.5

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(-1.0, 0.0)
