"""Tests for node personalization vectors (paper §IV-A)."""

import numpy as np
import pytest

from repro.core.personalization import personalization_matrix, personalization_vector
from repro.retrieval.vector_store import DocumentStore


@pytest.fixture
def docs():
    return np.array([[1.0, 0.0], [0.0, 2.0], [1.0, 2.0]])


class TestPersonalizationVector:
    def test_sum_is_paper_definition(self, docs):
        assert np.allclose(personalization_vector(docs, "sum"), [2.0, 4.0])

    def test_linearity_property_eq3(self, docs):
        """eq. 3: the query score of the sum equals the summed doc scores."""
        query = np.array([0.3, -0.7])
        e0 = personalization_vector(docs, "sum")
        assert np.isclose(e0 @ query, (docs @ query).sum())

    def test_mean(self, docs):
        assert np.allclose(personalization_vector(docs, "mean"), [2 / 3, 4 / 3])

    def test_sqrt(self, docs):
        expected = np.array([2.0, 4.0]) / np.sqrt(3)
        assert np.allclose(personalization_vector(docs, "sqrt"), expected)

    def test_l2_unit_norm(self, docs):
        out = personalization_vector(docs, "l2")
        assert np.isclose(np.linalg.norm(out), 1.0)

    def test_single_document_all_weightings_agree_up_to_scale(self):
        doc = np.array([[3.0, 4.0]])
        sum_v = personalization_vector(doc, "sum")
        mean_v = personalization_vector(doc, "mean")
        sqrt_v = personalization_vector(doc, "sqrt")
        assert np.allclose(sum_v, mean_v)
        assert np.allclose(sum_v, sqrt_v)

    def test_1d_input_treated_as_single_doc(self):
        out = personalization_vector(np.array([1.0, 2.0]), "sum")
        assert np.allclose(out, [1.0, 2.0])

    def test_empty_collection_raises(self):
        with pytest.raises(ValueError, match="empty"):
            personalization_vector(np.empty((0, 3)), "sum")

    def test_unknown_weighting(self, docs):
        with pytest.raises(ValueError, match="unknown weighting"):
            personalization_vector(docs, "idf")

    def test_sum_favors_large_collections(self):
        """The size bias the paper warns about (§IV-A): many weakly relevant
        docs can outscore one highly relevant doc under 'sum' but not 'mean'."""
        query = np.array([1.0, 0.0])
        relevant = np.array([[0.9, 0.1]])
        weak = np.tile([0.2, 0.5], (10, 1))
        sum_relevant = personalization_vector(relevant, "sum") @ query
        sum_weak = personalization_vector(weak, "sum") @ query
        mean_relevant = personalization_vector(relevant, "mean") @ query
        mean_weak = personalization_vector(weak, "mean") @ query
        assert sum_weak > sum_relevant  # the bias exists under sum
        assert mean_relevant > mean_weak  # mean removes it


class TestPersonalizationMatrix:
    def test_rows_match_vector_function(self):
        store = DocumentStore(2)
        store.add("a", np.array([1.0, 1.0]))
        store.add("b", np.array([2.0, 0.0]))
        matrix = personalization_matrix({3: store}, n_nodes=5, dim=2)
        assert np.allclose(matrix[3], [3.0, 1.0])

    def test_nodes_without_documents_zero(self):
        matrix = personalization_matrix({}, n_nodes=4, dim=3)
        assert np.allclose(matrix, 0.0)
        assert matrix.shape == (4, 3)

    def test_empty_store_is_zero_row(self):
        matrix = personalization_matrix({1: DocumentStore(2)}, n_nodes=2, dim=2)
        assert np.allclose(matrix[1], 0.0)

    def test_out_of_range_node_rejected(self):
        store = DocumentStore(2)
        store.add("a", np.ones(2))
        with pytest.raises(ValueError, match="out of range"):
            personalization_matrix({7: store}, n_nodes=5, dim=2)

    def test_weighting_forwarded(self):
        store = DocumentStore(2)
        store.add("a", np.array([2.0, 0.0]))
        store.add("b", np.array([0.0, 2.0]))
        matrix = personalization_matrix({0: store}, n_nodes=1, dim=2, weighting="mean")
        assert np.allclose(matrix[0], [1.0, 1.0])
