"""The sparse-first diffusion pipeline: filter, push kernel, backend, facade.

Equivalence contract: with ``epsilon=0`` the sparse filter is bit-identical
to the dense power iteration on every normalization; with ``epsilon > 0`` it
agrees with the exact solve within an ε-dependent tolerance.  The ``sparse``
backend plugs into every dispatcher (``diffuse_embeddings``,
``refresh_embeddings``, ``DiffusionSearchNetwork``) with CSR caches end to
end and a lazily densified dense view for backward compatibility.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.backends import available_backends, get_backend
from repro.core.backends.sparse import SparseDiffusionBackend
from repro.core.diffusion import diffuse_embeddings, refresh_embeddings
from repro.core.search import DiffusionSearchNetwork
from repro.gsp.filters import (
    SPARSE_DEFAULT_EPSILON,
    PersonalizedPageRank,
    SparsePersonalizedPageRank,
    coerce_sparse_signal,
    operator_out_degrees,
)
from repro.gsp.normalization import transition_matrix
from repro.gsp.push import forward_push, sparse_forward_push, sparse_push_refresh

NORMALIZATIONS = ("column", "row", "symmetric")


@pytest.fixture(scope="module")
def sparse_signal(small_world_adjacency):
    rng = np.random.default_rng(42)
    n, dim = small_world_adjacency.n_nodes, 12
    holders = rng.choice(n, 8, replace=False)
    dense = np.zeros((n, dim))
    dense[holders] = rng.standard_normal((8, dim))
    return dense, sp.csr_matrix(dense)


class TestCoercion:
    def test_dense_matrix_to_csr(self, small_world_adjacency):
        n = small_world_adjacency.n_nodes
        dense = np.zeros((n, 3))
        dense[5] = [1.0, 2.0, 3.0]
        matrix, was_vector = coerce_sparse_signal(dense, n)
        assert sp.isspmatrix_csr(matrix)
        assert not was_vector
        assert np.array_equal(matrix.toarray(), dense)

    def test_dense_vector_flagged(self, small_world_adjacency):
        n = small_world_adjacency.n_nodes
        matrix, was_vector = coerce_sparse_signal(np.ones(n), n)
        assert was_vector
        assert matrix.shape == (n, 1)

    def test_sparse_input_not_aliased(self, small_world_adjacency):
        n = small_world_adjacency.n_nodes
        original = sp.csr_matrix((n, 2))
        matrix, _ = coerce_sparse_signal(original, n)
        assert matrix is not original

    def test_row_count_mismatch(self, small_world_adjacency):
        n = small_world_adjacency.n_nodes
        with pytest.raises(ValueError, match="rows"):
            coerce_sparse_signal(sp.csr_matrix((n + 1, 2)), n)

    def test_out_degrees_match_column_counts(self, small_world_adjacency):
        operator = transition_matrix(small_world_adjacency, "column")
        degrees = operator_out_degrees(operator)
        expected = np.bincount(
            operator.tocoo().col, minlength=operator.shape[0]
        )
        assert np.array_equal(degrees, expected)
        # memoized on the operator object
        assert operator_out_degrees(operator) is degrees


class TestSparseFilter:
    @pytest.mark.parametrize("normalization", NORMALIZATIONS)
    def test_epsilon_zero_bit_identical_to_power(
        self, small_world_adjacency, sparse_signal, normalization
    ):
        dense, sparse = sparse_signal
        operator = transition_matrix(small_world_adjacency, normalization)
        reference = PersonalizedPageRank(0.4, tol=1e-9).apply_detailed(
            operator, dense
        )
        result = SparsePersonalizedPageRank(
            0.4, epsilon=0.0, tol=1e-9
        ).apply_detailed(operator, sparse)
        assert np.array_equal(result.signal.toarray(), reference.signal)
        assert result.iterations == reference.iterations
        assert result.converged

    @pytest.mark.parametrize("normalization", NORMALIZATIONS)
    def test_pruned_filter_tracks_solve_within_epsilon(
        self, small_world_adjacency, sparse_signal, normalization
    ):
        dense, sparse = sparse_signal
        operator = transition_matrix(small_world_adjacency, normalization)
        exact = PersonalizedPageRank(0.4, method="solve").apply(operator, dense)
        epsilon = 1e-4
        result = SparsePersonalizedPageRank(
            0.4, epsilon=epsilon, tol=1e-9
        ).apply_detailed(operator, sparse)
        assert result.converged
        # worst-case amplification ~ eps * d_max / alpha; generous slack
        bound = epsilon * operator_out_degrees(operator).max() / 0.4 * 10
        assert np.abs(result.signal.toarray() - exact).max() < bound

    def test_pruning_shrinks_support(self, small_world_adjacency, sparse_signal):
        _, sparse = sparse_signal
        operator = transition_matrix(small_world_adjacency, "column")
        full = SparsePersonalizedPageRank(0.4, epsilon=0.0).apply(
            operator, sparse
        )
        pruned = SparsePersonalizedPageRank(0.4, epsilon=1e-2).apply(
            operator, sparse
        )
        assert pruned.nnz < full.nnz

    def test_dense_input_accepted(self, small_world_adjacency, sparse_signal):
        dense, sparse = sparse_signal
        operator = transition_matrix(small_world_adjacency, "column")
        ppr = SparsePersonalizedPageRank(0.5, epsilon=0.0)
        assert np.array_equal(
            ppr.apply(operator, dense).toarray(),
            ppr.apply(operator, sparse).toarray(),
        )

    def test_vector_input_yields_column(self, small_world_adjacency):
        n = small_world_adjacency.n_nodes
        operator = transition_matrix(small_world_adjacency, "column")
        signal = np.zeros(n)
        signal[3] = 1.0
        result = SparsePersonalizedPageRank(0.5, epsilon=0.0).apply(
            operator, signal
        )
        assert result.shape == (n, 1)
        reference = PersonalizedPageRank(0.5).apply(operator, signal)
        assert np.array_equal(result.toarray().ravel(), reference)

    def test_all_zero_signal(self, small_world_adjacency):
        n = small_world_adjacency.n_nodes
        operator = transition_matrix(small_world_adjacency, "column")
        result = SparsePersonalizedPageRank(0.5).apply_detailed(
            operator, sp.csr_matrix((n, 4))
        )
        assert result.converged
        assert result.signal.nnz == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SparsePersonalizedPageRank(0.0)
        with pytest.raises(ValueError):
            SparsePersonalizedPageRank(0.5, epsilon=-1e-3)
        with pytest.raises(ValueError):
            SparsePersonalizedPageRank(1.5)

    def test_max_iterations_cap(self, small_world_adjacency, sparse_signal):
        _, sparse = sparse_signal
        operator = transition_matrix(small_world_adjacency, "column")
        result = SparsePersonalizedPageRank(
            0.1, epsilon=0.0, tol=1e-14, max_iterations=2
        ).apply_detailed(operator, sparse)
        assert result.iterations == 2
        assert not result.converged


class TestSparsePush:
    def test_matches_dense_forward_push(
        self, small_world_adjacency, sparse_signal
    ):
        dense, sparse = sparse_signal
        operator = transition_matrix(small_world_adjacency, "column", fmt="csc")
        reference = forward_push(operator, dense, alpha=0.4, tol=1e-9)
        result = sparse_forward_push(operator, sparse, alpha=0.4, tol=1e-9)
        assert result.converged
        assert sp.issparse(result.estimate)
        assert np.allclose(
            result.estimate.toarray(), reference.estimate, atol=1e-12
        )
        assert result.pushes > 0
        assert result.edge_operations > 0

    def test_refresh_patches_cached_csr(self, small_world_adjacency, sparse_signal):
        dense, sparse = sparse_signal
        n, dim = dense.shape
        operator = transition_matrix(small_world_adjacency, "column", fmt="csc")
        base = sparse_forward_push(operator, sparse, alpha=0.4, tol=1e-10)
        delta = sp.csr_matrix(
            (np.ones(dim), (np.full(dim, 7), np.arange(dim))), shape=(n, dim)
        )
        patched, result = sparse_push_refresh(
            operator, base.estimate, delta, alpha=0.4, tol=1e-10
        )
        assert result.converged
        full = sparse_forward_push(
            operator, sparse + delta, alpha=0.4, tol=1e-10
        )
        assert np.allclose(
            patched.toarray(), full.estimate.toarray(), atol=1e-7
        )

    def test_epsilon_truncation_reduces_work(
        self, small_world_adjacency, sparse_signal
    ):
        _, sparse = sparse_signal
        operator = transition_matrix(small_world_adjacency, "column", fmt="csc")
        exact = sparse_forward_push(operator, sparse, alpha=0.4, tol=1e-9)
        truncated = sparse_forward_push(
            operator, sparse, alpha=0.4, tol=1e-9, epsilon=1e-2
        )
        assert truncated.edge_operations < exact.edge_operations

    def test_shape_mismatch_rejected(self, small_world_adjacency):
        n = small_world_adjacency.n_nodes
        operator = transition_matrix(small_world_adjacency, "column", fmt="csc")
        with pytest.raises(ValueError, match="does not match"):
            sparse_push_refresh(
                operator, sp.csr_matrix((n, 3)), sp.csr_matrix((n, 4))
            )


class TestSparseBackend:
    def test_registered(self):
        assert "sparse" in available_backends()
        backend = get_backend("sparse")
        assert backend.supports_incremental
        assert backend.accepts_sparse
        assert backend.epsilon == SPARSE_DEFAULT_EPSILON

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            SparseDiffusionBackend(epsilon=-1.0)

    def test_diffuse_embeddings_sparse_passthrough(
        self, small_world_adjacency, sparse_signal
    ):
        dense, sparse = sparse_signal
        outcome = diffuse_embeddings(
            small_world_adjacency,
            sparse,
            alpha=0.4,
            method=SparseDiffusionBackend(epsilon=0.0),
            tol=1e-9,
        )
        assert sp.issparse(outcome.embeddings)
        reference = diffuse_embeddings(
            small_world_adjacency, dense, alpha=0.4, method="power", tol=1e-9
        )
        assert np.array_equal(
            outcome.embeddings.toarray(), reference.embeddings
        )

    def test_sparse_input_densified_for_dense_backends(
        self, small_world_adjacency, sparse_signal
    ):
        dense, sparse = sparse_signal
        got = diffuse_embeddings(
            small_world_adjacency, sparse, alpha=0.4, method="power", tol=1e-9
        )
        want = diffuse_embeddings(
            small_world_adjacency, dense, alpha=0.4, method="power", tol=1e-9
        )
        assert isinstance(got.embeddings, np.ndarray)
        assert np.array_equal(got.embeddings, want.embeddings)

    def test_refresh_embeddings_sparse_backend(
        self, small_world_adjacency, sparse_signal
    ):
        dense, sparse = sparse_signal
        n, dim = dense.shape
        # ε=0 so the comparison is tolerance-exact: with pruning enabled the
        # patched and re-diffused supports may legitimately differ at the
        # ε-truncation level (pruning is path-dependent).
        backend = SparseDiffusionBackend(epsilon=0.0)
        outcome = diffuse_embeddings(
            small_world_adjacency, sparse, alpha=0.4, method=backend, tol=1e-10
        )
        delta = np.zeros((n, dim))
        delta[11] = 0.7
        patched = refresh_embeddings(
            small_world_adjacency,
            outcome.embeddings,
            delta,
            alpha=0.4,
            method=backend,
            tol=1e-10,
        )
        assert patched.incremental
        assert sp.issparse(patched.embeddings)
        redone = diffuse_embeddings(
            small_world_adjacency,
            sparse + sp.csr_matrix(delta),
            alpha=0.4,
            method=backend,
            tol=1e-10,
        )
        assert np.allclose(
            patched.embeddings.toarray(),
            redone.embeddings.toarray(),
            atol=1e-6,
        )


class TestSearchFacadeSparse:
    def _network(self, adjacency, seed=0, n_docs=10, dim=16):
        rng = np.random.default_rng(seed)
        net = DiffusionSearchNetwork(adjacency, dim=dim, alpha=0.5)
        docs = rng.standard_normal((n_docs, dim))
        nodes = rng.choice(adjacency.n_nodes, n_docs, replace=False)
        for i in range(n_docs):
            net.place_document(f"doc{i}", docs[i], int(nodes[i]))
        return net, docs, nodes

    def test_personalization_sparse_matches_dense(self, small_world_adjacency):
        net, _, _ = self._network(small_world_adjacency)
        assert np.array_equal(
            net.personalization_sparse().toarray(), net.personalization()
        )

    def test_sparse_diffuse_caches_csr(self, small_world_adjacency):
        net, _, _ = self._network(small_world_adjacency)
        outcome = net.diffuse(method="sparse")
        assert outcome.converged
        assert sp.issparse(outcome.embeddings)
        assert net.csr_embeddings is not None
        # the dense view densifies lazily and is memoized
        dense_view = net.embeddings
        assert isinstance(dense_view, np.ndarray)
        assert dense_view is net.embeddings
        assert np.array_equal(dense_view, net.csr_embeddings.toarray())

    def test_csr_embeddings_none_after_dense_diffusion(
        self, small_world_adjacency
    ):
        net, _, _ = self._network(small_world_adjacency)
        net.diffuse(method="power")
        assert net.csr_embeddings is None

    def test_search_matches_dense_pipeline(self, small_world_adjacency):
        net, docs, _ = self._network(small_world_adjacency, seed=3)
        dense_net, _, _ = self._network(small_world_adjacency, seed=3)
        net.diffuse(method=SparseDiffusionBackend(epsilon=0.0), tol=1e-9)
        dense_net.diffuse(method="power", tol=1e-9)
        for q in range(3):
            sparse_hit = net.search(docs[q], start_node=q, ttl=40)
            dense_hit = dense_net.search(docs[q], start_node=q, ttl=40)
            assert sparse_hit.visits == dense_hit.visits
            assert sparse_hit.best.doc_id == dense_hit.best.doc_id

    def test_incremental_refresh_on_sparse_cache(self, small_world_adjacency):
        # ε=0 keeps the cold-vs-patched comparison tolerance-exact; the
        # default ε would let the two runs truncate slightly different
        # supports (path-dependent pruning) while both stay within the ε
        # accuracy envelope.
        backend = SparseDiffusionBackend(epsilon=0.0)
        net, _, _ = self._network(small_world_adjacency, seed=5)
        first = net.diffuse(method=backend, tol=1e-10)
        assert not first.incremental
        rng = np.random.default_rng(99)
        net.place_document("late", rng.standard_normal(16), node=2)
        second = net.diffuse(method=backend, tol=1e-10)
        assert second.incremental
        assert second.converged
        assert net.csr_embeddings is not None
        assert not net.is_stale
        # the patched cache matches a cold sparse re-diffusion
        cold = DiffusionSearchNetwork(small_world_adjacency, dim=16, alpha=0.5)
        for doc_id, node in net._doc_locations.items():
            store = net.stores[node]
            cold.place_document(doc_id, store.embedding_of(doc_id), node)
        redone = cold.diffuse(method=backend, tol=1e-10)
        assert redone.converged
        assert np.allclose(
            net.csr_embeddings.toarray(),
            cold.csr_embeddings.toarray(),
            atol=1e-6,
        )

    def test_incremental_refresh_with_default_epsilon(
        self, small_world_adjacency
    ):
        """With pruning on, the refresh still lands inside the ε envelope."""
        net, _, _ = self._network(small_world_adjacency, seed=8)
        net.diffuse(method="sparse", tol=1e-10)
        rng = np.random.default_rng(100)
        net.place_document("late", rng.standard_normal(16), node=2)
        outcome = net.diffuse(method="sparse", tol=1e-10)
        assert outcome.incremental
        assert outcome.converged
        exact = PersonalizedPageRank(0.5, method="solve").apply(
            transition_matrix(small_world_adjacency, "column"),
            net.personalization(),
        )
        degrees = small_world_adjacency.degrees.max()
        bound = SPARSE_DEFAULT_EPSILON * degrees / 0.5 * 10
        assert np.abs(net.embeddings - exact).max() < bound

    def test_dense_incremental_after_sparse_cache(self, small_world_adjacency):
        """A push refresh composes with a sparse cache (densified on entry)."""
        net, _, _ = self._network(small_world_adjacency, seed=6)
        net.diffuse(method="sparse", tol=1e-10)
        rng = np.random.default_rng(7)
        net.place_document("extra", rng.standard_normal(16), node=1)
        outcome = net.diffuse(method="push", tol=1e-10)
        assert outcome.incremental
        assert isinstance(outcome.embeddings, np.ndarray)
        exact = PersonalizedPageRank(0.5, method="solve").apply(
            transition_matrix(small_world_adjacency, "column"),
            net.personalization(),
        )
        assert np.abs(net.embeddings - exact).max() < 1e-2


class TestRefreshShapes:
    def test_vector_refresh_keeps_vector_shape(self, small_world_adjacency):
        """refresh_embeddings on a 1-D cache returns a 1-D result (push)."""
        n = small_world_adjacency.n_nodes
        rng = np.random.default_rng(17)
        signal = rng.standard_normal(n)
        base = diffuse_embeddings(
            small_world_adjacency, signal, alpha=0.5, method="push", tol=1e-10
        )
        delta = np.zeros(n)
        delta[4] = 1.0
        # the facade coerces personalization to (n, 1); rebuild a 1-D cache
        cache = np.asarray(base.embeddings).reshape(-1)
        patched = refresh_embeddings(
            small_world_adjacency, cache, delta, alpha=0.5, method="push"
        )
        assert patched.embeddings.shape == (n,)
