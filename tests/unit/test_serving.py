"""Tests for the online serving layer (repro.serving).

Pins the load-bearing contracts:

* every submitted query resolves to exactly one explicit OK / DEGRADED /
  REJECTED response — never a silent drop;
* with infinite deadlines and no fault injector, service results are
  bit-identical to a direct ``run_queries`` call over the same batch;
* finite deadlines shed (can't start in time) or degrade (mid-walk budget)
  with the reason attached;
* admission control bounds the ingress queue with explicit reasons;
* the circuit breaker's state machine trips, cools down, probes, and
  recovers as configured;
* staleness handling refreshes small dirty sets in-line and serves stale
  (marked) for large ones.
"""

import math

import networkx as nx
import numpy as np
import pytest

from repro.core.batch import run_queries
from repro.core.engine import ResilienceConfig, WalkConfig
from repro.core.search import DiffusionSearchNetwork
from repro.runtime.events import EventQueue
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.serving import (
    AdmissionConfig,
    AdmissionController,
    BreakerConfig,
    MicroBatchConfig,
    MicroBatcher,
    Outcome,
    PeerCircuitBreaker,
    QueryRequest,
    QueryService,
    RefreshSLO,
    ServiceMetrics,
    ServingConfig,
)
from repro.serving.service import CostModel, StalenessConfig


# --------------------------------------------------------------------- fixture


def make_network(n=40, dim=8, docs=10, seed=0):
    graph = nx.connected_watts_strogatz_graph(n, 4, 0.3, seed=seed)
    net = DiffusionSearchNetwork(graph, dim=dim, alpha=0.5)
    rng = np.random.default_rng(seed)
    vectors = {}
    for d in range(docs):
        vec = rng.standard_normal(dim)
        node = int(rng.integers(n))
        net.place_document(f"doc{d}", vec, node)
        vectors[f"doc{d}"] = vec
    net.diffuse(method="push")
    return net, vectors, rng


def make_service(net, *, config=None, queue=None, **kwargs):
    return QueryService.from_network(
        net, config=config or ServingConfig(), queue=queue, **kwargs
    )


# -------------------------------------------------------------------- admission


class TestAdmissionController:
    def test_admits_under_all_limits(self):
        ctl = AdmissionController(AdmissionConfig(max_pending=4))
        assert ctl.admit(0.0, 0) is None

    def test_queue_full(self):
        ctl = AdmissionController(AdmissionConfig(max_pending=4))
        assert ctl.admit(0.0, 4) == "queue_full"

    def test_shed_depth_before_hard_cap(self):
        ctl = AdmissionController(AdmissionConfig(max_pending=10, shed_depth=3))
        assert ctl.admit(0.0, 2) is None
        assert ctl.admit(0.0, 3) == "queue_depth"

    def test_unbounded_configuration(self):
        ctl = AdmissionController(AdmissionConfig(max_pending=None))
        assert ctl.admit(0.0, 10**6) is None

    def test_token_bucket_throttles_sustained_rate(self):
        ctl = AdmissionController(
            AdmissionConfig(
                max_pending=None, tokens_per_time=1.0, bucket_capacity=2.0
            )
        )
        # Burst drains the bucket, then refill paces admissions.
        assert ctl.admit(0.0, 0) is None
        assert ctl.admit(0.0, 0) is None
        assert ctl.admit(0.0, 0) == "throttled"
        assert ctl.admit(1.0, 0) is None  # one token refilled
        assert ctl.admit(1.0, 0) == "throttled"

    def test_rejected_query_consumes_no_token(self):
        ctl = AdmissionController(
            AdmissionConfig(
                max_pending=1, tokens_per_time=100.0, bucket_capacity=1.0
            )
        )
        before = ctl.tokens
        assert ctl.admit(0.0, 1) == "queue_full"
        assert ctl.tokens == before

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_pending=0)
        with pytest.raises(TypeError):
            AdmissionConfig(max_pending=2.5)
        with pytest.raises(ValueError):
            AdmissionConfig(max_pending=4, shed_depth=5)
        with pytest.raises(ValueError):
            AdmissionConfig(tokens_per_time=-1.0)


# ---------------------------------------------------------------------- breaker


class TestPeerCircuitBreaker:
    def _breaker(self, **kwargs):
        defaults = dict(
            failure_threshold=3, window=10.0, cooldown=100.0, half_open_successes=1
        )
        defaults.update(kwargs)
        return PeerCircuitBreaker(BreakerConfig(**defaults))

    def test_trips_at_threshold(self):
        breaker = self._breaker()
        for t in (0.0, 1.0):
            breaker.record_failure(7, t)
            assert breaker.quarantined(t) == frozenset()
        breaker.record_failure(7, 2.0)
        assert breaker.quarantined(2.0) == frozenset({7})
        assert breaker.trips == 1

    def test_window_prunes_old_failures(self):
        breaker = self._breaker(window=5.0)
        breaker.record_failure(7, 0.0)
        breaker.record_failure(7, 1.0)
        # Third failure arrives after the first two expired from the window.
        breaker.record_failure(7, 20.0)
        assert breaker.quarantined(20.0) == frozenset()

    def test_cooldown_then_half_open(self):
        breaker = self._breaker(cooldown=50.0)
        for t in (0.0, 1.0, 2.0):
            breaker.record_failure(3, t)
        assert breaker.state(3, 10.0) == "open"
        assert 3 in breaker.quarantined(10.0)
        # After cooldown: HALF_OPEN and *not* quarantined (probing allowed).
        assert breaker.state(3, 60.0) == "half_open"
        assert breaker.quarantined(60.0) == frozenset()

    def test_half_open_success_closes(self):
        breaker = self._breaker(cooldown=50.0, half_open_successes=2)
        for t in (0.0, 1.0, 2.0):
            breaker.record_failure(3, t)
        breaker.record_success(3, 60.0)
        assert breaker.state(3, 60.0) == "half_open"  # one probe not enough
        breaker.record_success(3, 61.0)
        assert breaker.state(3, 61.0) == "closed"

    def test_half_open_failure_reopens(self):
        breaker = self._breaker(cooldown=50.0)
        for t in (0.0, 1.0, 2.0):
            breaker.record_failure(3, t)
        breaker.record_failure(3, 60.0)  # failed probe
        assert breaker.state(3, 61.0) == "open"
        assert 3 in breaker.quarantined(61.0)
        assert breaker.trips == 2

    def test_success_in_closed_state_is_noop(self):
        breaker = self._breaker()
        breaker.record_success(5, 0.0)
        assert breaker.state(5, 0.0) == "closed"

    def test_success_clears_failure_window(self):
        # Failure streaks trip the breaker, not lifetime failure totals: a
        # success between failures resets the count.
        breaker = self._breaker(failure_threshold=3)
        breaker.record_failure(5, 0.0)
        breaker.record_failure(5, 1.0)
        breaker.record_success(5, 2.0)
        breaker.record_failure(5, 3.0)
        breaker.record_failure(5, 4.0)
        assert breaker.quarantined(4.0) == frozenset()
        breaker.record_failure(5, 5.0)
        assert breaker.quarantined(5.0) == frozenset({5})

    def test_observe_feeds_failures_and_successes(self):
        from repro.core.engine import SearchResult
        from repro.retrieval.topk import TopKTracker

        breaker = self._breaker(failure_threshold=2)
        result = SearchResult(
            query_id="q",
            start_node=0,
            tracker=TopKTracker(1),
            visits=[(0, 0), (1, 4)],
            failed_peers={9: 2},
        )
        breaker.observe(result, 5.0)
        assert 9 in breaker.quarantined(5.0)
        assert breaker.state(4, 5.0) == "closed"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(TypeError):
            BreakerConfig(failure_threshold=2.5)
        with pytest.raises(ValueError):
            BreakerConfig(window=0.0)


# ----------------------------------------------------------------- micro-batch


class TestMicroBatcher:
    def test_size_trigger_flushes_immediately(self):
        queue = EventQueue()
        batches = []
        batcher = MicroBatcher(
            queue, batches.append, MicroBatchConfig(max_batch=3, max_wait=10.0)
        )
        for i in range(3):
            batcher.add(i)
        assert batches == [[0, 1, 2]]
        assert batcher.flushes_by_size == 1
        assert len(queue) == 0  # timer cancelled, nothing pending

    def test_timer_trigger_flushes_partial(self):
        queue = EventQueue()
        batches = []
        batcher = MicroBatcher(
            queue, batches.append, MicroBatchConfig(max_batch=8, max_wait=2.0)
        )
        batcher.add("a")
        batcher.add("b")
        assert batches == []
        queue.run()
        assert batches == [["a", "b"]]
        assert batcher.flushes_by_timer == 1
        assert queue.now == 2.0

    def test_timer_measured_from_first_item(self):
        queue = EventQueue()
        batches = []
        batcher = MicroBatcher(
            queue, batches.append, MicroBatchConfig(max_batch=8, max_wait=2.0)
        )
        queue.schedule(1.0, lambda: batcher.add("late"))
        batcher.add("early")
        queue.run()
        # One flush at t=2 (armed by "early"), containing both.
        assert batches == [["early", "late"]]

    def test_manual_flush(self):
        queue = EventQueue()
        batches = []
        batcher = MicroBatcher(queue, batches.append, MicroBatchConfig())
        batcher.add("x")
        batcher.flush()
        assert batches == [["x"]]
        batcher.flush()  # empty: no-op
        assert batches == [["x"]]

    def test_successive_windows(self):
        queue = EventQueue()
        batches = []
        batcher = MicroBatcher(
            queue, batches.append, MicroBatchConfig(max_batch=2, max_wait=5.0)
        )
        batcher.add(1)
        batcher.add(2)  # size flush
        batcher.add(3)  # opens a new window
        queue.run()
        assert batches == [[1, 2], [3]]
        assert batcher.flushes_by_size == 1
        assert batcher.flushes_by_timer == 1


# ----------------------------------------------------------------- service core


class TestServiceEquivalence:
    def test_infinite_deadline_bit_identical_to_run_queries(self):
        net, vectors, rng = make_network()
        config = ServingConfig(
            walk=WalkConfig(ttl=20),
            batch=MicroBatchConfig(max_batch=8, max_wait=1.0),
        )
        queue = EventQueue()
        service = make_service(net, config=config, queue=queue)
        queries = []
        for i in range(8):
            vec = vectors[f"doc{i % len(vectors)}"]
            start = int(rng.integers(net.n_nodes))
            queries.append((i, vec, start))
            service.submit(QueryRequest(query_id=i, embedding=vec, start_node=start))
        service.drain()

        direct = run_queries(
            net.adjacency,
            net.stores,
            net.default_policy(),
            np.stack([vec for _, vec, _ in queries]),
            [start for _, _, start in queries],
            config.walk,
            query_ids=[i for i, _, _ in queries],
        )
        assert len(service.responses) == 8
        by_id = {r.query_id: r for r in service.responses}
        for want in direct:
            got = by_id[want.query_id]
            assert got.outcome is Outcome.OK
            assert got.result.visits == want.visits
            assert [(d.doc_id, d.score, d.node) for d in got.result.results] == [
                (d.doc_id, d.score, d.node) for d in want.results
            ]

    def test_every_submission_resolves_exactly_once(self):
        net, vectors, rng = make_network()
        queue = EventQueue()
        service = make_service(
            net,
            config=ServingConfig(
                walk=WalkConfig(ttl=10),
                batch=MicroBatchConfig(max_batch=4, max_wait=1.0),
                admission=AdmissionConfig(max_pending=6),
            ),
            queue=queue,
        )
        n = 30
        for i in range(n):
            vec = vectors[f"doc{i % len(vectors)}"]
            req = QueryRequest(
                query_id=i,
                embedding=vec,
                start_node=int(rng.integers(net.n_nodes)),
                deadline=float(i % 5) + 0.5,  # many will miss
            )
            queue.schedule_at(0.1 * i, lambda r=req: service.submit(r))
        service.drain()
        assert len(service.responses) == n
        assert sorted(r.query_id for r in service.responses) == list(range(n))
        m = service.metrics
        assert m.submitted == n
        assert m.ok + m.degraded + m.rejected == n
        assert m.pending == 0


class TestDeadlines:
    def test_dead_on_arrival_rejected(self):
        net, vectors, _ = make_network()
        service = make_service(net)
        response = service.submit(
            QueryRequest(
                query_id="late", embedding=vectors["doc0"], start_node=0, deadline=0.0
            )
        )
        assert response is not None
        assert response.outcome is Outcome.REJECTED
        assert response.reason == "deadline"

    def test_cannot_start_before_deadline_shed_at_flush(self):
        net, vectors, _ = make_network()
        config = ServingConfig(
            walk=WalkConfig(ttl=10),
            batch=MicroBatchConfig(max_batch=4, max_wait=5.0),
            cost=CostModel(batch_overhead=2.0, per_query=0.0, hop_cost=1.0),
        )
        service = make_service(net, config=config)
        # Flush happens at t=5 (timer), walk_start = 7; deadline 6 can't start.
        service.submit(
            QueryRequest(
                query_id="tight",
                embedding=vectors["doc0"],
                start_node=0,
                deadline=6.0,
            )
        )
        service.drain()
        (response,) = service.responses
        assert response.outcome is Outcome.REJECTED
        assert response.reason == "deadline"

    def test_mid_walk_budget_degrades_with_partials(self):
        net, vectors, _ = make_network()
        config = ServingConfig(
            walk=WalkConfig(ttl=20),
            batch=MicroBatchConfig(max_batch=4, max_wait=1.0),
            cost=CostModel(batch_overhead=0.0, per_query=0.0, hop_cost=1.0),
        )
        service = make_service(net, config=config)
        # Flush at t=1, walk_start=1; deadline 4 → budget 3 hops < ttl 20.
        service.submit(
            QueryRequest(
                query_id="q", embedding=vectors["doc0"], start_node=0, deadline=4.0
            )
        )
        service.drain()
        (response,) = service.responses
        assert response.outcome is Outcome.DEGRADED
        assert response.reason == "deadline"
        assert response.result is not None
        assert response.result.deadline_hit
        assert len(response.result.visits) <= 3
        assert response.completed <= 4.0 + 1e-9

    def test_generous_deadline_is_ok(self):
        net, vectors, _ = make_network()
        service = make_service(
            net,
            config=ServingConfig(
                walk=WalkConfig(ttl=10),
                batch=MicroBatchConfig(max_batch=1, max_wait=1.0),
            ),
        )
        service.submit(
            QueryRequest(
                query_id="q",
                embedding=vectors["doc0"],
                start_node=0,
                deadline=1_000.0,
            )
        )
        service.drain()
        (response,) = service.responses
        assert response.outcome is Outcome.OK
        assert not response.result.deadline_hit


class TestAdmissionInService:
    def test_overload_sheds_with_queue_full(self):
        net, vectors, rng = make_network()
        service = make_service(
            net,
            config=ServingConfig(
                walk=WalkConfig(ttl=10),
                batch=MicroBatchConfig(max_batch=4, max_wait=1.0),
                admission=AdmissionConfig(max_pending=5),
            ),
        )
        for i in range(12):  # all at t=0; depth exceeds 5 quickly
            service.submit(
                QueryRequest(
                    query_id=i,
                    embedding=vectors["doc0"],
                    start_node=int(rng.integers(net.n_nodes)),
                )
            )
        service.drain()
        m = service.metrics
        assert m.rejected > 0
        assert m.rejected_by_reason.get("queue_full", 0) == m.rejected
        assert m.ok + m.degraded + m.rejected == 12


class TestStaleness:
    def test_small_dirty_set_refreshed_inline(self):
        net, vectors, rng = make_network()
        vec = rng.standard_normal(net.dim)
        net.place_document("new-doc", vec, 5)
        assert net.is_stale
        service = make_service(
            net,
            config=ServingConfig(batch=MicroBatchConfig(max_batch=1, max_wait=1.0)),
        )
        service.submit(QueryRequest(query_id="q", embedding=vec, start_node=0))
        service.drain()
        assert not net.is_stale
        assert service.metrics.refreshes == 1
        (response,) = service.responses
        assert not response.stale_served

    def test_large_dirty_set_served_stale(self):
        net, vectors, rng = make_network()
        for d in range(6):
            net.place_document(f"late{d}", rng.standard_normal(net.dim), d)
        service = make_service(
            net,
            config=ServingConfig(
                batch=MicroBatchConfig(max_batch=1, max_wait=1.0),
                staleness=StalenessConfig(max_dirty_refresh=2),
            ),
        )
        service.submit(
            QueryRequest(query_id="q", embedding=vectors["doc0"], start_node=0)
        )
        service.drain()
        assert net.is_stale  # refresh deferred
        assert service.metrics.deferred_refreshes == 1
        (response,) = service.responses
        assert response.stale_served
        assert service.metrics.stale_served == 1

    def test_refresh_cost_charged_to_batch(self):
        net, vectors, rng = make_network()
        net.place_document("new-doc", rng.standard_normal(net.dim), 5)
        cost = CostModel(
            batch_overhead=0.0,
            per_query=0.0,
            hop_cost=1.0,
            refresh_overhead=3.0,
            refresh_per_dirty=1.0,
        )
        service = make_service(
            net,
            config=ServingConfig(
                batch=MicroBatchConfig(max_batch=1, max_wait=1.0), cost=cost
            ),
        )
        service.submit(
            QueryRequest(query_id="q", embedding=vectors["doc0"], start_node=0)
        )
        service.drain()
        (response,) = service.responses
        # max_batch=1 size-flushes at t=0; walk_start = 0 + refresh (3 + 1·1).
        assert response.started == pytest.approx(4.0)


class TestSloServing:
    """SLO-driven refresh scheduling (StalenessConfig.slo, repro.churn)."""

    def slo_config(self, **slo_kwargs):
        slo_kwargs.setdefault("staleness_target", 1e-6)
        return ServingConfig(
            batch=MicroBatchConfig(max_batch=4, max_wait=1.0),
            staleness=StalenessConfig(slo=RefreshSLO(**slo_kwargs)),
        )

    def submit_all(self, service, vectors, n=8):
        for i in range(n):
            service.submit(
                QueryRequest(
                    query_id=f"q{i}",
                    embedding=vectors[f"doc{i % len(vectors)}"],
                    start_node=i % 40,
                )
            )
        service.drain()

    def test_zero_churn_unlimited_budget_identical_to_heuristic_path(self):
        """Acceptance pin: without churn the SLO path changes nothing.

        Same network state, same seed, infinite budget, no churn: the
        scheduled path must produce bit-identical responses (results,
        timing, staleness stamps) to the pre-existing heuristic serving.
        """
        def serve(config):
            net, vectors, _ = make_network(seed=5)
            service = make_service(net, config=config, seed=33)
            self.submit_all(service, vectors)
            return service

        legacy = serve(
            ServingConfig(batch=MicroBatchConfig(max_batch=4, max_wait=1.0))
        )
        scheduled = serve(self.slo_config())
        assert len(legacy.responses) == len(scheduled.responses) == 8
        for a, b in zip(legacy.responses, scheduled.responses):
            assert a.query_id == b.query_id
            assert a.outcome == b.outcome
            assert a.stale_served == b.stale_served
            assert a.staleness_bound == b.staleness_bound
            assert a.arrival == b.arrival
            assert a.started == b.started
            assert a.completed == b.completed
            assert a.result.best == b.result.best
            assert a.result.visits == b.result.visits
        assert scheduled.metrics.refreshes == 0
        assert scheduled.metrics.slo_violations == 0

    def test_breach_repaired_incrementally_when_cheap(self):
        net, vectors, rng = make_network(seed=6)
        net.place_document("late", rng.standard_normal(net.dim), 9)
        service = make_service(net, config=self.slo_config(), seed=1)
        assert service.refresh_scheduler is not None
        self.submit_all(service, vectors, n=4)
        assert service.metrics.refreshes == 1
        assert service.metrics.full_refreshes == 0
        assert not net.is_stale
        assert all(not r.stale_served for r in service.responses)
        assert service.refresh_scheduler.decisions["incremental"] == 1

    def test_budget_exhausted_serves_stale_with_stamped_bound(self):
        net, vectors, rng = make_network(seed=7)
        net.place_document("late", rng.standard_normal(net.dim), 9)
        service = make_service(
            net,
            config=self.slo_config(refresh_budget_per_tick=1.0),
            seed=1,
        )
        self.submit_all(service, vectors, n=4)
        assert net.is_stale  # never repaired: one op per tick is nothing
        assert service.metrics.refreshes == 0
        assert service.metrics.slo_violations >= 1
        assert service.metrics.slo_violations == (
            service.refresh_scheduler.slo_violations
        )
        for response in service.responses:
            assert response.stale_served
            assert response.staleness_bound > 1e-6
            assert not math.isinf(response.staleness_bound)

    def test_banked_budget_eventually_affords_repair(self):
        net, vectors, rng = make_network(seed=8)
        net.place_document("late", rng.standard_normal(net.dim), 9)
        # One batch's worth of budget is too small, but the bank accrues
        # across batches until the incremental patch is affordable.
        dirty_cost = None
        probe = make_service(net, config=self.slo_config(), seed=1)
        dirty_cost = probe.refresh_scheduler.cost_model.estimate(
            "incremental", net.dirty_mass
        )
        service = make_service(
            net,
            config=self.slo_config(
                refresh_budget_per_tick=max(1.0, dirty_cost / 3),
                max_banked_ticks=10.0,
            ),
            seed=1,
        )
        batches = 0
        while net.is_stale and batches < 12:
            self.submit_all(service, vectors, n=1)
            batches += 1
        assert not net.is_stale
        assert service.metrics.refreshes == 1
        assert service.metrics.slo_violations >= 1  # degraded while saving up

    def test_within_target_serves_stale_without_violation(self):
        net, vectors, rng = make_network(seed=9)
        net.place_document("late", rng.standard_normal(net.dim), 9)
        loose = ServingConfig(
            batch=MicroBatchConfig(max_batch=4, max_wait=1.0),
            staleness=StalenessConfig(
                slo=RefreshSLO(staleness_target=math.inf)
            ),
        )
        service = make_service(net, config=loose, seed=1)
        self.submit_all(service, vectors, n=4)
        assert net.is_stale  # within target: defer is the correct verdict
        assert service.metrics.refreshes == 0
        assert service.metrics.slo_violations == 0
        for response in service.responses:
            assert response.stale_served  # honest stamp even within SLO
            assert response.staleness_bound > 0

    def test_no_network_means_no_scheduler(self):
        net, vectors, _ = make_network()
        service = QueryService(
            net.adjacency,
            net.stores,
            net.default_policy(),
            config=self.slo_config(),
        )
        assert service.refresh_scheduler is None
        service.submit(
            QueryRequest(query_id="q", embedding=vectors["doc0"], start_node=0)
        )
        service.drain()
        (response,) = service.responses
        assert response.staleness_bound == 0.0

    def test_metrics_summary_includes_slo_keys(self):
        metrics = ServiceMetrics()
        summary = metrics.summary()
        assert summary["full_refreshes"] == 0
        assert summary["slo_violations"] == 0


class TestFaultyService:
    def test_all_queries_resolve_under_faults(self):
        net, vectors, rng = make_network(n=60)
        plan = FaultPlan.generate(
            net.n_nodes, crash_fraction=0.2, drop_probability=0.1, seed=3
        )
        injector = FaultInjector(plan)
        breaker = PeerCircuitBreaker(
            BreakerConfig(failure_threshold=2, window=100.0, cooldown=100.0)
        )
        service = make_service(
            net,
            config=ServingConfig(
                walk=WalkConfig(ttl=15),
                batch=MicroBatchConfig(max_batch=4, max_wait=1.0),
                resilience=ResilienceConfig(max_retries=2),
            ),
            faults=injector,
            breaker=breaker,
            seed=11,
        )
        live = sorted(set(range(net.n_nodes)) - plan.crashed_nodes(0.0))
        n = 24
        for i in range(n):
            service.submit(
                QueryRequest(
                    query_id=i,
                    embedding=vectors[f"doc{i % len(vectors)}"],
                    start_node=int(live[int(rng.integers(len(live)))]),
                )
            )
        service.drain()
        assert len(service.responses) == n
        m = service.metrics
        assert m.ok + m.degraded + m.rejected == n

    def test_static_quarantine_routes_around_peers(self):
        net, vectors, rng = make_network()
        service = make_service(
            net,
            config=ServingConfig(
                walk=WalkConfig(ttl=10),
                batch=MicroBatchConfig(max_batch=2, max_wait=1.0),
            ),
            static_quarantine=[1, 2, 3],
        )
        service.submit(
            QueryRequest(query_id="q", embedding=vectors["doc0"], start_node=0)
        )
        service.drain()
        (response,) = service.responses
        visited = {node for _, node in response.result.visits}
        assert visited.isdisjoint({1, 2, 3})


class TestServiceMetrics:
    def test_summary_shape(self):
        metrics = ServiceMetrics()
        summary = metrics.summary(horizon=10.0)
        for key in ("p50", "p95", "p99", "throughput", "shed_rate", "submitted"):
            assert key in summary
        assert math.isnan(summary["p99"])
        assert summary["throughput"] == 0.0

    def test_percentiles_over_completions_only(self):
        from repro.serving.service import QueryResponse

        metrics = ServiceMetrics()
        for latency in (1.0, 2.0, 3.0, 4.0):
            metrics.record_submitted()
            metrics.record_response(
                QueryResponse(
                    query_id=0,
                    outcome=Outcome.OK,
                    reason=None,
                    result=None,
                    arrival=0.0,
                    started=0.0,
                    completed=latency,
                )
            )
        metrics.record_submitted()
        metrics.record_response(
            QueryResponse(
                query_id=9,
                outcome=Outcome.REJECTED,
                reason="queue_full",
                result=None,
                arrival=0.0,
                started=None,
                completed=0.0,
            )
        )
        assert metrics.latency_percentile(50) == pytest.approx(2.5)
        assert metrics.rejected_by_reason == {"queue_full": 1}
        assert metrics.completed == 4
