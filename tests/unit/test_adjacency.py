"""Tests for repro.graphs.adjacency.CompressedAdjacency."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.adjacency import CompressedAdjacency


@pytest.fixture
def triangle_plus_tail() -> CompressedAdjacency:
    """0-1-2 triangle with a 2-3 tail."""
    graph = nx.Graph([(0, 1), (1, 2), (0, 2), (2, 3)])
    return CompressedAdjacency.from_networkx(graph)


class TestConstruction:
    def test_counts(self, triangle_plus_tail):
        assert triangle_plus_tail.n_nodes == 4
        assert triangle_plus_tail.n_edges == 4

    def test_neighbors_sorted(self, triangle_plus_tail):
        assert list(triangle_plus_tail.neighbors(2)) == [0, 1, 3]

    def test_degrees(self, triangle_plus_tail):
        assert triangle_plus_tail.degree(2) == 3
        assert triangle_plus_tail.degree(3) == 1
        assert np.array_equal(triangle_plus_tail.degrees, [2, 2, 3, 1])

    def test_self_loops_dropped(self):
        graph = nx.Graph([(0, 0), (0, 1)])
        adj = CompressedAdjacency.from_networkx(graph)
        assert adj.n_edges == 1
        assert list(adj.neighbors(0)) == [1]

    def test_directed_rejected(self):
        with pytest.raises(ValueError, match="undirected"):
            CompressedAdjacency.from_networkx(nx.DiGraph([(0, 1)]))

    def test_isolated_node_kept(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1, 2])
        graph.add_edge(0, 1)
        adj = CompressedAdjacency.from_networkx(graph)
        assert adj.n_nodes == 3
        assert adj.degree(2) == 0

    def test_from_edges(self):
        adj = CompressedAdjacency.from_edges(3, [(0, 1), (1, 2)])
        assert adj.n_edges == 2
        assert list(adj.neighbors(1)) == [0, 2]

    def test_malformed_indptr_rejected(self):
        with pytest.raises(ValueError):
            CompressedAdjacency(np.array([1, 2]), np.array([0]))

    def test_indices_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            CompressedAdjacency(np.array([0, 1]), np.array([5]))

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CompressedAdjacency(np.array([0, 0]), np.array([], dtype=int), ["a", "b"])


class TestLabels:
    def test_non_integer_labels_roundtrip(self):
        graph = nx.Graph([("x", "y"), ("y", "z")])
        adj = CompressedAdjacency.from_networkx(graph)
        for label in ("x", "y", "z"):
            assert adj.label_of(adj.id_of(label)) == label

    def test_default_labels_are_ids(self, triangle_plus_tail):
        assert triangle_plus_tail.label_of(2) == 2


class TestQueries:
    def test_has_edge(self, triangle_plus_tail):
        assert triangle_plus_tail.has_edge(0, 1)
        assert triangle_plus_tail.has_edge(1, 0)
        assert not triangle_plus_tail.has_edge(0, 3)

    def test_has_edge_no_neighbors(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        adj = CompressedAdjacency.from_networkx(graph)
        assert not adj.has_edge(0, 1)


class TestConversion:
    def test_to_scipy_symmetric(self, triangle_plus_tail):
        mat = triangle_plus_tail.to_scipy()
        dense = mat.toarray()
        assert np.allclose(dense, dense.T)
        assert dense.sum() == 2 * triangle_plus_tail.n_edges

    def test_to_networkx_roundtrip(self, triangle_plus_tail):
        graph = triangle_plus_tail.to_networkx()
        back = CompressedAdjacency.from_networkx(graph)
        assert np.array_equal(back.indptr, triangle_plus_tail.indptr)
        assert np.array_equal(back.indices, triangle_plus_tail.indices)

    def test_roundtrip_preserves_labels(self):
        graph = nx.Graph([("a", "b")])
        adj = CompressedAdjacency.from_networkx(graph)
        assert set(adj.to_networkx().nodes()) == {"a", "b"}


class TestReverseEdgePositions:
    def test_reverse_is_an_involution(self, triangle_plus_tail):
        rev = triangle_plus_tail.reverse_edge_positions
        assert np.array_equal(rev[rev], np.arange(rev.shape[0]))

    def test_reverse_maps_to_opposite_direction(self, triangle_plus_tail):
        adj = triangle_plus_tail
        rev = adj.reverse_edge_positions
        src = np.repeat(np.arange(adj.n_nodes), np.diff(adj.indptr))
        for position in range(adj.indices.shape[0]):
            u, v = src[position], adj.indices[position]
            assert src[rev[position]] == v
            assert adj.indices[rev[position]] == u

    def test_cached_instance_reused(self, triangle_plus_tail):
        first = triangle_plus_tail.reverse_edge_positions
        assert triangle_plus_tail.reverse_edge_positions is first

    def test_random_graph(self):
        import networkx as nx

        graph = nx.gnp_random_graph(40, 0.2, seed=5)
        adj = CompressedAdjacency.from_networkx(graph)
        rev = adj.reverse_edge_positions
        src = np.repeat(np.arange(adj.n_nodes), np.diff(adj.indptr))
        assert np.array_equal(src[rev], adj.indices)
        assert np.array_equal(adj.indices[rev], src)
