"""Tests for the kernel acceleration layer (``repro.kernels``).

Covers the four dispatch-layer contracts:

* resolution — ``REPRO_KERNELS`` honored, numba-absent fallback to the
  numpy reference, forced-numba failing loudly;
* reference semantics — each kernel bit-identical to the inline numpy it
  was extracted from (a scalar re-derivation here);
* numba equivalence — JIT twins bit-identical (float64) / tolerance-bounded
  (float32) against the reference (skipped when numba is absent);
* the float32 pipeline and thread-parallel push built on top of them.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.batch import _SparseScoreStack
from repro.core.forwarding import (
    EmbeddingGuidedPolicy,
    PrecomputedScorePolicy,
    lookup_sorted_keys,
)
from repro.core.search import DiffusionSearchNetwork
from repro.core.backends.sparse import SparseDiffusionBackend
from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.generators import connected_watts_strogatz
from repro.gsp.filters import SparsePersonalizedPageRank, coerce_sparse_signal
from repro.gsp.normalization import transition_matrix
from repro.gsp.push import forward_push, sparse_forward_push, sparse_push_refresh
from repro.kernels import dispatch, reference
from repro.kernels._numba import NUMBA_AVAILABLE

needs_numba = pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")


@pytest.fixture(autouse=True)
def _reset_dispatch(monkeypatch):
    """Each test sees a fresh resolution honoring its own env tweaks."""
    dispatch.reset()
    yield
    dispatch.reset()


@pytest.fixture(scope="module")
def operator():
    adjacency = CompressedAdjacency.from_networkx(
        connected_watts_strogatz(60, 4, 0.2, seed=11)
    )
    return transition_matrix(adjacency, "column")


def _argmax_cases(rng, n_cases=50):
    """Randomized (scores, unseen, seg_starts, segments) segment layouts."""
    for _ in range(n_cases):
        n_seg = int(rng.integers(1, 8))
        lens = rng.integers(1, 6, size=n_seg)
        seg_starts = np.concatenate(([0], np.cumsum(lens)[:-1])).astype(np.int64)
        total = int(lens.sum())
        segments = np.repeat(np.arange(n_seg, dtype=np.int64), lens)
        # Duplicate score values force tie-breaks; some segments all-seen.
        scores = rng.choice([-1.0, 0.0, 0.25, 0.25, 1.0], size=total)
        unseen = rng.random(total) < rng.choice([0.0, 0.3, 0.8, 1.0])
        yield scores, unseen, seg_starts, segments


def _argmax_scalar(scores, unseen, seg_starts, segments):
    """Straight-line per-segment re-derivation of the selection contract."""
    n_seg = seg_starts.shape[0]
    out = np.empty(n_seg, dtype=np.int64)
    bounds = np.append(seg_starts, scores.shape[0])
    for s in range(n_seg):
        lo, hi = int(bounds[s]), int(bounds[s + 1])
        pool = [
            (scores[i], i)
            for i in range(lo, hi)
            if unseen[i] or not unseen[lo:hi].any()
        ]
        best = max(v for v, _ in pool)
        out[s] = min(i for v, i in pool if v == best)
    return out


class TestDispatchResolution:
    def test_numpy_fallback_when_numba_absent(self, monkeypatch):
        monkeypatch.setattr(dispatch, "_load_numba_module", lambda: None)
        info = dispatch.kernel_info()
        assert info["backend"] == "numpy"
        assert info["numba_available"] is False
        assert info["numba_version"] is None

    def test_forced_numba_without_numba_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numba")
        monkeypatch.setattr(dispatch, "_load_numba_module", lambda: None)
        with pytest.raises(RuntimeError, match="numba is not importable"):
            dispatch.csr_row_peaks(np.ones(1), np.array([0, 1]))

    def test_forced_numpy_ignores_numba(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        assert dispatch.kernel_info()["backend"] == "numpy"

    def test_invalid_choice_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "turbo")
        with pytest.raises(ValueError, match="REPRO_KERNELS"):
            dispatch.kernel_info()

    def test_reset_rereads_environment(self, monkeypatch):
        assert dispatch.kernel_info()["backend"] in ("numpy", "numba")
        monkeypatch.setenv("REPRO_KERNELS", "turbo")
        # Resolution is cached: the bad env is invisible until reset().
        dispatch.csr_row_peaks(np.ones(1), np.array([0, 1]))
        dispatch.reset()
        with pytest.raises(ValueError):
            dispatch.csr_row_peaks(np.ones(1), np.array([0, 1]))

    def test_fallback_results_match_reference(self, monkeypatch):
        monkeypatch.setattr(dispatch, "_load_numba_module", lambda: None)
        rng = np.random.default_rng(0)
        for scores, unseen, seg_starts, segments in _argmax_cases(rng, 5):
            iota = np.arange(scores.shape[0], dtype=np.int64)
            assert np.array_equal(
                dispatch.masked_segment_argmax(
                    scores, unseen, seg_starts, segments, iota
                ),
                reference.masked_segment_argmax(
                    scores, unseen, seg_starts, segments, iota
                ),
            )


class TestReferenceKernels:
    def test_masked_segment_argmax_matches_scalar(self):
        rng = np.random.default_rng(1)
        for scores, unseen, seg_starts, segments in _argmax_cases(rng):
            iota = np.arange(scores.shape[0], dtype=np.int64)
            got = reference.masked_segment_argmax(
                scores, unseen, seg_starts, segments, iota
            )
            want = _argmax_scalar(scores, unseen, seg_starts, segments)
            assert np.array_equal(got, want)

    def test_sparse_key_lookup_matches_dense_gather(self):
        rng = np.random.default_rng(2)
        keys = np.unique(rng.integers(0, 200, size=40)).astype(np.int64)
        values = rng.standard_normal(keys.shape[0])
        wanted = rng.integers(0, 200, size=120).astype(np.int64)
        dense = np.zeros(200)
        dense[keys] = values
        got = reference.sparse_key_lookup(keys, values, wanted)
        assert np.array_equal(got, dense[wanted])

    def test_sparse_key_lookup_empty_keys(self):
        got = reference.sparse_key_lookup(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float32),
            np.array([3, 7], dtype=np.int64),
        )
        assert got.dtype == np.float32
        assert np.array_equal(got, np.zeros(2, dtype=np.float32))

    def test_csr_row_peaks_matches_dense_scan(self):
        rng = np.random.default_rng(3)
        matrix = sp.random(30, 7, density=0.2, random_state=4, format="csr")
        rows, peaks = reference.csr_row_peaks(matrix.data, matrix.indptr)
        dense = np.abs(matrix.toarray()).max(axis=1)
        lens = np.diff(matrix.indptr)
        assert np.array_equal(rows, np.flatnonzero(lens))
        assert np.array_equal(peaks, dense[rows])

    def test_csr_row_peaks_empty(self):
        empty = sp.csr_matrix((5, 3))
        rows, peaks = reference.csr_row_peaks(empty.data, empty.indptr)
        assert rows.size == 0 and peaks.size == 0

    def test_scatter_matches_explicit_loop(self):
        rng = np.random.default_rng(4)
        residual = rng.standard_normal((12, 5))
        want = residual.copy()
        rows = rng.integers(0, 12, size=30).astype(np.int64)
        cols = rng.integers(0, 12, size=30).astype(np.int64)
        data = rng.standard_normal(30)
        pushed = rng.standard_normal((12, 5))
        for r, c, w in zip(rows, cols, data):
            want[r] += 0.5 * w * pushed[c]
        reference.scatter_add_weighted_rows(
            residual, rows, cols, data, pushed, 0.5
        )
        assert np.allclose(residual, want, atol=1e-12)


@needs_numba
class TestNumbaEquivalence:
    """JIT twins vs reference: bit-identical float64, bounded float32."""

    def test_masked_segment_argmax(self):
        from repro.kernels import _numba

        rng = np.random.default_rng(5)
        for scores, unseen, seg_starts, segments in _argmax_cases(rng):
            iota = np.arange(scores.shape[0], dtype=np.int64)
            assert np.array_equal(
                _numba.masked_segment_argmax(
                    scores, unseen, seg_starts, segments, iota
                ),
                reference.masked_segment_argmax(
                    scores, unseen, seg_starts, segments, iota
                ),
            )

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_sparse_key_lookup(self, dtype):
        from repro.kernels import _numba

        rng = np.random.default_rng(6)
        keys = np.unique(rng.integers(0, 500, size=80)).astype(np.int64)
        values = rng.standard_normal(keys.shape[0]).astype(dtype)
        wanted = rng.integers(0, 500, size=300).astype(np.int64)
        got = _numba.sparse_key_lookup(keys, values, wanted)
        want = reference.sparse_key_lookup(keys, values, wanted)
        assert got.dtype == want.dtype == dtype
        assert np.array_equal(got, want)  # pure gather: exact in both dtypes

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_csr_row_peaks(self, dtype):
        from repro.kernels import _numba

        matrix = sp.random(50, 9, density=0.15, random_state=7, format="csr")
        data = matrix.data.astype(dtype)
        got_rows, got_peaks = _numba.csr_row_peaks(data, matrix.indptr)
        want_rows, want_peaks = reference.csr_row_peaks(data, matrix.indptr)
        assert np.array_equal(got_rows, want_rows)
        assert np.array_equal(got_peaks, want_peaks)  # max is exact

    def test_scatter_add_weighted_rows_float64(self):
        from repro.kernels import _numba

        rng = np.random.default_rng(8)
        rows = rng.integers(0, 20, size=60).astype(np.int64)
        cols = rng.integers(0, 20, size=60).astype(np.int64)
        data = rng.standard_normal(60)
        pushed = rng.standard_normal((20, 4))
        got = rng.standard_normal((20, 4))
        want = got.copy()
        _numba.scatter_add_weighted_rows(got, rows, cols, data, pushed, 0.6)
        reference.scatter_add_weighted_rows(want, rows, cols, data, pushed, 0.6)
        assert np.array_equal(got, want)

    def test_push_end_to_end_matches_numpy_backend(self, operator, monkeypatch):
        """Whole-kernel check: forward_push under numba == under numpy."""
        rng = np.random.default_rng(9)
        signal = rng.standard_normal((60, 5))
        monkeypatch.setenv("REPRO_KERNELS", "numba")
        dispatch.reset()
        jit = forward_push(operator, signal, alpha=0.4, tol=1e-10)
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        dispatch.reset()
        ref = forward_push(operator, signal, alpha=0.4, tol=1e-10)
        assert np.array_equal(jit.estimate, ref.estimate)
        assert jit.sweeps == ref.sweeps


class TestCompositeKeyOverflowGuard:
    def test_oversized_stack_fails_loudly(self):
        huge = np.int64(2) ** 40
        with pytest.raises(OverflowError, match="composite-key space"):
            _SparseScoreStack(
                np.array([0], dtype=np.int64),
                np.array([1.0]),
                np.array([huge], dtype=np.int64),
                n_nodes=int(huge),
            )

    def test_normal_stack_unaffected(self):
        stack = _SparseScoreStack(
            np.array([0, 3], dtype=np.int64),
            np.array([1.0, 2.0]),
            np.array([0], dtype=np.int64),
            n_nodes=3,
        )
        got = stack.gather(np.array([0, 0]), np.array([0, 1]))
        assert np.array_equal(got, np.array([1.0, 0.0]))


class TestFloat32Pipeline:
    def test_coercers_honor_dtype(self):
        dense, _ = coerce_sparse_signal(np.ones((4, 2)), 4, np.float32)
        assert dense.dtype == np.float32

    def test_filter_dtype_validation(self):
        with pytest.raises(ValueError, match="float32 or float64"):
            SparsePersonalizedPageRank(0.5, dtype=np.float16)

    def test_backend_dtype_validation(self):
        with pytest.raises(ValueError, match="float32 or float64"):
            SparseDiffusionBackend(dtype=np.int32)
        with pytest.raises(ValueError, match="n_jobs"):
            SparseDiffusionBackend(n_jobs=0)

    def test_facade_dtype_validation(self):
        graph = connected_watts_strogatz(10, 4, 0.2, seed=1)
        with pytest.raises(ValueError, match="float32 or float64"):
            DiffusionSearchNetwork(graph, dim=3, dtype=np.float16)

    def test_sparse_filter_float32_cache(self, operator):
        rng = np.random.default_rng(10)
        signal = sp.csr_matrix(
            np.where(rng.random((60, 4)) < 0.1, rng.standard_normal((60, 4)), 0.0)
        )
        ppr32 = SparsePersonalizedPageRank(0.5, epsilon=0.0, dtype=np.float32)
        ppr64 = SparsePersonalizedPageRank(0.5, epsilon=0.0, dtype=np.float64)
        out32 = ppr32.apply_detailed(operator, signal).signal
        out64 = ppr64.apply_detailed(operator, signal).signal
        assert out32.dtype == np.float32
        assert out64.dtype == np.float64
        dense32 = np.asarray(out32.todense(), dtype=np.float64)
        dense64 = np.asarray(out64.todense())
        assert np.allclose(dense32, dense64, atol=5e-5)

    def test_forward_push_float32(self, operator):
        rng = np.random.default_rng(11)
        signal = rng.standard_normal((60, 3))
        out32 = forward_push(operator, signal, alpha=0.4, tol=1e-5, dtype=np.float32)
        out64 = forward_push(operator, signal, alpha=0.4, tol=1e-5)
        assert out32.estimate.dtype == np.float32
        assert out64.estimate.dtype == np.float64
        assert np.allclose(out32.estimate, out64.estimate, atol=5e-4)

    def test_sparse_push_float32(self, operator):
        signal = sp.lil_matrix((60, 3))
        signal[0, 0] = 1.0
        signal[5, 2] = -2.0
        signal = signal.tocsr()
        out = sparse_forward_push(
            operator, signal, alpha=0.4, tol=1e-5, dtype=np.float32
        )
        assert out.estimate.dtype == np.float32

    def test_float64_default_bit_identical_to_pre_dtype_path(self, operator):
        """Regression pin: default dtype must not perturb a single bit."""
        rng = np.random.default_rng(12)
        signal = rng.standard_normal((60, 3))
        out = forward_push(operator, signal, alpha=0.4, tol=1e-8)
        assert out.estimate.dtype == np.float64

    def test_policy_preserves_float32(self):
        rng = np.random.default_rng(13)
        emb32 = rng.standard_normal((20, 4)).astype(np.float32)
        policy = EmbeddingGuidedPolicy(emb32)
        assert policy.embeddings.dtype == np.float32
        csr = sp.csr_matrix(emb32)
        sparse_policy = EmbeddingGuidedPolicy(csr)
        assert sparse_policy.embeddings.dtype == np.float32
        scores32 = PrecomputedScorePolicy(emb32[:, 0])
        assert scores32.node_scores.dtype == np.float32
        sparse_scores = PrecomputedScorePolicy(csr[:, 0].tocsc())
        assert sparse_scores._sparse_values.dtype == np.float32

    def test_lookup_sorted_keys_float32(self):
        keys = np.array([2, 5], dtype=np.int64)
        values = np.array([1.5, -0.5], dtype=np.float32)
        got = lookup_sorted_keys(keys, values, np.array([5, 3], dtype=np.int64))
        assert got.dtype == np.float32
        assert np.array_equal(got, np.array([-0.5, 0.0], dtype=np.float32))

    def test_facade_float32_end_to_end(self):
        graph = connected_watts_strogatz(40, 4, 0.2, seed=5)
        rng = np.random.default_rng(14)
        docs = [(f"d{i}", rng.standard_normal(8), i % 40) for i in range(25)]

        def build(dtype, backend):
            net = DiffusionSearchNetwork(graph, dim=8, dtype=dtype)
            net.place_documents(docs)
            net.diffuse(method=backend)
            return net

        net32 = build(np.float32, SparseDiffusionBackend(dtype=np.float32))
        net64 = build(np.float64, SparseDiffusionBackend(dtype=np.float64))
        assert net32.csr_embeddings.dtype == np.float32
        assert net64.csr_embeddings.dtype == np.float64
        assert np.allclose(
            np.asarray(net32.csr_embeddings.todense(), dtype=np.float64),
            np.asarray(net64.csr_embeddings.todense()),
            atol=1e-4,
        )
        query = rng.standard_normal(8)
        r32 = net32.search(query, start_node=0, ttl=12, k=3, seed=1)
        r64 = net64.search(query, start_node=0, ttl=12, k=3, seed=1)
        assert [item.doc_id for item in r32.tracker.items()] == [
            item.doc_id for item in r64.tracker.items()
        ]


class TestThreadParallelPush:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_blocked_push_matches_single_job(self, operator, dtype):
        rng = np.random.default_rng(15)
        dense = np.where(
            rng.random((60, 6)) < 0.15, rng.standard_normal((60, 6)), 0.0
        )
        signal = sp.csr_matrix(dense)
        solo = sparse_forward_push(
            operator, signal, alpha=0.4, tol=1e-9, dtype=dtype
        )
        blocked = sparse_forward_push(
            operator, signal, alpha=0.4, tol=1e-9, dtype=dtype, n_jobs=3
        )
        assert blocked.converged == solo.converged
        assert blocked.estimate.dtype == dtype
        diff = np.abs(
            np.asarray(blocked.estimate.todense(), dtype=np.float64)
            - np.asarray(solo.estimate.todense(), dtype=np.float64)
        )
        # Each block converges to the same per-entry criterion; any gap is
        # bounded by the tolerance amplified through the PPR filter.
        assert diff.max() < (1e-6 if dtype == np.float64 else 1e-3)
        assert blocked.pushes > 0

    def test_more_jobs_than_columns(self, operator):
        signal = sp.lil_matrix((60, 2))
        signal[3, 0] = 1.0
        signal[9, 1] = 1.0
        out = sparse_forward_push(operator, signal.tocsr(), n_jobs=8)
        assert out.estimate.shape == (60, 2)
        assert out.converged

    def test_single_column_skips_blocking(self, operator):
        signal = sp.lil_matrix((60, 1))
        signal[0, 0] = 1.0
        out = sparse_forward_push(operator, signal.tocsr(), n_jobs=4)
        assert out.converged

    def test_refresh_passthrough(self, operator):
        rng = np.random.default_rng(16)
        base = sp.csr_matrix(
            np.where(rng.random((60, 4)) < 0.1, rng.standard_normal((60, 4)), 0.0)
        )
        cold = sparse_forward_push(operator, base, alpha=0.5, tol=1e-10)
        delta = sp.lil_matrix((60, 4))
        delta[7, 1] = 2.0
        patched, result = sparse_push_refresh(
            operator,
            cold.estimate,
            delta.tocsr(),
            alpha=0.5,
            tol=1e-10,
            n_jobs=2,
        )
        full = sparse_forward_push(
            operator, (base + delta).tocsr(), alpha=0.5, tol=1e-10
        )
        assert result.converged
        assert np.allclose(
            np.asarray(patched.todense()),
            np.asarray(full.estimate.todense()),
            atol=1e-7,
        )

    def test_invalid_n_jobs_rejected(self, operator):
        signal = sp.csr_matrix((60, 2))
        with pytest.raises(ValueError, match="n_jobs"):
            sparse_forward_push(operator, signal, n_jobs=0)


class TestCoalescedDirtyDelta:
    """One refresh per window diffuses the window's whole dirty set."""

    @pytest.mark.parametrize("method_name", ["push", "sparse"])
    def test_many_batches_one_refresh(self, method_name):
        graph = connected_watts_strogatz(30, 4, 0.2, seed=7)
        rng = np.random.default_rng(17)
        net = DiffusionSearchNetwork(graph, dim=4)
        net.place_document("seed", rng.standard_normal(4), 0)
        net.diffuse(method=method_name, tol=1e-10)
        # Three separate churn batches accrue before one refresh call.
        for batch in range(3):
            for j in range(2):
                net.place_document(
                    f"b{batch}-{j}",
                    rng.standard_normal(4),
                    (batch * 7 + j) % 30,
                )
        net.remove_document("b0-0")
        assert len(net.dirty_nodes) >= 3
        outcome = net.diffuse(method=method_name, tol=1e-10)
        assert outcome.incremental and outcome.converged
        exact = net.diffuse(method="solve", incremental=False)
        got = net.embeddings if method_name == "sparse" else outcome.embeddings
        if sp.issparse(got):
            got = np.asarray(got.todense())
        assert np.max(np.abs(got - exact.embeddings)) < 1e-6

    def test_repeated_refreshes_stay_exact(self):
        """Row-replacement baseline: drift cannot accumulate over windows."""
        graph = connected_watts_strogatz(30, 4, 0.2, seed=8)
        rng = np.random.default_rng(18)
        net = DiffusionSearchNetwork(graph, dim=3)
        net.place_document("seed", rng.standard_normal(3), 0)
        net.diffuse(method="push", tol=1e-10)
        for i in range(6):
            net.place_document(f"w{i}", rng.standard_normal(3), (i * 5) % 30)
            outcome = net.diffuse(method="push", tol=1e-10)
            assert outcome.incremental
        exact = net.diffuse(method="solve", incremental=False)
        assert np.max(np.abs(net.embeddings - exact.embeddings)) < 1e-6
