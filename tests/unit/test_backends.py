"""Tests for the diffusion backend registry and the built-in backends."""

import numpy as np
import pytest

from repro.core.backends import (
    ASYNC_RESIDUAL_SLACK,
    AsyncProtocolBackend,
    DiffusionBackend,
    DiffusionOutcome,
    PushDiffusionBackend,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.core.diffusion import diffuse_embeddings, refresh_embeddings
from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.generators import connected_watts_strogatz


@pytest.fixture(scope="module")
def adjacency():
    return CompressedAdjacency.from_networkx(
        connected_watts_strogatz(40, 4, 0.2, seed=13)
    )


@pytest.fixture(scope="module")
def personalization(adjacency):
    rng = np.random.default_rng(3)
    return rng.standard_normal((adjacency.n_nodes, 5))


class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        for name in ("power", "solve", "async", "push"):
            assert name in names

    def test_get_backend_instantiates(self):
        backend = get_backend("push")
        assert isinstance(backend, PushDiffusionBackend)
        assert backend.supports_incremental

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="method"):
            get_backend("quantum")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(PushDiffusionBackend)

    def test_custom_backend_dispatches(self, adjacency, personalization):
        @register_backend
        class EchoBackend(DiffusionBackend):
            """Trivial strategy: no diffusion at all (for plugin testing)."""

            name = "echo-test"

            def diffuse(self, topology, personalization, *, alpha, **kwargs):
                return DiffusionOutcome(
                    embeddings=np.asarray(personalization),
                    method=self.name,
                    alpha=alpha,
                    iterations=0,
                    residual=0.0,
                    converged=True,
                )

        try:
            outcome = diffuse_embeddings(
                adjacency, personalization, method="echo-test"
            )
            assert outcome.method == "echo-test"
            assert np.array_equal(outcome.embeddings, personalization)
        finally:
            unregister_backend("echo-test")
        assert "echo-test" not in available_backends()

    def test_register_requires_name(self):
        class Nameless(DiffusionBackend):
            def diffuse(self, *args, **kwargs):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError, match="name"):
            register_backend(Nameless)


class TestPushBackend:
    def test_agrees_with_solve(self, adjacency, personalization):
        push = diffuse_embeddings(
            adjacency, personalization, alpha=0.4, method="push", tol=1e-10
        )
        solve = diffuse_embeddings(
            adjacency, personalization, alpha=0.4, method="solve"
        )
        assert push.converged
        assert push.operations > 0
        assert np.max(np.abs(push.embeddings - solve.embeddings)) < 1e-8

    def test_refresh_embeddings_facade(self, adjacency, personalization):
        base = diffuse_embeddings(
            adjacency, personalization, alpha=0.4, method="push", tol=1e-11
        )
        delta = np.zeros_like(personalization)
        delta[7] = 1.0
        patched = refresh_embeddings(
            adjacency, base.embeddings, delta, alpha=0.4, tol=1e-11
        )
        assert patched.incremental
        exact = diffuse_embeddings(
            adjacency, personalization + delta, alpha=0.4, method="solve"
        )
        assert np.max(np.abs(patched.embeddings - exact.embeddings)) < 1e-6

    def test_refresh_requires_incremental_backend(self, adjacency):
        with pytest.raises(ValueError, match="incremental"):
            refresh_embeddings(
                adjacency, np.zeros((40, 2)), np.zeros((40, 2)), method="power"
            )

    def test_base_refresh_raises_not_implemented(self, adjacency):
        backend = get_backend("solve")
        with pytest.raises(NotImplementedError, match="incremental"):
            backend.refresh(
                adjacency, np.zeros((40, 2)), np.zeros((40, 2)), alpha=0.5
            )


class TestAsyncConvergenceCriterion:
    """The named threshold replacing the old inline heuristic."""

    def test_boundary(self):
        tol, n_nodes = 1e-8, 100
        threshold = ASYNC_RESIDUAL_SLACK * tol * n_nodes
        assert AsyncProtocolBackend.is_converged(threshold * 0.99, tol, n_nodes)
        assert not AsyncProtocolBackend.is_converged(threshold, tol, n_nodes)
        assert not AsyncProtocolBackend.is_converged(threshold * 1.01, tol, n_nodes)

    def test_empty_network_floor(self):
        # max(1, n_nodes) keeps the criterion meaningful for n_nodes = 0.
        assert AsyncProtocolBackend.is_converged(0.0, 1e-8, 0)
        assert not AsyncProtocolBackend.is_converged(1.0, 1e-8, 0)

    def test_outcome_uses_criterion(self, adjacency, personalization):
        outcome = diffuse_embeddings(
            adjacency, personalization, alpha=0.4, method="async", tol=1e-8, seed=0
        )
        assert outcome.converged == AsyncProtocolBackend.is_converged(
            outcome.residual, 1e-8, adjacency.n_nodes
        )
