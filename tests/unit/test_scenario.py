"""Tests for scenario configuration validation."""

import pytest

from repro.simulation.scenario import AccuracyScenario, HopCountScenario


class TestAccuracyScenario:
    def test_defaults_match_paper(self):
        scenario = AccuracyScenario(n_documents=100)
        assert scenario.alphas == (0.1, 0.5, 0.9)
        assert scenario.ttl == 50
        assert scenario.max_distance == 8
        assert scenario.k == 1
        assert scenario.fanout == 1

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            AccuracyScenario(n_documents=10, alphas=(0.0,))
        with pytest.raises(ValueError):
            AccuracyScenario(n_documents=10, alphas=(1.0,))

    def test_rejects_empty_alphas(self):
        with pytest.raises(ValueError):
            AccuracyScenario(n_documents=10, alphas=())

    def test_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            AccuracyScenario(n_documents=10, max_distance=-1)

    def test_rejects_bad_placement(self):
        with pytest.raises(ValueError):
            AccuracyScenario(n_documents=10, placement="clustered")

    def test_rejects_zero_documents(self):
        with pytest.raises(ValueError):
            AccuracyScenario(n_documents=0)

    def test_frozen(self):
        scenario = AccuracyScenario(n_documents=10)
        with pytest.raises(AttributeError):
            scenario.ttl = 99


class TestHopCountScenario:
    def test_defaults_match_paper(self):
        scenario = HopCountScenario(n_documents=1000)
        assert scenario.alpha == 0.5
        assert scenario.iterations == 500
        assert scenario.queries_per_iteration == 10
        assert scenario.total_samples == 5000
        assert scenario.ttl == 50

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            HopCountScenario(n_documents=10, alpha=0.0)

    def test_rejects_zero_queries(self):
        with pytest.raises(ValueError):
            HopCountScenario(n_documents=10, queries_per_iteration=0)

    def test_total_samples(self):
        scenario = HopCountScenario(
            n_documents=10, iterations=7, queries_per_iteration=3
        )
        assert scenario.total_samples == 21
