"""Tests for repro.graphs.metrics (BFS, clustering, diameter)."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.generators import grid_graph
from repro.graphs.metrics import (
    average_clustering,
    bfs_distances,
    degree_statistics,
    distance_histogram,
    estimate_diameter,
    nodes_at_distance,
    summarize_graph,
)


@pytest.fixture
def path_graph() -> CompressedAdjacency:
    return CompressedAdjacency.from_networkx(nx.path_graph(6))


class TestBfsDistances:
    def test_path_graph(self, path_graph):
        assert np.array_equal(bfs_distances(path_graph, 0), [0, 1, 2, 3, 4, 5])

    def test_middle_source(self, path_graph):
        assert np.array_equal(bfs_distances(path_graph, 3), [3, 2, 1, 0, 1, 2])

    def test_unreachable_marked(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1, 2])
        graph.add_edge(0, 1)
        adj = CompressedAdjacency.from_networkx(graph)
        assert bfs_distances(adj, 0)[2] == -1

    def test_matches_networkx(self, small_world_adjacency):
        graph = small_world_adjacency.to_networkx()
        expected = nx.single_source_shortest_path_length(graph, 5)
        actual = bfs_distances(small_world_adjacency, 5)
        for node, dist in expected.items():
            assert actual[node] == dist

    def test_out_of_range_source(self, path_graph):
        with pytest.raises(ValueError):
            bfs_distances(path_graph, 10)


class TestNodesAtDistance:
    def test_exact_ring(self, path_graph):
        assert list(nodes_at_distance(path_graph, 0, 2)) == [2]

    def test_reuses_precomputed(self, path_graph):
        dist = bfs_distances(path_graph, 0)
        out = nodes_at_distance(path_graph, 0, 3, distances=dist)
        assert list(out) == [3]

    def test_empty_when_beyond_eccentricity(self, path_graph):
        assert nodes_at_distance(path_graph, 0, 99).size == 0


class TestDistanceHistogram:
    def test_path_graph_full(self, path_graph):
        hist = distance_histogram(path_graph)
        # path of 6 nodes: 10 ordered pairs at distance 1, ..., 2 at distance 5
        assert hist[1] == 10
        assert hist[5] == 2

    def test_sampled_subset(self, small_world_adjacency):
        hist = distance_histogram(small_world_adjacency, n_sources=5, seed=0)
        assert sum(hist.values()) == 5 * (small_world_adjacency.n_nodes - 1)


class TestEstimateDiameter:
    def test_path_graph_exact(self, path_graph):
        assert estimate_diameter(path_graph, seed=0) == 5

    def test_grid_exact(self):
        adj = CompressedAdjacency.from_networkx(grid_graph(4, 5))
        # Manhattan diameter: (4-1) + (5-1) = 7; double sweep finds it on grids
        assert estimate_diameter(adj, n_sweeps=8, seed=1) == 7

    def test_lower_bounds_true_diameter(self, small_world_adjacency):
        graph = small_world_adjacency.to_networkx()
        true_diameter = nx.diameter(graph)
        estimate = estimate_diameter(small_world_adjacency, seed=2)
        assert estimate <= true_diameter
        assert estimate >= true_diameter - 1  # double sweep is near-exact here


class TestClustering:
    def test_triangle_is_one(self):
        adj = CompressedAdjacency.from_networkx(nx.complete_graph(3))
        assert average_clustering(adj) == pytest.approx(1.0)

    def test_star_is_zero(self):
        adj = CompressedAdjacency.from_networkx(nx.star_graph(5))
        assert average_clustering(adj) == pytest.approx(0.0)

    def test_matches_networkx(self, small_world_adjacency):
        expected = nx.average_clustering(small_world_adjacency.to_networkx())
        actual = average_clustering(small_world_adjacency)
        assert actual == pytest.approx(expected, abs=1e-9)

    def test_empty_graph(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(3))
        adj = CompressedAdjacency.from_networkx(graph)
        assert average_clustering(adj) == 0.0


class TestDegreeStatistics:
    def test_star(self):
        adj = CompressedAdjacency.from_networkx(nx.star_graph(4))
        stats = degree_statistics(adj)
        assert stats["max"] == 4
        assert stats["min"] == 1
        assert stats["mean"] == pytest.approx(8 / 5)


class TestSummarizeGraph:
    def test_fields(self, small_world_adjacency):
        summary = summarize_graph(small_world_adjacency, seed=0)
        assert summary.n_nodes == 60
        assert summary.n_edges == small_world_adjacency.n_edges
        assert 0 <= summary.clustering <= 1
        assert summary.diameter_lower_bound >= 2
        row = summary.as_row()
        assert row["nodes"] == 60
