"""Tests for repro.gsp.filters: PPR, heat kernel, polynomial filters."""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.gsp.filters import HeatKernel, PersonalizedPageRank, PolynomialFilter
from repro.gsp.normalization import transition_matrix


@pytest.fixture(scope="module")
def operator(small_world_adjacency):
    return transition_matrix(small_world_adjacency, "column")


@pytest.fixture(scope="module")
def small_world_adjacency():
    # module-scoped copy of the session fixture (filters tests reuse heavily)
    from repro.graphs.adjacency import CompressedAdjacency
    from repro.graphs.generators import connected_watts_strogatz

    return CompressedAdjacency.from_networkx(
        connected_watts_strogatz(60, 6, 0.15, seed=7)
    )


class TestPersonalizedPageRank:
    def test_power_matches_solve(self, operator):
        rng = np.random.default_rng(0)
        signal = rng.standard_normal((operator.shape[0], 5))
        power = PersonalizedPageRank(0.3, tol=1e-12).apply(operator, signal)
        solve = PersonalizedPageRank(0.3, method="solve").apply(operator, signal)
        assert np.allclose(power, solve, atol=1e-9)

    def test_closed_form_identity(self, operator):
        """E must satisfy eq. (6): E = a (I − (1−a) A)^{-1} E0."""
        n = operator.shape[0]
        rng = np.random.default_rng(1)
        signal = rng.standard_normal(n)
        alpha = 0.4
        diffused = PersonalizedPageRank(alpha, tol=1e-13).apply(operator, signal)
        residual = diffused - (1 - alpha) * (operator @ diffused) - alpha * signal
        assert np.max(np.abs(residual)) < 1e-10

    def test_mass_conservation_column_stochastic(self, operator):
        """Column sums of H are 1, so total signal mass is preserved."""
        n = operator.shape[0]
        signal = np.zeros(n)
        signal[3] = 2.5
        diffused = PersonalizedPageRank(0.2, tol=1e-13).apply(operator, signal)
        assert diffused.sum() == pytest.approx(2.5, abs=1e-9)

    def test_one_hot_diffusion_is_probability(self, operator):
        n = operator.shape[0]
        one_hot = np.zeros(n)
        one_hot[0] = 1.0
        ppr = PersonalizedPageRank(0.15, tol=1e-13).apply(operator, one_hot)
        assert np.all(ppr >= -1e-12)
        assert ppr.sum() == pytest.approx(1.0, abs=1e-9)

    def test_alpha_one_returns_signal(self, operator):
        signal = np.arange(operator.shape[0], dtype=float)
        out = PersonalizedPageRank(1.0).apply(operator, signal)
        assert np.allclose(out, signal)

    def test_origin_dominates_with_light_diffusion(self, operator):
        n = operator.shape[0]
        one_hot = np.zeros(n)
        one_hot[7] = 1.0
        ppr = PersonalizedPageRank(0.9, tol=1e-13).apply(operator, one_hot)
        assert np.argmax(ppr) == 7
        assert ppr[7] > 0.9

    def test_heavy_diffusion_spreads_farther(self, operator):
        """Smaller alpha pushes more probability mass away from the origin."""
        n = operator.shape[0]
        one_hot = np.zeros(n)
        one_hot[7] = 1.0
        heavy = PersonalizedPageRank(0.1, tol=1e-13).apply(operator, one_hot)
        light = PersonalizedPageRank(0.9, tol=1e-13).apply(operator, one_hot)
        assert heavy[7] < light[7]
        assert (1 - heavy[7]) > (1 - light[7])

    def test_linearity(self, operator):
        rng = np.random.default_rng(2)
        a = rng.standard_normal(operator.shape[0])
        b = rng.standard_normal(operator.shape[0])
        ppr = PersonalizedPageRank(0.3, tol=1e-13)
        combined = ppr.apply(operator, 2.0 * a - 3.0 * b)
        separate = 2.0 * ppr.apply(operator, a) - 3.0 * ppr.apply(operator, b)
        assert np.allclose(combined, separate, atol=1e-9)

    def test_detailed_reports_convergence(self, operator):
        detail = PersonalizedPageRank(0.5, tol=1e-10).apply_detailed(
            operator, np.ones(operator.shape[0])
        )
        assert detail.converged
        assert detail.residual < 1e-10
        assert detail.iterations > 1

    def test_max_iterations_cap(self, operator):
        detail = PersonalizedPageRank(
            0.01, tol=1e-15, max_iterations=3
        ).apply_detailed(operator, np.ones(operator.shape[0]))
        assert not detail.converged
        assert detail.iterations == 3

    def test_vector_and_matrix_agree(self, operator):
        rng = np.random.default_rng(3)
        signal = rng.standard_normal(operator.shape[0])
        ppr = PersonalizedPageRank(0.4, tol=1e-12)
        as_vector = ppr.apply(operator, signal)
        as_matrix = ppr.apply(operator, signal[:, None])
        assert as_matrix.shape == (operator.shape[0], 1)
        assert np.allclose(as_vector, as_matrix[:, 0])

    def test_expected_walk_length(self):
        assert PersonalizedPageRank(0.5).expected_walk_length() == pytest.approx(1.0)
        assert PersonalizedPageRank(0.1).expected_walk_length() == pytest.approx(9.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PersonalizedPageRank(0.0)
        with pytest.raises(ValueError):
            PersonalizedPageRank(1.5)
        with pytest.raises(ValueError):
            PersonalizedPageRank(0.5, method="magic")

    def test_weights_dense_columns_sum_to_one(self):
        operator = transition_matrix(nx.path_graph(5), "column")
        h = PersonalizedPageRank(0.3, method="solve").weights_dense(operator)
        assert np.allclose(h.sum(axis=0), 1.0)


class TestHeatKernel:
    def test_coefficients_sum_to_one(self):
        coeffs = HeatKernel(t=3.0, tol=1e-10).coefficients()
        assert coeffs.sum() == pytest.approx(1.0, abs=1e-9)

    def test_matches_dense_expm(self):
        from scipy.linalg import expm

        operator = transition_matrix(nx.path_graph(6), "column")
        dense = operator.toarray()
        t = 2.0
        expected = expm(t * (dense - np.eye(6)))
        signal = np.eye(6)
        out = HeatKernel(t=t, tol=1e-12).apply(operator, signal)
        assert np.allclose(out, expected, atol=1e-8)

    def test_mass_conserved(self, operator):
        signal = np.zeros(operator.shape[0])
        signal[0] = 1.0
        out = HeatKernel(t=4.0, tol=1e-12).apply(operator, signal)
        assert out.sum() == pytest.approx(1.0, abs=1e-8)

    def test_larger_t_spreads_more(self, operator):
        signal = np.zeros(operator.shape[0])
        signal[0] = 1.0
        short = HeatKernel(t=0.5, tol=1e-12).apply(operator, signal)
        long = HeatKernel(t=8.0, tol=1e-12).apply(operator, signal)
        assert long[0] < short[0]

    def test_invalid_t(self):
        with pytest.raises(ValueError):
            HeatKernel(t=0.0)


class TestPolynomialFilter:
    def test_identity(self, operator):
        signal = np.arange(operator.shape[0], dtype=float)
        out = PolynomialFilter(np.array([1.0])).apply(operator, signal)
        assert np.allclose(out, signal)

    def test_matches_manual_polynomial(self, operator):
        rng = np.random.default_rng(4)
        signal = rng.standard_normal(operator.shape[0])
        coeffs = np.array([0.5, 0.25, 0.25])
        out = PolynomialFilter(coeffs).apply(operator, signal)
        expected = (
            0.5 * signal
            + 0.25 * (operator @ signal)
            + 0.25 * (operator @ (operator @ signal))
        )
        assert np.allclose(out, expected)

    def test_truncated_ppr_approximates_full(self, operator):
        """PPR's geometric-series truncation converges to the filter."""
        alpha = 0.5
        order = 40
        coeffs = alpha * (1 - alpha) ** np.arange(order)
        signal = np.zeros(operator.shape[0])
        signal[0] = 1.0
        truncated = PolynomialFilter(coeffs).apply(operator, signal)
        full = PersonalizedPageRank(alpha, tol=1e-13).apply(operator, signal)
        assert np.allclose(truncated, full, atol=1e-6)

    def test_empty_coefficients_rejected(self):
        with pytest.raises(ValueError):
            PolynomialFilter(np.array([]))


class TestMultiAlphaPPR:
    """Per-column-alpha diffusion: one operator sweep shared by all alphas."""

    ALPHAS = (0.1, 0.5, 0.9)

    @pytest.fixture
    def operator_and_signal(self, operator):
        rng = np.random.default_rng(17)
        signal = rng.standard_normal(operator.shape[0])
        return operator, signal

    def test_power_columns_bit_identical_to_scalar(self, operator_and_signal):
        operator, signal = operator_and_signal
        stacked = np.repeat(signal[:, None], len(self.ALPHAS), axis=1)
        multi = PersonalizedPageRank(self.ALPHAS, tol=1e-10).apply(
            operator, stacked
        )
        for j, alpha in enumerate(self.ALPHAS):
            single = PersonalizedPageRank(alpha, tol=1e-10).apply(
                operator, signal
            )
            assert np.array_equal(multi[:, j], single)

    def test_solve_columns_match_scalar_solve(self, operator_and_signal):
        operator, signal = operator_and_signal
        stacked = np.repeat(signal[:, None], len(self.ALPHAS), axis=1)
        multi = PersonalizedPageRank(self.ALPHAS, method="solve").apply(
            operator, stacked
        )
        for j, alpha in enumerate(self.ALPHAS):
            single = PersonalizedPageRank(alpha, method="solve").apply(
                operator, signal
            )
            assert np.allclose(multi[:, j], single, atol=1e-12)

    def test_solve_matches_power_within_tolerance(self, operator_and_signal):
        operator, signal = operator_and_signal
        stacked = np.repeat(signal[:, None], len(self.ALPHAS), axis=1)
        solved = PersonalizedPageRank(self.ALPHAS, method="solve").apply(
            operator, stacked
        )
        powered = PersonalizedPageRank(self.ALPHAS, tol=1e-12).apply(
            operator, stacked
        )
        assert np.allclose(solved, powered, atol=1e-9)

    def test_duplicate_alphas_share_a_factorization(self, operator_and_signal):
        operator, signal = operator_and_signal
        stacked = np.repeat(signal[:, None], 3, axis=1)
        multi = PersonalizedPageRank((0.5, 0.5, 0.1), method="solve").apply(
            operator, stacked
        )
        assert np.allclose(multi[:, 0], multi[:, 1])
        assert not np.allclose(multi[:, 0], multi[:, 2])

    def test_column_count_must_match_alphas(self, operator_and_signal):
        operator, signal = operator_and_signal
        ppr = PersonalizedPageRank(self.ALPHAS)
        with pytest.raises(ValueError, match="one signal column per alpha"):
            ppr.apply(operator, np.repeat(signal[:, None], 2, axis=1))

    def test_invalid_alpha_in_sequence_rejected(self):
        with pytest.raises(ValueError):
            PersonalizedPageRank((0.5, 0.0))
        with pytest.raises(ValueError):
            PersonalizedPageRank(())

    def test_lu_cache_invalidates_on_new_operator(self, operator):
        """A cached factorization must not leak across operators."""
        ppr = PersonalizedPageRank(0.5, method="solve")
        signal = np.zeros(operator.shape[0])
        signal[0] = 1.0
        first = ppr.apply(operator, signal)
        other = sp.identity(operator.shape[0], format="csr") * 0.5
        second = ppr.apply(other, signal)
        assert not np.allclose(first, second)
        assert np.allclose(ppr.apply(operator, signal), first)


class TestPrunedMassGuard:
    def _personalization(self, n, dim=8, holders=6, seed=0):
        rng = np.random.default_rng(seed)
        nodes = np.sort(rng.choice(n, holders, replace=False))
        block = rng.standard_normal((holders, dim))
        return sp.csr_matrix(
            (
                block.ravel(),
                (np.repeat(nodes, dim), np.tile(np.arange(dim), holders)),
            ),
            shape=(n, dim),
        )

    def test_collapse_epsilon_warns(self, operator, small_world_adjacency):
        from repro.gsp.filters import PrunedMassWarning, SparsePersonalizedPageRank

        signal = self._personalization(small_world_adjacency.n_nodes)
        ppr = SparsePersonalizedPageRank(0.5, epsilon=0.01)
        with pytest.warns(PrunedMassWarning):
            result = ppr.apply_detailed(operator, signal)
        assert result.diffused_mass_ratio is not None
        assert result.diffused_mass_ratio < 0.5

    def test_default_epsilon_silent(self, operator, small_world_adjacency):
        import warnings

        from repro.gsp.filters import PrunedMassWarning, SparsePersonalizedPageRank

        signal = self._personalization(small_world_adjacency.n_nodes)
        ppr = SparsePersonalizedPageRank(0.5)  # default epsilon 1e-3
        with warnings.catch_warnings():
            warnings.simplefilter("error", PrunedMassWarning)
            result = ppr.apply_detailed(operator, signal)
        assert result.diffused_mass_ratio is not None
        assert result.diffused_mass_ratio >= 0.5

    def test_warning_suppressible(self, operator, small_world_adjacency):
        import warnings

        from repro.gsp.filters import PrunedMassWarning, SparsePersonalizedPageRank

        signal = self._personalization(small_world_adjacency.n_nodes)
        ppr = SparsePersonalizedPageRank(0.5, epsilon=0.01, warn_pruned_mass=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error", PrunedMassWarning)
            result = ppr.apply_detailed(operator, signal)
        assert result.diffused_mass_ratio < 0.5

    def test_unpruned_filter_reports_no_ratio(self, operator, small_world_adjacency):
        from repro.gsp.filters import SparsePersonalizedPageRank

        signal = self._personalization(small_world_adjacency.n_nodes)
        result = SparsePersonalizedPageRank(0.5, epsilon=0.0).apply_detailed(
            operator, signal
        )
        assert result.diffused_mass_ratio is None

    def test_check_pruned_mass_bounds(self):
        from repro.gsp.filters import check_pruned_mass

        # Zero diffusable mass (empty personalization) is vacuously healthy.
        assert check_pruned_mass(0.0, 0.0, 0.5, 0.01) == 1.0
        # Bare-teleport collapse clamps to 0.
        assert check_pruned_mass(10.0, 5.0, 0.5, 0.01, warn=False) == 0.0
