"""Tests for the random-hyperplane LSH index."""

import numpy as np
import pytest

from repro.embeddings.similarity import l2_normalize
from repro.retrieval.lsh import LSHIndex


@pytest.fixture(scope="module")
def clustered_vectors():
    """Two tight clusters on the sphere plus background noise."""
    rng = np.random.default_rng(0)
    center_a = l2_normalize(rng.standard_normal(32))
    center_b = l2_normalize(rng.standard_normal(32))
    cluster_a = l2_normalize(center_a + 0.05 * rng.standard_normal((20, 32)))
    cluster_b = l2_normalize(center_b + 0.05 * rng.standard_normal((20, 32)))
    noise = l2_normalize(rng.standard_normal((60, 32)))
    vectors = np.vstack([cluster_a, cluster_b, noise])
    ids = [f"a{i}" for i in range(20)] + [f"b{i}" for i in range(20)] + [
        f"n{i}" for i in range(60)
    ]
    return ids, vectors, center_a


class TestBasics:
    def test_build_and_len(self, clustered_vectors):
        ids, vectors, _ = clustered_vectors
        index = LSHIndex.build(ids, vectors, seed=1)
        assert len(index) == 100

    def test_query_returns_cluster_members(self, clustered_vectors):
        ids, vectors, center_a = clustered_vectors
        index = LSHIndex.build(ids, vectors, n_planes=8, n_tables=10, seed=1)
        hits = index.query(center_a, 5)
        assert hits, "high-recall config should return candidates"
        assert all(item_id.startswith("a") for item_id, _ in hits)

    def test_scores_descending(self, clustered_vectors):
        ids, vectors, center_a = clustered_vectors
        index = LSHIndex.build(ids, vectors, seed=2)
        hits = index.query(center_a, 10)
        scores = [s for _, s in hits]
        assert scores == sorted(scores, reverse=True)

    def test_empty_index_query(self):
        index = LSHIndex(8, seed=0)
        assert index.query(np.ones(8), 3) == []

    def test_wrong_dim_rejected(self):
        index = LSHIndex(8, seed=0)
        with pytest.raises(ValueError):
            index.add("x", np.ones(9))

    def test_build_misaligned_rejected(self):
        with pytest.raises(ValueError):
            LSHIndex.build(["a"], np.ones((2, 4)))

    def test_too_many_planes_rejected(self):
        with pytest.raises(ValueError, match="62"):
            LSHIndex(8, n_planes=63)


class TestRecall:
    def test_high_recall_with_many_tables(self, clustered_vectors):
        # Queries near the stored clusters: their true nearest neighbors have
        # high cosine, the regime LSH is designed for (random directions have
        # no meaningful neighbors to recall).
        ids, vectors, _ = clustered_vectors
        index = LSHIndex.build(ids, vectors, n_planes=8, n_tables=16, seed=3)
        rng = np.random.default_rng(4)
        queries = l2_normalize(
            vectors[[0, 5, 12, 22, 27, 33]] + 0.05 * rng.standard_normal((6, 32))
        )
        recall = index.recall_against_exact(queries, k=3)
        assert recall >= 0.6

    def test_more_tables_never_fewer_candidates(self, clustered_vectors):
        ids, vectors, center_a = clustered_vectors
        few = LSHIndex.build(ids, vectors, n_planes=10, n_tables=2, seed=5)
        many = LSHIndex.build(ids, vectors, n_planes=10, n_tables=12, seed=5)
        # same seed: the first 2 tables of `many` equal `few`'s tables
        assert many.candidates(center_a).size >= few.candidates(center_a).size

    def test_identical_vector_always_found(self, clustered_vectors):
        """A vector collides with itself in every table."""
        ids, vectors, _ = clustered_vectors
        index = LSHIndex.build(ids, vectors, seed=6)
        hits = index.query(vectors[7], 1)
        assert hits[0][0] == ids[7]

    def test_recall_on_empty_raises(self):
        with pytest.raises(ValueError):
            LSHIndex(4, seed=0).recall_against_exact(np.ones((1, 4)), 1)


class TestDeterminism:
    def test_same_seed_same_hashes(self, clustered_vectors):
        ids, vectors, center_a = clustered_vectors
        a = LSHIndex.build(ids, vectors, seed=9)
        b = LSHIndex.build(ids, vectors, seed=9)
        assert np.array_equal(a.candidates(center_a), b.candidates(center_a))
