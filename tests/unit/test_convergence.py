"""Tests for runtime convergence diagnostics."""

import networkx as nx
import numpy as np
import pytest

from repro.gsp.filters import PersonalizedPageRank
from repro.gsp.normalization import transition_matrix
from repro.runtime.convergence import diffusion_error, fixed_point_residual


class TestFixedPointResidual:
    def test_zero_at_fixed_point(self):
        operator = transition_matrix(nx.cycle_graph(8), "column")
        rng = np.random.default_rng(0)
        personalization = rng.standard_normal((8, 3))
        embeddings = PersonalizedPageRank(0.4, method="solve").apply(
            operator, personalization
        )
        residual = fixed_point_residual(operator, embeddings, personalization, 0.4)
        assert residual < 1e-10

    def test_nonzero_away_from_fixed_point(self):
        operator = transition_matrix(nx.cycle_graph(8), "column")
        rng = np.random.default_rng(1)
        personalization = rng.standard_normal((8, 3))
        residual = fixed_point_residual(
            operator, personalization, personalization, 0.4
        )
        assert residual > 1e-3

    def test_empty_signal(self):
        operator = transition_matrix(nx.empty_graph(0, create_using=nx.Graph), "column")
        assert fixed_point_residual(operator, np.zeros((0, 2)), np.zeros((0, 2)), 0.5) == 0.0


class TestDiffusionError:
    def test_identical_zero(self):
        a = np.ones((3, 2))
        assert diffusion_error(a, a.copy()) == 0.0

    def test_max_abs_semantics(self):
        a = np.zeros((2, 2))
        b = np.array([[0.0, -3.0], [1.0, 0.0]])
        assert diffusion_error(a, b) == 3.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            diffusion_error(np.zeros((2, 2)), np.zeros((3, 2)))
