"""Tests for SNAP edge-list I/O."""

import gzip

import networkx as nx
import pytest

from repro.graphs.io import load_snap_edge_list, save_snap_edge_list


class TestLoad:
    def test_basic_file(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n0 1\n1 2\n\n2 3\n")
        graph = load_snap_edge_list(path)
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 3

    def test_self_loops_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 0\n0 1\n")
        graph = load_snap_edge_list(path)
        assert graph.number_of_edges() == 1

    def test_relabeling_compacts_ids(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("10 20\n20 30\n")
        graph = load_snap_edge_list(path)
        assert set(graph.nodes()) == {0, 1, 2}

    def test_no_relabel_keeps_ids(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("10 20\n")
        graph = load_snap_edge_list(path, relabel=False)
        assert set(graph.nodes()) == {10, 20}

    def test_tab_separated(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0\t1\n1\t2\n")
        assert load_snap_edge_list(path).number_of_edges() == 2

    def test_gzip(self, tmp_path):
        path = tmp_path / "edges.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("0 1\n1 2\n")
        assert load_snap_edge_list(path).number_of_edges() == 2

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError, match="no edges"):
            load_snap_edge_list(path)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="expected two"):
            load_snap_edge_list(path)


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        graph = nx.karate_club_graph()
        path = tmp_path / "karate.txt"
        save_snap_edge_list(graph, path, header="karate club")
        loaded = load_snap_edge_list(path)
        assert loaded.number_of_nodes() == graph.number_of_nodes()
        assert loaded.number_of_edges() == graph.number_of_edges()

    def test_save_load_gzip(self, tmp_path):
        graph = nx.cycle_graph(10)
        path = tmp_path / "cycle.txt.gz"
        save_snap_edge_list(graph, path)
        assert load_snap_edge_list(path).number_of_edges() == 10

    def test_header_written_as_comments(self, tmp_path):
        graph = nx.path_graph(3)
        path = tmp_path / "p.txt"
        save_snap_edge_list(graph, path, header="line one\nline two")
        text = path.read_text()
        assert text.startswith("# line one\n# line two\n")
