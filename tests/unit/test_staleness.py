"""Tests for the staleness experiment (time-evolving conditions)."""

import pytest

from repro.experiments.staleness import refresh_strategy_sweep, staleness_sweep


class TestStalenessSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return staleness_sweep(
            n_documents=200,
            stale_fractions=(0.0, 0.5, 1.0),
            iterations=12,
        )

    def test_one_row_per_fraction(self, rows):
        assert [row["stale fraction"] for row in rows] == [0.0, 0.5, 1.0]

    def test_rates_valid(self, rows):
        for row in rows:
            assert 0.0 <= row["success rate"] <= 1.0

    def test_fresh_state_not_worse_than_fully_stale(self, rows):
        by_fraction = {row["stale fraction"]: row["success rate"] for row in rows}
        assert by_fraction[0.0] >= by_fraction[1.0]

    def test_deterministic(self):
        a = staleness_sweep(
            n_documents=100, stale_fractions=(0.0, 1.0), iterations=5
        )
        b = staleness_sweep(
            n_documents=100, stale_fractions=(0.0, 1.0), iterations=5
        )
        assert a == b

    def test_cli(self, capsys):
        from repro.experiments.staleness import main

        assert main(["--iterations", "3", "--documents", "100"]) == 0
        out = capsys.readouterr().out
        assert "stale" in out


class TestRefreshStrategySweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return refresh_strategy_sweep(
            n_documents=200,
            stale_fractions=(0.0, 0.5),
            iterations=10,
        )

    def test_one_row_per_fraction_and_strategy(self, rows):
        keys = [(row["stale fraction"], row["strategy"]) for row in rows]
        assert keys == [
            (0.0, "stale"),
            (0.0, "incremental"),
            (0.0, "full"),
            (0.5, "stale"),
            (0.5, "incremental"),
            (0.5, "full"),
        ]

    def test_stale_strategy_costs_nothing(self, rows):
        for row in rows:
            if row["strategy"] == "stale":
                assert row["mean sweeps"] == 0.0
                assert row["mean edge ops"] == 0.0

    def test_refresh_strategies_restore_same_accuracy(self, rows):
        """Both exact strategies route on (numerically) identical scores."""
        by_key = {
            (row["stale fraction"], row["strategy"]): row["success rate"]
            for row in rows
        }
        for fraction in (0.0, 0.5):
            assert by_key[fraction, "incremental"] == pytest.approx(
                by_key[fraction, "full"], abs=0.05
            )

    def test_no_churn_incremental_is_free(self, rows):
        for row in rows:
            if row["stale fraction"] == 0.0 and row["strategy"] == "incremental":
                assert row["mean edge ops"] == 0.0

    def test_full_always_pays_cold_start(self, rows):
        for row in rows:
            if row["strategy"] == "full":
                assert row["mean edge ops"] > 0.0

    def test_cli_refresh_flag(self, capsys):
        from repro.experiments.staleness import main

        assert main(["--refresh", "--iterations", "2", "--documents", "50"]) == 0
        out = capsys.readouterr().out
        assert "incremental" in out
