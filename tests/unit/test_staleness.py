"""Tests for the staleness experiment (time-evolving conditions)."""

import pytest

from repro.experiments.staleness import staleness_sweep


class TestStalenessSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return staleness_sweep(
            n_documents=200,
            stale_fractions=(0.0, 0.5, 1.0),
            iterations=12,
        )

    def test_one_row_per_fraction(self, rows):
        assert [row["stale fraction"] for row in rows] == [0.0, 0.5, 1.0]

    def test_rates_valid(self, rows):
        for row in rows:
            assert 0.0 <= row["success rate"] <= 1.0

    def test_fresh_state_not_worse_than_fully_stale(self, rows):
        by_fraction = {row["stale fraction"]: row["success rate"] for row in rows}
        assert by_fraction[0.0] >= by_fraction[1.0]

    def test_deterministic(self):
        a = staleness_sweep(
            n_documents=100, stale_fractions=(0.0, 1.0), iterations=5
        )
        b = staleness_sweep(
            n_documents=100, stale_fractions=(0.0, 1.0), iterations=5
        )
        assert a == b

    def test_cli(self, capsys):
        from repro.experiments.staleness import main

        assert main(["--iterations", "3", "--documents", "100"]) == 0
        out = capsys.readouterr().out
        assert "stale" in out
