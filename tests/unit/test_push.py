"""Tests for the forward-push kernel (Gauss–Southwell PPR)."""

import numpy as np
import pytest

from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.generators import connected_watts_strogatz
from repro.gsp.filters import PersonalizedPageRank
from repro.gsp.normalization import transition_matrix
from repro.gsp.push import forward_push, push_refresh


@pytest.fixture(scope="module")
def adjacency():
    return CompressedAdjacency.from_networkx(
        connected_watts_strogatz(40, 4, 0.2, seed=13)
    )


@pytest.fixture(scope="module")
def operator(adjacency):
    return transition_matrix(adjacency, "column")


@pytest.fixture(scope="module")
def exact(operator):
    def solve(signal, alpha):
        return PersonalizedPageRank(alpha, method="solve").apply(operator, signal)

    return solve


class TestColdStart:
    def test_matches_exact_solve(self, operator, exact):
        rng = np.random.default_rng(3)
        signal = rng.standard_normal((40, 6))
        result = forward_push(operator, signal, alpha=0.4, tol=1e-10)
        assert result.converged
        assert np.max(np.abs(result.estimate - exact(signal, 0.4))) < 1e-8

    def test_vector_signal_preserves_shape_and_mass(self, operator):
        signal = np.zeros(40)
        signal[0] = 1.0
        result = forward_push(operator, signal, alpha=0.3, tol=1e-12)
        assert result.estimate.shape == (40,)
        # Column-stochastic PPR conserves the unit of personalization mass.
        assert result.estimate.sum() == pytest.approx(1.0, abs=1e-8)

    def test_zero_signal_converges_immediately(self, operator):
        result = forward_push(operator, np.zeros((40, 3)), alpha=0.5)
        assert result.converged
        assert result.sweeps == 0
        assert result.pushes == 0
        assert result.edge_operations == 0
        assert np.all(result.estimate == 0.0)

    def test_work_accounting_consistent(self, operator):
        rng = np.random.default_rng(5)
        signal = rng.standard_normal((40, 2))
        result = forward_push(operator, signal, alpha=0.5, tol=1e-8)
        assert result.pushes > 0
        # Every push traverses at least one edge on this connected graph.
        assert result.edge_operations >= result.pushes
        assert result.sweeps <= result.pushes

    def test_sweep_cap_reports_not_converged(self, operator):
        rng = np.random.default_rng(7)
        signal = rng.standard_normal((40, 2))
        result = forward_push(operator, signal, alpha=0.1, tol=1e-12, max_sweeps=2)
        assert not result.converged
        assert result.sweeps == 2
        assert result.residual > 1e-12

    @pytest.mark.parametrize("kind", ["column", "row", "symmetric"])
    def test_all_normalizations(self, adjacency, kind, exact):
        operator = transition_matrix(adjacency, kind)
        rng = np.random.default_rng(9)
        signal = rng.standard_normal((40, 3))
        reference = PersonalizedPageRank(0.5, method="solve").apply(
            operator, signal
        )
        result = forward_push(operator, signal, alpha=0.5, tol=1e-10)
        assert np.max(np.abs(result.estimate - reference)) < 1e-8

    def test_validation(self, operator):
        with pytest.raises(ValueError, match="rows"):
            forward_push(operator, np.zeros((3, 2)))
        with pytest.raises(ValueError, match="alpha"):
            forward_push(operator, np.zeros(40), alpha=0.0)
        with pytest.raises(ValueError):
            forward_push(operator, np.zeros(40), tol=0.0)


class TestRefresh:
    def test_delta_patch_matches_fresh_solve(self, operator, exact):
        rng = np.random.default_rng(11)
        before = rng.standard_normal((40, 4))
        after = before.copy()
        after[7] += rng.standard_normal(4)
        after[23] = 0.0
        base = forward_push(operator, before, alpha=0.4, tol=1e-11)
        patched, result = push_refresh(
            operator, base.estimate, after - before, alpha=0.4, tol=1e-11
        )
        assert result.converged
        assert np.max(np.abs(patched - exact(after, 0.4))) < 1e-8

    def test_zero_delta_is_free(self, operator):
        rng = np.random.default_rng(13)
        signal = rng.standard_normal((40, 2))
        base = forward_push(operator, signal, alpha=0.5, tol=1e-9)
        patched, result = push_refresh(
            operator, base.estimate, np.zeros_like(signal), alpha=0.5
        )
        assert result.edge_operations == 0
        assert np.array_equal(patched, base.estimate)

    def test_vector_refresh(self, operator, exact):
        signal = np.zeros(40)
        signal[0] = 1.0
        base = forward_push(operator, signal, alpha=0.5, tol=1e-11)
        delta = np.zeros(40)
        delta[5] = 2.0
        patched, _ = push_refresh(
            operator, base.estimate, delta, alpha=0.5, tol=1e-11
        )
        assert patched.shape == (40,)
        assert np.max(np.abs(patched - exact(signal + delta, 0.5))) < 1e-8

    def test_shape_mismatch_rejected(self, operator):
        with pytest.raises(ValueError, match="match"):
            push_refresh(operator, np.zeros((40, 2)), np.zeros((40, 3)))

    def test_sparse_delta_cheaper_than_cold_start(self, operator):
        """Work scales with the change, not the network (single-row delta)."""
        rng = np.random.default_rng(17)
        before = rng.standard_normal((40, 4))
        cold = forward_push(operator, before, alpha=0.7, tol=1e-6)
        delta = np.zeros_like(before)
        delta[3] = 1e-3  # a small local change
        _, result = push_refresh(
            operator, cold.estimate, delta, alpha=0.7, tol=1e-6
        )
        assert result.edge_operations < cold.edge_operations
