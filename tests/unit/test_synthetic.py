"""Tests for repro.embeddings.synthetic: the GloVe substitute's geometry."""

import numpy as np
import pytest

from repro.embeddings.synthetic import (
    SyntheticCorpusConfig,
    noise_scale_for_cosine,
    synthetic_word_embeddings,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalized(self):
        assert np.isclose(zipf_weights(100, 1.1).sum(), 1.0)

    def test_monotone_decreasing(self):
        w = zipf_weights(50, 1.0)
        assert np.all(np.diff(w) < 0)

    def test_single_element(self):
        assert np.allclose(zipf_weights(1, 2.0), [1.0])


class TestNoiseScale:
    @pytest.mark.parametrize("target", [0.5, 0.72, 0.9])
    def test_calibration_matches_empirical_cosine(self, target):
        """The derived sigma should hit the target intra-cluster cosine."""
        dim = 300
        sigma = noise_scale_for_cosine(target, dim)
        rng = np.random.default_rng(0)
        center = rng.standard_normal(dim)
        center /= np.linalg.norm(center)
        a = center + sigma * rng.standard_normal((500, dim))
        b = center + sigma * rng.standard_normal((500, dim))
        a /= np.linalg.norm(a, axis=1, keepdims=True)
        b /= np.linalg.norm(b, axis=1, keepdims=True)
        empirical = float(np.mean(np.sum(a * b, axis=1)))
        assert abs(empirical - target) < 0.05

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            noise_scale_for_cosine(1.0, 10)


class TestSyntheticModel:
    @pytest.fixture(scope="class")
    def model(self):
        return synthetic_word_embeddings(
            SyntheticCorpusConfig(
                n_words=1500,
                dim=128,
                n_clusters=100,
                intra_cluster_cosine=0.75,
                singleton_fraction=0.2,
            ),
            seed=9,
        )

    def test_shapes(self, model):
        assert len(model) == 1500
        assert model.dim == 128

    def test_unit_vectors(self, model):
        assert np.allclose(np.linalg.norm(model.vectors, axis=1), 1.0)

    def test_deterministic(self):
        config = SyntheticCorpusConfig(n_words=200, dim=16, n_clusters=20)
        a = synthetic_word_embeddings(config, seed=1)
        b = synthetic_word_embeddings(config, seed=1)
        assert np.allclose(a.vectors, b.vectors)
        assert a.words == b.words

    def test_seed_changes_vectors(self):
        config = SyntheticCorpusConfig(n_words=200, dim=16, n_clusters=20)
        a = synthetic_word_embeddings(config, seed=1)
        b = synthetic_word_embeddings(config, seed=2)
        assert not np.allclose(a.vectors, b.vectors)

    def test_metadata_present(self, model):
        for key in ("cluster_of", "frequencies", "cluster_centers", "noise_sigma"):
            assert key in model.metadata

    def test_singleton_fraction_respected(self, model):
        cluster_of = model.metadata["cluster_of"]
        fraction = np.mean(cluster_of < 0)
        assert abs(fraction - 0.2) < 0.02

    def test_intra_cluster_cosine_near_target(self, model):
        """Same-cluster word pairs concentrate near the configured cosine."""
        cluster_of = model.metadata["cluster_of"]
        vectors = model.vectors
        sims = []
        for cluster in range(20):
            members = np.flatnonzero(cluster_of == cluster)
            if members.size < 2:
                continue
            block = vectors[members]
            gram = block @ block.T
            upper = gram[np.triu_indices(members.size, k=1)]
            sims.extend(upper.tolist())
        assert abs(float(np.mean(sims)) - 0.75) < 0.05

    def test_cross_cluster_near_orthogonal(self, model):
        """Different-cluster words are near orthogonal in high dimension."""
        cluster_of = model.metadata["cluster_of"]
        a = np.flatnonzero(cluster_of == 0)
        b = np.flatnonzero(cluster_of == 1)
        if a.size == 0 or b.size == 0:
            pytest.skip("empty clusters in this draw")
        cross = model.vectors[a] @ model.vectors[b].T
        assert abs(float(np.mean(cross))) < 0.15

    def test_frequencies_normalized_zipf(self, model):
        freq = model.metadata["frequencies"]
        assert np.isclose(freq.sum(), 1.0)
        assert np.all(np.diff(freq) <= 0)

    def test_word_naming_unique_and_prefixed(self, model):
        assert all(w.startswith("word") for w in model.words)
        assert len(set(model.words)) == len(model)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(n_words=0)
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(intra_cluster_cosine=1.5)
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(singleton_fraction=-0.1)
