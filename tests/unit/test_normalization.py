"""Tests for repro.gsp.normalization."""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs.adjacency import CompressedAdjacency
from repro.gsp.normalization import adjacency_matrix, transition_matrix


@pytest.fixture
def star() -> nx.Graph:
    return nx.star_graph(3)  # hub 0 with leaves 1..3


class TestAdjacencyMatrix:
    def test_from_networkx(self, star):
        mat = adjacency_matrix(star)
        assert mat.shape == (4, 4)
        assert mat.sum() == 6  # 3 undirected edges

    def test_from_compressed(self, star):
        adj = CompressedAdjacency.from_networkx(star)
        assert np.allclose(
            adjacency_matrix(adj).toarray(), adjacency_matrix(star).toarray()
        )

    def test_from_dense_array(self):
        dense = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert np.allclose(adjacency_matrix(dense).toarray(), dense)

    def test_from_sparse_passthrough(self):
        mat = sp.csr_matrix(np.array([[0.0, 2.0], [2.0, 0.0]]))
        out = adjacency_matrix(mat)
        assert np.allclose(out.toarray(), mat.toarray())

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            adjacency_matrix(np.zeros((2, 3)))


class TestTransitionMatrix:
    def test_column_stochastic(self, star):
        mat = transition_matrix(star, "column")
        assert np.allclose(np.asarray(mat.sum(axis=0)).ravel(), 1.0)

    def test_row_stochastic(self, star):
        mat = transition_matrix(star, "row")
        assert np.allclose(np.asarray(mat.sum(axis=1)).ravel(), 1.0)

    def test_column_entries_are_inverse_source_degree(self, star):
        mat = transition_matrix(star, "column").toarray()
        # hub (node 0) has degree 3: each leaf receives 1/3 from it
        assert mat[1, 0] == pytest.approx(1 / 3)
        # leaves have degree 1: the hub receives 1 from each leaf
        assert mat[0, 1] == pytest.approx(1.0)

    def test_symmetric_normalization(self, star):
        mat = transition_matrix(star, "symmetric").toarray()
        assert np.allclose(mat, mat.T)
        # entry (0,1) = 1/sqrt(3 * 1)
        assert mat[0, 1] == pytest.approx(1 / np.sqrt(3))

    def test_symmetric_spectrum_bounded(self, small_world_adjacency):
        mat = transition_matrix(small_world_adjacency, "symmetric").toarray()
        eigenvalues = np.linalg.eigvalsh(mat)
        assert eigenvalues.max() <= 1.0 + 1e-9
        assert eigenvalues.min() >= -1.0 - 1e-9

    def test_isolated_node_zero_column(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1, 2])
        graph.add_edge(0, 1)
        mat = transition_matrix(graph, "column").toarray()
        assert np.allclose(mat[:, 2], 0.0)
        assert np.allclose(mat[2, :], 0.0)

    def test_unknown_kind_rejected(self, star):
        with pytest.raises(ValueError, match="unknown normalization"):
            transition_matrix(star, "spectral")

    def test_row_equals_column_transpose_for_undirected(self, small_world_adjacency):
        col = transition_matrix(small_world_adjacency, "column").toarray()
        row = transition_matrix(small_world_adjacency, "row").toarray()
        assert np.allclose(col, row.T)


class TestOperatorMemoization:
    """Per-(kind, fmt) caching on immutable CompressedAdjacency."""

    def test_csr_cached_per_kind(self, star):
        adj = CompressedAdjacency.from_networkx(star)
        column = transition_matrix(adj, "column")
        assert transition_matrix(adj, "column") is column
        assert transition_matrix(adj, "row") is not column

    def test_csc_format_cached_and_equivalent(self, star):
        adj = CompressedAdjacency.from_networkx(star)
        csr = transition_matrix(adj, "column")
        csc = transition_matrix(adj, "column", fmt="csc")
        assert csc.format == "csc"
        assert transition_matrix(adj, "column", fmt="csc") is csc
        assert np.allclose(csc.toarray(), csr.toarray())

    def test_unknown_fmt_rejected(self, star):
        adj = CompressedAdjacency.from_networkx(star)
        with pytest.raises(ValueError, match="fmt"):
            transition_matrix(adj, "column", fmt="coo")

    def test_networkx_input_not_cached(self, star):
        a = transition_matrix(star, "column")
        b = transition_matrix(star, "column")
        assert a is not b
        assert np.allclose(a.toarray(), b.toarray())

    def test_csc_fmt_for_networkx_input(self, star):
        csc = transition_matrix(star, "column", fmt="csc")
        assert csc.format == "csc"

    def test_cached_operator_is_read_only(self, star):
        adj = CompressedAdjacency.from_networkx(star)
        op = transition_matrix(adj, "column")
        with pytest.raises(ValueError):
            op.data *= 0.5
        csc = transition_matrix(adj, "column", fmt="csc")
        with pytest.raises(ValueError):
            csc.data[0] = 9.0
