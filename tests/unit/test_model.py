"""Tests for repro.embeddings.model.WordEmbeddingModel."""

import numpy as np
import pytest

from repro.embeddings.model import WordEmbeddingModel


@pytest.fixture
def model() -> WordEmbeddingModel:
    words = ["alpha", "beta", "gamma", "delta"]
    vectors = np.array(
        [
            [1.0, 0.0, 0.0],
            [0.9, 0.1, 0.0],  # close to alpha
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ]
    )
    return WordEmbeddingModel(words, vectors)


class TestConstruction:
    def test_length_and_dim(self, model):
        assert len(model) == 4
        assert model.dim == 3

    def test_mismatched_counts_raise(self):
        with pytest.raises(ValueError, match="words but"):
            WordEmbeddingModel(["a"], np.zeros((2, 3)))

    def test_duplicate_words_raise(self):
        with pytest.raises(ValueError, match="duplicate"):
            WordEmbeddingModel(["a", "a"], np.zeros((2, 3)))

    def test_1d_vectors_raise(self):
        with pytest.raises(ValueError):
            WordEmbeddingModel(["a"], np.zeros(3))


class TestLookup:
    def test_contains(self, model):
        assert "alpha" in model
        assert "omega" not in model

    def test_index_roundtrip(self, model):
        for i, word in enumerate(model.words):
            assert model.index_of(word) == i
            assert model.word_at(i) == word

    def test_unknown_word_raises(self, model):
        with pytest.raises(KeyError):
            model.index_of("omega")

    def test_vector_returns_copy(self, model):
        v = model.vector("alpha")
        v[0] = 99.0
        assert model.vector("alpha")[0] == 1.0

    def test_vectors_for_stacks_in_order(self, model):
        mat = model.vectors_for(["gamma", "alpha"])
        assert np.allclose(mat[0], model.vector("gamma"))
        assert np.allclose(mat[1], model.vector("alpha"))

    def test_vectors_property_readonly(self, model):
        with pytest.raises(ValueError):
            model.vectors[0, 0] = 5.0


class TestSimilarity:
    def test_similarity_close_pair(self, model):
        assert model.similarity("alpha", "beta") > 0.9

    def test_most_similar_excludes_self(self, model):
        results = model.most_similar("alpha", top_n=2)
        names = [w for w, _ in results]
        assert "alpha" not in names
        assert names[0] == "beta"

    def test_most_similar_include_self(self, model):
        results = model.most_similar("alpha", top_n=1, exclude_self=False)
        assert results[0][0] == "alpha"
        assert np.isclose(results[0][1], 1.0)

    def test_neighbors_above_threshold(self, model):
        hits = model.neighbors_above("alpha", 0.6)
        assert [w for w, _ in hits] == ["beta"]

    def test_neighbors_above_high_threshold_empty(self, model):
        assert model.neighbors_above("delta", 0.9) == []

    def test_neighbors_sorted_descending(self, model):
        hits = model.neighbors_above("alpha", -1.0)
        sims = [s for _, s in hits]
        assert sims == sorted(sims, reverse=True)

    def test_normalized_copy(self, model):
        norm = model.normalized()
        assert np.allclose(np.linalg.norm(norm.vectors, axis=1), 1.0)
        # original unchanged
        assert not np.allclose(np.linalg.norm(model.vectors, axis=1), 1.0)


class TestIO:
    def test_save_load_roundtrip(self, model, tmp_path):
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = WordEmbeddingModel.load(path)
        assert loaded.words == model.words
        assert np.allclose(loaded.vectors, model.vectors)

    def test_text_format_roundtrip(self, model, tmp_path):
        path = tmp_path / "glove.txt"
        lines = [
            f"{w} " + " ".join(str(x) for x in model.vector(w)) for w in model.words
        ]
        path.write_text("\n".join(lines))
        loaded = WordEmbeddingModel.from_text_format(path)
        assert loaded.words == model.words
        assert np.allclose(loaded.vectors, model.vectors)

    def test_text_format_empty_raises(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        with pytest.raises(ValueError, match="no embeddings"):
            WordEmbeddingModel.from_text_format(path)

    def test_text_format_inconsistent_dims_raise(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a 1 2 3\nb 1 2\n")
        with pytest.raises(ValueError, match="inconsistent"):
            WordEmbeddingModel.from_text_format(path)
