"""Tests for the shared experiment environment."""

import pytest

from repro.experiments.common import (
    ENV_FULL,
    FULL_GRAPH,
    SCALED_GRAPH,
    full_requested,
    get_environment,
    resolve_full,
)


class TestConfigs:
    def test_full_graph_matches_paper(self):
        assert FULL_GRAPH.n_nodes == 4039
        assert FULL_GRAPH.target_edges == 88234
        assert FULL_GRAPH.n_egos == 10

    def test_scaled_graph_preserves_density(self):
        full_density = FULL_GRAPH.target_edges / FULL_GRAPH.n_nodes
        scaled_density = SCALED_GRAPH.target_edges / SCALED_GRAPH.n_nodes
        assert scaled_density == pytest.approx(full_density, rel=0.05)


class TestEnvFlag:
    def test_full_requested_reads_env(self, monkeypatch):
        monkeypatch.delenv(ENV_FULL, raising=False)
        assert not full_requested()
        monkeypatch.setenv(ENV_FULL, "1")
        assert full_requested()
        monkeypatch.setenv(ENV_FULL, "0")
        assert not full_requested()

    def test_resolve_full_combines(self, monkeypatch):
        monkeypatch.delenv(ENV_FULL, raising=False)
        assert resolve_full(True)
        assert not resolve_full(False)
        assert not resolve_full(None)
        monkeypatch.setenv(ENV_FULL, "yes")
        assert resolve_full(None)
        assert resolve_full(False)  # env var wins over an absent CLI flag


class TestEnvironmentBuild:
    def test_scaled_environment_consistent(self):
        env = get_environment(False)
        assert env.n_nodes == SCALED_GRAPH.n_nodes
        assert env.adjacency.n_edges == SCALED_GRAPH.target_edges
        assert env.model.dim == 300
        # pool large enough for the biggest experiment (M = 10000)
        assert len(env.workload.irrelevant_pool) >= 10_000
        assert env.label == "scaled"

    def test_environment_cached(self):
        assert get_environment(False) is get_environment(False)

    @pytest.mark.slow
    def test_full_environment_matches_paper_setup(self):
        """The --full configuration reproduces §V-A/§V-B exactly."""
        env = get_environment(True)
        assert env.n_nodes == 4039
        assert env.adjacency.n_edges == 88234
        assert env.model.dim == 300
        assert env.workload.n_queries == 1000
        assert env.workload.threshold == 0.6
        # the irrelevant pool covers the largest experiment (M = 10000)
        assert len(env.workload.irrelevant_pool) >= 10_000
