"""Tests for exact top-k scoring helpers."""

import numpy as np
import pytest

from repro.retrieval.scoring import rank_documents, top_k_indices


class TestTopKIndices:
    def test_basic_order(self):
        scores = np.array([0.1, 0.9, 0.5])
        assert list(top_k_indices(scores, 2)) == [1, 2]

    def test_k_larger_than_n(self):
        assert list(top_k_indices(np.array([1.0, 2.0]), 10)) == [1, 0]

    def test_k_zero(self):
        assert top_k_indices(np.array([1.0]), 0).size == 0

    def test_ties_broken_by_index(self):
        scores = np.array([1.0, 1.0, 1.0])
        assert list(top_k_indices(scores, 2)) == [0, 1]

    def test_negative_scores(self):
        scores = np.array([-3.0, -1.0, -2.0])
        assert list(top_k_indices(scores, 3)) == [1, 2, 0]

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            top_k_indices(np.zeros((2, 2)), 1)


class TestRankDocuments:
    def test_pairs_best_first(self):
        docs = np.array([[1.0, 0.0], [0.0, 1.0]])
        hits = rank_documents(np.array([0.2, 0.8]), docs, 2)
        assert hits[0] == (1, pytest.approx(0.8))
        assert hits[1] == (0, pytest.approx(0.2))

    def test_k_limits_results(self):
        docs = np.eye(4)
        assert len(rank_documents(np.ones(4), docs, 2)) == 2
