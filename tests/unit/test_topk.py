"""Tests for the running top-k tracker (query state of §IV-C)."""

import pytest

from repro.retrieval.topk import ScoredDocument, TopKTracker


class TestOffer:
    def test_keeps_best_k(self):
        tracker = TopKTracker(2)
        tracker.offer("a", 1.0)
        tracker.offer("b", 3.0)
        tracker.offer("c", 2.0)
        assert tracker.doc_ids() == ["b", "c"]

    def test_rejects_below_worst_when_full(self):
        tracker = TopKTracker(2)
        tracker.offer("a", 2.0)
        tracker.offer("b", 3.0)
        assert tracker.offer("c", 1.0) is False
        assert tracker.doc_ids() == ["b", "a"]

    def test_accept_return_value(self):
        tracker = TopKTracker(1)
        assert tracker.offer("a", 1.0) is True
        assert tracker.offer("b", 5.0) is True
        assert tracker.offer("c", 0.5) is False

    def test_duplicate_doc_id_kept_once(self):
        tracker = TopKTracker(3)
        tracker.offer("a", 1.0)
        assert tracker.offer("a", 1.0) is True
        assert len(tracker) == 1

    def test_contains(self):
        tracker = TopKTracker(2)
        tracker.offer("a", 1.0)
        assert "a" in tracker
        assert "b" not in tracker

    def test_eviction_removes_membership(self):
        tracker = TopKTracker(1)
        tracker.offer("a", 1.0)
        tracker.offer("b", 2.0)
        assert "a" not in tracker
        assert "b" in tracker

    def test_tie_break_prefers_smaller_doc_id(self):
        tracker = TopKTracker(1)
        tracker.offer("b", 1.0)
        tracker.offer("a", 1.0)
        assert tracker.doc_ids() == ["a"]

    def test_tie_break_insertion_order_invariant(self):
        a = TopKTracker(2)
        for doc, score in [("x", 1.0), ("y", 1.0), ("z", 1.0)]:
            a.offer(doc, score)
        b = TopKTracker(2)
        for doc, score in [("z", 1.0), ("y", 1.0), ("x", 1.0)]:
            b.offer(doc, score)
        assert a.doc_ids() == b.doc_ids() == ["x", "y"]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopKTracker(0)


class TestAccessors:
    def test_items_sorted_best_first(self):
        tracker = TopKTracker(3)
        tracker.offer("low", 1.0)
        tracker.offer("high", 9.0)
        tracker.offer("mid", 5.0)
        scores = [item.score for item in tracker.items()]
        assert scores == [9.0, 5.0, 1.0]

    def test_best(self):
        tracker = TopKTracker(3)
        assert tracker.best() is None
        tracker.offer("a", 1.0, node=7)
        tracker.offer("b", 2.0, node=8)
        best = tracker.best()
        assert best.doc_id == "b"
        assert best.node == 8

    def test_worst_score_not_full(self):
        tracker = TopKTracker(2)
        tracker.offer("a", 5.0)
        assert tracker.worst_score() == float("-inf")

    def test_worst_score_full(self):
        tracker = TopKTracker(2)
        tracker.offer("a", 5.0)
        tracker.offer("b", 3.0)
        assert tracker.worst_score() == 3.0

    def test_is_full(self):
        tracker = TopKTracker(2)
        assert not tracker.is_full
        tracker.offer("a", 1.0)
        tracker.offer("b", 2.0)
        assert tracker.is_full

    def test_iteration(self):
        tracker = TopKTracker(2)
        tracker.offer("a", 1.0)
        assert [item.doc_id for item in tracker] == ["a"]


class TestMerge:
    def test_merge_keeps_global_best(self):
        left = TopKTracker(2)
        left.offer("a", 5.0)
        left.offer("b", 1.0)
        right = TopKTracker(2)
        right.offer("c", 4.0)
        right.offer("d", 3.0)
        left.merge(right)
        assert left.doc_ids() == ["a", "c"]

    def test_merge_deduplicates(self):
        left = TopKTracker(3)
        left.offer("a", 5.0)
        right = TopKTracker(3)
        right.offer("a", 5.0)
        right.offer("b", 1.0)
        left.merge(right)
        assert left.doc_ids() == ["a", "b"]

    def test_from_items_roundtrip(self):
        tracker = TopKTracker(2)
        tracker.offer("a", 2.0, node=1)
        tracker.offer("b", 3.0, node=2)
        rebuilt = TopKTracker.from_items(2, tracker.items())
        assert rebuilt.doc_ids() == tracker.doc_ids()


class TestScoredDocument:
    def test_sort_key_orders_descending_score(self):
        docs = [ScoredDocument(1.0, "a"), ScoredDocument(2.0, "b")]
        ordered = sorted(docs, key=lambda d: d.sort_key)
        assert [d.doc_id for d in ordered] == ["b", "a"]

    def test_frozen(self):
        doc = ScoredDocument(1.0, "a")
        with pytest.raises(AttributeError):
            doc.score = 2.0
