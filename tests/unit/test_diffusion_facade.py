"""Tests for the diffusion facade: the three strategies agree."""

import numpy as np
import pytest

from repro.core.diffusion import diffuse_embeddings


@pytest.fixture(scope="module")
def setup(small_world_adjacency):
    rng = np.random.default_rng(3)
    personalization = rng.standard_normal((small_world_adjacency.n_nodes, 6))
    return small_world_adjacency, personalization


@pytest.fixture(scope="module")
def small_world_adjacency():
    from repro.graphs.adjacency import CompressedAdjacency
    from repro.graphs.generators import connected_watts_strogatz

    return CompressedAdjacency.from_networkx(
        connected_watts_strogatz(40, 4, 0.2, seed=13)
    )


class TestStrategiesAgree:
    def test_power_vs_solve(self, setup):
        adjacency, personalization = setup
        power = diffuse_embeddings(
            adjacency, personalization, alpha=0.4, method="power", tol=1e-12
        )
        solve = diffuse_embeddings(
            adjacency, personalization, alpha=0.4, method="solve"
        )
        assert np.allclose(power.embeddings, solve.embeddings, atol=1e-9)

    def test_async_vs_solve(self, setup):
        adjacency, personalization = setup
        solve = diffuse_embeddings(
            adjacency, personalization, alpha=0.4, method="solve"
        )
        asynchronous = diffuse_embeddings(
            adjacency, personalization, alpha=0.4, method="async", tol=1e-8, seed=0
        )
        assert np.max(np.abs(asynchronous.embeddings - solve.embeddings)) < 1e-5
        assert asynchronous.messages > 0

    def test_outcome_metadata(self, setup):
        adjacency, personalization = setup
        outcome = diffuse_embeddings(adjacency, personalization, alpha=0.5)
        assert outcome.method == "power"
        assert outcome.alpha == 0.5
        assert outcome.converged
        assert outcome.embeddings.shape == personalization.shape

    def test_vector_signal_supported(self, setup):
        adjacency, _ = setup
        signal = np.zeros(adjacency.n_nodes)
        signal[0] = 1.0
        outcome = diffuse_embeddings(adjacency, signal, alpha=0.3, tol=1e-12)
        assert outcome.embeddings.shape == (adjacency.n_nodes, 1)
        assert outcome.embeddings.sum() == pytest.approx(1.0, abs=1e-8)


class TestNormalizations:
    @pytest.mark.parametrize("kind", ["column", "row", "symmetric"])
    def test_all_normalizations_run(self, setup, kind):
        adjacency, personalization = setup
        outcome = diffuse_embeddings(
            adjacency, personalization, alpha=0.5, normalization=kind
        )
        assert outcome.converged

    def test_async_requires_column(self, setup):
        adjacency, personalization = setup
        with pytest.raises(ValueError, match="column"):
            diffuse_embeddings(
                adjacency, personalization, method="async", normalization="row"
            )


class TestValidation:
    def test_unknown_method(self, setup):
        adjacency, personalization = setup
        with pytest.raises(ValueError, match="method"):
            diffuse_embeddings(adjacency, personalization, method="quantum")

    def test_row_count_mismatch(self, setup):
        adjacency, _ = setup
        with pytest.raises(ValueError, match="rows"):
            diffuse_embeddings(adjacency, np.zeros((3, 2)))
