"""Tests for the HNSW approximate nearest-neighbor index."""

import numpy as np
import pytest

from repro.embeddings.similarity import l2_normalize
from repro.retrieval.hnsw import HNSWIndex


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(7)
    vectors = l2_normalize(rng.standard_normal((300, 24)))
    ids = [f"v{i}" for i in range(300)]
    return ids, vectors


@pytest.fixture(scope="module")
def index(dataset):
    ids, vectors = dataset
    return HNSWIndex.build(ids, vectors, m=8, ef_construction=64, seed=1)


def exact_top_k(vectors, ids, query, k):
    scores = vectors @ query
    order = np.argsort(-scores)[:k]
    return [ids[int(i)] for i in order]


class TestBasics:
    def test_len(self, index):
        assert len(index) == 300

    def test_self_query_returns_self(self, dataset, index):
        ids, vectors = dataset
        hits = index.query(vectors[42], 1, ef=64)
        assert hits[0][0] == "v42"
        assert hits[0][1] == pytest.approx(1.0)

    def test_scores_descending(self, dataset, index):
        _, vectors = dataset
        hits = index.query(vectors[0], 10, ef=64)
        scores = [s for _, s in hits]
        assert scores == sorted(scores, reverse=True)

    def test_k_respected(self, dataset, index):
        _, vectors = dataset
        assert len(index.query(vectors[0], 7, ef=64)) == 7

    def test_empty_index(self):
        index = HNSWIndex(8, seed=0)
        assert index.query(np.ones(8), 3) == []

    def test_single_element(self):
        index = HNSWIndex(4, seed=0)
        index.add("only", l2_normalize(np.ones(4)))
        hits = index.query(l2_normalize(np.ones(4)), 3)
        assert [h[0] for h in hits] == ["only"]

    def test_wrong_dims_rejected(self):
        index = HNSWIndex(4, seed=0)
        with pytest.raises(ValueError):
            index.add("x", np.ones(5))
        index.add("x", np.ones(4))
        with pytest.raises(ValueError):
            index.query(np.ones(5), 1)

    def test_build_misaligned_rejected(self):
        with pytest.raises(ValueError):
            HNSWIndex.build(["a", "b"], np.ones((1, 4)))


class TestRecall:
    def test_recall_at_10(self, dataset, index):
        """With a generous beam, HNSW recall should be near-exact."""
        ids, vectors = dataset
        rng = np.random.default_rng(2)
        queries = l2_normalize(rng.standard_normal((20, 24)))
        hits = total = 0
        for query in queries:
            exact = set(exact_top_k(vectors, ids, query, 10))
            approx = {h[0] for h in index.query(query, 10, ef=128)}
            hits += len(exact & approx)
            total += 10
        assert hits / total >= 0.9

    def test_larger_ef_no_worse(self, dataset, index):
        ids, vectors = dataset
        rng = np.random.default_rng(3)
        query = l2_normalize(rng.standard_normal(24))
        exact = set(exact_top_k(vectors, ids, query, 5))
        small = {h[0] for h in index.query(query, 5, ef=8)}
        large = {h[0] for h in index.query(query, 5, ef=200)}
        assert len(large & exact) >= len(small & exact)


class TestStructure:
    def test_layer_degrees_bounded(self, index):
        for node, levels in enumerate(index._neighbors):
            for level, links in enumerate(levels):
                limit = index.max_m0 if level == 0 else index.max_m
                assert len(links) <= limit, f"node {node} level {level}"

    def test_links_bidirectional_enough_to_navigate(self, dataset, index):
        """Every node is reachable from the entry point at layer 0."""
        _, vectors = dataset
        seen = set()
        stack = [index._entry]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            for neighbor in index._neighbors[node][0]:
                if neighbor not in seen:
                    stack.append(neighbor)
        # Pruning can strand a tiny number of nodes; navigability requires
        # the overwhelming majority to stay connected.
        assert len(seen) >= 0.99 * len(index)

    def test_deterministic_given_seed(self, dataset):
        ids, vectors = dataset
        a = HNSWIndex.build(ids[:100], vectors[:100], seed=5)
        b = HNSWIndex.build(ids[:100], vectors[:100], seed=5)
        query = vectors[150]
        assert a.query(query, 5, ef=32) == b.query(query, 5, ef=32)
