"""Tests for the walk engine (Fig. 1 semantics)."""

import networkx as nx
import numpy as np
import pytest

from repro.core.engine import SearchResult, WalkConfig, run_query
from repro.core.forwarding import PrecomputedScorePolicy, RandomWalkPolicy
from repro.graphs.adjacency import CompressedAdjacency
from repro.retrieval.vector_store import DocumentStore


def make_store(dim, **docs):
    store = DocumentStore(dim)
    for doc_id, vector in docs.items():
        store.add(doc_id, np.asarray(vector, dtype=float))
    return store


@pytest.fixture
def path_adjacency():
    return CompressedAdjacency.from_networkx(nx.path_graph(6))


class TestWalkMechanics:
    def test_visits_start_at_source(self, path_adjacency):
        result = run_query(
            path_adjacency,
            {},
            PrecomputedScorePolicy(np.arange(6, dtype=float)),
            np.ones(2),
            start_node=2,
            config=WalkConfig(ttl=3),
        )
        assert result.visits[0] == (0, 2)

    def test_ttl_bounds_visits(self, path_adjacency):
        """TTL t evaluates at most t nodes (source at hop 0 .. hop t−1)."""
        scores = np.arange(6, dtype=float)  # walk greedily right
        for ttl in (1, 2, 4):
            result = run_query(
                path_adjacency,
                {},
                PrecomputedScorePolicy(scores),
                np.ones(2),
                start_node=0,
                config=WalkConfig(ttl=ttl),
            )
            assert len(result.visits) == min(ttl, 6)
            assert result.hops_used == len(result.visits) - 1

    def test_greedy_path_follows_scores(self, path_adjacency):
        scores = np.arange(6, dtype=float)
        result = run_query(
            path_adjacency,
            {},
            PrecomputedScorePolicy(scores),
            np.ones(2),
            start_node=0,
            config=WalkConfig(ttl=6),
        )
        assert result.path == [0, 1, 2, 3, 4, 5]

    def test_memory_prevents_immediate_backtrack(self, path_adjacency):
        """In the middle of a path, the walk cannot bounce straight back."""
        scores = np.array([100.0, 0.0, 0.0, 0.0, 0.0, 0.0])
        result = run_query(
            path_adjacency,
            {},
            PrecomputedScorePolicy(scores),
            np.ones(2),
            start_node=2,
            config=WalkConfig(ttl=3),
        )
        # From 2 the best neighbor is 1 (score 0 vs 0, tie -> smaller id),
        # from 1 candidates exclude 2 (just interacted) so it must go to 0.
        assert result.path == [2, 1, 0]

    def test_fallback_when_all_neighbors_visited(self):
        """Footnote 9: a dead-ended walk reconsiders all neighbors."""
        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(2))
        result = run_query(
            adjacency,
            {},
            PrecomputedScorePolicy(np.zeros(2)),
            np.ones(2),
            start_node=0,
            config=WalkConfig(ttl=5),
        )
        # only one edge: the walk has to bounce 0-1-0-1-0
        assert result.path == [0, 1, 0, 1, 0]

    def test_isolated_node_stops(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        adjacency = CompressedAdjacency.from_networkx(graph)
        result = run_query(
            adjacency,
            {},
            RandomWalkPolicy(),
            np.ones(2),
            start_node=0,
            config=WalkConfig(ttl=5),
        )
        assert result.path == [0]
        assert result.messages == 0

    def test_messages_equal_forwards(self, path_adjacency):
        result = run_query(
            path_adjacency,
            {},
            PrecomputedScorePolicy(np.arange(6, dtype=float)),
            np.ones(2),
            start_node=0,
            config=WalkConfig(ttl=4),
        )
        assert result.messages == len(result.visits) - 1

    def test_invalid_start_rejected(self, path_adjacency):
        with pytest.raises(ValueError):
            run_query(
                path_adjacency, {}, RandomWalkPolicy(), np.ones(2), start_node=99
            )


class TestDocumentCollection:
    def test_collects_local_documents(self, path_adjacency):
        stores = {
            0: make_store(2, near=[1.0, 0.0]),
            2: make_store(2, far=[0.9, 0.0]),
        }
        result = run_query(
            path_adjacency,
            stores,
            PrecomputedScorePolicy(np.arange(6, dtype=float)),
            np.array([1.0, 0.0]),
            start_node=0,
            config=WalkConfig(ttl=3, k=2),
        )
        assert result.found("near")
        assert result.found("far")
        assert result.hops_to("near") == 0
        assert result.hops_to("far") == 2

    def test_top1_keeps_only_best(self, path_adjacency):
        stores = {
            0: make_store(2, weak=[0.1, 0.0]),
            1: make_store(2, strong=[1.0, 0.0]),
        }
        result = run_query(
            path_adjacency,
            stores,
            PrecomputedScorePolicy(np.arange(6, dtype=float)),
            np.array([1.0, 0.0]),
            start_node=0,
            config=WalkConfig(ttl=2, k=1),
        )
        assert result.found("strong", top=1)
        assert not result.found("weak")
        assert result.best.doc_id == "strong"

    def test_found_top_parameter(self, path_adjacency):
        stores = {0: make_store(2, a=[1.0, 0.0], b=[0.5, 0.0])}
        result = run_query(
            path_adjacency,
            stores,
            RandomWalkPolicy(),
            np.array([1.0, 0.0]),
            start_node=0,
            config=WalkConfig(ttl=1, k=2),
        )
        assert result.found("b")
        assert not result.found("b", top=1)

    def test_discovery_hop_is_first_visit(self):
        """Re-visiting a node does not overwrite the discovery hop."""
        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(2))
        stores = {0: make_store(2, doc=[1.0, 0.0])}
        result = run_query(
            adjacency,
            stores,
            PrecomputedScorePolicy(np.zeros(2)),
            np.array([1.0, 0.0]),
            start_node=0,
            config=WalkConfig(ttl=5, k=1),
        )
        assert result.path == [0, 1, 0, 1, 0]
        assert result.hops_to("doc") == 0

    def test_hops_to_unknown_document(self, path_adjacency):
        result = run_query(
            path_adjacency, {}, RandomWalkPolicy(), np.ones(2), 0
        )
        assert result.hops_to("ghost") is None


class TestParallelWalks:
    def test_fanout_spawns_walkers(self):
        adjacency = CompressedAdjacency.from_networkx(nx.star_graph(4))
        result = run_query(
            adjacency,
            {},
            PrecomputedScorePolicy(np.array([0.0, 4.0, 3.0, 2.0, 1.0])),
            np.ones(2),
            start_node=0,
            config=WalkConfig(ttl=2, fanout=3),
        )
        # source + the 3 best-scoring leaves
        assert result.visits[0] == (0, 0)
        visited_leaves = {node for hop, node in result.visits if hop == 1}
        assert visited_leaves == {1, 2, 3}

    def test_fanout_finds_more(self, small_world_adjacency):
        """Parallel walks dominate a single walk on the same instance."""
        rng = np.random.default_rng(0)
        n = small_world_adjacency.n_nodes
        scores = rng.standard_normal(n)
        stores = {17: make_store(4, gold=[1.0, 0.0, 0.0, 0.0])}
        query = np.array([1.0, 0.0, 0.0, 0.0])
        single = run_query(
            small_world_adjacency, stores, PrecomputedScorePolicy(scores),
            query, 3, WalkConfig(ttl=10, fanout=1),
        )
        parallel = run_query(
            small_world_adjacency, stores, PrecomputedScorePolicy(scores),
            query, 3, WalkConfig(ttl=10, fanout=3),
        )
        assert parallel.unique_nodes_visited >= single.unique_nodes_visited
        assert parallel.messages >= single.messages


class TestSearchResultProperties:
    def test_empty_result_defaults(self, path_adjacency):
        result = run_query(
            path_adjacency, {}, RandomWalkPolicy(), np.ones(2), 0,
            WalkConfig(ttl=1),
        )
        assert result.results == []
        assert result.best is None
        assert result.hops_used == 0
        assert result.unique_nodes_visited == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WalkConfig(ttl=0)
        with pytest.raises(ValueError):
            WalkConfig(fanout=0)
        with pytest.raises(ValueError):
            WalkConfig(k=0)

    @pytest.mark.parametrize("field", ["ttl", "fanout", "k"])
    def test_config_rejects_negative_values(self, field):
        with pytest.raises(ValueError, match=field):
            WalkConfig(**{field: -3})

    def test_config_defaults_are_papers(self):
        config = WalkConfig()
        assert (config.ttl, config.fanout, config.k) == (50, 1, 1)


class TestFootnote9Fallback:
    """``next_hops`` when every neighbor is already in per-node memory."""

    def test_star_center_reuses_exhausted_neighbors(self):
        """On a star, the center's memory fills up; TTL is still spent."""
        adjacency = CompressedAdjacency.from_networkx(nx.star_graph(2))
        # node 0 is the hub; leaves 1, 2.  Greedy scores prefer higher ids.
        result = run_query(
            adjacency,
            {},
            PrecomputedScorePolicy(np.array([0.0, 1.0, 2.0])),
            np.ones(2),
            start_node=0,
            config=WalkConfig(ttl=6),
        )
        # hop 1: hub → 2 (best).  Back at the hub on hop 2, neighbor 1 is
        # still unvisited, so it is chosen; from hop 4 on every neighbor is
        # in memory and the fallback reconsiders all of them.
        assert result.path[:4] == [0, 2, 0, 1]
        assert len(result.visits) == 6  # the remaining TTL is not wasted

    def test_fallback_selects_best_scored_neighbor(self):
        """The fallback reapplies the policy, not arbitrary choice."""
        adjacency = CompressedAdjacency.from_networkx(nx.star_graph(3))
        scores = np.array([0.0, 5.0, 1.0, 2.0])
        result = run_query(
            adjacency,
            {},
            PrecomputedScorePolicy(scores),
            np.ones(2),
            start_node=0,
            config=WalkConfig(ttl=9),
        )
        # After all three leaves are in memory (hops 1-6 visit 1, 3, 2 by
        # score), the exhausted hub falls back to the full neighbor set and
        # the policy again picks the best-scored leaf, node 1.
        assert result.path[:6] == [0, 1, 0, 3, 0, 2]
        assert result.path[6:8] == [0, 1]

    def test_memory_is_symmetric(self):
        """Forwarding records the edge on both endpoints (paper §IV-C)."""
        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(3))
        result = run_query(
            adjacency,
            {},
            PrecomputedScorePolicy(np.array([0.0, 1.0, 2.0])),
            np.ones(2),
            start_node=1,
            config=WalkConfig(ttl=3),
        )
        # 1 → 2 (best); node 2's only neighbor (1) is already in its memory
        # from receiving the query, so the fallback sends it straight back.
        assert result.path == [1, 2, 1]


class TestEmptyStoreSentinel:
    """The shared empty-store sentinel must stay empty and per-dim."""

    def test_sentinel_is_immutable(self):
        from repro.core.engine import _empty_store

        store = _empty_store(7)
        with pytest.raises(TypeError, match="immutable"):
            store.add("doc", np.zeros(7))
        with pytest.raises(TypeError, match="immutable"):
            store.add_many([])
        with pytest.raises(TypeError, match="immutable"):
            store.remove("doc")
        assert len(store) == 0

    def test_sentinels_are_per_dim(self):
        from repro.core.engine import _empty_store

        assert _empty_store(3) is _empty_store(3)
        assert _empty_store(3) is not _empty_store(4)
        assert _empty_store(4).dim == 4

    def test_networks_with_different_dims_do_not_interfere(self):
        """Regression: interleaved queries across dims stay independent."""
        from repro.core.search import DiffusionSearchNetwork

        graph = nx.path_graph(4)
        net3 = DiffusionSearchNetwork(graph, dim=3)
        net5 = DiffusionSearchNetwork(graph, dim=5)
        net3.place_document("g3", np.array([1.0, 0.0, 0.0]), 3)
        net5.place_document("g5", np.array([0.0, 1.0, 0.0, 0.0, 0.0]), 3)
        net3.diffuse()
        net5.diffuse()

        # Interleave queries; each walk crosses empty nodes 0-2 and must see
        # only its own network's documents.
        for _ in range(2):
            r3 = net3.search(np.array([1.0, 0.0, 0.0]), start_node=0, ttl=4)
            r5 = net5.search(
                np.array([0.0, 1.0, 0.0, 0.0, 0.0]), start_node=0, ttl=4
            )
            assert [d.doc_id for d in r3.results] == ["g3"]
            assert [d.doc_id for d in r5.results] == ["g5"]


class TestHopBudget:
    """Deadline budgets: min(ttl, hop_budget) horizon, explicit degradation."""

    def _run(self, adjacency, ttl, hop_budget, quarantine=None):
        return run_query(
            adjacency,
            {},
            PrecomputedScorePolicy(np.arange(6, dtype=float)),
            np.ones(2),
            start_node=0,
            config=WalkConfig(ttl=ttl),
            hop_budget=hop_budget,
            quarantine=quarantine,
        )

    def test_budget_truncates_and_marks(self, path_adjacency):
        result = self._run(path_adjacency, ttl=6, hop_budget=3)
        assert len(result.visits) == 3
        assert result.degraded
        assert result.deadline_hit

    def test_budget_at_or_above_ttl_is_identical(self, path_adjacency):
        baseline = self._run(path_adjacency, ttl=4, hop_budget=None)
        for budget in (4, 5, 100):
            capped = self._run(path_adjacency, ttl=4, hop_budget=budget)
            assert capped.visits == baseline.visits
            assert not capped.degraded
            assert not capped.deadline_hit

    def test_budget_none_is_identical(self, path_adjacency):
        baseline = self._run(path_adjacency, ttl=4, hop_budget=None)
        assert not baseline.deadline_hit
        assert not baseline.degraded

    def test_budget_validation(self, path_adjacency):
        with pytest.raises(ValueError):
            self._run(path_adjacency, ttl=4, hop_budget=0)
        with pytest.raises(TypeError):
            self._run(path_adjacency, ttl=4, hop_budget=2.5)

    def test_partial_results_still_returned(self, path_adjacency):
        stores = {1: make_store(2, near=[1.0, 1.0])}
        result = run_query(
            path_adjacency,
            stores,
            PrecomputedScorePolicy(np.arange(6, dtype=float)),
            np.ones(2),
            start_node=0,
            config=WalkConfig(ttl=6),
            hop_budget=2,
        )
        # The truncated walk reached node 1; its document is in the partials.
        assert result.deadline_hit
        assert result.found("near")


class TestQuarantine:
    def test_quarantined_peer_avoided(self, path_adjacency):
        # Greedy scores walk 0→1→2...; quarantining 1 strands the walk at 0
        # (path graph: node 0's only neighbor is 1).
        result = run_query(
            path_adjacency,
            {},
            PrecomputedScorePolicy(np.arange(6, dtype=float)),
            np.ones(2),
            start_node=0,
            config=WalkConfig(ttl=4),
            quarantine=[1],
        )
        assert result.path == [0]

    def test_quarantine_reroutes_around_peer(self):
        # Star + rim: from the hub, the best-scoring rim node is quarantined,
        # so the walk takes the next-best.
        graph = nx.star_graph(3)  # hub 0, leaves 1..3
        adjacency = CompressedAdjacency.from_networkx(graph)
        result = run_query(
            adjacency,
            {},
            PrecomputedScorePolicy(np.array([0.0, 1.0, 2.0, 3.0])),
            np.ones(2),
            start_node=0,
            config=WalkConfig(ttl=2),
            quarantine=[3],
        )
        assert result.path == [0, 2]

    def test_empty_quarantine_identical(self, path_adjacency):
        baseline = run_query(
            path_adjacency,
            {},
            PrecomputedScorePolicy(np.arange(6, dtype=float)),
            np.ones(2),
            start_node=0,
            config=WalkConfig(ttl=4),
        )
        quarantined = run_query(
            path_adjacency,
            {},
            PrecomputedScorePolicy(np.arange(6, dtype=float)),
            np.ones(2),
            start_node=0,
            config=WalkConfig(ttl=4),
            quarantine=[],
        )
        assert quarantined.visits == baseline.visits
