"""Tests for the walk engine (Fig. 1 semantics)."""

import networkx as nx
import numpy as np
import pytest

from repro.core.engine import SearchResult, WalkConfig, run_query
from repro.core.forwarding import PrecomputedScorePolicy, RandomWalkPolicy
from repro.graphs.adjacency import CompressedAdjacency
from repro.retrieval.vector_store import DocumentStore


def make_store(dim, **docs):
    store = DocumentStore(dim)
    for doc_id, vector in docs.items():
        store.add(doc_id, np.asarray(vector, dtype=float))
    return store


@pytest.fixture
def path_adjacency():
    return CompressedAdjacency.from_networkx(nx.path_graph(6))


class TestWalkMechanics:
    def test_visits_start_at_source(self, path_adjacency):
        result = run_query(
            path_adjacency,
            {},
            PrecomputedScorePolicy(np.arange(6, dtype=float)),
            np.ones(2),
            start_node=2,
            config=WalkConfig(ttl=3),
        )
        assert result.visits[0] == (0, 2)

    def test_ttl_bounds_visits(self, path_adjacency):
        """TTL t evaluates at most t nodes (source at hop 0 .. hop t−1)."""
        scores = np.arange(6, dtype=float)  # walk greedily right
        for ttl in (1, 2, 4):
            result = run_query(
                path_adjacency,
                {},
                PrecomputedScorePolicy(scores),
                np.ones(2),
                start_node=0,
                config=WalkConfig(ttl=ttl),
            )
            assert len(result.visits) == min(ttl, 6)
            assert result.hops_used == len(result.visits) - 1

    def test_greedy_path_follows_scores(self, path_adjacency):
        scores = np.arange(6, dtype=float)
        result = run_query(
            path_adjacency,
            {},
            PrecomputedScorePolicy(scores),
            np.ones(2),
            start_node=0,
            config=WalkConfig(ttl=6),
        )
        assert result.path == [0, 1, 2, 3, 4, 5]

    def test_memory_prevents_immediate_backtrack(self, path_adjacency):
        """In the middle of a path, the walk cannot bounce straight back."""
        scores = np.array([100.0, 0.0, 0.0, 0.0, 0.0, 0.0])
        result = run_query(
            path_adjacency,
            {},
            PrecomputedScorePolicy(scores),
            np.ones(2),
            start_node=2,
            config=WalkConfig(ttl=3),
        )
        # From 2 the best neighbor is 1 (score 0 vs 0, tie -> smaller id),
        # from 1 candidates exclude 2 (just interacted) so it must go to 0.
        assert result.path == [2, 1, 0]

    def test_fallback_when_all_neighbors_visited(self):
        """Footnote 9: a dead-ended walk reconsiders all neighbors."""
        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(2))
        result = run_query(
            adjacency,
            {},
            PrecomputedScorePolicy(np.zeros(2)),
            np.ones(2),
            start_node=0,
            config=WalkConfig(ttl=5),
        )
        # only one edge: the walk has to bounce 0-1-0-1-0
        assert result.path == [0, 1, 0, 1, 0]

    def test_isolated_node_stops(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        adjacency = CompressedAdjacency.from_networkx(graph)
        result = run_query(
            adjacency,
            {},
            RandomWalkPolicy(),
            np.ones(2),
            start_node=0,
            config=WalkConfig(ttl=5),
        )
        assert result.path == [0]
        assert result.messages == 0

    def test_messages_equal_forwards(self, path_adjacency):
        result = run_query(
            path_adjacency,
            {},
            PrecomputedScorePolicy(np.arange(6, dtype=float)),
            np.ones(2),
            start_node=0,
            config=WalkConfig(ttl=4),
        )
        assert result.messages == len(result.visits) - 1

    def test_invalid_start_rejected(self, path_adjacency):
        with pytest.raises(ValueError):
            run_query(
                path_adjacency, {}, RandomWalkPolicy(), np.ones(2), start_node=99
            )


class TestDocumentCollection:
    def test_collects_local_documents(self, path_adjacency):
        stores = {
            0: make_store(2, near=[1.0, 0.0]),
            2: make_store(2, far=[0.9, 0.0]),
        }
        result = run_query(
            path_adjacency,
            stores,
            PrecomputedScorePolicy(np.arange(6, dtype=float)),
            np.array([1.0, 0.0]),
            start_node=0,
            config=WalkConfig(ttl=3, k=2),
        )
        assert result.found("near")
        assert result.found("far")
        assert result.hops_to("near") == 0
        assert result.hops_to("far") == 2

    def test_top1_keeps_only_best(self, path_adjacency):
        stores = {
            0: make_store(2, weak=[0.1, 0.0]),
            1: make_store(2, strong=[1.0, 0.0]),
        }
        result = run_query(
            path_adjacency,
            stores,
            PrecomputedScorePolicy(np.arange(6, dtype=float)),
            np.array([1.0, 0.0]),
            start_node=0,
            config=WalkConfig(ttl=2, k=1),
        )
        assert result.found("strong", top=1)
        assert not result.found("weak")
        assert result.best.doc_id == "strong"

    def test_found_top_parameter(self, path_adjacency):
        stores = {0: make_store(2, a=[1.0, 0.0], b=[0.5, 0.0])}
        result = run_query(
            path_adjacency,
            stores,
            RandomWalkPolicy(),
            np.array([1.0, 0.0]),
            start_node=0,
            config=WalkConfig(ttl=1, k=2),
        )
        assert result.found("b")
        assert not result.found("b", top=1)

    def test_discovery_hop_is_first_visit(self):
        """Re-visiting a node does not overwrite the discovery hop."""
        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(2))
        stores = {0: make_store(2, doc=[1.0, 0.0])}
        result = run_query(
            adjacency,
            stores,
            PrecomputedScorePolicy(np.zeros(2)),
            np.array([1.0, 0.0]),
            start_node=0,
            config=WalkConfig(ttl=5, k=1),
        )
        assert result.path == [0, 1, 0, 1, 0]
        assert result.hops_to("doc") == 0

    def test_hops_to_unknown_document(self, path_adjacency):
        result = run_query(
            path_adjacency, {}, RandomWalkPolicy(), np.ones(2), 0
        )
        assert result.hops_to("ghost") is None


class TestParallelWalks:
    def test_fanout_spawns_walkers(self):
        adjacency = CompressedAdjacency.from_networkx(nx.star_graph(4))
        result = run_query(
            adjacency,
            {},
            PrecomputedScorePolicy(np.array([0.0, 4.0, 3.0, 2.0, 1.0])),
            np.ones(2),
            start_node=0,
            config=WalkConfig(ttl=2, fanout=3),
        )
        # source + the 3 best-scoring leaves
        assert result.visits[0] == (0, 0)
        visited_leaves = {node for hop, node in result.visits if hop == 1}
        assert visited_leaves == {1, 2, 3}

    def test_fanout_finds_more(self, small_world_adjacency):
        """Parallel walks dominate a single walk on the same instance."""
        rng = np.random.default_rng(0)
        n = small_world_adjacency.n_nodes
        scores = rng.standard_normal(n)
        stores = {17: make_store(4, gold=[1.0, 0.0, 0.0, 0.0])}
        query = np.array([1.0, 0.0, 0.0, 0.0])
        single = run_query(
            small_world_adjacency, stores, PrecomputedScorePolicy(scores),
            query, 3, WalkConfig(ttl=10, fanout=1),
        )
        parallel = run_query(
            small_world_adjacency, stores, PrecomputedScorePolicy(scores),
            query, 3, WalkConfig(ttl=10, fanout=3),
        )
        assert parallel.unique_nodes_visited >= single.unique_nodes_visited
        assert parallel.messages >= single.messages


class TestSearchResultProperties:
    def test_empty_result_defaults(self, path_adjacency):
        result = run_query(
            path_adjacency, {}, RandomWalkPolicy(), np.ones(2), 0,
            WalkConfig(ttl=1),
        )
        assert result.results == []
        assert result.best is None
        assert result.hops_used == 0
        assert result.unique_nodes_visited == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WalkConfig(ttl=0)
        with pytest.raises(ValueError):
            WalkConfig(fanout=0)
        with pytest.raises(ValueError):
            WalkConfig(k=0)
