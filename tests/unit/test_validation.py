"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_int,
    check_matrix_2d,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
    check_vector_1d,
)


class TestCheckProbability:
    def test_accepts_bounds_inclusive(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_rejects_bounds_exclusive(self):
        with pytest.raises(ValueError):
            check_probability(0.0, "p", inclusive=False)
        with pytest.raises(ValueError):
            check_probability(1.0, "p", inclusive=False)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="p must be"):
            check_probability(1.5, "p")
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")

    def test_returns_float(self):
        assert isinstance(check_probability(1, "p"), float)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(3, "n") == 3

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            check_positive(0, "n")
        with pytest.raises(ValueError):
            check_positive(-1, "n")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "n") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.5, "n")


class TestArrayChecks:
    def test_matrix_2d_accepts(self):
        out = check_matrix_2d([[1, 2], [3, 4]], "m")
        assert out.shape == (2, 2)
        assert out.dtype == np.float64

    def test_matrix_2d_rejects_1d(self):
        with pytest.raises(ValueError):
            check_matrix_2d([1, 2, 3], "m")

    def test_vector_1d_accepts(self):
        out = check_vector_1d([1, 2, 3], "v")
        assert out.shape == (3,)

    def test_vector_1d_rejects_2d(self):
        with pytest.raises(ValueError):
            check_vector_1d([[1, 2]], "v")


class TestIntChecks:
    def test_check_int_accepts_python_and_numpy_ints(self):
        assert check_int(3, "n") == 3
        assert check_int(np.int64(3), "n") == 3
        assert isinstance(check_int(np.int64(3), "n"), int)

    def test_check_int_rejects_floats_even_integral(self):
        with pytest.raises(TypeError):
            check_int(3.0, "n")
        with pytest.raises(TypeError):
            check_int(np.float64(3.0), "n")

    def test_check_int_rejects_bool(self):
        # bool is an int subclass but never a sensible count/budget.
        with pytest.raises(TypeError):
            check_int(True, "n")

    def test_check_positive_int(self):
        assert check_positive_int(1, "n") == 1
        with pytest.raises(ValueError):
            check_positive_int(0, "n")
        with pytest.raises(TypeError):
            check_positive_int(1.5, "n")

    def test_check_non_negative_int(self):
        assert check_non_negative_int(0, "n") == 0
        with pytest.raises(ValueError):
            check_non_negative_int(-1, "n")
        with pytest.raises(TypeError):
            check_non_negative_int(0.0, "n")
