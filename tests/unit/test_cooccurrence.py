"""Tests for repro.embeddings.cooccurrence: the SPPMI+SVD trainer."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.embeddings.cooccurrence import (
    CooccurrenceCounts,
    count_cooccurrences,
    sppmi_matrix,
    train_svd_embeddings,
)
from repro.embeddings.text import ZipfCorpusConfig, generate_topic_corpus


class TestCountCooccurrences:
    def test_simple_window(self):
        counts = count_cooccurrences([["a", "b", "c"]], ["a", "b", "c"], window=1)
        m = counts.matrix.toarray()
        # pairs within window 1: (a,b), (b,c); symmetric
        assert m[0, 1] == 1 and m[1, 0] == 1
        assert m[1, 2] == 1 and m[2, 1] == 1
        assert m[0, 2] == 0

    def test_window_2_reaches_further(self):
        counts = count_cooccurrences([["a", "b", "c"]], ["a", "b", "c"], window=2)
        assert counts.matrix.toarray()[0, 2] == 1

    def test_oov_tokens_skipped(self):
        counts = count_cooccurrences([["a", "zzz", "b"]], ["a", "b"], window=1)
        # 'zzz' is filtered out, so a and b become window-adjacent
        assert counts.matrix.toarray()[0, 1] == 1

    def test_word_counts(self):
        counts = count_cooccurrences(
            [["a", "a", "b"], ["b"]], ["a", "b"], window=1
        )
        assert counts.word_counts[0] == 2
        assert counts.word_counts[1] == 2

    def test_symmetry(self):
        sentences = [["a", "b", "c", "a"], ["c", "b"]]
        counts = count_cooccurrences(sentences, ["a", "b", "c"], window=2)
        m = counts.matrix.toarray()
        assert np.allclose(m, m.T)

    def test_empty_corpus(self):
        counts = count_cooccurrences([], ["a", "b"], window=2)
        assert counts.matrix.nnz == 0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            CooccurrenceCounts(
                ["a", "b"], sp.csr_matrix((3, 3)), np.zeros(2), 0.0
            )


class TestSppmi:
    def test_empty_counts_give_empty_sppmi(self):
        counts = count_cooccurrences([], ["a", "b"])
        assert sppmi_matrix(counts).nnz == 0

    def test_values_non_negative(self):
        sentences = [["a", "b"], ["a", "b"], ["a", "c"]]
        counts = count_cooccurrences(sentences, ["a", "b", "c"], window=1)
        out = sppmi_matrix(counts)
        assert np.all(out.data >= 0)

    def test_larger_shift_sparser(self):
        rng = np.random.default_rng(0)
        sentences = [
            [f"w{rng.integers(10)}" for _ in range(8)] for _ in range(50)
        ]
        vocab = [f"w{i}" for i in range(10)]
        counts = count_cooccurrences(sentences, vocab, window=2)
        low = sppmi_matrix(counts, shift=1.0)
        high = sppmi_matrix(counts, shift=5.0)
        assert high.nnz <= low.nnz

    def test_frequent_pair_has_high_pmi(self):
        # 'a' and 'b' always co-occur; 'c' co-occurs with everything equally.
        sentences = [["a", "b"]] * 20 + [["c", "a"], ["c", "b"]]
        counts = count_cooccurrences(sentences, ["a", "b", "c"], window=1)
        out = sppmi_matrix(counts).toarray()
        assert out[0, 1] > out[0, 2]


class TestTrainSvd:
    @pytest.fixture(scope="class")
    def trained_model(self):
        """Train on a topical corpus; same-topic words should embed close."""
        n_words, n_topics = 60, 4
        vocabulary = [f"w{i:02d}" for i in range(n_words)]
        topic_of = np.array([i % n_topics for i in range(n_words)])
        frequencies = np.ones(n_words)
        sentences = list(
            generate_topic_corpus(
                vocabulary,
                topic_of,
                frequencies,
                ZipfCorpusConfig(n_sentences=3000, sentence_length=10,
                                 topic_adherence=0.95),
                seed=5,
            )
        )
        counts = count_cooccurrences(sentences, vocabulary, window=3)
        model = train_svd_embeddings(counts, dim=16)
        return model, topic_of

    def test_output_shape(self, trained_model):
        model, _ = trained_model
        assert model.dim == 16
        assert len(model) == 60

    def test_vectors_normalized(self, trained_model):
        model, _ = trained_model
        norms = np.linalg.norm(model.vectors, axis=1)
        assert np.allclose(norms[norms > 0], 1.0)

    def test_same_topic_words_closer(self, trained_model):
        """The headline property: topical co-occurrence produces clusters."""
        model, topic_of = trained_model
        vectors = model.vectors
        same, cross = [], []
        for i in range(len(model)):
            for j in range(i + 1, len(model)):
                sim = float(vectors[i] @ vectors[j])
                (same if topic_of[i] == topic_of[j] else cross).append(sim)
        assert np.mean(same) > np.mean(cross) + 0.2

    def test_dim_too_large_raises(self):
        counts = count_cooccurrences([["a", "b"]], ["a", "b"])
        with pytest.raises(ValueError):
            train_svd_embeddings(counts, dim=2)

    def test_empty_sppmi_raises(self):
        counts = count_cooccurrences([], ["a", "b", "c"])
        with pytest.raises(ValueError, match="empty"):
            train_svd_embeddings(counts, dim=1)
