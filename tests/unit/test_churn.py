"""Tests for the churn subsystem (repro.churn).

Pins the load-bearing contracts:

* churn streams are a pure function of (config, seed) and every emitted
  event is feasible at its time;
* staleness tracking coalesces repeated churn per node and its bound
  dominates the true L1 error (validated against exact recomputes);
* the SLO scheduler's decision matrix — defer within target, cheapest
  affordable action over it, explicit budget-exhausted degradation with
  banked amortization of full recomputes;
* the network-level dirty machinery stays O(distinct dirty nodes), not
  O(churn events) — the coalescing regression guard;
* churn streams, fault plans, and query arrivals compose on one
  EventQueue without perturbing each other's sequences.
"""

import math

import networkx as nx
import numpy as np
import pytest

from repro.churn import (
    CHURN_KINDS,
    ChurnEvent,
    ChurnRates,
    ChurnStream,
    RefreshCostModel,
    RefreshSLO,
    RefreshScheduler,
    SignalChurnState,
    StalenessTracker,
    apply_churn_event,
    check_strategy,
)
from repro.core.search import DiffusionSearchNetwork
from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.generators import connected_watts_strogatz
from repro.gsp.normalization import transition_matrix
from repro.runtime.events import EventQueue
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.simulation.refresh import SignalRefresher

RATES = ChurnRates(
    doc_add=1.0, doc_move=2.0, doc_delete=0.5, node_leave=0.2, node_join=0.2
)


def make_network(n=30, dim=6, docs=12, seed=0):
    graph = nx.connected_watts_strogatz_graph(n, 4, 0.3, seed=seed)
    net = DiffusionSearchNetwork(graph, dim=dim, alpha=0.5)
    rng = np.random.default_rng(seed)
    for d in range(docs):
        net.place_document(f"doc{d}", rng.standard_normal(dim), int(rng.integers(n)))
    return net


# ------------------------------------------------------------------ the stream


class TestChurnStream:
    def test_deterministic_by_seed(self):
        a = ChurnStream(20, RATES, seed=7).events(n=100)
        b = ChurnStream(20, RATES, seed=7).events(n=100)
        assert a == b

    def test_different_seeds_differ(self):
        a = ChurnStream(20, RATES, seed=7).events(n=50)
        b = ChurnStream(20, RATES, seed=8).events(n=50)
        assert a != b

    def test_events_method_is_pure(self):
        stream = ChurnStream(20, RATES, seed=3)
        assert stream.events(n=40) == stream.events(n=40)

    def test_horizon_mode_bounds_times(self):
        events = ChurnStream(20, RATES, seed=1).events(horizon=10.0)
        assert events
        assert all(e.time <= 10.0 for e in events)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_exactly_one_of_horizon_or_n(self):
        stream = ChurnStream(20, RATES, seed=0)
        with pytest.raises(ValueError, match="exactly one"):
            stream.events()
        with pytest.raises(ValueError, match="exactly one"):
            stream.events(horizon=1.0, n=5)

    def test_every_event_feasible(self):
        """Replaying the stream against its own bookkeeping never breaks."""
        events = ChurnStream(10, RATES, seed=5).events(n=500)
        placement: dict[str, int] = {}
        live = set(range(10))
        for event in events:
            if event.kind == "doc_add":
                assert event.doc_id not in placement
                assert event.node in live
                placement[event.doc_id] = event.node
            elif event.kind == "doc_move":
                assert placement[event.doc_id] == event.origin
                assert event.node in live
                placement[event.doc_id] = event.node
            elif event.kind == "doc_delete":
                assert placement.pop(event.doc_id) == event.node
            elif event.kind == "node_leave":
                assert event.node in live and len(live) > 1
                live.discard(event.node)
                for doc in [d for d, v in placement.items() if v == event.node]:
                    del placement[doc]
            else:
                assert event.node not in live
                live.add(event.node)

    def test_initial_placement_validated(self):
        with pytest.raises(ValueError, match="out of range"):
            ChurnStream(5, RATES, initial_placement={"d": 9})

    def test_doc_only_churn_never_touches_nodes(self):
        rates = ChurnRates(doc_add=1.0, doc_move=1.0, doc_delete=1.0)
        events = ChurnStream(8, rates, seed=2).events(n=200)
        assert all(e.kind.startswith("doc_") for e in events)

    def test_delete_only_stream_dries_up(self):
        rates = ChurnRates(doc_delete=1.0)
        stream = ChurnStream(4, rates, initial_placement={"a": 0, "b": 1}, seed=0)
        events = stream.events(n=100)
        assert len(events) == 2  # nothing left to delete afterwards
        assert {e.doc_id for e in events} == {"a", "b"}

    def test_all_zero_rates_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            ChurnRates()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown churn kind"):
            ChurnEvent(0.0, "doc_rename")

    def test_kinds_tuple_stable(self):
        assert CHURN_KINDS == (
            "doc_add", "doc_move", "doc_delete", "node_leave", "node_join"
        )


class TestApplyChurnEvent:
    def embedding_of(self, doc_id):
        return np.random.default_rng(abs(hash(doc_id)) % 2**32).standard_normal(6)

    def test_replay_matches_stream_bookkeeping(self):
        net = make_network(docs=0)
        stream = ChurnStream(30, RATES, seed=9)
        for event in stream.events(n=300):
            apply_churn_event(net, event, embedding_of=self.embedding_of)
        # Network placement equals the stream's own final placement.
        replay = ChurnStream(30, RATES, seed=9)
        placement: dict[str, int] = {}
        live = set(range(30))
        for event in replay.events(n=300):
            if event.kind in ("doc_add", "doc_move"):
                placement[event.doc_id] = event.node
            elif event.kind == "doc_delete":
                del placement[event.doc_id]
            elif event.kind == "node_leave":
                live.discard(event.node)
                for doc in [d for d, v in placement.items() if v == event.node]:
                    del placement[doc]
            else:
                live.add(event.node)
        assert placement == {
            d: net.location_of(d) for d in placement
        }
        assert net.n_documents == len(placement)

    def test_doc_add_requires_embedding(self):
        net = make_network()
        with pytest.raises(ValueError, match="embedding_of"):
            apply_churn_event(net, ChurnEvent(0.0, "doc_add", doc_id="x", node=0))

    def test_move_preserves_embedding(self):
        net = make_network(docs=0)
        vec = np.arange(6, dtype=float)
        net.place_document("d", vec, 3)
        apply_churn_event(
            net, ChurnEvent(0.0, "doc_move", doc_id="d", node=7, origin=3)
        )
        assert net.location_of("d") == 7
        np.testing.assert_array_equal(net.stores[7].embedding_of("d"), vec)

    def test_node_leave_drops_documents(self):
        net = make_network(docs=0)
        net.place_document("a", np.ones(6), 2)
        net.place_document("b", np.ones(6), 2)
        net.place_document("c", np.ones(6), 5)
        apply_churn_event(net, ChurnEvent(0.0, "node_leave", node=2))
        assert net.n_documents == 1
        assert net.location_of("c") == 5

    def test_composes_with_fault_injector_on_one_queue(self):
        """Churn + faults + queries interleave deterministically on one clock."""
        def run():
            queue = EventQueue()
            log: list[tuple[float, str]] = []
            stream = ChurnStream(10, RATES, seed=4)
            stream.install(queue, lambda e: log.append((e.time, e.kind)), n=30)
            # The injector draws from its own seeded generator; consuming
            # fault randomness between churn dispatches must not perturb
            # the churn sequence (independent streams).
            injector = FaultInjector(
                FaultPlan.generate(
                    10, crash_fraction=0.3, drop_probability=0.5, seed=6
                )
            )
            for t in np.linspace(0.1, 5.0, 17):
                queue.schedule_at(
                    float(t),
                    lambda t=t: (injector.deliver(0, 1), log.append((t, "query"))),
                )
            while queue.step():
                pass
            return log, injector.dropped

        first, second = run(), run()
        assert first == second
        log, _ = first
        assert [t for t, _ in log] == sorted(t for t, _ in log)
        assert sum(1 for _, kind in log if kind == "query") == 17
        assert sum(1 for _, kind in log if kind != "query") == 30
        # The interleaved run's churn sequence equals the pure generation.
        pure = [
            (e.time, e.kind) for e in ChurnStream(10, RATES, seed=4).events(n=30)
        ]
        assert [entry for entry in log if entry[1] != "query"] == pure


# ------------------------------------------------------------ staleness bounds


class TestStalenessTracker:
    def test_unknown_baseline_bound_is_inf(self):
        tracker = StalenessTracker()
        assert math.isinf(tracker.bound())
        assert not tracker.baseline_known

    def test_full_refresh_establishes_baseline(self):
        tracker = StalenessTracker()
        tracker.record_refresh(1e-9, full=True)
        assert tracker.baseline_known
        assert tracker.bound() == pytest.approx(1e-9)

    def test_pending_coalesces_per_node(self):
        tracker = StalenessTracker()
        tracker.record_refresh(0.0, full=True)
        for delta in (1.0, 3.0, 0.5):
            tracker.set_pending(4, delta)
        assert tracker.dirty_count == 1
        assert tracker.dirty_mass == pytest.approx(0.5)

    def test_zero_delta_clears_entry(self):
        tracker = StalenessTracker()
        tracker.record_refresh(0.0, full=True)
        tracker.set_pending(4, 1.0)
        tracker.set_pending(4, 0.0)  # churned back to baseline
        assert tracker.dirty_count == 0
        assert tracker.bound() == 0.0

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            StalenessTracker().set_pending(0, -1.0)

    def test_incremental_residual_accumulates_full_resets(self):
        tracker = StalenessTracker()
        tracker.record_refresh(1e-3, full=True)
        tracker.record_refresh(1e-3, full=False)
        tracker.record_refresh(1e-3, full=False)
        assert tracker.accumulated_residual_l1 == pytest.approx(3e-3)
        tracker.record_refresh(1e-6, full=True)
        assert tracker.accumulated_residual_l1 == pytest.approx(1e-6)

    def test_invalidate_restores_inf(self):
        tracker = StalenessTracker()
        tracker.record_refresh(0.0, full=True)
        tracker.set_pending(1, 2.0)
        tracker.invalidate()
        assert math.isinf(tracker.bound())
        assert tracker.dirty_count == 0


class TestSignalChurnState:
    @pytest.fixture(scope="class")
    def operator(self):
        adjacency = CompressedAdjacency.from_networkx(
            connected_watts_strogatz(50, 4, 0.2, seed=11)
        )
        return transition_matrix(adjacency, "column")

    def test_bound_dominates_true_error(self, operator):
        """The cheap bound must never under-report the served L1 error."""
        refresher = SignalRefresher(operator, 0.5, tol=1e-10)
        stream = ChurnStream(50, RATES, seed=13)
        state = SignalChurnState(50)
        served = refresher.cold_start(state.signal.copy()).scores
        state.commit_refresh(0.0, full=True)
        for i, event in enumerate(stream.events(n=400)):
            state.apply(event)
            if i % 80 == 79:
                exact = refresher.cold_start(state.signal.copy())
                true_error = float(np.abs(served - exact.scores).sum())
                assert state.bound() >= true_error - 1e-9
        assert state.dirty_mass > 0

    def test_signal_tracks_placement_mass(self):
        state = SignalChurnState(10, initial_placement={"a": 0, "b": 0, "c": 3})
        assert state.signal[0] == pytest.approx(2.0)
        state.apply(ChurnEvent(0.0, "doc_move", doc_id="a", node=5, origin=0))
        state.apply(ChurnEvent(0.1, "doc_delete", doc_id="c", node=3))
        assert state.signal[0] == pytest.approx(1.0)
        assert state.signal[5] == pytest.approx(1.0)
        assert state.signal[3] == pytest.approx(0.0)

    def test_node_leave_zeroes_its_mass(self):
        state = SignalChurnState(6, initial_placement={"a": 2, "b": 2, "c": 1})
        state.apply(ChurnEvent(0.0, "node_leave", node=2))
        assert state.signal[2] == pytest.approx(0.0)
        assert state.placement == {"c": 1}

    def test_pending_tracked_only_after_baseline(self):
        state = SignalChurnState(6, initial_placement={"a": 2})
        state.apply(ChurnEvent(0.0, "doc_move", doc_id="a", node=3, origin=2))
        assert state.dirty_mass == 0.0  # no baseline yet
        state.commit_refresh(0.0, full=True)
        state.apply(ChurnEvent(0.1, "doc_move", doc_id="a", node=4, origin=3))
        assert state.dirty_mass == pytest.approx(2.0)  # one off, one on


# ------------------------------------------------------------------- scheduler


def make_model(**observed):
    model = RefreshCostModel(nnz=200, alpha=0.5, tol=1e-8)
    for strategy, (mass, ops) in observed.items():
        model.observe(strategy, mass, ops)
    return model


class TestRefreshCostModel:
    def test_stale_is_free(self):
        assert make_model().estimate("stale", 5.0) == 0.0

    def test_prior_before_observation(self):
        model = make_model()
        assert model.estimate("full") > 0
        assert model.estimate("incremental", 1.0) > 0

    def test_full_estimate_tracks_observations(self):
        model = make_model(full=(0.0, 4000))
        assert model.estimate("full") == pytest.approx(4000.0)

    def test_incremental_rate_scales_with_mass(self):
        model = make_model(incremental=(2.0, 500))  # 250 ops per unit mass
        assert model.estimate("incremental", 4.0) == pytest.approx(1000.0)

    def test_full_observation_seeds_incremental_rate(self):
        model = make_model(full=(10.0, 5000))
        assert model.estimate("incremental", 1.0) == pytest.approx(500.0)

    def test_crossover_not_clamped(self):
        """Large dirty mass must be allowed to price above a full run."""
        model = make_model(full=(0.0, 1000), incremental=(1.0, 400))
        assert model.estimate("incremental", 10.0) > model.estimate("full")

    def test_affine_fit_learns_constant_term(self):
        """Push cost has a large fixed sweep term; the fit must see it.

        Two observations at different masses: a proportional-only model
        would extrapolate ~100 ops/unit from the blend and misprice both
        a tiny delta (far too cheap per-op) and a mid-size one (too
        expensive, flipping the scheduler to full at the wrong point).
        """
        model = make_model(incremental=(10.0, 1000))
        model.observe("incremental", 30.0, 1400)
        # EWMA moments give slope 20, intercept 800.
        assert model.estimate("incremental", 1.0) == pytest.approx(820.0)
        assert model.estimate("incremental", 50.0) == pytest.approx(1800.0)
        # Monotone in mass: the crossover with full stays visible.
        assert model.estimate("incremental", 200.0) > model.estimate(
            "incremental", 50.0
        )

    def test_affine_fit_degenerates_to_rate_on_constant_mass(self):
        model = make_model(incremental=(5.0, 500))
        model.observe("incremental", 5.0, 700)  # same mass, noisier ops
        # No mass variance: through-origin pricing from blended ops.
        assert model.estimate("incremental", 10.0) == pytest.approx(1200.0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="refresh strategy"):
            make_model().estimate("lazy")
        with pytest.raises(ValueError, match="refresh strategy"):
            make_model().observe("lazy", 0.0, 1)

    def test_check_strategy_lists_options(self):
        with pytest.raises(ValueError, match="stale.*incremental.*full"):
            check_strategy("nope")


class TestRefreshScheduler:
    def scheduler(self, target=1.0, per_tick=math.inf, banked=10.0, **observed):
        slo = RefreshSLO(
            staleness_target=target,
            refresh_budget_per_tick=per_tick,
            max_banked_ticks=banked,
        )
        return RefreshScheduler(slo, make_model(**observed))

    def test_within_target_defers(self):
        sched = self.scheduler(target=1.0)
        decision = sched.decide(0.5, 0.5)
        assert decision.action == "defer"
        assert decision.reason == "within_slo"
        assert decision.within_slo
        assert sched.slo_violations == 0

    def test_no_baseline_forces_full(self):
        decision = self.scheduler().decide(math.inf, 0.0)
        assert (decision.action, decision.reason) == ("full", "no_baseline")

    def test_residual_only_breach_forces_full(self):
        # Dirty mass zero but bound over target: only a re-baseline helps.
        decision = self.scheduler(target=0.1).decide(0.5, 0.0)
        assert (decision.action, decision.reason) == ("full", "residual_only")

    def test_picks_cheaper_action(self):
        sched = self.scheduler(
            target=0.1, full=(0.0, 1000), incremental=(1.0, 100)
        )
        assert sched.decide(1.0, 1.0).action == "incremental"
        assert sched.decide(1.0, 50.0).action == "full"  # past the crossover

    def test_budget_exhausted_defers_and_counts_violation(self):
        sched = self.scheduler(
            target=0.1, per_tick=10.0, full=(0.0, 1000), incremental=(1.0, 100)
        )
        sched.tick()
        decision = sched.decide(1.0, 1.0)
        assert (decision.action, decision.reason) == ("defer", "budget_exhausted")
        assert not decision.within_slo
        assert sched.slo_violations == 1

    def test_banked_budget_amortizes_full(self):
        sched = self.scheduler(
            target=0.1, per_tick=300.0, banked=5.0, full=(0.0, 1000)
        )
        verdicts = []
        for _ in range(4):
            sched.tick()
            decision = sched.decide(math.inf, 0.0)
            verdicts.append(decision.action)
            if decision.action != "defer":
                sched.commit(decision, 1000)
        # Three deferred ticks bank 900 < 1000; the fourth affords the full.
        assert verdicts == ["defer", "defer", "defer", "full"]

    def test_bank_caps_at_max_ticks(self):
        sched = self.scheduler(per_tick=10.0, banked=3.0)
        for _ in range(50):
            sched.tick()
        assert sched.banked_budget == pytest.approx(30.0)

    def test_commit_spends_observed_cost_and_can_go_negative(self):
        sched = self.scheduler(
            target=0.1, per_tick=100.0, full=(0.0, 50), incremental=(1.0, 10)
        )
        sched.tick()
        decision = sched.decide(1.0, 1.0)
        sched.commit(decision, 180)  # observed overshoots the estimate
        assert sched.banked_budget == pytest.approx(-80.0)

    def test_commit_defer_rejected(self):
        sched = self.scheduler(target=1.0)
        with pytest.raises(ValueError, match="defer"):
            sched.commit(sched.decide(0.0, 0.0), 10)

    def test_summary_shape(self):
        sched = self.scheduler()
        sched.tick()
        sched.decide(0.0, 0.0)
        summary = sched.summary()
        assert summary["ticks"] == 1
        assert summary["decisions"]["defer"] == 1
        assert set(summary) >= {
            "ticks", "decisions", "slo_violations", "total_refresh_operations"
        }

    def test_invalid_slo_rejected(self):
        with pytest.raises(ValueError, match="refresh_budget_per_tick"):
            RefreshSLO(staleness_target=1.0, refresh_budget_per_tick=0.0)
        with pytest.raises(ValueError):
            RefreshSLO(staleness_target=-1.0)


# ------------------------------------------------- network dirty-mass machinery


class TestNetworkStaleness:
    def test_bound_inf_before_first_diffusion(self):
        net = make_network()
        assert math.isinf(net.staleness_bound())

    def test_bound_small_after_diffusion(self):
        net = make_network()
        net.diffuse(method="push", tol=1e-9)
        assert net.staleness_bound() < 1e-6
        assert net.dirty_mass == 0.0

    def test_repeated_moves_coalesce(self):
        """Satellite regression guard: cost is O(distinct dirty), not O(events)."""
        def churned(moves):
            net = make_network(seed=3)
            net.diffuse(method="push", tol=1e-9)
            vec = np.array(net.stores[net.location_of("doc0")].embedding_of("doc0"))
            for i in range(moves):
                net.remove_document("doc0")
                # Bounce between two fixed nodes; end on the same node
                # regardless of `moves` so final states are comparable.
                net.place_document("doc0", vec, 21 if i % 2 == 0 else 22)
            if moves % 2 == 0:  # ended on 22's turn count; normalize to 21
                net.remove_document("doc0")
                net.place_document("doc0", vec, 21)
            return net

        once = churned(1)
        many = churned(25)
        # Dirty bookkeeping scales with distinct nodes touched, not events.
        assert many.dirty_nodes == once.dirty_nodes | {22}
        assert many.staleness.dirty_count <= 3
        assert many.dirty_mass == pytest.approx(once.dirty_mass, rel=1e-9)
        ops_once = once.diffuse(method="push", tol=1e-9).operations
        ops_many = many.diffuse(method="push", tol=1e-9).operations
        assert ops_many == ops_once
        np.testing.assert_allclose(once.embeddings, many.embeddings)

    def test_bound_dominates_true_embedding_error(self):
        net = make_network(seed=4)
        net.diffuse(method="push", tol=1e-9)
        served = net.embeddings.copy()
        rng = np.random.default_rng(17)
        for d in range(5):
            doc = f"doc{d}"
            node = net.location_of(doc)
            vec = np.array(net.stores[node].embedding_of(doc), copy=True)
            net.remove_document(doc)
            net.place_document(doc, vec, int(rng.integers(30)))
        bound = net.staleness_bound()
        fresh = make_network(seed=4)
        fresh.clear_documents()
        for doc in list(net._doc_locations):
            node = net.location_of(doc)
            fresh.place_document(
                doc, np.array(net.stores[node].embedding_of(doc)), node
            )
        fresh.diffuse(method="push", tol=1e-9)
        true_error = float(np.abs(served - fresh.embeddings).sum())
        assert bound >= true_error - 1e-9
        assert not math.isinf(bound)

    def test_churn_back_to_baseline_zeroes_mass(self):
        net = make_network(seed=5)
        net.diffuse(method="push", tol=1e-9)
        node = net.location_of("doc0")
        vec = np.array(net.stores[node].embedding_of("doc0"), copy=True)
        net.remove_document("doc0")
        assert net.dirty_mass > 0
        net.place_document("doc0", vec, node)  # exactly undone
        assert net.dirty_mass == pytest.approx(0.0, abs=1e-12)

    def test_clear_documents_counts_full_mass(self):
        net = make_network(seed=6)
        net.diffuse(method="push", tol=1e-9)
        net.clear_documents()
        # Every previously-occupied row is now pending at its full mass.
        assert net.dirty_mass > 0
        assert net.staleness.dirty_count == len(net.dirty_nodes)

    def test_truncated_full_run_invalidates_bound(self):
        net = make_network(seed=7)
        net.diffuse(method="power", max_iterations=1)  # cannot converge
        assert math.isinf(net.staleness_bound())
