"""Tests for repro.embeddings.similarity."""

import numpy as np
import pytest

from repro.embeddings.similarity import (
    cosine_similarity,
    dot_scores,
    l2_normalize,
    pairwise_cosine,
)


class TestL2Normalize:
    def test_unit_norm_1d(self):
        out = l2_normalize(np.array([3.0, 4.0]))
        assert np.isclose(np.linalg.norm(out), 1.0)
        assert np.allclose(out, [0.6, 0.8])

    def test_unit_norm_2d(self):
        out = l2_normalize(np.array([[3.0, 4.0], [1.0, 0.0]]))
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0)

    def test_zero_vector_stays_zero(self):
        assert np.allclose(l2_normalize(np.zeros(4)), 0.0)

    def test_zero_row_in_matrix_stays_zero(self):
        mat = np.array([[0.0, 0.0], [1.0, 1.0]])
        out = l2_normalize(mat)
        assert np.allclose(out[0], 0.0)
        assert np.isclose(np.linalg.norm(out[1]), 1.0)

    def test_does_not_mutate_input(self):
        arr = np.array([2.0, 0.0])
        l2_normalize(arr)
        assert arr[0] == 2.0

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            l2_normalize(np.zeros((2, 2, 2)))


class TestDotScores:
    def test_matches_manual(self):
        q = np.array([1.0, 2.0])
        docs = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        assert np.allclose(dot_scores(q, docs), [1.0, 2.0, 3.0])

    def test_single_document_vector(self):
        assert np.allclose(dot_scores(np.array([1.0, 1.0]), np.array([2.0, 3.0])), [5.0])

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError, match="dimension mismatch"):
            dot_scores(np.ones(3), np.ones((2, 4)))

    def test_2d_query_rejected(self):
        with pytest.raises(ValueError):
            dot_scores(np.ones((2, 2)), np.ones((2, 2)))


class TestCosineSimilarity:
    def test_identical_vectors(self):
        v = np.array([1.0, 2.0, 3.0])
        assert np.isclose(cosine_similarity(v, v)[0], 1.0)

    def test_orthogonal_vectors(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 5.0])
        assert np.isclose(cosine_similarity(a, b)[0], 0.0)

    def test_opposite_vectors(self):
        a = np.array([1.0, 0.0])
        assert np.isclose(cosine_similarity(a, -a)[0], -1.0)

    def test_scale_invariance(self):
        a = np.array([1.0, 2.0])
        b = np.array([[2.0, 1.0]])
        assert np.isclose(
            cosine_similarity(a, b)[0], cosine_similarity(10 * a, 5 * b)[0]
        )


class TestPairwiseCosine:
    def test_self_similarity_diagonal(self):
        rng = np.random.default_rng(0)
        mat = rng.standard_normal((5, 8))
        sims = pairwise_cosine(mat)
        assert np.allclose(np.diag(sims), 1.0)

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        mat = rng.standard_normal((6, 4))
        sims = pairwise_cosine(mat)
        assert np.allclose(sims, sims.T)

    def test_cross_matrix_shape(self):
        a = np.random.default_rng(2).standard_normal((3, 4))
        b = np.random.default_rng(3).standard_normal((5, 4))
        assert pairwise_cosine(a, b).shape == (3, 5)

    def test_bounded_by_one(self):
        rng = np.random.default_rng(4)
        sims = pairwise_cosine(rng.standard_normal((10, 6)))
        assert np.all(sims <= 1.0 + 1e-12)
        assert np.all(sims >= -1.0 - 1e-12)
