"""Tests for repro.gsp.convolution."""

import networkx as nx
import numpy as np
import pytest

from repro.gsp.convolution import k_hop_aggregate, propagate
from repro.gsp.normalization import transition_matrix


@pytest.fixture
def path_operator():
    return transition_matrix(nx.path_graph(4), "column")


class TestPropagate:
    def test_zero_hops_identity(self, path_operator):
        signal = np.array([1.0, 2.0, 3.0, 4.0])
        assert np.allclose(propagate(path_operator, signal, hops=0), signal)

    def test_one_hop_matches_matmul(self, path_operator):
        signal = np.array([1.0, 0.0, 0.0, 0.0])
        expected = path_operator @ signal
        assert np.allclose(propagate(path_operator, signal, 1), expected)

    def test_two_hops_compose(self, path_operator):
        signal = np.array([1.0, 0.0, 0.0, 0.0])
        once = propagate(path_operator, signal, 1)
        twice = propagate(path_operator, once, 1)
        assert np.allclose(propagate(path_operator, signal, 2), twice)

    def test_matrix_signal_per_column(self, path_operator):
        signal = np.eye(4)[:, :2]
        out = propagate(path_operator, signal, 1)
        for col in range(2):
            assert np.allclose(out[:, col], propagate(path_operator, signal[:, col], 1))

    def test_mass_conserved_under_column_normalization(self, path_operator):
        signal = np.array([1.0, 2.0, 0.0, 1.0])
        out = propagate(path_operator, signal, 5)
        assert out.sum() == pytest.approx(signal.sum())

    def test_shape_mismatch_raises(self, path_operator):
        with pytest.raises(ValueError):
            propagate(path_operator, np.zeros(5))

    def test_negative_hops_raises(self, path_operator):
        with pytest.raises(ValueError):
            propagate(path_operator, np.zeros(4), hops=-1)


class TestKHopAggregate:
    def test_degenerate_weights_identity(self, path_operator):
        signal = np.array([1.0, 2.0, 3.0, 4.0])
        assert np.allclose(k_hop_aggregate(path_operator, signal, np.array([1.0])), signal)

    def test_matches_manual_sum(self, path_operator):
        signal = np.array([1.0, 0.0, 2.0, 0.0])
        weights = np.array([0.5, 0.3, 0.2])
        expected = (
            0.5 * signal
            + 0.3 * propagate(path_operator, signal, 1)
            + 0.2 * propagate(path_operator, signal, 2)
        )
        assert np.allclose(k_hop_aggregate(path_operator, signal, weights), expected)

    def test_empty_weights_rejected(self, path_operator):
        with pytest.raises(ValueError):
            k_hop_aggregate(path_operator, np.zeros(4), np.array([]))
