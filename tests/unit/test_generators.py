"""Tests for the classic topology generators (connectivity guarantee)."""

import networkx as nx
import pytest

from repro.graphs.generators import (
    connected_barabasi_albert,
    connected_erdos_renyi,
    connected_powerlaw_cluster,
    connected_watts_strogatz,
    grid_graph,
    random_regular,
)


class TestConnectivity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_erdos_renyi_connected_even_when_sparse(self, seed):
        # p low enough that raw G(n, p) is usually disconnected
        graph = connected_erdos_renyi(100, 0.01, seed=seed)
        assert nx.is_connected(graph)

    def test_barabasi_albert(self):
        graph = connected_barabasi_albert(80, 3, seed=0)
        assert nx.is_connected(graph)
        assert graph.number_of_nodes() == 80

    def test_watts_strogatz(self):
        graph = connected_watts_strogatz(60, 6, 0.3, seed=0)
        assert nx.is_connected(graph)

    def test_powerlaw_cluster(self):
        graph = connected_powerlaw_cluster(80, 4, 0.5, seed=0)
        assert nx.is_connected(graph)

    def test_random_regular(self):
        graph = random_regular(50, 4, seed=0)
        assert nx.is_connected(graph)
        # repair may add a few edges; degrees stay close to d
        degrees = [d for _, d in graph.degree()]
        assert min(degrees) >= 4


class TestDeterminism:
    def test_same_seed_same_graph(self):
        a = connected_watts_strogatz(40, 4, 0.2, seed=9)
        b = connected_watts_strogatz(40, 4, 0.2, seed=9)
        assert set(a.edges()) == set(b.edges())


class TestGrid:
    def test_size_and_degrees(self):
        graph = grid_graph(3, 4)
        assert graph.number_of_nodes() == 12
        degrees = sorted(d for _, d in graph.degree())
        assert degrees[0] == 2  # corners
        assert degrees[-1] <= 4

    def test_integer_labels(self):
        graph = grid_graph(2, 2)
        assert set(graph.nodes()) == {0, 1, 2, 3}


class TestValidation:
    def test_ba_m_too_large(self):
        with pytest.raises(ValueError):
            connected_barabasi_albert(5, 5)

    def test_regular_parity(self):
        with pytest.raises(ValueError, match="even"):
            random_regular(5, 3)

    def test_regular_d_too_large(self):
        with pytest.raises(ValueError):
            random_regular(4, 4)

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            connected_erdos_renyi(10, 1.5)


class TestCycleUnionAdjacency:
    def test_structure(self):
        from repro.graphs.generators import cycle_union_adjacency

        adjacency = cycle_union_adjacency(500, 10, seed=3)
        assert adjacency.n_nodes == 500
        degrees = adjacency.degrees
        # union of 5 Hamiltonian cycles: degree 10 minus rare collisions
        assert degrees.min() >= 2
        assert degrees.max() <= 10
        assert degrees.mean() > 9.0

    def test_connected(self):
        from repro.graphs.generators import cycle_union_adjacency
        from repro.graphs.metrics import bfs_distances

        adjacency = cycle_union_adjacency(300, 4, seed=5)
        distances = bfs_distances(adjacency, 0)
        assert (distances >= 0).all()  # every node reachable

    def test_symmetric_and_sorted(self):
        import numpy as np

        from repro.graphs.generators import cycle_union_adjacency

        adjacency = cycle_union_adjacency(100, 6, seed=1)
        for node in range(0, 100, 17):
            neighbors = adjacency.neighbors(node)
            assert np.all(np.diff(neighbors) > 0)  # sorted, no duplicates
            for other in neighbors:
                assert adjacency.has_edge(int(other), node)

    def test_same_seed_same_graph(self):
        import numpy as np

        from repro.graphs.generators import cycle_union_adjacency

        a = cycle_union_adjacency(200, 8, seed=9)
        b = cycle_union_adjacency(200, 8, seed=9)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)

    def test_too_small_rejected(self):
        import pytest

        from repro.graphs.generators import cycle_union_adjacency

        with pytest.raises(ValueError):
            cycle_union_adjacency(2, 4)


class TestCommunityCycleAdjacency:
    def test_connected_with_planted_blocks(self):
        import networkx as nx
        import numpy as np

        from repro.graphs.generators import community_cycle_adjacency

        adj = community_cycle_adjacency(
            400, degree=8, n_communities=4, cross_fraction=0.05, seed=1
        )
        assert adj.n_nodes == 400
        assert nx.is_connected(adj.to_networkx())
        # Near-regular: every node close to `degree` neighbors.
        assert abs(adj.degrees.mean() - 8) < 1.5
        # Most edges stay inside the contiguous 100-node blocks.
        src = np.repeat(np.arange(400), adj.degrees)
        same_block = (src // 100) == (adj.indices // 100)
        assert same_block.mean() > 0.85

    def test_deterministic(self):
        import numpy as np

        from repro.graphs.generators import community_cycle_adjacency

        a = community_cycle_adjacency(300, n_communities=3, seed=5)
        b = community_cycle_adjacency(300, n_communities=3, seed=5)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)

    def test_too_few_nodes_per_community_raises(self):
        from repro.graphs.generators import community_cycle_adjacency

        with pytest.raises(ValueError):
            community_cycle_adjacency(8, n_communities=4)
