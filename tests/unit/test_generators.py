"""Tests for the classic topology generators (connectivity guarantee)."""

import networkx as nx
import pytest

from repro.graphs.generators import (
    connected_barabasi_albert,
    connected_erdos_renyi,
    connected_powerlaw_cluster,
    connected_watts_strogatz,
    grid_graph,
    random_regular,
)


class TestConnectivity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_erdos_renyi_connected_even_when_sparse(self, seed):
        # p low enough that raw G(n, p) is usually disconnected
        graph = connected_erdos_renyi(100, 0.01, seed=seed)
        assert nx.is_connected(graph)

    def test_barabasi_albert(self):
        graph = connected_barabasi_albert(80, 3, seed=0)
        assert nx.is_connected(graph)
        assert graph.number_of_nodes() == 80

    def test_watts_strogatz(self):
        graph = connected_watts_strogatz(60, 6, 0.3, seed=0)
        assert nx.is_connected(graph)

    def test_powerlaw_cluster(self):
        graph = connected_powerlaw_cluster(80, 4, 0.5, seed=0)
        assert nx.is_connected(graph)

    def test_random_regular(self):
        graph = random_regular(50, 4, seed=0)
        assert nx.is_connected(graph)
        # repair may add a few edges; degrees stay close to d
        degrees = [d for _, d in graph.degree()]
        assert min(degrees) >= 4


class TestDeterminism:
    def test_same_seed_same_graph(self):
        a = connected_watts_strogatz(40, 4, 0.2, seed=9)
        b = connected_watts_strogatz(40, 4, 0.2, seed=9)
        assert set(a.edges()) == set(b.edges())


class TestGrid:
    def test_size_and_degrees(self):
        graph = grid_graph(3, 4)
        assert graph.number_of_nodes() == 12
        degrees = sorted(d for _, d in graph.degree())
        assert degrees[0] == 2  # corners
        assert degrees[-1] <= 4

    def test_integer_labels(self):
        graph = grid_graph(2, 2)
        assert set(graph.nodes()) == {0, 1, 2, 3}


class TestValidation:
    def test_ba_m_too_large(self):
        with pytest.raises(ValueError):
            connected_barabasi_albert(5, 5)

    def test_regular_parity(self):
        with pytest.raises(ValueError, match="even"):
            random_regular(5, 3)

    def test_regular_d_too_large(self):
        with pytest.raises(ValueError):
            random_regular(4, 4)

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            connected_erdos_renyi(10, 1.5)
