"""Tests for the churn refresh strategies (simulation layer)."""

import numpy as np
import pytest

from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.generators import connected_watts_strogatz
from repro.gsp.filters import PersonalizedPageRank
from repro.gsp.normalization import transition_matrix
from repro.simulation.refresh import (
    REFRESH_STRATEGIES,
    SignalRefresher,
)

ALPHA = 0.5


@pytest.fixture(scope="module")
def operator():
    adjacency = CompressedAdjacency.from_networkx(
        connected_watts_strogatz(60, 4, 0.2, seed=21)
    )
    return transition_matrix(adjacency, "column")


@pytest.fixture(scope="module")
def signals():
    rng = np.random.default_rng(4)
    before = rng.standard_normal(60)
    after = before.copy()
    after[10] += 2.0
    after[30] = 0.0
    return before, after


def exact(operator, signal):
    return PersonalizedPageRank(ALPHA, method="solve").apply(operator, signal)


class TestSignalRefresher:
    def test_cold_start_matches_solve(self, operator, signals):
        before, _ = signals
        refresher = SignalRefresher(operator, ALPHA, tol=1e-10)
        outcome = refresher.cold_start(before)
        assert outcome.edge_operations > 0
        assert np.max(np.abs(outcome.scores - exact(operator, before))) < 1e-8

    def test_stale_is_free_and_unchanged(self, operator, signals):
        before, after = signals
        refresher = SignalRefresher(operator, ALPHA, tol=1e-10)
        base = refresher.cold_start(before)
        outcome = refresher.refresh("stale", base.scores, before, after)
        assert outcome.edge_operations == 0
        assert outcome.sweeps == 0
        assert np.array_equal(outcome.scores, base.scores)

    @pytest.mark.parametrize("strategy", ["incremental", "full"])
    def test_refresh_restores_exact_scores(self, operator, signals, strategy):
        before, after = signals
        refresher = SignalRefresher(operator, ALPHA, tol=1e-10)
        base = refresher.cold_start(before)
        outcome = refresher.refresh(strategy, base.scores, before, after)
        assert outcome.strategy == strategy
        assert np.max(np.abs(outcome.scores - exact(operator, after))) < 1e-7

    def test_incremental_and_full_agree(self, operator, signals):
        before, after = signals
        refresher = SignalRefresher(operator, ALPHA, tol=1e-10)
        base = refresher.cold_start(before)
        incremental = refresher.refresh("incremental", base.scores, before, after)
        full = refresher.refresh("full", base.scores, before, after)
        assert np.max(np.abs(incremental.scores - full.scores)) < 1e-7

    def test_unknown_strategy_rejected(self, operator, signals):
        before, after = signals
        refresher = SignalRefresher(operator, ALPHA)
        base = refresher.cold_start(before)
        with pytest.raises(ValueError, match="strategy"):
            refresher.refresh("lazy", base.scores, before, after)

    def test_unknown_strategy_rejected_at_entry(self, operator, signals):
        """Validation fires before any diffusion work, naming the options."""
        before, _ = signals
        refresher = SignalRefresher(operator, ALPHA)
        base = refresher.cold_start(before)
        # Scores/signals deliberately inconsistent: if validation ran after
        # the delta computation, this would fail differently (or not at all).
        with pytest.raises(ValueError, match="stale.*incremental.*full"):
            refresher.refresh("lazy", base.scores[:3], None, None)

    def test_strategy_tuple_stable(self):
        assert REFRESH_STRATEGIES == ("stale", "incremental", "full")

    def test_residual_l1_reported(self, operator, signals):
        before, after = signals
        refresher = SignalRefresher(operator, ALPHA, tol=1e-8)
        base = refresher.cold_start(before)
        assert 0.0 <= base.residual_l1 <= 60 * 1e-8
        outcome = refresher.refresh("incremental", base.scores, before, after)
        assert 0.0 <= outcome.residual_l1 <= 60 * 1e-8
        stale = refresher.refresh("stale", base.scores, before, after)
        assert stale.residual_l1 == 0.0


class TestCostEstimate:
    """The refresher's pricing — one brain shared with the SLO scheduler."""

    def test_stale_always_free(self, operator, signals):
        refresher = SignalRefresher(operator, ALPHA)
        assert refresher.cost_estimate("stale", 100.0) == 0.0

    def test_prior_positive_before_any_run(self, operator):
        refresher = SignalRefresher(operator, ALPHA)
        assert refresher.cost_estimate("full") > 0
        assert refresher.cost_estimate("incremental", 1.0) > 0

    def test_full_estimate_matches_observed_cold_start(self, operator, signals):
        before, _ = signals
        refresher = SignalRefresher(operator, ALPHA, tol=1e-10)
        outcome = refresher.cold_start(before)
        assert refresher.cost_estimate("full") == pytest.approx(
            float(outcome.edge_operations)
        )

    def test_incremental_estimate_improves_with_observation(
        self, operator, signals
    ):
        before, after = signals
        refresher = SignalRefresher(operator, ALPHA, tol=1e-10)
        base = refresher.cold_start(before)
        outcome = refresher.refresh("incremental", base.scores, before, after)
        dirty_mass = float(np.abs(after - before).sum())
        assert refresher.cost_estimate("incremental", dirty_mass) == (
            pytest.approx(float(outcome.edge_operations), rel=0.7)
        )

    def test_shared_model_object_with_scheduler(self, operator):
        """The scheduler consumes the refresher's own model — no duplicate."""
        from repro.churn import RefreshSLO, RefreshScheduler

        refresher = SignalRefresher(operator, ALPHA)
        scheduler = RefreshScheduler(
            RefreshSLO(staleness_target=0.1), refresher.cost_model
        )
        assert scheduler.cost_model is refresher.cost_model

    def test_unknown_strategy_rejected(self, operator):
        refresher = SignalRefresher(operator, ALPHA)
        with pytest.raises(ValueError, match="refresh strategy"):
            refresher.cost_estimate("lazy")
