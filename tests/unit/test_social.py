"""Tests for the Facebook-like social graph generator."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.metrics import average_clustering, estimate_diameter
from repro.graphs.social import FacebookLikeConfig, facebook_like_graph


@pytest.fixture(scope="module")
def graph() -> nx.Graph:
    return facebook_like_graph(
        FacebookLikeConfig(n_nodes=500, target_edges=8000, n_egos=8), seed=17
    )


class TestBasicShape:
    def test_node_count_exact(self, graph):
        assert graph.number_of_nodes() == 500

    def test_edge_count_exact(self, graph):
        assert graph.number_of_edges() == 8000

    def test_connected(self, graph):
        assert nx.is_connected(graph)

    def test_no_self_loops(self, graph):
        assert nx.number_of_selfloops(graph) == 0

    def test_deterministic(self):
        config = FacebookLikeConfig(n_nodes=150, target_edges=1200, n_egos=4)
        a = facebook_like_graph(config, seed=3)
        b = facebook_like_graph(config, seed=3)
        assert set(a.edges()) == set(b.edges())

    def test_seed_changes_graph(self):
        config = FacebookLikeConfig(n_nodes=150, target_edges=1200, n_egos=4)
        a = facebook_like_graph(config, seed=3)
        b = facebook_like_graph(config, seed=4)
        assert set(a.edges()) != set(b.edges())


class TestSocialStructure:
    def test_node_attributes(self, graph):
        regions = nx.get_node_attributes(graph, "region")
        hubs = [n for n, h in nx.get_node_attributes(graph, "is_hub").items() if h]
        assert len(regions) == 500
        assert len(hubs) == 8

    def test_hubs_adjacent_to_whole_region(self, graph):
        """Ego semantics: a hub is adjacent to every member of its region."""
        for hub in range(8):
            members = [
                n
                for n, region in nx.get_node_attributes(graph, "region").items()
                if region == hub and n != hub
            ]
            for member in members:
                assert graph.has_edge(hub, member)

    def test_hubs_are_high_degree(self, graph):
        # A hub's degree is at least its region size, so on average hubs are
        # far above the member mean (a Dirichlet draw can make one region,
        # hence one hub, small — compare means, not minima).
        degrees = dict(graph.degree())
        hub_degrees = [degrees[n] for n in range(8)]
        non_hub = [degrees[n] for n in range(8, 500)]
        assert np.mean(hub_degrees) > 2 * np.mean(non_hub)
        assert max(hub_degrees) == max(degrees.values())

    def test_clustering_is_social_level(self, graph):
        adj = CompressedAdjacency.from_networkx(graph)
        clustering = average_clustering(adj, n_samples=200, seed=0)
        assert clustering > 0.25  # social graphs: high; G(n,p) at this density ~0.06

    def test_small_world_distances(self, graph):
        adj = CompressedAdjacency.from_networkx(graph)
        diameter = estimate_diameter(adj, seed=0)
        assert 3 <= diameter <= 12


class TestCalibrationToPaper:
    @pytest.mark.slow
    def test_default_config_matches_ego_facebook(self):
        """The default config reproduces the published dataset statistics."""
        graph = facebook_like_graph(seed=0)
        assert graph.number_of_nodes() == 4039
        assert graph.number_of_edges() == 88234
        assert nx.is_connected(graph)
        mean_degree = 2 * graph.number_of_edges() / graph.number_of_nodes()
        assert 40 <= mean_degree <= 48  # published: 43.69
        max_degree = max(dict(graph.degree()).values())
        assert max_degree > 300  # published max degree: 1045 (ego hub)


class TestValidation:
    def test_rejects_more_edges_than_possible(self):
        with pytest.raises(ValueError, match="exceeds"):
            FacebookLikeConfig(n_nodes=20, target_edges=200, n_egos=2)

    def test_rejects_too_few_nodes(self):
        with pytest.raises(ValueError, match="exceed"):
            FacebookLikeConfig(n_nodes=5, target_edges=4, n_egos=10)

    def test_tiny_graph_still_works(self):
        graph = facebook_like_graph(
            FacebookLikeConfig(n_nodes=30, target_edges=60, n_egos=2), seed=1
        )
        assert graph.number_of_nodes() == 30
        assert nx.is_connected(graph)
