"""Tests for the discrete-event queue."""

import pytest

from repro.runtime.events import EventQueue


class TestScheduling:
    def test_fifo_at_equal_time(self):
        queue = EventQueue()
        log = []
        queue.schedule(1.0, lambda: log.append("a"))
        queue.schedule(1.0, lambda: log.append("b"))
        queue.schedule(1.0, lambda: log.append("c"))
        queue.run()
        assert log == ["a", "b", "c"]

    def test_time_ordering(self):
        queue = EventQueue()
        log = []
        queue.schedule(3.0, lambda: log.append(3))
        queue.schedule(1.0, lambda: log.append(1))
        queue.schedule(2.0, lambda: log.append(2))
        queue.run()
        assert log == [1, 2, 3]

    def test_now_advances(self):
        queue = EventQueue()
        seen = []
        queue.schedule(2.5, lambda: seen.append(queue.now))
        queue.run()
        assert seen == [2.5]

    def test_schedule_relative_to_now(self):
        queue = EventQueue()
        times = []
        queue.schedule(1.0, lambda: queue.schedule(1.0, lambda: times.append(queue.now)))
        queue.run()
        assert times == [2.0]

    def test_schedule_at_absolute(self):
        queue = EventQueue()
        log = []
        queue.schedule_at(5.0, lambda: log.append(queue.now))
        queue.run()
        assert log == [5.0]

    def test_schedule_in_past_raises(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.run()
        with pytest.raises(ValueError, match="past"):
            queue.schedule_at(0.5, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        queue = EventQueue()
        log = []
        event = queue.schedule(1.0, lambda: log.append("cancelled"))
        queue.schedule(2.0, lambda: log.append("kept"))
        event.cancel()
        queue.run()
        assert log == ["kept"]

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        event = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert len(queue) == 2
        event.cancel()
        assert len(queue) == 1


class TestRunLimits:
    def test_until_stops_before_later_events(self):
        queue = EventQueue()
        log = []
        queue.schedule(1.0, lambda: log.append(1))
        queue.schedule(5.0, lambda: log.append(5))
        dispatched = queue.run(until=2.0)
        assert dispatched == 1
        assert log == [1]
        assert queue.now == 2.0  # clock advanced to the horizon

    def test_until_resume(self):
        queue = EventQueue()
        log = []
        queue.schedule(1.0, lambda: log.append(1))
        queue.schedule(5.0, lambda: log.append(5))
        queue.run(until=2.0)
        queue.run()
        assert log == [1, 5]

    def test_max_events(self):
        queue = EventQueue()
        log = []
        for i in range(5):
            queue.schedule(float(i), lambda i=i: log.append(i))
        assert queue.run(max_events=3) == 3
        assert log == [0, 1, 2]

    def test_dispatched_counter(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        queue.run()
        assert queue.dispatched == 2

    def test_step_on_empty_returns_false(self):
        assert EventQueue().step() is False

    def test_events_scheduled_during_run_execute(self):
        queue = EventQueue()
        log = []

        def chain(depth):
            log.append(depth)
            if depth < 3:
                queue.schedule(1.0, lambda: chain(depth + 1))

        queue.schedule(0.0, lambda: chain(0))
        queue.run()
        assert log == [0, 1, 2, 3]


class TestCancelAfterDispatch:
    """Regression: cancel() on an already-dispatched event is a no-op."""

    def test_cancel_after_dispatch_returns_false(self):
        queue = EventQueue()
        event = queue.schedule(1.0, lambda: None)
        queue.run()
        assert event.dispatched
        assert event.cancel() is False
        assert not event.cancelled  # the action ran; don't pretend otherwise

    def test_cancel_before_dispatch_returns_true_and_is_idempotent(self):
        queue = EventQueue()
        event = queue.schedule(1.0, lambda: None)
        assert event.cancel() is True
        assert event.cancel() is True  # repeat cancels stay True
        queue.run()
        assert not event.dispatched

    def test_cancel_inside_own_action_is_noop(self):
        queue = EventQueue()
        log = []
        holder = {}

        def action():
            log.append("ran")
            # A size-triggered flush racing its own timer does exactly this.
            holder["verdict"] = holder["event"].cancel()

        holder["event"] = queue.schedule(1.0, action)
        queue.run()
        assert log == ["ran"]
        assert holder["verdict"] is False

    def test_dispatched_counter_unaffected_by_late_cancel(self):
        queue = EventQueue()
        event = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        queue.run()
        event.cancel()
        assert queue.dispatched == 2
