"""Tests for the asynchronous decentralized PPR diffusion."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.adjacency import CompressedAdjacency
from repro.gsp.filters import PersonalizedPageRank
from repro.gsp.normalization import transition_matrix
from repro.runtime.gossip import AsyncPPRDiffusion
from repro.runtime.network import LatencyModel


def closed_form(adjacency, personalization, alpha):
    operator = transition_matrix(adjacency, "column")
    return PersonalizedPageRank(alpha, method="solve").apply(
        operator, personalization
    )


@pytest.fixture(scope="module")
def ring_setup():
    adjacency = CompressedAdjacency.from_networkx(nx.cycle_graph(12))
    rng = np.random.default_rng(5)
    personalization = rng.standard_normal((12, 4))
    return adjacency, personalization


class TestPushModeConvergence:
    @pytest.mark.parametrize("alpha", [0.1, 0.5, 0.9])
    def test_converges_to_closed_form(self, ring_setup, alpha):
        adjacency, personalization = ring_setup
        diffusion = AsyncPPRDiffusion(
            adjacency, personalization, alpha=alpha, tol=1e-8, seed=1
        )
        outcome = diffusion.run()
        reference = closed_form(adjacency, personalization, alpha)
        assert np.max(np.abs(outcome.embeddings - reference)) < 1e-5

    def test_quiesces(self, ring_setup):
        adjacency, personalization = ring_setup
        diffusion = AsyncPPRDiffusion(
            adjacency, personalization, alpha=0.5, tol=1e-7, seed=2
        )
        outcome = diffusion.run()
        # after quiescence, running again dispatches nothing
        again = diffusion.network.run()
        assert again == 0
        assert outcome.residual < 1e-5

    def test_residual_reported(self, ring_setup):
        adjacency, personalization = ring_setup
        diffusion = AsyncPPRDiffusion(
            adjacency, personalization, alpha=0.5, tol=1e-7, seed=3
        )
        outcome = diffusion.run()
        assert outcome.residual < 10 * 1e-7

    def test_latency_jitter_does_not_break_convergence(self, ring_setup):
        adjacency, personalization = ring_setup
        diffusion = AsyncPPRDiffusion(
            adjacency,
            personalization,
            alpha=0.4,
            tol=1e-8,
            latency=LatencyModel(1.0, 2.0),
            seed=4,
        )
        outcome = diffusion.run()
        reference = closed_form(adjacency, personalization, 0.4)
        assert np.max(np.abs(outcome.embeddings - reference)) < 1e-5

    def test_message_accounting(self, ring_setup):
        adjacency, personalization = ring_setup
        diffusion = AsyncPPRDiffusion(
            adjacency, personalization, alpha=0.5, tol=1e-6, seed=5
        )
        outcome = diffusion.run()
        assert outcome.messages > 0
        assert outcome.bytes > outcome.messages  # vectors are > 1 byte each

    def test_star_graph(self):
        """Hub-and-spoke: extreme degree asymmetry still converges."""
        adjacency = CompressedAdjacency.from_networkx(nx.star_graph(8))
        rng = np.random.default_rng(6)
        personalization = rng.standard_normal((9, 3))
        diffusion = AsyncPPRDiffusion(
            adjacency, personalization, alpha=0.3, tol=1e-8, seed=6
        )
        outcome = diffusion.run()
        reference = closed_form(adjacency, personalization, 0.3)
        assert np.max(np.abs(outcome.embeddings - reference)) < 1e-5

    def test_scalar_personalization(self):
        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(6))
        personalization = np.arange(6, dtype=float)
        diffusion = AsyncPPRDiffusion(
            adjacency, personalization, alpha=0.5, tol=1e-9, seed=7
        )
        outcome = diffusion.run()
        reference = closed_form(adjacency, personalization[:, None], 0.5)
        assert np.max(np.abs(outcome.embeddings - reference)) < 1e-6


class TestPeriodicMode:
    def test_converges_in_distribution(self, ring_setup):
        """Periodic pairwise exchanges approach the closed form by a horizon."""
        adjacency, personalization = ring_setup
        diffusion = AsyncPPRDiffusion(
            adjacency,
            personalization,
            alpha=0.5,
            tol=1e-9,
            mode="periodic",
            period=1.0,
            seed=8,
        )
        outcome = diffusion.run(until=300.0)
        reference = closed_form(adjacency, personalization, 0.5)
        assert np.max(np.abs(outcome.embeddings - reference)) < 1e-2


class TestChurn:
    def test_personalization_update_rediffuses(self, ring_setup):
        adjacency, personalization = ring_setup
        diffusion = AsyncPPRDiffusion(
            adjacency, personalization, alpha=0.5, tol=1e-8, seed=9
        )
        diffusion.run()
        updated = personalization.copy()
        updated[3] = 10.0
        diffusion.update_personalization(3, updated[3])
        outcome = diffusion.run()
        reference = closed_form(adjacency, updated, 0.5)
        assert np.max(np.abs(outcome.embeddings - reference)) < 1e-4

    def test_join_node(self, ring_setup):
        adjacency, personalization = ring_setup
        diffusion = AsyncPPRDiffusion(
            adjacency, personalization, alpha=0.5, tol=1e-8, seed=10
        )
        diffusion.run()
        new_p = np.array([1.0, -1.0, 0.5, 0.0])
        diffusion.join_node(12, neighbors=[0, 6], personalization=new_p)
        outcome = diffusion.run()
        new_adjacency = diffusion.network.to_adjacency()
        full_p = np.vstack([personalization, new_p[None, :]])
        reference = closed_form(new_adjacency, full_p, 0.5)
        assert np.max(np.abs(outcome.embeddings - reference)) < 1e-4

    def test_leave_node(self, ring_setup):
        adjacency, personalization = ring_setup
        diffusion = AsyncPPRDiffusion(
            adjacency, personalization, alpha=0.5, tol=1e-8, seed=11
        )
        diffusion.run()
        diffusion.leave_node(4)
        outcome = diffusion.run()
        remaining = [i for i in range(12) if i != 4]
        reference = closed_form(
            diffusion.network.to_adjacency(), personalization[remaining], 0.5
        )
        assert np.max(np.abs(outcome.embeddings - reference)) < 1e-4
        assert outcome.node_ids == remaining


class TestValidation:
    def test_row_mismatch_rejected(self, ring_setup):
        adjacency, _ = ring_setup
        with pytest.raises(ValueError, match="rows"):
            AsyncPPRDiffusion(adjacency, np.zeros((5, 2)))

    def test_bad_mode_rejected(self, ring_setup):
        adjacency, personalization = ring_setup
        with pytest.raises(ValueError, match="mode"):
            AsyncPPRDiffusion(adjacency, personalization, mode="flood")
