"""Cross-cutting edge cases not covered by the per-module suites."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines.query_routing import QueryRoutingTable
from repro.core.engine import WalkConfig, run_query
from repro.core.forwarding import PrecomputedScorePolicy
from repro.core.search import DiffusionSearchNetwork
from repro.graphs.adjacency import CompressedAdjacency
from repro.retrieval.vector_store import DocumentStore
from repro.runtime.gossip import AsyncDiffusionNode, EmbeddingPush, ExchangeRequest


class TestEngineEdgeCases:
    def test_fanout_larger_than_neighborhood(self):
        adjacency = CompressedAdjacency.from_networkx(nx.star_graph(2))
        result = run_query(
            adjacency, {},
            PrecomputedScorePolicy(np.arange(3, dtype=float)),
            np.ones(2), 0, WalkConfig(ttl=2, fanout=10),
        )
        hop1 = [node for hop, node in result.visits if hop == 1]
        assert sorted(hop1) == [1, 2]

    def test_k_larger_than_total_documents(self):
        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(2))
        store = DocumentStore(2)
        store.add("only", np.array([1.0, 0.0]))
        result = run_query(
            adjacency, {0: store},
            PrecomputedScorePolicy(np.zeros(2)),
            np.array([1.0, 0.0]), 0, WalkConfig(ttl=2, k=10),
        )
        assert result.tracker.doc_ids() == ["only"]

    def test_negative_relevance_scores_still_route(self):
        """Scores can be negative (dot products); argmax still works."""
        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(4))
        result = run_query(
            adjacency, {},
            PrecomputedScorePolicy(np.array([-4.0, -3.0, -2.0, -1.0])),
            np.ones(2), 0, WalkConfig(ttl=4),
        )
        assert result.path == [0, 1, 2, 3]


class TestFacadeEdgeCases:
    def test_remove_then_rediffuse_clears_signal(self):
        net = DiffusionSearchNetwork(nx.path_graph(4), dim=2, alpha=0.5)
        net.place_document("d", np.array([1.0, 0.0]), 1)
        net.diffuse()
        assert net.embeddings.max() > 0
        net.remove_document("d")
        net.diffuse()
        assert np.allclose(net.embeddings, 0.0)

    def test_documents_at_empty_node(self):
        net = DiffusionSearchNetwork(nx.path_graph(3), dim=2)
        assert net.documents_at(0) == []

    def test_location_of_unknown_raises(self):
        net = DiffusionSearchNetwork(nx.path_graph(3), dim=2)
        with pytest.raises(KeyError):
            net.location_of("ghost")


class TestGossipMessages:
    def test_exchange_request_size(self):
        push = EmbeddingPush(np.zeros(10), degree=3)
        request = ExchangeRequest(push)
        assert request.size_bytes() > push.size_bytes()

    def test_node_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            AsyncDiffusionNode(0, np.zeros(2), alpha=0.0)

    def test_node_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            AsyncDiffusionNode(0, np.zeros(2), mode="teleport")

    def test_recompute_with_empty_caches_is_teleport_term(self):
        node = AsyncDiffusionNode(0, np.array([2.0, 4.0]), alpha=0.5)
        node.recompute()
        assert np.allclose(node.estimate, [1.0, 2.0])


class TestRoutingTableCache:
    def test_matrix_cache_invalidated_on_record(self):
        table = QueryRoutingTable()
        table.record(np.array([1.0, 0.0]), 1, 1.0)
        first = table.score_neighbors(np.array([1.0, 0.0]), np.array([1]))[0]
        table.record(np.array([1.0, 0.0]), 1, 1.0)
        second = table.score_neighbors(np.array([1.0, 0.0]), np.array([1]))[0]
        assert second > first  # the new entry contributes; cache refreshed

    def test_eviction_keeps_cache_consistent(self):
        table = QueryRoutingTable(capacity=1)
        table.record(np.array([1.0, 0.0]), 1, 0.5)
        table.score_neighbors(np.array([1.0, 0.0]), np.array([1]))
        table.record(np.array([0.0, 1.0]), 2, 1.0)
        scores = table.score_neighbors(np.array([0.0, 1.0]), np.array([1, 2]))
        assert scores[0] == 0.0
        assert scores[1] > 0.0
