"""Tests for the query-oriented learned-routing baseline (§II-A)."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines.query_routing import (
    LearnedRoutingPolicy,
    QueryRoutingTable,
    learned_routing_walk,
    train_routing_policy,
)
from repro.core.engine import WalkConfig
from repro.graphs.adjacency import CompressedAdjacency
from repro.retrieval.vector_store import DocumentStore


class TestQueryRoutingTable:
    def test_record_and_score(self):
        table = QueryRoutingTable()
        table.record(np.array([1.0, 0.0]), neighbor=3, reward=1.0)
        scores = table.score_neighbors(np.array([1.0, 0.0]), np.array([2, 3]))
        assert scores[0] == 0.0
        assert scores[1] > 0.0

    def test_similarity_weighting(self):
        table = QueryRoutingTable()
        table.record(np.array([1.0, 0.0]), neighbor=5, reward=1.0)
        aligned = table.score_neighbors(np.array([1.0, 0.0]), np.array([5]))[0]
        orthogonal = table.score_neighbors(np.array([0.0, 1.0]), np.array([5]))[0]
        assert aligned > orthogonal
        assert orthogonal == 0.0  # negative/zero similarity contributes nothing

    def test_capacity_evicts_weakest(self):
        table = QueryRoutingTable(capacity=2)
        table.record(np.array([1.0, 0.0]), 1, reward=0.1)
        table.record(np.array([1.0, 0.0]), 2, reward=1.0)
        table.record(np.array([1.0, 0.0]), 3, reward=0.5)
        neighbors = {entry.neighbor for entry in table.entries}
        assert len(table.entries) == 2
        assert 1 not in neighbors  # weakest (after decay) evicted

    def test_decay_fades_old_entries(self):
        table = QueryRoutingTable(decay=0.5)
        table.record(np.array([1.0, 0.0]), 1, reward=1.0)
        for _ in range(5):
            table.record(np.array([0.0, 1.0]), 2, reward=0.1)
        first = next(e for e in table.entries if e.neighbor == 1)
        assert first.reward < 0.1

    def test_empty_table_scores_zero(self):
        table = QueryRoutingTable()
        scores = table.score_neighbors(np.ones(2), np.array([1, 2, 3]))
        assert np.allclose(scores, 0.0)


@pytest.fixture
def simple_world():
    """A path graph with the gold document at one end."""
    adjacency = CompressedAdjacency.from_networkx(nx.path_graph(6))
    store = DocumentStore(2)
    store.add("gold", np.array([1.0, 0.0]))
    stores = {5: store}
    query = np.array([1.0, 0.0])
    return adjacency, stores, query


class TestLearnedRoutingWalk:
    def test_cold_start_is_random(self, simple_world):
        adjacency, stores, query = simple_world
        policy = LearnedRoutingPolicy(adjacency, epsilon=0.0)
        paths = set()
        for seed in range(5):
            result = learned_routing_walk(
                adjacency, stores, policy, query, 2,
                WalkConfig(ttl=3), learn=False, seed=seed,
            )
            paths.add(tuple(result.path))
        assert len(paths) > 1  # no cache -> behaves like a random walk

    def test_walk_respects_ttl_and_edges(self, simple_world):
        adjacency, stores, query = simple_world
        policy = LearnedRoutingPolicy(adjacency)
        result = learned_routing_walk(
            adjacency, stores, policy, query, 0, WalkConfig(ttl=4), seed=0
        )
        assert len(result.visits) <= 4
        for u, v in zip(result.path, result.path[1:]):
            assert adjacency.has_edge(u, v)

    def test_successful_walk_reinforces_path(self, simple_world):
        adjacency, stores, query = simple_world
        policy = LearnedRoutingPolicy(adjacency, epsilon=0.0)
        result = learned_routing_walk(
            adjacency, stores, policy, query, 3,
            WalkConfig(ttl=10), gold_doc="gold", learn=True, seed=1,
        )
        assert result.found("gold", top=1)
        # at least the node adjacent to the discovery learned something
        assert any(table.entries for table in policy.tables.values())

    def test_failed_walk_learns_nothing(self, simple_world):
        adjacency, stores, query = simple_world
        policy = LearnedRoutingPolicy(adjacency)
        learned_routing_walk(
            adjacency, stores, policy, query, 0,
            WalkConfig(ttl=2), gold_doc="gold", learn=True, seed=2,
        )
        assert all(not table.entries for table in policy.tables.values())

    def test_training_improves_over_cold(self, simple_world):
        """The §II-A story: warmed caches beat the cold-start behaviour."""
        adjacency, stores, query = simple_world
        policy = LearnedRoutingPolicy(adjacency, epsilon=0.0)
        training = [(query, "gold")] * 60
        train_routing_policy(
            adjacency, stores, policy, training, ttl=12, seed=3
        )

        def success_rate(p, n=40):
            hits = 0
            for seed in range(n):
                result = learned_routing_walk(
                    adjacency, stores, p, query, seed % 5,
                    WalkConfig(ttl=8), learn=False, seed=seed,
                )
                hits += result.found("gold", top=1)
            return hits / n

        cold = success_rate(LearnedRoutingPolicy(adjacency, epsilon=0.0))
        warm = success_rate(policy)
        assert warm > cold

    def test_unseen_query_direction_gets_no_boost(self, simple_world):
        """Cold-start blindness: training on one topic does not inform an
        orthogonal query (the weakness §II-A attributes to these methods)."""
        adjacency, stores, query = simple_world
        policy = LearnedRoutingPolicy(adjacency, epsilon=0.0)
        train_routing_policy(
            adjacency, stores, policy, [(query, "gold")] * 40, ttl=12, seed=4
        )
        orthogonal = np.array([0.0, 1.0])
        scores = policy.table_of(4).score_neighbors(orthogonal, np.array([3, 5]))
        assert np.allclose(scores, 0.0)

    def test_engine_select_requires_walker(self, simple_world):
        adjacency, _, _ = simple_world
        policy = LearnedRoutingPolicy(adjacency)
        with pytest.raises(RuntimeError, match="stateful"):
            policy.select(np.ones(2), np.array([1]), 1, np.random.default_rng(0))

    def test_invalid_params(self, simple_world):
        adjacency, _, _ = simple_world
        with pytest.raises(ValueError):
            LearnedRoutingPolicy(adjacency, capacity=0)
        with pytest.raises(ValueError):
            LearnedRoutingPolicy(adjacency, decay=1.0)
