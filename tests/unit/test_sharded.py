"""Tests for the sharded parallel precompute (repro.core.shard)."""

import multiprocessing
import os
import signal
import warnings

import numpy as np
import pytest
import scipy.sparse as sp

import repro.core.shard as shard_module
from repro.core import diffuse_embeddings, refresh_embeddings
from repro.core.backends import ShardedDiffusionBackend, SparseDiffusionBackend
from repro.core.search import DiffusionSearchNetwork
from repro.core.shard import (
    PoolShardExecutor,
    SerialShardExecutor,
    build_shard_plan,
    make_worker_state,
)
from repro.graphs.generators import community_cycle_adjacency
from repro.gsp.normalization import transition_matrix
from repro.utils import procmem

N, DIM, HOLDERS = 600, 12, 18


@pytest.fixture(scope="module")
def overlay():
    return community_cycle_adjacency(
        N, degree=8, n_communities=4, cross_fraction=0.05, seed=3
    )


@pytest.fixture(scope="module")
def e0(overlay):
    rng = np.random.default_rng(11)
    nodes = np.sort(rng.choice(N, HOLDERS, replace=False))
    block = rng.standard_normal((HOLDERS, DIM))
    return sp.csr_matrix(
        (
            block.ravel(),
            (np.repeat(nodes, DIM), np.tile(np.arange(DIM), HOLDERS)),
        ),
        shape=(N, DIM),
    )


@pytest.fixture(scope="module")
def exact(overlay, e0):
    return diffuse_embeddings(
        overlay, np.asarray(e0.todense()), alpha=0.5, method="solve"
    ).embeddings


def exact_backend(**kwargs):
    """A sharded backend whose inner kernel does not prune (ε = 0)."""
    kwargs.setdefault("inner", SparseDiffusionBackend(epsilon=0.0))
    kwargs.setdefault("executor", "serial")
    return ShardedDiffusionBackend(4, **kwargs)


def canonical(matrix):
    csr = matrix.tocsr().copy()
    csr.sum_duplicates()
    csr.sort_indices()
    csr.eliminate_zeros()
    return csr


class TestShardPlan:
    def test_every_node_in_exactly_one_shard(self, overlay):
        plan = build_shard_plan(overlay, 4)
        all_nodes = np.concatenate([s.nodes for s in plan.shards])
        assert np.array_equal(np.sort(all_nodes), np.arange(N))
        assert plan.assignment.shape == (N,)
        assert plan.assignment.min() >= 0 and plan.assignment.max() < 4

    def test_operator_entries_conserved(self, overlay):
        # Intra + cross slices together hold every global operator entry.
        plan = build_shard_plan(overlay, 4)
        operator = transition_matrix(overlay, "column")
        total = sum(
            s.local_operator.nnz + s.cross_operator.nnz for s in plan.shards
        )
        assert total == operator.nnz

    def test_local_operator_is_global_slice(self, overlay):
        # Boundary nodes keep their *global* degree in the denominators:
        # the intra block must equal the global operator's submatrix, not a
        # re-normalized induced subgraph.
        plan = build_shard_plan(overlay, 4)
        operator = transition_matrix(overlay, "column").tocsr()
        shard = plan.shards[0]
        expected = operator[shard.nodes][:, shard.nodes]
        assert np.abs(shard.local_operator - expected).max() == 0.0

    def test_plan_memoized_on_adjacency(self, overlay):
        a = build_shard_plan(overlay, 4)
        b = build_shard_plan(overlay, 4)
        assert a is b
        c = build_shard_plan(overlay, 4, partition="degree")
        assert c is not a

    def test_explicit_assignment(self, overlay):
        assignment = np.arange(N) % 3
        plan = build_shard_plan(overlay, 3, assignment=assignment)
        assert plan.partition == "explicit"
        assert np.array_equal(plan.assignment, assignment)

    def test_invalid_assignment_rejected(self, overlay):
        with pytest.raises(ValueError):
            build_shard_plan(overlay, 2, assignment=np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            build_shard_plan(
                overlay, 2, assignment=np.full(N, 7, dtype=int)
            )

    def test_unknown_partition_rejected(self, overlay):
        with pytest.raises(ValueError):
            build_shard_plan(overlay, 2, partition="nope")

    def test_community_cut_beats_degree_cut(self, overlay):
        community = build_shard_plan(overlay, 4)
        degree = build_shard_plan(overlay, 4, partition="degree")
        assert community.cross_fraction < degree.cross_fraction


class TestEquivalence:
    @pytest.mark.parametrize("partition", ["community", "degree"])
    def test_unpruned_sharded_matches_exact_solve(
        self, overlay, e0, exact, partition
    ):
        backend = exact_backend(partition=partition)
        outcome = diffuse_embeddings(
            overlay, e0, alpha=0.5, method=backend, tol=1e-9
        )
        assert outcome.converged
        assert np.abs(outcome.embeddings.toarray() - exact).max() < 1e-6

    def test_pruned_sharded_matches_pruned_sparse(self, overlay, e0):
        sparse = diffuse_embeddings(
            overlay, e0, alpha=0.5, method="sparse", tol=1e-9
        )
        sharded = diffuse_embeddings(
            overlay,
            e0,
            alpha=0.5,
            method=ShardedDiffusionBackend(4, executor="serial"),
            tol=1e-9,
        )
        # Both approximate the same diffusion with the same ε; their
        # truncation frontiers differ slightly, so agreement is within the
        # pruning error scale, not bitwise.
        diff = np.abs(
            sharded.embeddings.toarray() - sparse.embeddings.toarray()
        ).max()
        assert diff < 0.05

    def test_single_shard_is_plain_sparse(self, overlay, e0):
        # One shard ⇒ the local operator is the global operator and no
        # residual ever crosses a boundary: same support, same values up to
        # summation-order ULPs (the plan's operator slice re-sorts entries).
        sparse = diffuse_embeddings(
            overlay, e0, alpha=0.5, method="sparse", tol=1e-9
        )
        sharded = diffuse_embeddings(
            overlay,
            e0,
            alpha=0.5,
            method=ShardedDiffusionBackend(1, executor="serial"),
            tol=1e-9,
        )
        a, b = canonical(sparse.embeddings), canonical(sharded.embeddings)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.abs(a.data - b.data).max() < 1e-12

    def test_alpha_sweep(self, overlay, e0):
        for alpha in (0.1, 0.9):
            exact = diffuse_embeddings(
                overlay, np.asarray(e0.todense()), alpha=alpha, method="solve"
            ).embeddings
            outcome = diffuse_embeddings(
                overlay, e0, alpha=alpha, method=exact_backend(), tol=1e-9
            )
            assert outcome.converged
            assert np.abs(outcome.embeddings.toarray() - exact).max() < 1e-6

    def test_empty_personalization(self, overlay):
        empty = sp.csr_matrix((N, DIM), dtype=np.float64)
        outcome = diffuse_embeddings(
            overlay, empty, alpha=0.5, method=exact_backend()
        )
        assert outcome.converged
        assert outcome.embeddings.nnz == 0


class TestExecutorDeterminism:
    @pytest.mark.parametrize("epsilon", [0.0, 1e-3])
    def test_pool_bit_identical_to_serial(self, overlay, e0, epsilon):
        results = []
        for executor, workers in (("serial", None), ("pool", 2)):
            backend = ShardedDiffusionBackend(
                4,
                inner=SparseDiffusionBackend(epsilon=epsilon),
                executor=executor,
                workers=workers,
            )
            outcome = diffuse_embeddings(
                overlay, e0, alpha=0.5, method=backend, tol=1e-9, seed=123
            )
            results.append(canonical(outcome.embeddings))
        serial, pool = results
        assert np.array_equal(serial.indptr, pool.indptr)
        assert np.array_equal(serial.indices, pool.indices)
        assert np.array_equal(serial.data, pool.data)

    def test_repeated_runs_identical(self, overlay, e0):
        runs = [
            canonical(
                diffuse_embeddings(
                    overlay,
                    e0,
                    alpha=0.5,
                    method=exact_backend(),
                    tol=1e-9,
                    seed=7,
                ).embeddings
            )
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].data, runs[1].data)

    def test_run_report_diagnostics(self, overlay, e0):
        backend = exact_backend()
        diffuse_embeddings(overlay, e0, alpha=0.5, method=backend, tol=1e-9)
        report = backend.last_report
        assert report is not None
        assert report.converged
        assert report.rounds >= 1
        assert len(report.shard_seconds) == report.rounds
        assert report.critical_path_seconds <= report.serial_seconds
        assert report.inner_iterations > 0


class TestIncrementalRefresh:
    def test_refresh_matches_full_rerun(self, overlay, e0):
        backend = exact_backend()
        base = diffuse_embeddings(
            overlay, e0, alpha=0.5, method=backend, tol=1e-9
        )
        delta = sp.csr_matrix(
            (np.ones(DIM), (np.full(DIM, 7), np.arange(DIM))), shape=(N, DIM)
        )
        patched = refresh_embeddings(
            overlay, base.embeddings, delta, alpha=0.5, method=backend, tol=1e-9
        )
        assert patched.incremental and patched.converged
        full = diffuse_embeddings(
            overlay, (e0 + delta).tocsr(), alpha=0.5, method=backend, tol=1e-9
        )
        diff = np.abs(
            patched.embeddings.toarray() - full.embeddings.toarray()
        ).max()
        assert diff < 1e-6


class TestWorkerMemoryTracing:
    def test_pool_reports_child_peaks(self, overlay, e0):
        procmem.reset_child_peaks()
        procmem.enable_worker_tracing()
        try:
            backend = ShardedDiffusionBackend(4, executor="pool", workers=2)
            diffuse_embeddings(overlay, e0, alpha=0.5, method=backend)
        finally:
            procmem.disable_worker_tracing()
        assert len(procmem.child_peaks()) > 0
        assert procmem.max_child_peak() > 0
        procmem.reset_child_peaks()

    def test_serial_reports_no_child_peaks(self, overlay, e0):
        procmem.reset_child_peaks()
        procmem.enable_worker_tracing()
        try:
            diffuse_embeddings(overlay, e0, alpha=0.5, method=exact_backend())
        finally:
            procmem.disable_worker_tracing()
        # Serial allocations are the parent's own; reporting them as child
        # peaks would double-count in measure_peak_memory.
        assert procmem.max_child_peak() == 0


def _worker_state(overlay):
    plan = build_shard_plan(overlay, 4)
    return plan, make_worker_state(
        plan,
        SparseDiffusionBackend(epsilon=0.0),
        alpha=0.5,
        tol=1e-9,
        max_iterations=10_000,
        seed=None,
    )


def _round_tasks(plan, e0):
    return [(i, e0[s.nodes].tocsr()) for i, s in enumerate(plan.shards)]


def _estimates(results):
    return [r.estimate.toarray() for r in sorted(results, key=lambda r: r.shard_id)]


class TestSelfHealingPool:
    """PoolShardExecutor survives dead workers and degrades gracefully."""

    fork_available = "fork" in multiprocessing.get_all_start_methods()

    @pytest.mark.skipif(not fork_available, reason="requires fork")
    def test_killed_worker_retried_bit_identical(
        self, overlay, e0, tmp_path, monkeypatch
    ):
        """SIGKILL one worker mid-round: the round is resubmitted on a
        fresh pool and the merged result matches the serial baseline."""
        plan, state = _worker_state(overlay)
        flag = tmp_path / "killed-once"
        original = shard_module._execute_shard

        def kill_first_task(task_state, shard_id, block):
            try:
                with open(flag, "x"):
                    pass
                os.kill(os.getpid(), signal.SIGKILL)
            except FileExistsError:
                pass
            return original(task_state, shard_id, block)

        # Patched before the pool forks, so workers inherit the killer.
        monkeypatch.setattr(shard_module, "_execute_shard", kill_first_task)
        executor = PoolShardExecutor(state, 2, task_timeout=3.0)
        try:
            tasks = _round_tasks(plan, e0)
            healed = executor.run_round(tasks)
            assert executor.retried_rounds > 0
            assert flag.exists()
            monkeypatch.setattr(shard_module, "_execute_shard", original)
            baseline = SerialShardExecutor(state).run_round(tasks)
            for got, want in zip(_estimates(healed), _estimates(baseline)):
                assert np.array_equal(got, want)
        finally:
            executor.close()

    @pytest.mark.skipif(not fork_available, reason="requires fork")
    def test_exhausted_retries_fall_back_to_serial(
        self, overlay, e0, monkeypatch
    ):
        """A pool that keeps failing downgrades to serial with a warning
        instead of aborting the precompute."""
        plan, state = _worker_state(overlay)
        original = shard_module._execute_shard

        def poolside_bomb(task_state, shard_id, block):
            if shard_module._WORKER_STATE is not None:  # only in workers
                raise RuntimeError("worker corrupted")
            return original(task_state, shard_id, block)

        monkeypatch.setattr(shard_module, "_execute_shard", poolside_bomb)
        executor = PoolShardExecutor(state, 2, task_timeout=10.0, max_retries=1)
        try:
            tasks = _round_tasks(plan, e0)
            with pytest.warns(UserWarning, match="falling back"):
                results = executor.run_round(tasks)
            assert executor.retried_rounds == 2  # budget of 1 + final attempt
            baseline = SerialShardExecutor(state).run_round(tasks)
            for got, want in zip(_estimates(results), _estimates(baseline)):
                assert np.array_equal(got, want)
            # Subsequent rounds go straight to the fallback, no new warning.
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                executor.run_round(tasks)
        finally:
            executor.close()

    def test_fork_unavailable_degrades_to_serial(
        self, overlay, e0, monkeypatch
    ):
        """Platforms without fork get a working serial executor, not an error."""
        plan, state = _worker_state(overlay)
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        with pytest.warns(UserWarning, match="fork"):
            executor = PoolShardExecutor(state, 2)
        assert isinstance(executor, SerialShardExecutor)
        tasks = _round_tasks(plan, e0)
        baseline = SerialShardExecutor(state).run_round(tasks)
        for got, want in zip(
            _estimates(executor.run_round(tasks)), _estimates(baseline)
        ):
            assert np.array_equal(got, want)

    def test_fork_unavailable_backend_still_diffuses(
        self, overlay, e0, monkeypatch
    ):
        """ShardedDiffusionBackend(executor='pool') works without fork."""
        monkeypatch.setattr(
            multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        with pytest.warns(UserWarning, match="fork"):
            outcome = diffuse_embeddings(
                overlay,
                e0,
                alpha=0.5,
                method=ShardedDiffusionBackend(4, executor="pool", workers=2),
                tol=1e-9,
            )
        assert outcome.converged

    @pytest.mark.skipif(not fork_available, reason="requires fork")
    def test_timeout_pool_bit_identical_to_serial(self, overlay, e0):
        """A healthy pool with a task_timeout set matches serial exactly."""
        results = []
        for backend in (
            exact_backend(),
            ShardedDiffusionBackend(
                4,
                inner=SparseDiffusionBackend(epsilon=0.0),
                executor="pool",
                workers=2,
                task_timeout=60.0,
            ),
        ):
            outcome = diffuse_embeddings(
                overlay, e0, alpha=0.5, method=backend, tol=1e-9
            )
            results.append(canonical(outcome.embeddings))
        serial, pool = results
        assert np.array_equal(serial.indptr, pool.indptr)
        assert np.array_equal(serial.indices, pool.indices)
        assert np.array_equal(serial.data, pool.data)

    @pytest.mark.skipif(not fork_available, reason="requires fork")
    def test_executor_validation(self, overlay):
        _, state = _worker_state(overlay)
        with pytest.raises(ValueError, match="task_timeout"):
            PoolShardExecutor(state, 2, task_timeout=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            PoolShardExecutor(state, 2, max_retries=-1)


class TestFacadeComposition:
    def test_network_diffuse_and_search(self, overlay):
        rng = np.random.default_rng(5)
        net = DiffusionSearchNetwork(overlay, dim=DIM, alpha=0.5)
        embeddings = rng.standard_normal((6, DIM))
        for i in range(6):
            net.place_document(f"doc-{i}", embeddings[i], node=i * 90)
        backend = exact_backend()
        outcome = net.diffuse(method=backend, tol=1e-9)
        assert outcome.converged and not outcome.incremental
        assert net.csr_embeddings is not None
        result = net.search(embeddings[0], start_node=300, ttl=40, seed=1)
        assert result.best is not None

    def test_network_incremental_refresh(self, overlay):
        rng = np.random.default_rng(6)
        net = DiffusionSearchNetwork(overlay, dim=DIM, alpha=0.5)
        backend = exact_backend()
        net.place_document("a", rng.standard_normal(DIM), node=10)
        net.diffuse(method=backend, tol=1e-9)
        net.place_document("b", rng.standard_normal(DIM), node=480)
        outcome = net.diffuse(method=backend, tol=1e-9)
        assert outcome.incremental and outcome.converged
        assert not net.is_stale


class TestValidation:
    def test_bad_executor_name(self):
        with pytest.raises(ValueError):
            ShardedDiffusionBackend(2, executor="threads")

    def test_bad_worker_count(self):
        with pytest.raises(ValueError):
            ShardedDiffusionBackend(2, workers=0)

    def test_inner_without_operator_hook(self, overlay, e0):
        backend = ShardedDiffusionBackend(
            2, inner="power", executor="serial"
        )
        with pytest.raises(NotImplementedError):
            diffuse_embeddings(overlay, e0, alpha=0.5, method=backend)

    def test_registered_by_name(self, overlay, e0):
        outcome = diffuse_embeddings(
            overlay, e0, alpha=0.5, method="sharded", tol=1e-9
        )
        assert outcome.method == "sharded"
        assert outcome.converged
