"""Tests for the DiffusionSearchNetwork public facade."""

import networkx as nx
import numpy as np
import pytest

from repro.core.search import DiffusionSearchNetwork


@pytest.fixture
def net():
    graph = nx.cycle_graph(8)
    return DiffusionSearchNetwork(graph, dim=3, alpha=0.5)


class TestDocumentManagement:
    def test_place_and_locate(self, net):
        net.place_document("d1", np.array([1.0, 0.0, 0.0]), node=2)
        assert net.location_of("d1") == 2
        assert net.documents_at(2) == ["d1"]
        assert net.n_documents == 1

    def test_duplicate_placement_rejected(self, net):
        net.place_document("d1", np.ones(3), node=0)
        with pytest.raises(ValueError, match="already placed"):
            net.place_document("d1", np.ones(3), node=1)

    def test_out_of_range_node_rejected(self, net):
        with pytest.raises(ValueError):
            net.place_document("d1", np.ones(3), node=50)

    def test_remove_document(self, net):
        net.place_document("d1", np.ones(3), node=2)
        net.remove_document("d1")
        assert net.n_documents == 0
        assert net.documents_at(2) == []

    def test_clear_documents(self, net):
        net.place_document("a", np.ones(3), 0)
        net.place_document("b", np.ones(3), 1)
        net.clear_documents()
        assert net.n_documents == 0

    def test_place_documents_bulk(self, net):
        net.place_documents(
            [("a", np.ones(3), 0), ("b", np.ones(3), 1)]
        )
        assert net.n_documents == 2


class TestDiffusionLifecycle:
    def test_embeddings_before_diffuse_raises(self, net):
        with pytest.raises(RuntimeError, match="diffuse"):
            _ = net.embeddings

    def test_staleness_tracking(self, net):
        net.place_document("a", np.ones(3), 0)
        assert net.is_stale
        net.diffuse()
        assert not net.is_stale
        net.place_document("b", np.ones(3), 1)
        assert net.is_stale

    def test_personalization_matrix_shape(self, net):
        net.place_document("a", np.array([1.0, 2.0, 3.0]), 5)
        e0 = net.personalization()
        assert e0.shape == (8, 3)
        assert np.allclose(e0[5], [1.0, 2.0, 3.0])
        assert np.allclose(e0[0], 0.0)

    def test_diffuse_stores_outcome(self, net):
        net.place_document("a", np.ones(3), 0)
        outcome = net.diffuse()
        assert net.last_diffusion is outcome
        assert net.embeddings.shape == (8, 3)

    def test_async_method_through_facade(self, net):
        net.place_document("a", np.ones(3), 0)
        sync = net.diffuse(method="solve").embeddings
        asyn = net.diffuse(method="async", tol=1e-8, seed=0).embeddings
        assert np.max(np.abs(sync - asyn)) < 1e-5

    def test_weighting_forwarded(self):
        graph = nx.path_graph(3)
        sum_net = DiffusionSearchNetwork(graph, dim=2, weighting="sum")
        mean_net = DiffusionSearchNetwork(graph, dim=2, weighting="mean")
        for network in (sum_net, mean_net):
            network.place_document("a", np.array([2.0, 0.0]), 0)
            network.place_document("b", np.array([0.0, 2.0]), 0)
        assert np.allclose(sum_net.personalization()[0], [2.0, 2.0])
        assert np.allclose(mean_net.personalization()[0], [1.0, 1.0])


class TestIncrementalRefresh:
    def test_dirty_nodes_track_changes(self, net):
        assert net.dirty_nodes == frozenset()
        net.place_document("a", np.ones(3), 2)
        net.place_document("b", np.ones(3), 5)
        assert net.dirty_nodes == frozenset({2, 5})
        net.diffuse()
        assert net.dirty_nodes == frozenset()
        net.remove_document("a")
        assert net.dirty_nodes == frozenset({2})

    def test_clear_documents_marks_occupied_nodes(self, net):
        net.place_document("a", np.ones(3), 2)
        net.diffuse()
        net.clear_documents()
        assert net.dirty_nodes == frozenset({2})

    def test_single_placement_matches_exact_solve(self, net):
        """Acceptance: incremental patch ≡ full solve within 1e-6."""
        rng = np.random.default_rng(0)
        for i in range(6):
            net.place_document(f"d{i}", rng.standard_normal(3), i)
        net.diffuse(method="push", tol=1e-10)
        net.place_document("new", rng.standard_normal(3), 7)
        outcome = net.diffuse(method="push", tol=1e-10)
        assert outcome.incremental
        exact = net.diffuse(method="solve", incremental=False)
        assert np.max(np.abs(outcome.embeddings - exact.embeddings)) < 1e-6

    def test_removal_matches_exact_solve(self, net):
        rng = np.random.default_rng(1)
        for i in range(6):
            net.place_document(f"d{i}", rng.standard_normal(3), i)
        net.diffuse(method="push", tol=1e-10)
        net.remove_document("d3")
        outcome = net.diffuse(method="push", tol=1e-10)
        assert outcome.incremental
        exact = net.diffuse(method="solve", incremental=False)
        assert np.max(np.abs(outcome.embeddings - exact.embeddings)) < 1e-6

    def test_first_push_diffusion_is_cold_start(self, net):
        net.place_document("a", np.ones(3), 0)
        outcome = net.diffuse(method="push")
        assert not outcome.incremental

    def test_incremental_after_power_base(self, net):
        """A push patch composes with any previously cached diffusion."""
        net.place_document("a", np.ones(3), 0)
        net.diffuse(method="power", tol=1e-12)
        net.place_document("b", np.ones(3), 4)
        outcome = net.diffuse(method="push", tol=1e-10)
        assert outcome.incremental
        exact = net.diffuse(method="solve", incremental=False)
        assert np.max(np.abs(outcome.embeddings - exact.embeddings)) < 1e-6

    def test_forced_incremental_without_base_rejected(self, net):
        net.place_document("a", np.ones(3), 0)
        with pytest.raises(ValueError, match="previous diffusion"):
            net.diffuse(method="push", incremental=True)

    def test_forced_incremental_on_non_push_backend_rejected(self, net):
        net.place_document("a", np.ones(3), 0)
        net.diffuse()
        with pytest.raises(ValueError, match="incremental"):
            net.diffuse(method="power", incremental=True)

    def test_noop_refresh_costs_nothing(self, net):
        net.place_document("a", np.ones(3), 0)
        net.diffuse(method="push")
        outcome = net.diffuse(method="push")
        assert outcome.incremental
        assert outcome.iterations == 0
        assert outcome.operations == 0

    def test_truncated_incremental_patch_not_committed(self, net):
        """A sweep-capped patch must not advance the baseline (the lost
        correction would become permanently invisible)."""
        rng = np.random.default_rng(3)
        net.place_document("a", rng.standard_normal(3), 0)
        net.diffuse(method="push", tol=1e-10)
        before = net.embeddings.copy()
        net.place_document("b", 10.0 * np.ones(3), 4)
        truncated = net.diffuse(method="push", tol=1e-12, max_iterations=1)
        assert truncated.incremental and not truncated.converged
        assert net.is_stale
        assert net.dirty_nodes == frozenset({4})
        assert np.array_equal(net.embeddings, before)
        # A retry with budget re-diffuses the full delta and is exact.
        retried = net.diffuse(method="push", tol=1e-10)
        assert retried.incremental and retried.converged
        exact = net.diffuse(method="solve", incremental=False)
        assert np.max(np.abs(retried.embeddings - exact.embeddings)) < 1e-6

    def test_unconverged_cold_start_is_not_a_baseline(self, net):
        """A truncated full run must not seed incremental refreshes — its
        residual would be invisible to every later delta patch."""
        rng = np.random.default_rng(4)
        net.place_document("a", rng.standard_normal(3), 0)
        truncated = net.diffuse(method="push", tol=1e-12, max_iterations=1)
        assert not truncated.converged
        net.place_document("b", rng.standard_normal(3), 4)
        outcome = net.diffuse(method="push", tol=1e-10)
        assert not outcome.incremental  # fell back to a full run
        exact = net.diffuse(method="solve", incremental=False)
        assert np.max(np.abs(outcome.embeddings - exact.embeddings)) < 1e-6

    def test_out_of_band_store_mutation_corrected_by_full_run(self, net):
        """The incremental delta is assembled from the dirty-marked rows
        only (one coalesced push per refresh window), so mutations that
        bypass the facade API are invisible to it — a full diffusion is the
        documented way to fold them in, and marking the node dirty through
        the facade repairs the incremental path too."""
        net.place_document("a", np.ones(3), 0)
        net.diffuse(method="push", tol=1e-10)
        net.stores[0].add("sneaky", np.array([0.0, 2.0, 0.0]))
        outcome = net.diffuse(method="push", tol=1e-10)
        assert outcome.incremental
        assert outcome.iterations == 0  # no dirty rows -> nothing pushed
        exact = net.diffuse(method="solve", incremental=False)
        assert np.max(np.abs(exact.embeddings - net.embeddings)) < 1e-6
        # A facade-visible change on the same node re-marks it dirty; the
        # next incremental patch then diffuses the store's *current* row,
        # sneaky document included.
        net.place_document("c", np.ones(3), 0)
        patched = net.diffuse(method="push", tol=1e-10)
        assert patched.incremental
        exact = net.diffuse(method="solve", incremental=False)
        assert np.max(np.abs(patched.embeddings - exact.embeddings)) < 1e-6

    def test_accumulated_residual_tracks_patches(self, net):
        """Drift bound grows across patches and resets on a full run."""
        rng = np.random.default_rng(2)
        net.place_document("a", rng.standard_normal(3), 0)
        net.diffuse(method="push", tol=1e-6)
        base = net.accumulated_residual
        for i in range(3):
            net.place_document(f"b{i}", rng.standard_normal(3), i + 1)
            net.diffuse(method="push", tol=1e-6)
        assert net.accumulated_residual >= base
        net.diffuse(method="solve", incremental=False)
        assert net.accumulated_residual == 0.0

    def test_search_after_incremental_refresh(self, net):
        net.place_document("decoy", np.array([0.0, 1.0, 0.0]), 1)
        net.diffuse(method="push", tol=1e-10)
        net.place_document("gold", np.array([1.0, 0.0, 0.0]), 4)
        net.diffuse(method="push", tol=1e-10)
        result = net.search(np.array([1.0, 0.0, 0.0]), start_node=2, ttl=8)
        assert result.found("gold", top=1)


class TestSearch:
    def test_finds_local_document(self, net):
        net.place_document("gold", np.array([1.0, 0.0, 0.0]), 3)
        net.diffuse()
        result = net.search(np.array([1.0, 0.0, 0.0]), start_node=3, ttl=1)
        assert result.found("gold", top=1)
        assert result.hops_to("gold") == 0

    def test_finds_nearby_document(self, net):
        net.place_document("gold", np.array([1.0, 0.0, 0.0]), 4)
        net.diffuse()
        result = net.search(np.array([1.0, 0.0, 0.0]), start_node=2, ttl=8)
        assert result.found("gold", top=1)
        assert result.hops_to("gold") == 2

    def test_search_requires_diffusion(self, net):
        net.place_document("gold", np.ones(3), 0)
        with pytest.raises(RuntimeError):
            net.search(np.ones(3), start_node=0)

    def test_runtime_matches_engine(self, net):
        """The event-driven protocol walks the exact same path."""
        net.place_document("gold", np.array([1.0, 0.0, 0.0]), 5)
        net.place_document("decoy", np.array([0.0, 1.0, 0.0]), 1)
        net.diffuse()
        query = np.array([1.0, 0.1, 0.0])
        fast = net.search(query, start_node=0, ttl=6)
        slow = net.search_on_runtime(query, start_node=0, ttl=6)
        assert fast.path == slow.path
        assert [d.doc_id for d in fast.results] == [d.doc_id for d in slow.results]
        assert fast.hops_to("gold") == slow.hops_to("gold")

    def test_custom_policy_injection(self, net):
        from repro.core.forwarding import RandomWalkPolicy

        net.place_document("gold", np.ones(3), 0)
        net.diffuse()
        result = net.search(
            np.ones(3), start_node=0, ttl=3, policy=RandomWalkPolicy(), seed=1
        )
        assert result.found("gold")

    def test_compressed_adjacency_constructor(self):
        from repro.graphs.adjacency import CompressedAdjacency

        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(4))
        net = DiffusionSearchNetwork(adjacency, dim=2)
        assert net.n_nodes == 4
