"""Tests for the DiffusionSearchNetwork public facade."""

import networkx as nx
import numpy as np
import pytest

from repro.core.search import DiffusionSearchNetwork


@pytest.fixture
def net():
    graph = nx.cycle_graph(8)
    return DiffusionSearchNetwork(graph, dim=3, alpha=0.5)


class TestDocumentManagement:
    def test_place_and_locate(self, net):
        net.place_document("d1", np.array([1.0, 0.0, 0.0]), node=2)
        assert net.location_of("d1") == 2
        assert net.documents_at(2) == ["d1"]
        assert net.n_documents == 1

    def test_duplicate_placement_rejected(self, net):
        net.place_document("d1", np.ones(3), node=0)
        with pytest.raises(ValueError, match="already placed"):
            net.place_document("d1", np.ones(3), node=1)

    def test_out_of_range_node_rejected(self, net):
        with pytest.raises(ValueError):
            net.place_document("d1", np.ones(3), node=50)

    def test_remove_document(self, net):
        net.place_document("d1", np.ones(3), node=2)
        net.remove_document("d1")
        assert net.n_documents == 0
        assert net.documents_at(2) == []

    def test_clear_documents(self, net):
        net.place_document("a", np.ones(3), 0)
        net.place_document("b", np.ones(3), 1)
        net.clear_documents()
        assert net.n_documents == 0

    def test_place_documents_bulk(self, net):
        net.place_documents(
            [("a", np.ones(3), 0), ("b", np.ones(3), 1)]
        )
        assert net.n_documents == 2


class TestDiffusionLifecycle:
    def test_embeddings_before_diffuse_raises(self, net):
        with pytest.raises(RuntimeError, match="diffuse"):
            _ = net.embeddings

    def test_staleness_tracking(self, net):
        net.place_document("a", np.ones(3), 0)
        assert net.is_stale
        net.diffuse()
        assert not net.is_stale
        net.place_document("b", np.ones(3), 1)
        assert net.is_stale

    def test_personalization_matrix_shape(self, net):
        net.place_document("a", np.array([1.0, 2.0, 3.0]), 5)
        e0 = net.personalization()
        assert e0.shape == (8, 3)
        assert np.allclose(e0[5], [1.0, 2.0, 3.0])
        assert np.allclose(e0[0], 0.0)

    def test_diffuse_stores_outcome(self, net):
        net.place_document("a", np.ones(3), 0)
        outcome = net.diffuse()
        assert net.last_diffusion is outcome
        assert net.embeddings.shape == (8, 3)

    def test_async_method_through_facade(self, net):
        net.place_document("a", np.ones(3), 0)
        sync = net.diffuse(method="solve").embeddings
        asyn = net.diffuse(method="async", tol=1e-8, seed=0).embeddings
        assert np.max(np.abs(sync - asyn)) < 1e-5

    def test_weighting_forwarded(self):
        graph = nx.path_graph(3)
        sum_net = DiffusionSearchNetwork(graph, dim=2, weighting="sum")
        mean_net = DiffusionSearchNetwork(graph, dim=2, weighting="mean")
        for network in (sum_net, mean_net):
            network.place_document("a", np.array([2.0, 0.0]), 0)
            network.place_document("b", np.array([0.0, 2.0]), 0)
        assert np.allclose(sum_net.personalization()[0], [2.0, 2.0])
        assert np.allclose(mean_net.personalization()[0], [1.0, 1.0])


class TestSearch:
    def test_finds_local_document(self, net):
        net.place_document("gold", np.array([1.0, 0.0, 0.0]), 3)
        net.diffuse()
        result = net.search(np.array([1.0, 0.0, 0.0]), start_node=3, ttl=1)
        assert result.found("gold", top=1)
        assert result.hops_to("gold") == 0

    def test_finds_nearby_document(self, net):
        net.place_document("gold", np.array([1.0, 0.0, 0.0]), 4)
        net.diffuse()
        result = net.search(np.array([1.0, 0.0, 0.0]), start_node=2, ttl=8)
        assert result.found("gold", top=1)
        assert result.hops_to("gold") == 2

    def test_search_requires_diffusion(self, net):
        net.place_document("gold", np.ones(3), 0)
        with pytest.raises(RuntimeError):
            net.search(np.ones(3), start_node=0)

    def test_runtime_matches_engine(self, net):
        """The event-driven protocol walks the exact same path."""
        net.place_document("gold", np.array([1.0, 0.0, 0.0]), 5)
        net.place_document("decoy", np.array([0.0, 1.0, 0.0]), 1)
        net.diffuse()
        query = np.array([1.0, 0.1, 0.0])
        fast = net.search(query, start_node=0, ttl=6)
        slow = net.search_on_runtime(query, start_node=0, ttl=6)
        assert fast.path == slow.path
        assert [d.doc_id for d in fast.results] == [d.doc_id for d in slow.results]
        assert fast.hops_to("gold") == slow.hops_to("gold")

    def test_custom_policy_injection(self, net):
        from repro.core.forwarding import RandomWalkPolicy

        net.place_document("gold", np.ones(3), 0)
        net.diffuse()
        result = net.search(
            np.ones(3), start_node=0, ttl=3, policy=RandomWalkPolicy(), seed=1
        )
        assert result.found("gold")

    def test_compressed_adjacency_constructor(self):
        from repro.graphs.adjacency import CompressedAdjacency

        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(4))
        net = DiffusionSearchNetwork(adjacency, dim=2)
        assert net.n_nodes == 4
