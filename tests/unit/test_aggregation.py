"""Tests for sketch-partitioned multi-channel personalization (§VI extension)."""

import numpy as np
import pytest

from repro.core.aggregation import (
    ChannelHasher,
    MaxChannelPolicy,
    channel_personalization,
    channel_relevance_signals,
)
from repro.embeddings.similarity import l2_normalize


class TestChannelHasher:
    def test_channel_count(self):
        assert ChannelHasher(8, 0).n_channels == 1
        assert ChannelHasher(8, 3).n_channels == 8

    def test_channels_in_range(self):
        hasher = ChannelHasher(16, 4, seed=0)
        rng = np.random.default_rng(1)
        channels = hasher.channel_of(rng.standard_normal((200, 16)))
        assert channels.min() >= 0
        assert channels.max() < 16

    def test_deterministic_across_instances(self):
        """Two nodes building the hasher from the shared seed agree."""
        rng = np.random.default_rng(2)
        vectors = rng.standard_normal((50, 12))
        a = ChannelHasher(12, 5, seed=99)
        b = ChannelHasher(12, 5, seed=99)
        assert np.array_equal(a.channel_of(vectors), b.channel_of(vectors))

    def test_zero_bits_single_channel(self):
        hasher = ChannelHasher(8, 0, seed=0)
        rng = np.random.default_rng(3)
        channels = hasher.channel_of(rng.standard_normal((30, 8)))
        assert np.all(channels == 0)

    def test_single_vector_input(self):
        hasher = ChannelHasher(8, 2, seed=0)
        channel = hasher.channel_of(np.ones(8))
        assert np.isscalar(channel) or channel.ndim == 0

    def test_similar_vectors_often_collide(self):
        """Directionally close vectors land in the same channel mostly."""
        rng = np.random.default_rng(4)
        hasher = ChannelHasher(64, 3, seed=5)
        base = l2_normalize(rng.standard_normal(64))
        perturbed = l2_normalize(
            base + 0.05 * rng.standard_normal((200, 64))
        )
        channels = hasher.channel_of(perturbed)
        base_channel = hasher.channel_of(base)
        assert np.mean(channels == base_channel) > 0.6

    def test_too_many_bits_rejected(self):
        with pytest.raises(ValueError):
            ChannelHasher(8, 17)


class TestChannelPersonalization:
    def test_channels_sum_to_flat_personalization(self):
        """Summing over channels recovers the paper's flat sum exactly."""
        rng = np.random.default_rng(6)
        embeddings = rng.standard_normal((40, 16))
        nodes = rng.integers(0, 10, size=40)
        hasher = ChannelHasher(16, 3, seed=7)
        tensor = channel_personalization(embeddings, nodes, 10, hasher)
        flat = np.zeros((10, 16))
        np.add.at(flat, nodes, embeddings)
        assert np.allclose(tensor.sum(axis=0), flat)

    def test_shape(self):
        hasher = ChannelHasher(4, 2, seed=0)
        tensor = channel_personalization(np.ones((3, 4)), np.zeros(3, int), 5, hasher)
        assert tensor.shape == (4, 5, 4)

    def test_misaligned_rejected(self):
        hasher = ChannelHasher(4, 1, seed=0)
        with pytest.raises(ValueError):
            channel_personalization(np.ones((3, 4)), np.zeros(2, int), 5, hasher)


class TestChannelRelevanceSignals:
    def test_signals_sum_to_flat_signal(self):
        rng = np.random.default_rng(8)
        embeddings = rng.standard_normal((30, 8))
        nodes = rng.integers(0, 6, size=30)
        query = rng.standard_normal(8)
        hasher = ChannelHasher(8, 2, seed=9)
        signals = channel_relevance_signals(embeddings, nodes, 6, query, hasher)
        flat = np.bincount(nodes, weights=embeddings @ query, minlength=6)
        assert np.allclose(signals.sum(axis=0), flat)

    def test_matches_tensor_dot(self):
        """x0[c] == E0^(c) @ q: the per-channel linearity identity."""
        rng = np.random.default_rng(10)
        embeddings = rng.standard_normal((25, 8))
        nodes = rng.integers(0, 5, size=25)
        query = rng.standard_normal(8)
        hasher = ChannelHasher(8, 2, seed=11)
        signals = channel_relevance_signals(embeddings, nodes, 5, query, hasher)
        tensor = channel_personalization(embeddings, nodes, 5, hasher)
        assert np.allclose(signals, tensor @ query)

    def test_zero_bits_equals_flat(self):
        rng = np.random.default_rng(12)
        embeddings = rng.standard_normal((20, 8))
        nodes = rng.integers(0, 4, size=20)
        query = rng.standard_normal(8)
        hasher = ChannelHasher(8, 0, seed=13)
        signals = channel_relevance_signals(embeddings, nodes, 4, query, hasher)
        flat = np.bincount(nodes, weights=embeddings @ query, minlength=4)
        assert signals.shape == (1, 4)
        assert np.allclose(signals[0], flat)


class TestMaxChannelPolicy:
    def test_selects_best_max_channel(self):
        scores = np.array(
            [
                [0.1, 0.9, 0.0],  # channel 0
                [0.2, 0.0, 0.5],  # channel 1
            ]
        )
        policy = MaxChannelPolicy(scores)
        rng = np.random.default_rng(0)
        chosen = policy.select(np.ones(2), np.array([0, 1, 2]), 1, rng)
        assert list(chosen) == [1]  # max over channels: [0.2, 0.9, 0.5]

    def test_single_channel_equals_precomputed(self):
        from repro.core.forwarding import PrecomputedScorePolicy

        rng = np.random.default_rng(1)
        scores = rng.standard_normal(10)
        multi = MaxChannelPolicy(scores[None, :])
        flat = PrecomputedScorePolicy(scores)
        candidates = np.array([1, 4, 7, 9])
        a = multi.select(np.ones(2), candidates, 2, rng)
        b = flat.select(np.ones(2), candidates, 2, rng)
        assert np.array_equal(a, b)

    def test_1d_scores_rejected(self):
        with pytest.raises(ValueError):
            MaxChannelPolicy(np.zeros(5))

    def test_describe(self):
        policy = MaxChannelPolicy(np.zeros((4, 3)))
        assert "C=4" in policy.describe()
