"""Tests for repro.embeddings.text."""

import numpy as np
import pytest

from repro.embeddings.text import (
    ZipfCorpusConfig,
    corpus_to_text,
    generate_topic_corpus,
    tokenize,
)


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_strips_punctuation(self):
        assert tokenize("a,b.c!") == ["a", "b", "c"]

    def test_keeps_digits_and_underscores(self):
        assert tokenize("word_01 x2") == ["word_01", "x2"]

    def test_empty(self):
        assert tokenize("") == []


def _simple_inputs():
    vocabulary = [f"w{i}" for i in range(30)]
    topic_of = np.array([i % 3 for i in range(30)])
    topic_of[27:] = -1  # a few background-only words
    frequencies = np.ones(30)
    return vocabulary, topic_of, frequencies


class TestGenerateTopicCorpus:
    def test_sentence_count(self):
        vocab, topics, freqs = _simple_inputs()
        config = ZipfCorpusConfig(n_sentences=25, sentence_length=6)
        sentences = list(
            generate_topic_corpus(vocab, topics, freqs, config, seed=0)
        )
        assert len(sentences) == 25

    def test_sentences_min_length(self):
        vocab, topics, freqs = _simple_inputs()
        config = ZipfCorpusConfig(n_sentences=50, sentence_length=2)
        for sentence in generate_topic_corpus(vocab, topics, freqs, config, seed=1):
            assert len(sentence) >= 2

    def test_all_tokens_in_vocabulary(self):
        vocab, topics, freqs = _simple_inputs()
        vocab_set = set(vocab)
        for sentence in generate_topic_corpus(
            vocab, topics, freqs, ZipfCorpusConfig(n_sentences=10), seed=2
        ):
            assert all(tok in vocab_set for tok in sentence)

    def test_topic_adherence_concentrates_sentences(self):
        """With adherence 1.0, each sentence stays inside one topic."""
        vocab, topics, freqs = _simple_inputs()
        topic_by_word = {w: int(t) for w, t in zip(vocab, topics)}
        config = ZipfCorpusConfig(n_sentences=20, topic_adherence=1.0)
        for sentence in generate_topic_corpus(vocab, topics, freqs, config, seed=3):
            sentence_topics = {topic_by_word[tok] for tok in sentence}
            assert len(sentence_topics) == 1

    def test_deterministic(self):
        vocab, topics, freqs = _simple_inputs()
        config = ZipfCorpusConfig(n_sentences=5)
        a = list(generate_topic_corpus(vocab, topics, freqs, config, seed=7))
        b = list(generate_topic_corpus(vocab, topics, freqs, config, seed=7))
        assert a == b

    def test_misaligned_inputs_raise(self):
        with pytest.raises(ValueError):
            list(
                generate_topic_corpus(
                    ["a", "b"], np.array([0]), np.array([1.0, 1.0]), seed=0
                )
            )

    def test_no_topics_raises(self):
        with pytest.raises(ValueError):
            list(
                generate_topic_corpus(
                    ["a", "b"],
                    np.array([-1, -1]),
                    np.array([1.0, 1.0]),
                    seed=0,
                )
            )


class TestCorpusToText:
    def test_roundtrip_with_tokenize(self):
        sentences = [["hello", "world"], ["foo", "bar"]]
        text = corpus_to_text(sentences)
        assert tokenize(text) == ["hello", "world", "foo", "bar"]
