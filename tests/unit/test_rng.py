"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import derive_rng, ensure_rng, shard_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1_000_000, size=10)
        b = ensure_rng(42).integers(0, 1_000_000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1_000_000, size=10)
        b = ensure_rng(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(ensure_rng(seq), np.random.Generator)

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(5)), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(0, 3)
        draws = [child.integers(0, 2**32, size=4) for child in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_deterministic_from_int_seed(self):
        a = [g.integers(0, 2**32) for g in spawn_rngs(9, 3)]
        b = [g.integers(0, 2**32) for g in spawn_rngs(9, 3)]
        assert a == b

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(0)
        children = spawn_rngs(gen, 2)
        assert len(children) == 2

    def test_spawn_from_seed_sequence(self):
        seq = np.random.SeedSequence(3)
        assert len(spawn_rngs(seq, 2)) == 2


class TestDeriveRng:
    def test_same_keys_same_stream(self):
        a = derive_rng(5, "placement", 3).integers(0, 2**32, size=4)
        b = derive_rng(5, "placement", 3).integers(0, 2**32, size=4)
        assert np.array_equal(a, b)

    def test_different_keys_differ(self):
        a = derive_rng(5, "placement").integers(0, 2**32, size=4)
        b = derive_rng(5, "queries").integers(0, 2**32, size=4)
        assert not np.array_equal(a, b)

    def test_invalid_key_type_raises(self):
        with pytest.raises(TypeError):
            derive_rng(5, object())


class TestShardRng:
    def test_same_seed_and_shard_same_stream(self):
        a = shard_rng(42, 3).integers(0, 2**32, size=8)
        b = shard_rng(42, 3).integers(0, 2**32, size=8)
        assert np.array_equal(a, b)

    def test_different_shards_differ(self):
        a = shard_rng(42, 0).integers(0, 2**32, size=8)
        b = shard_rng(42, 1).integers(0, 2**32, size=8)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = shard_rng(1, 0).integers(0, 2**32, size=8)
        b = shard_rng(2, 0).integers(0, 2**32, size=8)
        assert not np.array_equal(a, b)

    def test_independent_of_other_derivations(self):
        # Shard streams must not collide with other named consumers.
        a = shard_rng(7, 0).integers(0, 2**32, size=8)
        b = derive_rng(7, "placement", 0).integers(0, 2**32, size=8)
        assert not np.array_equal(a, b)

    def test_numpy_integer_shard_id(self):
        a = shard_rng(5, np.int64(2)).integers(0, 2**32, size=4)
        b = shard_rng(5, 2).integers(0, 2**32, size=4)
        assert np.array_equal(a, b)

    def test_negative_shard_id_raises(self):
        with pytest.raises(ValueError):
            shard_rng(5, -1)

    def test_non_int_shard_id_raises(self):
        with pytest.raises(ValueError):
            shard_rng(5, "0")
