"""Failure injection: message loss in the simulated network."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.adjacency import CompressedAdjacency
from repro.gsp.filters import PersonalizedPageRank
from repro.gsp.normalization import transition_matrix
from repro.runtime.gossip import AsyncPPRDiffusion
from repro.runtime.network import LatencyModel, SimNetwork
from repro.runtime.node import SimNode


class Counter(SimNode):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = 0

    def on_message(self, src, message):
        self.received += 1


class TestLossInjection:
    def _network(self, loss):
        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(2))
        net = SimNetwork(
            adjacency, latency=LatencyModel(1.0, 0.0), drop_probability=loss, seed=0
        )
        nodes = [Counter(0), Counter(1)]
        net.attach_all(nodes)
        net.start()
        return net, nodes

    def test_zero_loss_delivers_all(self):
        net, nodes = self._network(0.0)
        for _ in range(50):
            nodes[0].send(1, "x")
        net.run()
        assert nodes[1].received == 50
        assert net.stats.dropped == 0

    def test_half_loss_drops_roughly_half(self):
        net, nodes = self._network(0.5)
        for _ in range(400):
            nodes[0].send(1, "x")
        net.run()
        assert 120 < nodes[1].received < 280
        assert net.stats.dropped == 400 - nodes[1].received

    def test_dropped_still_counted_as_sent(self):
        net, nodes = self._network(0.5)
        for _ in range(100):
            nodes[0].send(1, "x")
        net.run()
        assert net.stats.messages == 100

    def test_invalid_loss_rejected(self):
        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(2))
        with pytest.raises(ValueError):
            SimNetwork(adjacency, drop_probability=1.0)
        with pytest.raises(ValueError):
            SimNetwork(adjacency, drop_probability=-0.1)


class TestDropAccounting:
    """The drop path is observable: counts, per-type keys, determinism."""

    def _run_once(self, seed=0, n_messages=200):
        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(2))
        net = SimNetwork(
            adjacency,
            latency=LatencyModel(1.0, 0.0),
            drop_probability=0.4,
            seed=seed,
        )
        nodes = [Counter(0), Counter(1)]
        net.attach_all(nodes)
        net.start()
        for _ in range(n_messages):
            nodes[0].send(1, "x")
        net.run()
        return net, nodes

    def test_drop_actually_drops(self):
        net, nodes = self._run_once()
        assert net.stats.dropped > 0
        assert nodes[1].received == 200 - net.stats.dropped

    def test_dropped_counted_by_type(self):
        net, _ = self._run_once()
        # sends and drops are both visible, per message class
        assert net.stats.by_type["str"] == 200
        assert net.stats.by_type["dropped:str"] == net.stats.dropped

    def test_no_drop_key_without_drops(self):
        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(2))
        net = SimNetwork(adjacency, latency=LatencyModel(1.0, 0.0), seed=0)
        nodes = [Counter(0), Counter(1)]
        net.attach_all(nodes)
        net.start()
        nodes[0].send(1, "x")
        net.run()
        assert "dropped:str" not in net.stats.by_type

    def test_same_seed_identical_stats(self):
        first, _ = self._run_once(seed=7)
        second, _ = self._run_once(seed=7)
        assert first.stats == second.stats
        third, _ = self._run_once(seed=8)
        assert third.stats != first.stats

    def test_drop_probability_is_loss_probability(self):
        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(2))
        net = SimNetwork(adjacency, drop_probability=0.25)
        assert net.loss_probability == 0.25
        with pytest.warns(DeprecationWarning, match="loss_probability"):
            legacy = SimNetwork(adjacency, loss_probability=0.25)
        assert legacy.drop_probability == 0.25

    def test_matching_alias_and_new_name_accepted(self):
        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(2))
        with pytest.warns(DeprecationWarning):
            net = SimNetwork(
                adjacency, drop_probability=0.25, loss_probability=0.25
            )
        assert net.drop_probability == 0.25

    def test_conflicting_alias_rejected(self):
        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(2))
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="conflicting"):
                SimNetwork(
                    adjacency, drop_probability=0.1, loss_probability=0.25
                )


class TestChurnSendRules:
    """Sends are only legal along live edges — churn closes them."""

    def _network(self):
        adjacency = CompressedAdjacency.from_networkx(nx.path_graph(3))
        net = SimNetwork(adjacency, latency=LatencyModel(1.0, 0.0), seed=0)
        nodes = [Counter(i) for i in range(3)]
        net.attach_all(nodes)
        net.start()
        return net, nodes

    def test_send_along_removed_edge_rejected(self):
        net, nodes = self._network()
        net.remove_edge(0, 1)
        with pytest.raises(ValueError, match="no edge"):
            nodes[0].send(1, "x")

    def test_send_to_removed_node_rejected(self):
        net, nodes = self._network()
        net.remove_node(1)
        with pytest.raises(ValueError, match="no edge"):
            nodes[0].send(1, "x")

    def test_in_flight_message_to_cut_edge_not_delivered(self):
        net, nodes = self._network()
        nodes[0].send(1, "x")  # in flight (latency 1.0)
        net.remove_edge(0, 1)
        net.run()
        assert nodes[1].received == 0


class TestDiffusionUnderLoss:
    def test_periodic_mode_converges_despite_loss(self):
        """Periodic gossip retransmits, so loss only delays convergence."""
        adjacency = CompressedAdjacency.from_networkx(nx.cycle_graph(10))
        rng = np.random.default_rng(4)
        personalization = rng.standard_normal((10, 3))
        diffusion = AsyncPPRDiffusion(
            adjacency,
            personalization,
            alpha=0.5,
            tol=1e-9,
            mode="periodic",
            period=1.0,
            loss_probability=0.2,
            seed=5,
        )
        outcome = diffusion.run(until=400.0)
        operator = transition_matrix(adjacency, "column")
        reference = PersonalizedPageRank(0.5, method="solve").apply(
            operator, personalization
        )
        assert np.max(np.abs(outcome.embeddings - reference)) < 5e-2
        assert diffusion.network.stats.dropped > 0

    def test_push_mode_with_loss_rejected(self):
        """Push mode has no retransmission; the constructor refuses loss."""
        adjacency = CompressedAdjacency.from_networkx(nx.cycle_graph(6))
        with pytest.raises(ValueError, match="stall"):
            AsyncPPRDiffusion(
                adjacency, np.zeros((6, 2)), mode="push", loss_probability=0.1
            )


class TestTrafficStatsNamespacing:
    """record_dropped keys live in their own ``dropped:`` namespace."""

    def test_prefixed_key_and_counter(self):
        from repro.runtime.network import TrafficStats

        stats = TrafficStats()
        stats.record("hello")
        stats.record_dropped("hello")
        assert stats.by_type["str"] == 1
        assert stats.by_type["dropped:str"] == 1
        assert stats.dropped == 1

    def test_sends_never_touch_drop_keys(self):
        from repro.runtime.network import TrafficStats

        stats = TrafficStats()
        for _ in range(5):
            stats.record("x")
        assert stats.by_type == {"str": 5}
        assert all(not k.startswith("dropped:") for k in stats.by_type)

    def test_distinct_types_get_distinct_drop_keys(self):
        from repro.runtime.network import TrafficStats

        class Ping:
            pass

        class Pong:
            pass

        stats = TrafficStats()
        stats.record_dropped(Ping())
        stats.record_dropped(Ping())
        stats.record_dropped(Pong())
        assert stats.by_type["dropped:Ping"] == 2
        assert stats.by_type["dropped:Pong"] == 1
        assert stats.dropped == 3
