"""End-to-end integration tests across the whole stack.

These pin the load-bearing equivalences of the reproduction:

* the event-driven message protocol executes the exact walk the fast engine
  computes,
* the scalar-diffusion fast path used by experiment sweeps selects the exact
  hops the full embedding pipeline selects,
* the decentralized asynchronous diffusion supports search identically to
  the closed form,
* informed search beats blind search in aggregate.
"""

import numpy as np
import pytest

from repro.core.engine import WalkConfig, run_query
from repro.core.forwarding import (
    EmbeddingGuidedPolicy,
    PrecomputedScorePolicy,
    RandomWalkPolicy,
)
from repro.core.search import DiffusionSearchNetwork
from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.metrics import bfs_distances
from repro.graphs.social import FacebookLikeConfig, facebook_like_graph
from repro.gsp.filters import PersonalizedPageRank
from repro.gsp.normalization import transition_matrix
from repro.simulation.placement import build_stores, uniform_placement
from repro.utils.rng import spawn_rngs


@pytest.fixture(scope="module")
def pipeline(tiny_model, tiny_workload):
    """A placed, diffused network ready for queries."""
    graph = facebook_like_graph(
        FacebookLikeConfig(n_nodes=250, target_edges=3000, n_egos=5), seed=31
    )
    net = DiffusionSearchNetwork(graph, dim=tiny_model.dim, alpha=0.5)
    rng = np.random.default_rng(32)
    query, gold = tiny_workload.sample_case(rng)
    gold_node = int(rng.integers(net.n_nodes))
    net.place_document(gold, tiny_model.vector(gold), gold_node)
    for word in tiny_workload.sample_irrelevant(rng, 99):
        net.place_document(word, tiny_model.vector(word), int(rng.integers(net.n_nodes)))
    net.diffuse(tol=1e-10)
    return net, tiny_model, query, gold, gold_node


class TestFullPipeline:
    def test_distance_zero_always_succeeds(self, pipeline):
        net, model, query, gold, gold_node = pipeline
        result = net.search(model.vector(query), gold_node, ttl=50)
        assert result.found(gold, top=1)
        assert result.hops_to(gold) == 0

    def test_neighbors_reach_gold(self, pipeline):
        """Paper headline: the scheme excels within 1-2 hops at low M."""
        net, model, query, gold, gold_node = pipeline
        distances = bfs_distances(net.adjacency, gold_node)
        hits = total = 0
        for start in np.flatnonzero(distances == 1)[:10]:
            result = net.search(model.vector(query), int(start), ttl=50)
            hits += result.found(gold, top=1)
            total += 1
        assert hits / total >= 0.7

    def test_search_result_consistency(self, pipeline):
        net, model, query, gold, gold_node = pipeline
        result = net.search(model.vector(query), (gold_node + 5) % net.n_nodes, ttl=50)
        # every reported hit must actually live on the node that reported it
        for item in result.results:
            assert item.doc_id in net.documents_at(item.node)
        # the walk never exceeds its TTL
        assert len(result.visits) <= 50


class TestEngineRuntimeEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_identical_walks(self, tiny_model, tiny_workload, seed):
        """Fast engine and message protocol: same path, same results."""
        rng = np.random.default_rng(seed)
        graph = facebook_like_graph(
            FacebookLikeConfig(n_nodes=120, target_edges=1200, n_egos=4),
            seed=seed + 100,
        )
        net = DiffusionSearchNetwork(graph, dim=tiny_model.dim, alpha=0.5)
        query, gold = tiny_workload.sample_case(rng)
        words = [gold] + tiny_workload.sample_irrelevant(rng, 39)
        for word in words:
            net.place_document(word, tiny_model.vector(word), int(rng.integers(120)))
        net.diffuse(tol=1e-10)
        start = int(rng.integers(120))
        ttl = 25
        fast = net.search(tiny_model.vector(query), start, ttl=ttl, k=3)
        slow = net.search_on_runtime(tiny_model.vector(query), start, ttl=ttl, k=3)
        assert fast.path == slow.path
        assert [d.doc_id for d in fast.results] == [d.doc_id for d in slow.results]
        assert fast.discovered_at == slow.discovered_at


class TestScalarFastPathEquivalence:
    @pytest.mark.parametrize("alpha", [0.1, 0.5, 0.9])
    def test_scores_equal_full_diffusion(self, tiny_model, small_world_adjacency, alpha):
        """PPR(E0) @ q == PPR(E0 @ q): the linearity the harness exploits."""
        rng = np.random.default_rng(7)
        adjacency = small_world_adjacency
        operator = transition_matrix(adjacency, "column")
        personalization = rng.standard_normal((adjacency.n_nodes, tiny_model.dim))
        query = rng.standard_normal(tiny_model.dim)
        ppr = PersonalizedPageRank(alpha, tol=1e-12)
        full = ppr.apply(operator, personalization) @ query
        scalar = ppr.apply(operator, personalization @ query)
        assert np.allclose(full, scalar, atol=1e-8)

    def test_identical_walks(self, tiny_model, tiny_workload):
        """A walk guided by precomputed scalar scores follows the exact path
        of a walk guided by the full diffused embedding matrix."""
        rng = np.random.default_rng(11)
        graph = facebook_like_graph(
            FacebookLikeConfig(n_nodes=150, target_edges=1500, n_egos=4), seed=50
        )
        adjacency = CompressedAdjacency.from_networkx(graph)
        operator = transition_matrix(adjacency, "column")

        query, gold = tiny_workload.sample_case(rng)
        words = [gold] + tiny_workload.sample_irrelevant(rng, 59)
        embeddings = tiny_model.vectors_for(words)
        nodes = uniform_placement(60, 150, seed=rng)
        stores = build_stores(words, embeddings, nodes, tiny_model.dim)
        query_embedding = tiny_model.vector(query)

        personalization = np.zeros((150, tiny_model.dim))
        np.add.at(personalization, nodes, embeddings)
        ppr = PersonalizedPageRank(0.5, tol=1e-12)
        diffused = ppr.apply(operator, personalization)
        scalar_scores = ppr.apply(operator, personalization @ query_embedding)

        config = WalkConfig(ttl=30, k=2)
        full_walk = run_query(
            adjacency, stores, EmbeddingGuidedPolicy(diffused),
            query_embedding, 10, config,
        )
        fast_walk = run_query(
            adjacency, stores, PrecomputedScorePolicy(scalar_scores),
            query_embedding, 10, config,
        )
        assert full_walk.path == fast_walk.path
        assert full_walk.discovered_at == fast_walk.discovered_at


class TestAsyncDiffusionSearch:
    def test_search_identical_after_async_warmup(self, tiny_model, tiny_workload):
        """Search over decentralized-diffused embeddings matches closed form."""
        rng = np.random.default_rng(13)
        graph = facebook_like_graph(
            FacebookLikeConfig(n_nodes=80, target_edges=700, n_egos=3), seed=60
        )
        net = DiffusionSearchNetwork(graph, dim=tiny_model.dim, alpha=0.5)
        query, gold = tiny_workload.sample_case(rng)
        for word in [gold] + tiny_workload.sample_irrelevant(rng, 19):
            net.place_document(word, tiny_model.vector(word), int(rng.integers(80)))

        exact = net.diffuse(method="solve").embeddings.copy()
        solve_result = net.search(tiny_model.vector(query), 5, ttl=20)

        net.diffuse(method="async", tol=1e-9, seed=1)
        async_result = net.search(tiny_model.vector(query), 5, ttl=20)

        assert np.max(np.abs(net.embeddings - exact)) < 1e-5
        assert solve_result.path == async_result.path
        assert [d.doc_id for d in solve_result.results] == [
            d.doc_id for d in async_result.results
        ]


class TestInformedBeatsBlind:
    def test_aggregate_success_rates(self, tiny_model, tiny_workload):
        graph = facebook_like_graph(
            FacebookLikeConfig(n_nodes=200, target_edges=2400, n_egos=5), seed=70
        )
        adjacency = CompressedAdjacency.from_networkx(graph)
        operator = transition_matrix(adjacency, "column")
        ppr = PersonalizedPageRank(0.5, tol=1e-10)
        config = WalkConfig(ttl=30, k=1)

        informed_hits = blind_hits = 0
        trials = 25
        for rng in spawn_rngs(77, trials):
            query, gold = tiny_workload.sample_case(rng)
            words = [gold] + tiny_workload.sample_irrelevant(rng, 49)
            embeddings = tiny_model.vectors_for(words)
            nodes = uniform_placement(50, 200, seed=rng)
            stores = build_stores(words, embeddings, nodes, tiny_model.dim)
            query_embedding = tiny_model.vector(query)
            signal = np.bincount(
                nodes, weights=embeddings @ query_embedding, minlength=200
            )
            scores = ppr.apply(operator, signal)
            start = int(rng.integers(200))
            informed = run_query(
                adjacency, stores, PrecomputedScorePolicy(scores),
                query_embedding, start, config,
            )
            blind = run_query(
                adjacency, stores, RandomWalkPolicy(),
                query_embedding, start, config, seed=rng,
            )
            informed_hits += informed.found(gold, top=1)
            blind_hits += blind.found(gold, top=1)
        assert informed_hits > blind_hits
