"""CLI entry points: argument parsing, rendering, CSV export."""

import csv

import pytest

from repro.experiments import ablations, fig3_accuracy, table1_hops


class TestFig3Cli:
    def test_main_prints_panels(self, capsys, tmp_path):
        csv_path = tmp_path / "fig3.csv"
        code = fig3_accuracy.main(["--iterations", "2", "--csv", str(csv_path)])
        assert code == 0
        out = capsys.readouterr().out
        for panel in ("3a", "3b", "3c", "3d"):
            assert f"Fig. {panel}" in out
        with open(csv_path) as handle:
            rows = list(csv.DictReader(handle))
        # 4 panels x 3 alphas x 9 distances
        assert len(rows) == 4 * 3 * 9
        assert {row["n_documents"] for row in rows} == {"10", "100", "1000", "10000"}


class TestTable1Cli:
    def test_main_prints_table(self, capsys, tmp_path):
        csv_path = tmp_path / "table1.csv"
        code = table1_hops.main(["--iterations", "2", "--csv", str(csv_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "paper success" in out
        with open(csv_path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4


class TestAblationsCli:
    def test_single_ablation(self, capsys):
        code = ablations.main(["--which", "personalization", "--iterations", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Ablation: personalization" in out
        assert "sum" in out

    def test_unknown_ablation_rejected(self):
        with pytest.raises(SystemExit):
            ablations.main(["--which", "nonexistent"])
