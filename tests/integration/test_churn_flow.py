"""Integration: churn during operation, then search over the fresh state."""

import numpy as np
import pytest

from repro.core.engine import WalkConfig, run_query
from repro.core.forwarding import PrecomputedScorePolicy
from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.generators import connected_watts_strogatz
from repro.retrieval.vector_store import DocumentStore
from repro.runtime.gossip import AsyncPPRDiffusion


@pytest.fixture
def world(tiny_model, tiny_workload):
    rng = np.random.default_rng(41)
    adjacency = CompressedAdjacency.from_networkx(
        connected_watts_strogatz(50, 6, 0.2, seed=40)
    )
    query, gold = tiny_workload.sample_case(rng)
    query_embedding = tiny_model.vector(query)
    # start with irrelevant documents only
    words = tiny_workload.sample_irrelevant(rng, 30)
    stores: dict[int, DocumentStore] = {}
    personalization = np.zeros((50, tiny_model.dim))
    for word in words:
        node = int(rng.integers(50))
        stores.setdefault(node, DocumentStore(tiny_model.dim)).add(
            word, tiny_model.vector(word)
        )
        personalization[node] += tiny_model.vector(word)
    return adjacency, stores, personalization, query_embedding, gold, tiny_model


class TestChurnThenSearch:
    def test_new_document_becomes_findable(self, world):
        adjacency, stores, personalization, query_embedding, gold, model = world
        diffusion = AsyncPPRDiffusion(
            adjacency, personalization, alpha=0.5, tol=1e-8, seed=1
        )
        diffusion.run()

        # the gold document appears at node 20 mid-operation
        gold_node = 20
        stores.setdefault(gold_node, DocumentStore(model.dim)).add(
            gold, model.vector(gold)
        )
        new_p = personalization[gold_node] + model.vector(gold)
        diffusion.update_personalization(gold_node, new_p)
        outcome = diffusion.run()

        scores = outcome.embeddings @ query_embedding
        result = run_query(
            adjacency,
            stores,
            PrecomputedScorePolicy(scores),
            query_embedding,
            start_node=22,
            config=WalkConfig(ttl=30),
        )
        assert result.found(gold, top=1)

    def test_departed_node_stops_attracting(self, world):
        adjacency, stores, personalization, query_embedding, gold, model = world
        gold_node = 20
        stores.setdefault(gold_node, DocumentStore(model.dim)).add(
            gold, model.vector(gold)
        )
        personalization = personalization.copy()
        personalization[gold_node] += model.vector(gold)
        diffusion = AsyncPPRDiffusion(
            adjacency, personalization, alpha=0.5, tol=1e-8, seed=2
        )
        before = diffusion.run()
        score_before = (before.embeddings @ query_embedding)[before.node_ids.index(21)]

        diffusion.leave_node(gold_node)
        after = diffusion.run()
        ids = after.node_ids
        score_after = (after.embeddings @ query_embedding)[ids.index(21)]
        # neighbor 21's diffused relevance drops once the gold host is gone
        assert score_after < score_before

    def test_join_brings_content_online(self, world):
        adjacency, stores, personalization, query_embedding, gold, model = world
        diffusion = AsyncPPRDiffusion(
            adjacency, personalization, alpha=0.5, tol=1e-8, seed=3
        )
        diffusion.run()
        # a new node joins carrying the gold document
        stores[50] = DocumentStore(model.dim)
        stores[50].add(gold, model.vector(gold))
        diffusion.join_node(50, neighbors=[0, 25], personalization=model.vector(gold))
        outcome = diffusion.run()

        assert 50 in outcome.node_ids
        new_adjacency = diffusion.network.to_adjacency()
        scores_by_label = {
            label: float(outcome.embeddings[i] @ query_embedding)
            for i, label in enumerate(outcome.node_ids)
        }
        scores = np.array(
            [scores_by_label[new_adjacency.label_of(i)] for i in range(new_adjacency.n_nodes)]
        )
        relabeled_stores = {
            new_adjacency.id_of(label): store
            for label, store in stores.items()
            if label in set(outcome.node_ids)
        }
        result = run_query(
            new_adjacency,
            relabeled_stores,
            PrecomputedScorePolicy(scores),
            query_embedding,
            start_node=new_adjacency.id_of(25),
            config=WalkConfig(ttl=20),
        )
        assert result.found(gold, top=1)
