"""Smoke tests for the experiment drivers (scaled-down iterations)."""

import numpy as np
import pytest

from repro.experiments import get_environment
from repro.experiments.ablations import (
    aggregation_comparison,
    alpha_sweep,
    baseline_comparison,
    fanout_sweep,
    multi_gold_recall,
    personalization_comparison,
    placement_comparison,
    topk_sweep,
)
from repro.experiments.fig3_accuracy import PAPER_ALPHAS, render as render_fig3, run_panel
from repro.experiments.table1_hops import render as render_table1, run_row


@pytest.fixture(scope="module")
def env():
    return get_environment(False)


class TestEnvironment:
    def test_cached(self, env):
        assert get_environment(False) is env

    def test_workload_threshold_matches_paper(self, env):
        assert env.workload.threshold == 0.6

    def test_graph_is_social_scale(self, env):
        assert env.n_nodes >= 1000
        assert env.adjacency.n_edges > 10 * env.n_nodes


class TestFig3Driver:
    def test_panel_runs_and_has_shape(self, env):
        grid = run_panel(10, iterations=4)
        assert grid.alphas == PAPER_ALPHAS
        assert grid.accuracy(0.5, 0) == 1.0  # distance 0 always hits
        out = render_fig3({10: grid}, "test")
        assert "M = 10" in out
        assert "a=0.1" in out

    def test_panel_deterministic(self):
        a = run_panel(10, iterations=3, seed=5)
        b = run_panel(10, iterations=3, seed=5)
        assert a.successes == b.successes


class TestTable1Driver:
    def test_row_runs(self):
        stats = run_row(10, iterations=4)
        assert stats.samples == 40
        assert stats.n_documents == 10
        out = render_table1({10: stats}, "test")
        assert "paper success" in out
        assert "1905 / 5000" in out  # paper reference column


class TestAblations:
    def test_alpha_sweep(self):
        rows = alpha_sweep(n_documents=50, alphas=(0.2, 0.8), iterations=3)
        assert len(rows) == 2
        assert {row["alpha"] for row in rows} == {0.2, 0.8}

    def test_fanout_sweep(self):
        rows = fanout_sweep(n_documents=50, fanouts=(1, 2), iterations=3)
        assert len(rows) == 2
        assert rows[1]["approx messages/query"] > rows[0]["approx messages/query"]

    def test_topk_sweep(self):
        rows = topk_sweep(n_documents=50, ks=(1, 5), iterations=3)
        assert len(rows) == 2
        for row in rows:
            assert row["top-k hit rate"] >= row["top-1 hit rate"]

    def test_placement_comparison(self):
        rows = placement_comparison(n_documents=50, iterations=3)
        assert {row["placement"] for row in rows} == {"uniform", "correlated"}

    def test_personalization_comparison(self):
        rows = personalization_comparison(n_documents=50, iterations=3)
        assert {row["weighting"] for row in rows} == {"sum", "mean", "sqrt", "l2"}

    def test_aggregation_comparison(self):
        rows = aggregation_comparison(
            n_documents=100, channel_bits=(0, 2), iterations=3
        )
        assert [row["channels"] for row in rows] == [1, 4]
        assert rows[0]["note"] == "paper (flat sum)"

    def test_multi_gold_recall(self):
        rows = multi_gold_recall(n_documents=100, k=3, iterations=4)
        assert rows[0]["k"] == 3
        assert 0.0 <= rows[0]["recall@budget"] <= 1.0
        assert rows[0]["any-gold hit rate"] >= rows[0]["recall@budget"]

    def test_baseline_comparison(self):
        rows = baseline_comparison(n_documents=50, iterations=5)
        by_method = {row["method"]: row for row in rows}
        assert set(by_method) == {
            "diffusion walk",
            "random walk",
            "degree-biased walk",
            "flooding@budget",
        }
        # equal budgets: flooding must not exceed the walk budget
        assert by_method["flooding@budget"]["mean messages"] <= 50 + 1e-9
