"""Property-based tests for graph filters on random connected graphs."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.adjacency import CompressedAdjacency
from repro.gsp.filters import PersonalizedPageRank
from repro.gsp.normalization import transition_matrix


@st.composite
def connected_graph_operator(draw):
    """A column-stochastic operator of a random connected graph."""
    n = draw(st.integers(min_value=3, max_value=25))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    graph = nx.random_labeled_tree(n, seed=int(seed))
    extra = draw(st.integers(min_value=0, max_value=2 * n))
    for _ in range(extra):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            graph.add_edge(int(u), int(v))
    adjacency = CompressedAdjacency.from_networkx(graph)
    return transition_matrix(adjacency, "column"), n, rng


class TestPPRProperties:
    @given(
        setup=connected_graph_operator(),
        alpha=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_mass_conservation(self, setup, alpha):
        operator, n, rng = setup
        signal = rng.standard_normal(n)
        out = PersonalizedPageRank(alpha, tol=1e-12).apply(operator, signal)
        assert np.isclose(out.sum(), signal.sum(), rtol=1e-6, atol=1e-8)

    @given(
        setup=connected_graph_operator(),
        alpha=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_non_negative_signals_stay_non_negative(self, setup, alpha):
        operator, n, rng = setup
        signal = np.abs(rng.standard_normal(n))
        out = PersonalizedPageRank(alpha, tol=1e-12).apply(operator, signal)
        assert np.all(out >= -1e-10)

    @given(
        setup=connected_graph_operator(),
        alpha=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=40, deadline=None)
    def test_fixed_point_equation(self, setup, alpha):
        operator, n, rng = setup
        signal = rng.standard_normal(n)
        out = PersonalizedPageRank(alpha, tol=1e-13).apply(operator, signal)
        residual = out - (1 - alpha) * (operator @ out) - alpha * signal
        assert np.max(np.abs(residual)) < 1e-9

    @given(
        setup=connected_graph_operator(),
        alpha=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=40, deadline=None)
    def test_power_equals_solve(self, setup, alpha):
        operator, n, rng = setup
        signal = rng.standard_normal(n)
        power = PersonalizedPageRank(alpha, tol=1e-13).apply(operator, signal)
        solve = PersonalizedPageRank(alpha, method="solve").apply(operator, signal)
        assert np.allclose(power, solve, atol=1e-8)

    @given(setup=connected_graph_operator())
    @settings(max_examples=30, deadline=None)
    def test_linearity(self, setup):
        operator, n, rng = setup
        a = rng.standard_normal(n)
        b = rng.standard_normal(n)
        ppr = PersonalizedPageRank(0.3, tol=1e-13)
        assert np.allclose(
            ppr.apply(operator, a + 2 * b),
            ppr.apply(operator, a) + 2 * ppr.apply(operator, b),
            atol=1e-8,
        )
