"""Property-based tests: TopKTracker equals brute-force top-k selection.

The tracker's domain contract (paper §IV-C): a document's score is a pure
function of the query, so the same doc id is always offered with the same
score.  The strategies below honor that by drawing a score table first and a
stream of doc ids second.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.retrieval.topk import TopKTracker

scores_table = st.dictionaries(
    st.integers(min_value=0, max_value=30),
    st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=31,
)


@st.composite
def offer_stream(draw):
    table = draw(scores_table)
    keys = sorted(table)
    stream = draw(
        st.lists(st.sampled_from(keys), max_size=60)
    )
    return [(str(key), table[key]) for key in stream]


def brute_force_top_k(items: list[tuple[str, float]], k: int) -> list[str]:
    """Best-k distinct docs by (score desc, id asc)."""
    table = dict(items)
    ordered = sorted(table.items(), key=lambda kv: (-kv[1], kv[0]))
    return [doc_id for doc_id, _ in ordered[:k]]


class TestTrackerMatchesBruteForce:
    @given(items=offer_stream(), k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=200)
    def test_contents_equal_brute_force(self, items, k):
        tracker = TopKTracker(k)
        for doc_id, score in items:
            tracker.offer(doc_id, score)
        assert tracker.doc_ids() == brute_force_top_k(items, k)

    @given(items=offer_stream(), k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=100)
    def test_insertion_order_invariance(self, items, k):
        forward = TopKTracker(k)
        for doc_id, score in items:
            forward.offer(doc_id, score)
        backward = TopKTracker(k)
        for doc_id, score in reversed(items):
            backward.offer(doc_id, score)
        assert forward.doc_ids() == backward.doc_ids()

    @given(items=offer_stream(), k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=100)
    def test_size_bounded_by_k(self, items, k):
        tracker = TopKTracker(k)
        for doc_id, score in items:
            tracker.offer(doc_id, score)
        assert len(tracker) <= k
        assert len(tracker) == min(k, len({d for d, _ in items}))

    @given(items=offer_stream(), k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=100)
    def test_items_sorted_best_first(self, items, k):
        tracker = TopKTracker(k)
        for doc_id, score in items:
            tracker.offer(doc_id, score)
        keys = [item.sort_key for item in tracker.items()]
        assert keys == sorted(keys)

    @given(
        items=offer_stream(),
        split=st.integers(min_value=0, max_value=60),
        k=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=100)
    def test_merge_equals_single_stream(self, items, split, k):
        """Splitting a stream between two trackers and merging equals one
        tracker over the whole stream (parallel walks rejoining)."""
        split = split % (len(items) + 1)
        left_stream, right_stream = items[:split], items[split:]
        a = TopKTracker(k)
        for doc_id, score in left_stream:
            a.offer(doc_id, score)
        b = TopKTracker(k)
        for doc_id, score in right_stream:
            b.offer(doc_id, score)
        a.merge(b)
        combined = TopKTracker(k)
        for doc_id, score in items:
            combined.offer(doc_id, score)
        assert a.doc_ids() == combined.doc_ids()

    @given(items=offer_stream())
    @settings(max_examples=50)
    def test_from_items_roundtrip(self, items):
        tracker = TopKTracker(5)
        for doc_id, score in items:
            tracker.offer(doc_id, score)
        rebuilt = TopKTracker.from_items(5, tracker.items())
        assert rebuilt.doc_ids() == tracker.doc_ids()

    @given(items=offer_stream(), k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=100)
    def test_worst_score_is_minimum_kept(self, items, k):
        tracker = TopKTracker(k)
        for doc_id, score in items:
            tracker.offer(doc_id, score)
        if tracker.is_full:
            kept = [item.score for item in tracker.items()]
            assert tracker.worst_score() == min(kept)
