"""Property-based tests: walk-engine invariants on random instances."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import WalkConfig, run_query
from repro.core.forwarding import PrecomputedScorePolicy, RandomWalkPolicy
from repro.graphs.adjacency import CompressedAdjacency
from repro.retrieval.vector_store import DocumentStore


@st.composite
def walk_instance(draw):
    n = draw(st.integers(min_value=2, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    graph = nx.random_labeled_tree(n, seed=seed)
    rng = np.random.default_rng(seed)
    for _ in range(draw(st.integers(0, n))):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            graph.add_edge(int(u), int(v))
    adjacency = CompressedAdjacency.from_networkx(graph)
    scores = rng.standard_normal(n)
    ttl = draw(st.integers(min_value=1, max_value=40))
    start = draw(st.integers(min_value=0, max_value=n - 1))
    # scatter a few documents
    stores = {}
    for i in range(draw(st.integers(0, 5))):
        node = int(rng.integers(n))
        stores.setdefault(node, DocumentStore(3)).add(
            f"doc{i}", rng.standard_normal(3)
        )
    return adjacency, scores, stores, ttl, start, seed


class TestWalkInvariants:
    @given(instance=walk_instance())
    @settings(max_examples=120, deadline=None)
    def test_ttl_bounds_visits(self, instance):
        adjacency, scores, stores, ttl, start, seed = instance
        result = run_query(
            adjacency, stores, PrecomputedScorePolicy(scores),
            np.ones(3), start, WalkConfig(ttl=ttl),
        )
        assert 1 <= len(result.visits) <= ttl

    @given(instance=walk_instance())
    @settings(max_examples=120, deadline=None)
    def test_path_follows_edges(self, instance):
        adjacency, scores, stores, ttl, start, seed = instance
        result = run_query(
            adjacency, stores, PrecomputedScorePolicy(scores),
            np.ones(3), start, WalkConfig(ttl=ttl),
        )
        path = result.path
        for u, v in zip(path, path[1:]):
            assert adjacency.has_edge(u, v)

    @given(instance=walk_instance())
    @settings(max_examples=100, deadline=None)
    def test_hop_indices_consecutive(self, instance):
        adjacency, scores, stores, ttl, start, seed = instance
        result = run_query(
            adjacency, stores, PrecomputedScorePolicy(scores),
            np.ones(3), start, WalkConfig(ttl=ttl),
        )
        hops = [hop for hop, _ in result.visits]
        assert hops == list(range(len(hops)))

    @given(instance=walk_instance())
    @settings(max_examples=100, deadline=None)
    def test_messages_equal_forwards(self, instance):
        adjacency, scores, stores, ttl, start, seed = instance
        result = run_query(
            adjacency, stores, PrecomputedScorePolicy(scores),
            np.ones(3), start, WalkConfig(ttl=ttl),
        )
        assert result.messages == len(result.visits) - 1

    @given(instance=walk_instance())
    @settings(max_examples=100, deadline=None)
    def test_discovered_docs_live_on_visited_nodes(self, instance):
        adjacency, scores, stores, ttl, start, seed = instance
        query = np.ones(3)
        result = run_query(
            adjacency, stores, PrecomputedScorePolicy(scores),
            query, start, WalkConfig(ttl=ttl, k=3),
        )
        visited = {node for _, node in result.visits}
        for doc_id, hop in result.discovered_at.items():
            host_nodes = {
                node for node, store in stores.items() if doc_id in store
            }
            assert host_nodes & visited
            assert 0 <= hop < len(result.visits)

    @given(instance=walk_instance())
    @settings(max_examples=100, deadline=None)
    def test_tracker_items_within_k(self, instance):
        adjacency, scores, stores, ttl, start, seed = instance
        result = run_query(
            adjacency, stores, PrecomputedScorePolicy(scores),
            np.ones(3), start, WalkConfig(ttl=ttl, k=2),
        )
        assert len(result.results) <= 2

    @given(instance=walk_instance())
    @settings(max_examples=60, deadline=None)
    def test_deterministic_policy_reproducible(self, instance):
        adjacency, scores, stores, ttl, start, seed = instance
        kwargs = dict(config=WalkConfig(ttl=ttl, k=2))
        a = run_query(
            adjacency, stores, PrecomputedScorePolicy(scores),
            np.ones(3), start, **kwargs,
        )
        b = run_query(
            adjacency, stores, PrecomputedScorePolicy(scores),
            np.ones(3), start, **kwargs,
        )
        assert a.path == b.path

    @given(instance=walk_instance())
    @settings(max_examples=60, deadline=None)
    def test_random_policy_seed_reproducible(self, instance):
        adjacency, scores, stores, ttl, start, seed = instance
        a = run_query(
            adjacency, stores, RandomWalkPolicy(), np.ones(3), start,
            WalkConfig(ttl=ttl), seed=seed,
        )
        b = run_query(
            adjacency, stores, RandomWalkPolicy(), np.ones(3), start,
            WalkConfig(ttl=ttl), seed=seed,
        )
        assert a.path == b.path
