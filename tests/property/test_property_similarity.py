"""Property-based tests for similarity kernels and top-k scoring."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.embeddings.similarity import cosine_similarity, dot_scores, l2_normalize
from repro.retrieval.scoring import top_k_indices

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

vectors = npst.arrays(
    dtype=np.float64, shape=st.integers(2, 16), elements=finite_floats
)

matrices = npst.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 12), st.just(8)),
    elements=finite_floats,
)


class TestL2NormalizeProperties:
    @given(v=vectors)
    @settings(max_examples=150)
    def test_norm_is_one_or_zero(self, v):
        out = l2_normalize(v)
        norm = np.linalg.norm(out)
        assert np.isclose(norm, 1.0) or np.isclose(norm, 0.0)

    @given(v=vectors, scale=st.floats(min_value=0.1, max_value=100))
    @settings(max_examples=150)
    def test_positive_scale_invariance(self, v, scale):
        # Scale invariance genuinely breaks astride the eps=1e-12 zeroing
        # threshold (one of v / scale·v normalizes, the other snaps to
        # zero), so keep the norm clear of that boundary.
        assume(np.linalg.norm(v) >= 1e-6)
        assert np.allclose(l2_normalize(v), l2_normalize(scale * v), atol=1e-9)

    @given(v=vectors)
    @settings(max_examples=100)
    def test_idempotent(self, v):
        once = l2_normalize(v)
        twice = l2_normalize(once)
        assert np.allclose(once, twice, atol=1e-12)


class TestCosineProperties:
    @given(m=matrices)
    @settings(max_examples=100)
    def test_bounded(self, m):
        query = m[0]
        sims = cosine_similarity(query, m)
        assert np.all(sims <= 1.0 + 1e-9)
        assert np.all(sims >= -1.0 - 1e-9)

    @given(m=matrices)
    @settings(max_examples=100)
    def test_symmetry(self, m):
        a, b = m[0], m[-1]
        assert np.isclose(
            cosine_similarity(a, b)[0], cosine_similarity(b, a)[0], atol=1e-9
        )


class TestDotLinearity:
    @given(m=matrices)
    @settings(max_examples=100)
    def test_sum_of_scores_is_score_of_sum(self, m):
        """The personalization identity (paper eq. 3)."""
        query = np.arange(8, dtype=float)
        total = dot_scores(query, m).sum()
        summed = float(m.sum(axis=0) @ query)
        assert np.isclose(total, summed, rtol=1e-9, atol=1e-6)


class TestTopKProperties:
    @given(
        scores=npst.arrays(
            dtype=np.float64, shape=st.integers(1, 40), elements=finite_floats
        ),
        k=st.integers(1, 10),
    )
    @settings(max_examples=200)
    def test_matches_stable_sort(self, scores, k):
        order = top_k_indices(scores, k)
        expected = sorted(range(len(scores)), key=lambda i: (-scores[i], i))[:k]
        assert list(order) == expected

    @given(
        scores=npst.arrays(
            dtype=np.float64, shape=st.integers(2, 40), elements=finite_floats
        )
    )
    @settings(max_examples=100)
    def test_selected_scores_dominate_rest(self, scores):
        k = len(scores) // 2
        chosen = set(int(i) for i in top_k_indices(scores, k))
        rest = set(range(len(scores))) - chosen
        if chosen and rest:
            assert min(scores[i] for i in chosen) >= max(
                scores[i] for i in rest
            ) - 1e-12
