"""Property-based tests: adjacency structure, event queue, document store."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.metrics import bfs_distances
from repro.retrieval.vector_store import DocumentStore
from repro.runtime.events import EventQueue


@st.composite
def random_graph(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            max_size=3 * n,
        )
    )
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from((u, v) for u, v in edges if u != v)
    return graph


class TestAdjacencyProperties:
    @given(graph=random_graph())
    @settings(max_examples=100, deadline=None)
    def test_neighbor_symmetry(self, graph):
        adjacency = CompressedAdjacency.from_networkx(graph)
        for u in range(adjacency.n_nodes):
            for v in adjacency.neighbors(u):
                assert u in adjacency.neighbors(int(v))

    @given(graph=random_graph())
    @settings(max_examples=100, deadline=None)
    def test_degree_sequence_preserved(self, graph):
        adjacency = CompressedAdjacency.from_networkx(graph)
        for node, degree in graph.degree():
            assert adjacency.degree(node) == degree

    @given(graph=random_graph())
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_through_networkx(self, graph):
        adjacency = CompressedAdjacency.from_networkx(graph)
        back = CompressedAdjacency.from_networkx(adjacency.to_networkx())
        assert np.array_equal(back.indptr, adjacency.indptr)
        assert np.array_equal(back.indices, adjacency.indices)

    @given(graph=random_graph(), source=st.integers(0, 24))
    @settings(max_examples=100, deadline=None)
    def test_bfs_triangle_inequality(self, graph, source):
        adjacency = CompressedAdjacency.from_networkx(graph)
        source = source % adjacency.n_nodes
        dist = bfs_distances(adjacency, source)
        # reachable neighbors differ by at most 1
        for u in range(adjacency.n_nodes):
            if dist[u] < 0:
                continue
            for v in adjacency.neighbors(u):
                assert dist[v] >= 0
                assert abs(dist[u] - dist[v]) <= 1


class TestEventQueueProperties:
    @given(
        delays=st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False), max_size=40
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_dispatch_order_sorted_by_time_then_seq(self, delays):
        queue = EventQueue()
        log = []
        for i, delay in enumerate(delays):
            queue.schedule(delay, lambda i=i, d=delay: log.append((d, i)))
        queue.run()
        assert log == sorted(log)

    @given(
        delays=st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        cancel_idx=st.integers(min_value=0, max_value=29),
    )
    @settings(max_examples=100, deadline=None)
    def test_cancelled_events_never_run(self, delays, cancel_idx):
        queue = EventQueue()
        log = []
        handles = [
            queue.schedule(delay, lambda i=i: log.append(i))
            for i, delay in enumerate(delays)
        ]
        cancel_idx = cancel_idx % len(handles)
        handles[cancel_idx].cancel()
        queue.run()
        assert cancel_idx not in log
        assert len(log) == len(delays) - 1


doc_ops = st.lists(
    st.tuples(st.sampled_from(["add", "remove"]), st.integers(0, 15)),
    max_size=60,
)


class TestDocumentStoreProperties:
    @given(ops=doc_ops)
    @settings(max_examples=150, deadline=None)
    def test_matches_reference_dict(self, ops):
        """Any add/remove sequence: store top-k equals brute force over a dict."""
        rng = np.random.default_rng(0)
        store = DocumentStore(4)
        reference: dict[str, np.ndarray] = {}
        for op, key in ops:
            doc_id = f"d{key}"
            if op == "add":
                vector = rng.standard_normal(4)
                store.add(doc_id, vector)
                reference[doc_id] = vector
            elif doc_id in reference:
                store.remove(doc_id)
                del reference[doc_id]
        assert len(store) == len(reference)
        query = rng.standard_normal(4)
        got = store.top_k(query, 5)
        expected = sorted(
            ((doc_id, float(vec @ query)) for doc_id, vec in reference.items()),
            key=lambda kv: -kv[1],
        )[:5]
        assert {doc_id for doc_id, _ in got} == {doc_id for doc_id, _ in expected}
        for (_, score_got), (_, score_exp) in zip(
            sorted(got, key=lambda kv: -kv[1]), expected
        ):
            assert np.isclose(score_got, score_exp)
