"""Benchmark: diffusion strategies — cost of the warm-up phase (Fig. 2 l.4-6).

Times the three execution strategies of eq. (6)/(7) on the same workload and
reports convergence diagnostics (sweeps for power iteration, messages for the
decentralized protocol).
"""

import numpy as np
import pytest

from benchmarks.conftest import emit_report
from repro.core.diffusion import diffuse_embeddings
from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.social import FacebookLikeConfig, facebook_like_graph
from repro.simulation.reporting import format_rows

DIM = 64


@pytest.fixture(scope="module")
def diffusion_setup():
    graph = facebook_like_graph(
        FacebookLikeConfig(n_nodes=400, target_edges=6000, n_egos=6), seed=5
    )
    adjacency = CompressedAdjacency.from_networkx(graph)
    rng = np.random.default_rng(6)
    personalization = rng.standard_normal((adjacency.n_nodes, DIM))
    return adjacency, personalization


_ROWS = []


@pytest.mark.parametrize("alpha", [0.1, 0.5, 0.9])
def test_power_iteration(benchmark, diffusion_setup, alpha):
    adjacency, personalization = diffusion_setup
    outcome = benchmark(
        lambda: diffuse_embeddings(
            adjacency, personalization, alpha=alpha, method="power", tol=1e-8
        )
    )
    _ROWS.append(
        {
            "method": "power",
            "alpha": alpha,
            "sweeps/events": outcome.iterations,
            "messages": "-",
        }
    )
    assert outcome.converged
    # heavier diffusion (smaller alpha) needs more sweeps: error contracts
    # by (1 - alpha) per sweep
    if alpha == 0.9:
        assert outcome.iterations < 20


def test_exact_solve(benchmark, diffusion_setup):
    adjacency, personalization = diffusion_setup
    outcome = benchmark(
        lambda: diffuse_embeddings(
            adjacency, personalization, alpha=0.5, method="solve"
        )
    )
    _ROWS.append(
        {"method": "solve", "alpha": 0.5, "sweeps/events": 1, "messages": "-"}
    )
    assert outcome.converged


def test_async_protocol(benchmark, diffusion_setup):
    """The decentralized message-passing protocol on a smaller instance
    (event-driven Python: measured for protocol cost, not raw speed)."""
    adjacency_small = CompressedAdjacency.from_networkx(
        facebook_like_graph(
            FacebookLikeConfig(n_nodes=100, target_edges=900, n_egos=4), seed=7
        )
    )
    rng = np.random.default_rng(8)
    personalization = rng.standard_normal((100, 8))

    outcome = benchmark.pedantic(
        lambda: diffuse_embeddings(
            adjacency_small,
            personalization,
            alpha=0.5,
            method="async",
            tol=1e-7,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    _ROWS.append(
        {
            "method": "async (100 nodes)",
            "alpha": 0.5,
            "sweeps/events": outcome.events,
            "messages": outcome.messages,
        }
    )
    emit_report(
        "diffusion_strategies",
        format_rows(_ROWS, title="diffusion warm-up strategies (400-node graph)"),
        data={"n_nodes": 400, "dim": DIM, "rows": _ROWS},
    )
    assert outcome.residual < 1e-5
    # reference: exact solve on the same instance agrees
    exact = diffuse_embeddings(
        adjacency_small, personalization, alpha=0.5, method="solve"
    )
    assert np.max(np.abs(outcome.embeddings - exact.embeddings)) < 1e-4
