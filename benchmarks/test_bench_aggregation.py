"""Benchmark: flat-sum vs sketch-partitioned aggregation (§VI future work).

Evaluates the multi-channel personalization extension exactly where the
paper's flat sum collapses (M = 10,000 documents): more channels mean each
diffused vector sums fewer, more-aligned documents, trading bandwidth
(C× embeddings per node) for noise reduction.
"""

from benchmarks.conftest import emit_report
from repro.experiments.ablations import aggregation_comparison
from repro.simulation.reporting import format_rows


def test_aggregation_comparison(benchmark, env, bench_iterations):
    rows = benchmark.pedantic(
        lambda: aggregation_comparison(
            n_documents=10000, iterations=bench_iterations
        ),
        rounds=1,
        iterations=1,
    )
    emit_report(
        "ablation_aggregation",
        format_rows(
            rows,
            title="flat sum (paper) vs sketch-partitioned channels, "
            "M=10000, alpha=0.5, uniform start nodes",
        ),
        data={"n_documents": 10000, "iterations": bench_iterations, "rows": rows},
    )
    by_channels = {row["channels"]: row["success rate"] for row in rows}
    assert 1 in by_channels
    # partitioning must not collapse the success rate; typically it improves it
    best_multi = max(rate for c, rate in by_channels.items() if c > 1)
    assert best_multi >= by_channels[1] - 0.05
