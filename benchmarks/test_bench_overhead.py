"""Benchmark: advertisement overhead — diffusion vs index schemes (§I/§II-A).

Quantifies the storage/bandwidth argument the paper makes qualitatively:
diffusion keeps per-node state at one embedding per neighbor, while
document-oriented k-hop indexes and full replication grow with the
neighborhood/network document count.
"""

from benchmarks.conftest import emit_report
from repro.simulation.overhead import overhead_comparison
from repro.simulation.reporting import format_rows


def test_overhead_comparison(benchmark, env):
    rows = benchmark.pedantic(
        lambda: overhead_comparison(
            env.adjacency,
            dim=env.model.dim,
            documents_per_node=2.5,  # ~M=10000 over the paper's 4,039 nodes
            alpha=0.5,
            radii=(1, 2),
        ),
        rounds=1,
        iterations=1,
    )
    emit_report(
        "overhead_comparison",
        format_rows(
            rows,
            title=(
                f"advertisement overhead on the {env.n_nodes}-node graph, "
                f"{env.model.dim}-d embeddings, 2.5 docs/node, 40-byte doc ids"
            ),
        ),
        data={
            "n_nodes": env.n_nodes,
            "dim": env.model.dim,
            "documents_per_node": 2.5,
            "rows": rows,
        },
    )
    by_scheme = {row["scheme"]: row for row in rows}
    # replication stores the global index; diffusion state is constant-size
    assert (
        by_scheme["full replication"]["storage/node (KiB)"]
        > by_scheme["diffusion (estimate)"]["storage/node (KiB)"] / 10
    )
    assert by_scheme["2-hop index"]["storage/node (KiB)"] > by_scheme["1-hop index"][
        "storage/node (KiB)"
    ]
