"""Benchmark: the sparse-first diffusion pipeline at benchmark scale.

Three measurements on a near-regular random overlay (built directly in CSR
by :func:`repro.graphs.generators.cycle_union_adjacency` — networkx-free,
so 100k nodes build in well under a second):

1. **Precompute speed at the dense-feasible size** — the ``sparse`` backend
   vs dense ``power`` on the same personalization, same tolerance.  The
   issue targets >= 2x at 10k nodes with top-k score overlap >= 0.99 at the
   default epsilon.
2. **Peak memory at 10x that size** — the sparse backend runs the diffusion
   at a node count the dense path cannot reasonably touch; its measured
   peak is compared against the dense 10k-node peak extrapolated linearly
   (dense memory is Theta(n * dim), so 10x nodes => 10x bytes).  Target:
   >= 5x below the extrapolation.
3. **The epsilon knob** — accuracy (top-k overlap vs dense) and iterate
   density as a function of the pruning threshold, recording the
   density/accuracy trade-off the filter docstring describes.

Reduced mode (default; CI smoke and the plain suite) shrinks both sizes and
asserts conservative floors; full mode (``REPRO_BENCH_SPARSE_FULL=1`` or
``REPRO_FULL=1``) runs the issue's 10k/100k configuration and asserts its
targets.  The committed ``results/sparse_scale.{txt,json}`` come from a full
run.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from benchmarks.conftest import emit_report, measure_peak_memory
from repro.core.backends import get_backend
from repro.experiments.common import full_requested
from repro.graphs.generators import cycle_union_adjacency
from repro.gsp.filters import SPARSE_DEFAULT_EPSILON
from repro.core.backends.sparse import SparseDiffusionBackend
from repro.kernels import kernel_info

BENCH_FULL_ENV = "REPRO_BENCH_SPARSE_FULL"

DIM = 64
DEGREE = 10
HOLDER_FRACTION = 0.01  # document holders per node (the sparse E0 support)
TOP_K_FRACTION = 0.01  # ranking depth of the overlap metric (top 1% of nodes)
N_QUERIES = 30
EPSILON_SWEEP = (1e-2, 3e-3, 1e-3, 3e-4)


def bench_full_requested() -> bool:
    flag = os.environ.get(BENCH_FULL_ENV, "").strip()
    return flag in ("1", "true", "yes") or full_requested()


@dataclass(frozen=True)
class BenchSize:
    label: str
    dense_nodes: int  # where dense power runs (speed + memory baseline)
    sparse_nodes: int  # where only the sparse backend runs
    repetitions: int
    min_speedup: float  # sparse vs dense at dense_nodes
    min_memory_ratio: float  # extrapolated dense peak / sparse peak
    min_overlap: float  # top-k overlap at the default epsilon
    min_f32_overlap: float  # top-k overlap of the float32 pipeline vs float64


# The reduced overlap floor is looser than the full-size target: at 2k
# nodes the top-1% cut is only 20 nodes and the boundary sits deeper into
# the pruned tail, so the deterministic measurement (~0.967) runs below the
# 10k-node one (~0.993) by construction, not by regression.  The float32
# floor follows the same logic (single-precision noise flips more of a
# 20-node boundary than a 100-node one).
REDUCED = BenchSize(
    label="reduced (2k/20k nodes)",
    dense_nodes=2_000,
    sparse_nodes=20_000,
    repetitions=2,
    min_speedup=1.3,
    min_memory_ratio=2.5,
    min_overlap=0.94,
    min_f32_overlap=0.95,
)
# The committed measurement exceeds the issue's floors (2x speed, 5x
# memory, 0.99 overlap, 0.98 float32-vs-float64 overlap); the assertion
# floors sit at the issue targets.
FULL = BenchSize(
    label="full (10k/100k nodes, issue target)",
    dense_nodes=10_000,
    sparse_nodes=100_000,
    repetitions=3,
    min_speedup=2.0,
    min_memory_ratio=5.0,
    min_overlap=0.99,
    min_f32_overlap=0.98,
)


def _csr_bytes(matrix: sp.csr_matrix) -> int:
    return int(
        matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
    )


def _personalization(n: int, seed: int) -> sp.csr_matrix:
    """Sparse E0: unit-scale rows on a random ``HOLDER_FRACTION`` of nodes."""
    rng = np.random.default_rng(seed)
    holders = np.sort(rng.choice(n, max(1, int(n * HOLDER_FRACTION)), replace=False))
    block = rng.standard_normal((holders.shape[0], DIM))
    rows = np.repeat(holders.astype(np.int64), DIM)
    cols = np.tile(np.arange(DIM, dtype=np.int64), holders.shape[0])
    return sp.csr_matrix((block.ravel(), (rows, cols)), shape=(n, DIM))


def _time_diffusion(backend, adjacency, personalization, repetitions) -> tuple[float, object]:
    best = float("inf")
    outcome = None
    for _ in range(repetitions):
        started = time.perf_counter()
        outcome = backend.diffuse(adjacency, personalization, alpha=0.5, tol=1e-8)
        best = min(best, time.perf_counter() - started)
    return best, outcome


def _overlap(dense_embeddings, sparse_embeddings, top_k: int, seed: int) -> float:
    """Mean top-``top_k`` node overlap of diffused scores over random queries."""
    rng = np.random.default_rng(seed)
    queries = rng.standard_normal((DIM, N_QUERIES))
    dense_scores = dense_embeddings @ queries
    sparse_scores = np.asarray(sparse_embeddings @ queries)
    overlaps = []
    for j in range(N_QUERIES):
        top_dense = set(np.argsort(-dense_scores[:, j])[:top_k].tolist())
        top_sparse = set(np.argsort(-sparse_scores[:, j])[:top_k].tolist())
        overlaps.append(len(top_dense & top_sparse) / top_k)
    return float(np.mean(overlaps))


def test_sparse_scale():
    size = FULL if bench_full_requested() else REDUCED
    top_k = max(10, int(size.dense_nodes * TOP_K_FRACTION))

    # --- dense-feasible size: speed + memory baseline + accuracy sweep ----
    adjacency = cycle_union_adjacency(size.dense_nodes, DEGREE, seed=11)
    e0_sparse = _personalization(size.dense_nodes, seed=12)
    e0_dense = e0_sparse.toarray()

    power = get_backend("power")
    sparse = get_backend("sparse")
    # Warm operator/normalization caches out of the timed region.
    power.diffuse(adjacency, e0_dense, alpha=0.5, tol=1e-2)
    sparse.diffuse(adjacency, e0_sparse, alpha=0.5, tol=1e-2)

    dense_time, dense_outcome = _time_diffusion(
        power, adjacency, e0_dense, size.repetitions
    )
    sparse_time, sparse_outcome = _time_diffusion(
        sparse, adjacency, e0_sparse, size.repetitions
    )
    speedup = dense_time / sparse_time
    overlap = _overlap(
        dense_outcome.embeddings, sparse_outcome.embeddings, top_k, seed=13
    )

    _, dense_peak = measure_peak_memory(
        lambda: power.diffuse(adjacency, e0_dense, alpha=0.5, tol=1e-8)
    )

    sweep = []
    for epsilon in EPSILON_SWEEP:
        backend = SparseDiffusionBackend(epsilon=epsilon)
        eps_time, eps_outcome = _time_diffusion(
            backend, adjacency, e0_sparse, size.repetitions
        )
        sweep.append(
            {
                "epsilon": epsilon,
                "time_s": eps_time,
                "speedup_vs_dense": dense_time / eps_time,
                "density": eps_outcome.embeddings.nnz
                / float(size.dense_nodes * DIM),
                "overlap_top_k": _overlap(
                    dense_outcome.embeddings, eps_outcome.embeddings, top_k, seed=13
                ),
                "converged": bool(eps_outcome.converged),
            }
        )

    # --- float32 pipeline: accuracy cost + cache bytes vs float64 --------
    f32_backend = SparseDiffusionBackend(dtype=np.float32)
    f32_backend.diffuse(adjacency, e0_sparse, alpha=0.5, tol=1e-2)  # warm
    f32_time, f32_outcome = _time_diffusion(
        f32_backend, adjacency, e0_sparse, size.repetitions
    )
    f32_overlap = _overlap(
        np.asarray(sparse_outcome.embeddings.todense()),
        f32_outcome.embeddings,
        top_k,
        seed=13,
    )
    f64_cache_bytes = _csr_bytes(sparse_outcome.embeddings)
    f32_cache_bytes = _csr_bytes(f32_outcome.embeddings)

    # --- 10x size: the graph only the sparse path touches ----------------
    big_adjacency = cycle_union_adjacency(size.sparse_nodes, DEGREE, seed=21)
    big_e0 = _personalization(size.sparse_nodes, seed=22)
    sparse_big = get_backend("sparse")
    sparse_big.diffuse(big_adjacency, big_e0, alpha=0.5, tol=1e-2)  # warm caches
    # Wall-clock from an untraced run: tracemalloc's per-allocation overhead
    # would otherwise inflate the timing (see measure_peak_memory).
    big_time, big_outcome = _time_diffusion(
        sparse_big, big_adjacency, big_e0, size.repetitions
    )
    _, sparse_peak = measure_peak_memory(
        lambda: sparse_big.diffuse(big_adjacency, big_e0, alpha=0.5, tol=1e-8)
    )
    scale_factor = size.sparse_nodes / size.dense_nodes
    extrapolated_dense_peak = dense_peak * scale_factor
    memory_ratio = extrapolated_dense_peak / sparse_peak
    big_density = big_outcome.embeddings.nnz / float(size.sparse_nodes * DIM)

    lines = [
        "Sparse-first diffusion pipeline vs dense power iteration",
        f"configuration: {size.label}; dim={DIM}, degree~{DEGREE}, "
        f"{HOLDER_FRACTION:.0%} document holders, alpha=0.5, tol=1e-8, "
        f"default epsilon={SPARSE_DEFAULT_EPSILON:g}",
        f"precompute at {size.dense_nodes} nodes "
        f"(best of {size.repetitions}):",
        f"  dense power : {dense_time * 1e3:8.1f} ms   "
        f"(peak memory {dense_peak / 1e6:7.1f} MB)",
        f"  sparse      : {sparse_time * 1e3:8.1f} ms   "
        f"speedup {speedup:5.2f}x (floor {size.min_speedup}x)",
        f"  top-{top_k} overlap vs dense: {overlap:.4f} "
        f"(floor {size.min_overlap})",
        f"epsilon sweep at {size.dense_nodes} nodes "
        "(accuracy/density trade-off):",
    ]
    for entry in sweep:
        lines.append(
            f"  eps={entry['epsilon']:<7g} {entry['time_s'] * 1e3:7.1f} ms  "
            f"density {entry['density']:6.3f}  "
            f"overlap@{top_k} {entry['overlap_top_k']:.4f}"
        )
    lines += [
        f"float32 pipeline at {size.dense_nodes} nodes "
        "(SparseDiffusionBackend(dtype=float32)):",
        f"  wall-clock  : {f32_time * 1e3:8.1f} ms "
        f"(float64 sparse: {sparse_time * 1e3:.1f} ms)",
        f"  top-{top_k} overlap vs float64 sparse: {f32_overlap:.4f} "
        f"(floor {size.min_f32_overlap})",
        f"  CSR cache   : {f32_cache_bytes / 1e6:7.2f} MB vs "
        f"{f64_cache_bytes / 1e6:.2f} MB float64 "
        f"({f64_cache_bytes / f32_cache_bytes:.2f}x smaller values+index "
        "arrays)",
        f"sparse backend at {size.sparse_nodes} nodes "
        "(dense path not attempted):",
        f"  wall-clock  : {big_time:8.2f} s (best of {size.repetitions}; "
        f"{big_outcome.iterations} sweeps, converged={big_outcome.converged})",
        f"  peak memory : {sparse_peak / 1e6:8.1f} MB; dense extrapolation "
        f"{extrapolated_dense_peak / 1e6:.1f} MB "
        f"({scale_factor:.0f}x the measured {size.dense_nodes}-node peak)",
        f"  memory ratio: {memory_ratio:8.2f}x lower than dense "
        f"(floor {size.min_memory_ratio}x)",
        f"  cached embedding density: {big_density:.4f} "
        "(CSR rows consumed directly by the walk policies)",
    ]
    emit_report(
        "sparse_scale" if size is FULL else "sparse_scale_reduced",
        "\n".join(lines),
        data={
            "criterion": "wall_clock_speedup_and_ranking_overlap",
            "seed": 11,  # sweep graph seed; signal/scale graph use 12/21/22
            "configuration": {
                "label": size.label,
                "dense_nodes": size.dense_nodes,
                "sparse_nodes": size.sparse_nodes,
                "dim": DIM,
                "degree": DEGREE,
                "holder_fraction": HOLDER_FRACTION,
                "alpha": 0.5,
                "tol": 1e-8,
                "default_epsilon": SPARSE_DEFAULT_EPSILON,
                "repetitions": size.repetitions,
            },
            "dense": {
                "nodes": size.dense_nodes,
                "time_s": dense_time,
                "peak_memory_bytes": dense_peak,
                "iterations": dense_outcome.iterations,
            },
            "sparse_at_dense_size": {
                "nodes": size.dense_nodes,
                "time_s": sparse_time,
                "speedup_vs_dense": speedup,
                "overlap_top_k": overlap,
                "top_k": top_k,
                "iterations": sparse_outcome.iterations,
            },
            "epsilon_sweep": sweep,
            "float32_pipeline": {
                "nodes": size.dense_nodes,
                "time_s": f32_time,
                "overlap_top_k_vs_float64": f32_overlap,
                "min_overlap": size.min_f32_overlap,
                "cache_bytes_float32": f32_cache_bytes,
                "cache_bytes_float64": f64_cache_bytes,
                "cache_ratio": f64_cache_bytes / f32_cache_bytes,
                "iterations": f32_outcome.iterations,
                "converged": bool(f32_outcome.converged),
            },
            "kernels": kernel_info(),
            "sparse_at_scale": {
                "nodes": size.sparse_nodes,
                "time_s": big_time,
                "peak_memory_bytes": sparse_peak,
                "extrapolated_dense_peak_bytes": extrapolated_dense_peak,
                "memory_ratio_vs_dense_extrapolation": memory_ratio,
                "embedding_density": big_density,
                "iterations": big_outcome.iterations,
                "converged": bool(big_outcome.converged),
            },
        },
    )

    assert sparse_outcome.converged
    assert big_outcome.converged
    assert overlap >= size.min_overlap, (
        f"top-{top_k} overlap {overlap:.4f} below {size.min_overlap} at the "
        f"default epsilon {SPARSE_DEFAULT_EPSILON:g}"
    )
    assert speedup >= size.min_speedup, (
        f"sparse precompute only {speedup:.2f}x faster than dense power at "
        f"{size.dense_nodes} nodes (floor {size.min_speedup}x)"
    )
    assert memory_ratio >= size.min_memory_ratio, (
        f"sparse peak at {size.sparse_nodes} nodes only {memory_ratio:.2f}x "
        f"below the dense extrapolation (floor {size.min_memory_ratio}x)"
    )
    assert f32_outcome.converged
    assert f32_outcome.embeddings.dtype == np.float32
    assert f32_overlap >= size.min_f32_overlap, (
        f"float32 pipeline top-{top_k} overlap {f32_overlap:.4f} vs float64 "
        f"below {size.min_f32_overlap}"
    )
