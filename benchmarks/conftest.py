"""Shared benchmark fixtures: the scaled experiment environment."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.experiments.common import full_requested, get_environment

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def env():
    """The experiment environment (scaled unless REPRO_FULL=1)."""
    return get_environment(full_requested())


@pytest.fixture(scope="session")
def bench_iterations():
    """Per-bench iteration budget (paper-scale only with REPRO_FULL=1)."""
    return None if full_requested() else 25


def emit_report(name: str, text: str) -> None:
    """Print a result table so it survives pytest's output capture.

    Writes to the real stdout (visible in ``pytest benchmarks/`` output even
    under capture) and persists a copy under ``benchmarks/results/``.
    """
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n"
    sys.__stdout__.write(banner)
    sys.__stdout__.flush()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
