"""Shared benchmark fixtures: the scaled experiment environment."""

from __future__ import annotations

import gc
import json
import sys
import tracemalloc
from pathlib import Path
from typing import Any, Callable, Mapping

import pytest

from repro.experiments.common import full_requested, get_environment
from repro.utils import procmem

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def env():
    """The experiment environment (scaled unless REPRO_FULL=1)."""
    return get_environment(full_requested())


@pytest.fixture(scope="session")
def bench_iterations():
    """Per-bench iteration budget (paper-scale only with REPRO_FULL=1)."""
    return None if full_requested() else 25


def emit_report(
    name: str, text: str, data: Mapping[str, Any] | None = None
) -> None:
    """Print a result table so it survives pytest's output capture.

    Writes to the real stdout (visible in ``pytest benchmarks/`` output even
    under capture) and persists a copy under ``benchmarks/results/``.  When
    ``data`` is given, a machine-readable sibling ``results/<name>.json`` is
    written alongside the text table (timings, sizes, speedups …) so the
    perf trajectory stays diffable and plottable across PRs.
    """
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n"
    sys.__stdout__.write(banner)
    sys.__stdout__.flush()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(data, indent=2, sort_keys=True, default=float) + "\n"
        )


def measure_peak_memory(fn: Callable[[], Any]) -> tuple[Any, int]:
    """Run ``fn`` under tracemalloc; returns ``(result, peak_bytes)``.

    tracemalloc tracks numpy/scipy buffers too (they allocate through the
    tracked allocator domains), so the peak covers the arrays that dominate
    diffusion memory.  Tracing adds a few percent of runtime overhead —
    measure wall-clock in a separate untraced run when the same benchmark
    reports both.

    Multiprocessing: tracemalloc is per-process, so worker-pool allocations
    (e.g. the sharded precompute of :mod:`repro.core.shard`) would silently
    vanish from a parent-only trace.  Pool-spawning code cooperates through
    :mod:`repro.utils.procmem`: while ``fn`` runs, workers trace themselves
    and report their peaks, and the returned figure is
    ``parent_peak + max(child peaks)`` — the parent's footprint plus the
    worst concurrently-resident worker.  Single-process callables see plain
    parent behaviour (``max_child_peak() == 0``).
    """
    gc.collect()
    procmem.reset_child_peaks()
    procmem.enable_worker_tracing()
    tracemalloc.start()
    try:
        result = fn()
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
        procmem.disable_worker_tracing()
    return result, int(peak) + procmem.max_child_peak()
