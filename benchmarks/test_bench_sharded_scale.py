"""Benchmark: sharded parallel precompute at (and beyond) benchmark scale.

Extends the sparse-scale benchmark along the parallel axis.  On a
planted-community overlay (:func:`repro.graphs.generators
.community_cycle_adjacency` — the regime community-aware sharding is built
for), three measurements:

1. **Workers-vs-speedup sweep** — the ``sharded`` backend across pool
   widths, against the single-process ``sparse`` baseline on the same
   personalization and tolerance.  Per-shard compute time is measured
   *inside* the workers, so every run reports two figures: the observed
   wall clock and the **modeled parallel wall clock** — per-round LPT
   makespan of the measured shard times over ``w`` workers (the classic
   bound: within 4/3 of optimal).  The two coincide on a machine with
   ``>= w`` free cores; on smaller hosts (CI containers are often
   single-core) wall clock cannot show parallel speedup no matter how the
   work is cut, so the assertion falls back to the modeled figure and the
   JSON records which criterion was used plus the host's ``cpu_count`` —
   honest numbers either way, nothing silently skipped.
2. **Accuracy** — sharded embeddings vs the single-process sparse result
   (same ε): top-k score overlap over random queries, as in the sparse
   bench.
3. **The scale run** — a graph an order of magnitude past the sweep size
   (full mode: the first committed **10⁶-node** precompute), with peak
   memory measured as ``parent + max(worker)`` through
   :mod:`repro.utils.procmem`.

Reduced mode (default; CI smoke) runs a small graph with a {1, 2}-worker
sweep; full mode (``REPRO_BENCH_SHARDED_FULL=1`` or ``REPRO_FULL=1``) runs
the issue's 100k sweep with {1, 2, 4} workers plus the 1M-node run.  The
committed ``results/sharded_scale.{txt,json}`` come from a full run.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from benchmarks.conftest import emit_report, measure_peak_memory
from repro.core.backends import ShardedDiffusionBackend, get_backend
from repro.core.shard import ShardedRunReport
from repro.experiments.common import full_requested
from repro.graphs.generators import community_cycle_adjacency
from repro.utils import procmem

BENCH_FULL_ENV = "REPRO_BENCH_SHARDED_FULL"

DIM = 64
DEGREE = 10
HOLDER_FRACTION = 0.01
CROSS_FRACTION = 0.05  # planted cross-community edge budget
TOP_K_FRACTION = 0.01
N_QUERIES = 30
ALPHA = 0.5
TOL = 1e-8


def bench_full_requested() -> bool:
    flag = os.environ.get(BENCH_FULL_ENV, "").strip()
    return flag in ("1", "true", "yes") or full_requested()


@dataclass(frozen=True)
class BenchSize:
    label: str
    sweep_nodes: int  # workers-vs-speedup sweep + accuracy check
    scale_nodes: int  # the run only the sharded path attempts
    n_shards: int
    n_communities: int
    worker_sweep: tuple[int, ...]
    repetitions: int
    min_speedup: float  # at max(worker_sweep) vs 1 worker
    min_overlap: float  # sharded vs single-process sparse


REDUCED = BenchSize(
    label="reduced (4k/20k nodes, 2 workers)",
    sweep_nodes=4_000,
    scale_nodes=20_000,
    n_shards=4,
    n_communities=8,
    worker_sweep=(1, 2),
    repetitions=2,
    min_speedup=1.3,
    min_overlap=0.9,
)
FULL = BenchSize(
    label="full (100k sweep, 1M scale run; issue target)",
    sweep_nodes=100_000,
    scale_nodes=1_000_000,
    n_shards=8,
    n_communities=64,
    worker_sweep=(1, 2, 4),
    repetitions=2,
    min_speedup=2.0,
    min_overlap=0.95,
)


def _personalization(n: int, seed: int) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    holders = np.sort(
        rng.choice(n, max(1, int(n * HOLDER_FRACTION)), replace=False)
    )
    block = rng.standard_normal((holders.shape[0], DIM))
    rows = np.repeat(holders.astype(np.int64), DIM)
    cols = np.tile(np.arange(DIM, dtype=np.int64), holders.shape[0])
    return sp.csr_matrix((block.ravel(), (rows, cols)), shape=(n, DIM))


def _overlap(a, b, top_k: int, seed: int) -> float:
    rng = np.random.default_rng(seed)
    queries = rng.standard_normal((DIM, N_QUERIES))
    scores_a = np.asarray(a @ queries)
    scores_b = np.asarray(b @ queries)
    overlaps = []
    for j in range(N_QUERIES):
        top_a = set(np.argsort(-scores_a[:, j])[:top_k].tolist())
        top_b = set(np.argsort(-scores_b[:, j])[:top_k].tolist())
        overlaps.append(len(top_a & top_b) / top_k)
    return float(np.mean(overlaps))


def _lpt_makespan(times: tuple[float, ...], workers: int) -> float:
    """Longest-processing-time-first schedule of one round's shard times."""
    loads = [0.0] * workers
    for t in sorted(times, reverse=True):
        lightest = min(range(workers), key=loads.__getitem__)
        loads[lightest] += t
    return max(loads, default=0.0)


def _modeled_wall(report: ShardedRunReport, workers: int) -> float:
    """Parallel wall clock the measured shard times imply at ``workers``.

    Sums each round's LPT makespan — rounds are barriers (the mailbox
    exchange), so parallelism is only available within a round.
    """
    return sum(_lpt_makespan(times, workers) for times in report.shard_seconds)


def test_sharded_scale():
    size = FULL if bench_full_requested() else REDUCED
    top_k = max(10, int(size.sweep_nodes * TOP_K_FRACTION))
    cpu_count = os.cpu_count() or 1

    adjacency = community_cycle_adjacency(
        size.sweep_nodes,
        DEGREE,
        n_communities=size.n_communities,
        cross_fraction=CROSS_FRACTION,
        seed=11,
    )
    e0 = _personalization(size.sweep_nodes, seed=12)

    # Single-process sparse baseline (accuracy reference + overhead anchor).
    sparse = get_backend("sparse")
    sparse.diffuse(adjacency, e0, alpha=ALPHA, tol=1e-2)  # warm caches
    sparse_time = float("inf")
    sparse_outcome = None
    for _ in range(size.repetitions):
        started = time.perf_counter()
        sparse_outcome = sparse.diffuse(adjacency, e0, alpha=ALPHA, tol=TOL)
        sparse_time = min(sparse_time, time.perf_counter() - started)

    # Plan construction (partition + operator slicing) is timed once and
    # then memoized on the adjacency — every sweep entry reuses it, as a
    # repeated precompute in production would.
    plan_start = time.perf_counter()
    plan = ShardedDiffusionBackend(
        size.n_shards, executor="serial"
    ).plan_for(adjacency)
    plan_seconds = time.perf_counter() - plan_start

    sweep = []
    baseline_wall = None
    baseline_report = None
    sharded_outcome = None
    for workers in size.worker_sweep:
        backend = ShardedDiffusionBackend(
            size.n_shards, executor="pool", workers=workers
        )
        wall = float("inf")
        for _ in range(size.repetitions):
            started = time.perf_counter()
            sharded_outcome = backend.diffuse(
                adjacency, e0, alpha=ALPHA, tol=TOL
            )
            wall = min(wall, time.perf_counter() - started)
        report = backend.last_report
        if workers == 1:
            baseline_wall = wall
            baseline_report = report
        sweep.append(
            {
                "workers": workers,
                "wall_clock_s": wall,
                "modeled_wall_s": _modeled_wall(report, workers),
                "rounds": report.rounds,
                "serial_shard_seconds": report.serial_seconds,
                "critical_path_seconds": report.critical_path_seconds,
                "converged": bool(report.converged),
            }
        )
    for entry in sweep:
        entry["wall_speedup_vs_1"] = baseline_wall / entry["wall_clock_s"]
        # Model every width from the 1-worker run's shard times: one
        # measurement, one schedule per width — figures stay comparable.
        entry["modeled_speedup_vs_1"] = baseline_report.serial_seconds / max(
            _modeled_wall(baseline_report, entry["workers"]), 1e-12
        )

    overlap = _overlap(
        sparse_outcome.embeddings, sharded_outcome.embeddings, top_k, seed=13
    )

    peak_workers = max(size.worker_sweep)
    peak_entry = next(e for e in sweep if e["workers"] == peak_workers)
    wall_honest = cpu_count >= peak_workers
    criterion = "wall_clock" if wall_honest else "critical_path_modeled"
    measured_speedup = (
        peak_entry["wall_speedup_vs_1"]
        if wall_honest
        else peak_entry["modeled_speedup_vs_1"]
    )

    # --- the scale run: one order of magnitude past the sweep size --------
    big_adjacency = community_cycle_adjacency(
        size.scale_nodes,
        DEGREE,
        n_communities=size.n_communities * 4,
        cross_fraction=CROSS_FRACTION,
        seed=21,
    )
    big_e0 = _personalization(size.scale_nodes, seed=22)
    big_backend = ShardedDiffusionBackend(
        size.n_shards, executor="pool", workers=peak_workers
    )
    big_plan_start = time.perf_counter()
    big_plan = big_backend.plan_for(big_adjacency)
    big_plan_seconds = time.perf_counter() - big_plan_start
    # Wall clock from an untraced run (tracemalloc inflates timings) …
    big_start = time.perf_counter()
    big_outcome = big_backend.diffuse(big_adjacency, big_e0, alpha=ALPHA, tol=TOL)
    big_wall = time.perf_counter() - big_start
    big_report = big_backend.last_report
    # … then the traced run for the parent + max(worker) peak.
    _, big_peak = measure_peak_memory(
        lambda: big_backend.diffuse(big_adjacency, big_e0, alpha=ALPHA, tol=TOL)
    )
    worker_peaks = procmem.child_peaks()  # survives until the next reset

    lines = [
        "Sharded parallel precompute (community-partitioned, process pool)",
        f"configuration: {size.label}; dim={DIM}, degree~{DEGREE}, "
        f"{HOLDER_FRACTION:.0%} holders, alpha={ALPHA}, tol={TOL:g}, "
        f"{size.n_shards} shards, host cpu_count={cpu_count}",
        f"partition: community-aware, cross-shard edge fraction "
        f"{plan.cross_fraction:.4f}; plan build {plan_seconds:.2f} s "
        "(memoized across runs)",
        f"single-process sparse baseline at {size.sweep_nodes} nodes: "
        f"{sparse_time:.2f} s",
        f"workers-vs-speedup at {size.sweep_nodes} nodes "
        f"(best of {size.repetitions}):",
    ]
    for entry in sweep:
        lines.append(
            f"  workers={entry['workers']}: wall {entry['wall_clock_s']:7.2f} s "
            f"(x{entry['wall_speedup_vs_1']:4.2f}); modeled parallel wall "
            f"{entry['modeled_wall_s']:7.2f} s "
            f"(x{entry['modeled_speedup_vs_1']:4.2f}); "
            f"rounds={entry['rounds']}"
        )
    lines += [
        f"  speedup criterion: {criterion} (cpu_count={cpu_count} vs "
        f"{peak_workers} workers) -> x{measured_speedup:.2f} "
        f"(floor {size.min_speedup}x)",
        f"  top-{top_k} overlap vs single-process sparse: {overlap:.4f} "
        f"(floor {size.min_overlap})",
        f"scale run at {size.scale_nodes} nodes ({size.n_shards} shards, "
        f"{peak_workers} workers):",
        f"  plan build  : {big_plan_seconds:8.2f} s; cross-shard fraction "
        f"{big_plan.cross_fraction:.4f}",
        f"  wall clock  : {big_wall:8.2f} s ({big_report.rounds} rounds, "
        f"converged={big_outcome.converged})",
        f"  shard compute: serial {big_report.serial_seconds:.2f} s, "
        f"critical path {big_report.critical_path_seconds:.2f} s "
        f"(x{big_report.serial_seconds / max(big_report.critical_path_seconds, 1e-12):.2f} "
        "available)",
        f"  peak memory : {big_peak / 1e6:8.1f} MB "
        f"(parent + max of {len(worker_peaks)} traced worker tasks)",
        f"  embedding nnz: {big_outcome.embeddings.nnz} "
        f"(density {big_outcome.embeddings.nnz / float(size.scale_nodes * DIM):.4f})",
    ]
    emit_report(
        "sharded_scale" if size is FULL else "sharded_scale_reduced",
        "\n".join(lines),
        data={
            "seed": 11,  # sweep graph seed; signal/scale graph use 12/21/22
            "configuration": {
                "label": size.label,
                "sweep_nodes": size.sweep_nodes,
                "scale_nodes": size.scale_nodes,
                "dim": DIM,
                "degree": DEGREE,
                "holder_fraction": HOLDER_FRACTION,
                "cross_fraction": CROSS_FRACTION,
                "n_shards": size.n_shards,
                "n_communities": size.n_communities,
                "alpha": ALPHA,
                "tol": TOL,
                "repetitions": size.repetitions,
                "host_cpu_count": cpu_count,
            },
            "partition": {
                "kind": "community",
                "cross_shard_fraction": plan.cross_fraction,
                "plan_build_s": plan_seconds,
            },
            "sparse_baseline": {
                "nodes": size.sweep_nodes,
                "time_s": sparse_time,
            },
            "worker_sweep": sweep,
            "speedup": {
                "criterion": criterion,
                "workers": peak_workers,
                "value": measured_speedup,
                "floor": size.min_speedup,
            },
            "accuracy": {
                "overlap_top_k": overlap,
                "top_k": top_k,
                "floor": size.min_overlap,
            },
            "scale_run": {
                "nodes": size.scale_nodes,
                "n_shards": size.n_shards,
                "workers": peak_workers,
                "plan_build_s": big_plan_seconds,
                "cross_shard_fraction": big_plan.cross_fraction,
                "wall_clock_s": big_wall,
                "rounds": big_report.rounds,
                "serial_shard_seconds": big_report.serial_seconds,
                "critical_path_seconds": big_report.critical_path_seconds,
                "converged": bool(big_outcome.converged),
                "peak_memory_bytes": big_peak,
                "traced_worker_tasks": len(worker_peaks),
                "embedding_nnz": int(big_outcome.embeddings.nnz),
            },
        },
    )

    assert sharded_outcome.converged
    assert big_outcome.converged
    assert len(worker_peaks) > 0, (
        "pool workers reported no traced peaks - the procmem contract is "
        "broken and the memory figure is parent-only"
    )
    assert overlap >= size.min_overlap, (
        f"top-{top_k} overlap {overlap:.4f} vs single-process sparse below "
        f"{size.min_overlap}"
    )
    assert measured_speedup >= size.min_speedup, (
        f"{criterion} speedup only {measured_speedup:.2f}x at "
        f"{peak_workers} workers (floor {size.min_speedup}x)"
    )
