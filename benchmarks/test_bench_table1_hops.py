"""Benchmark: Table I — average hop count of successful queries.

Regenerates the paper's table (alpha = 0.5, TTL 50, 10 uniform queries per
iteration) for M in {10, 100, 1000, 10000} and prints measured rows next to
the paper's printed values.  Shape assertions check §V-D's claims: success
rate decreases with M, hops increase with M, and the hop distribution is
right-skewed (mean > median, large std).
"""

import pytest

from benchmarks.conftest import emit_report
from repro.experiments.table1_hops import PAPER_TABLE1
from repro.simulation.metrics import HopStatistics
from repro.simulation.reporting import format_rows
from repro.simulation.runner import run_hop_count_experiment
from repro.simulation.scenario import HopCountScenario

DOCUMENT_COUNTS = (10, 100, 1000, 10000)

_RESULTS: dict[int, HopStatistics] = {}


def _run_row(env, n_documents, iterations):
    scenario = HopCountScenario(
        n_documents=n_documents,
        alpha=0.5,
        iterations=iterations or 500,
        queries_per_iteration=10,
        ttl=50,
        seed=0,
    )
    return run_hop_count_experiment(env.adjacency, env.workload, scenario)


@pytest.mark.parametrize("n_documents", DOCUMENT_COUNTS)
def test_table1_row(benchmark, env, bench_iterations, n_documents):
    iterations = bench_iterations * 2 if bench_iterations else None
    stats = benchmark.pedantic(
        _run_row, args=(env, n_documents, iterations), rounds=1, iterations=1
    )
    _RESULTS[n_documents] = stats
    paper = PAPER_TABLE1[n_documents]
    emit_report(
        f"table1_m{n_documents}",
        format_rows(
            [
                {
                    **stats.as_row(),
                    "paper success": paper["success"],
                    "paper median": paper["median"],
                    "paper mean": paper["mean"],
                    "paper std": paper["std"],
                }
            ],
            title=f"Table I row: M = {n_documents}",
        ),
        data={
            "n_documents": n_documents,
            "measured": stats.as_row(),
            "paper": paper,
        },
    )
    assert stats.successes > 0, "no successful query; workload broken"
    if stats.successes >= 10:
        # right-skewed hop distribution: a few long walks drive the mean up
        assert stats.mean_hops >= stats.median_hops


def test_table1_summary(benchmark, env, bench_iterations):
    """Full table + the cross-row shape (success declines as M grows)."""

    def collect():
        for m in DOCUMENT_COUNTS:
            if m not in _RESULTS:
                iterations = bench_iterations * 2 if bench_iterations else None
                _RESULTS[m] = _run_row(env, m, iterations)
        return dict(_RESULTS)

    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    for m in DOCUMENT_COUNTS:
        paper = PAPER_TABLE1[m]
        rows.append(
            {
                **results[m].as_row(),
                "paper success": paper["success"],
                "paper median": paper["median"],
                "paper mean": paper["mean"],
            }
        )
    emit_report(
        "table1_full",
        format_rows(rows, title=f"Table I — average hop count ({env.label})"),
        data={"environment": env.label, "rows": rows},
    )
    assert results[10].success_rate > results[10000].success_rate
    # hops grow with document count (compare the extremes, robust to noise)
    assert results[10].mean_hops < results[10000].mean_hops + 15
