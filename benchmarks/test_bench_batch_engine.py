"""Benchmark: batched vs scalar-loop execution of the Fig. 3 hot path.

Runs the same accuracy experiment (3 alphas x distances 0-8, TTL 50) twice —
once through the original one-walk-at-a-time driver (``engine="scalar"``)
and once through the batched pipeline (``run_queries`` lockstep walks +
multi-column diffusion) — and asserts both that the grids are identical and
that the batched pipeline is decisively faster.

Two sizes:

* reduced (default; the CI smoke job and the plain test suite): a 300-node
  graph and few iterations, finishing in well under a second, asserting a
  conservative >= 2x so perf regressions in the batch path fail loudly
  without flaking on slow runners.
* full (``REPRO_BENCH_BATCH_FULL=1`` or ``REPRO_FULL=1``): the issue's
  target configuration — 1000 nodes, TTL 50 — asserting the >= 5x
  end-to-end speedup recorded in ``benchmarks/results/batch_engine.txt``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from benchmarks.conftest import emit_report, measure_peak_memory
from repro.experiments.common import full_requested
from repro.kernels import kernel_info
from repro.embeddings.synthetic import SyntheticCorpusConfig, synthetic_word_embeddings
from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.social import FacebookLikeConfig, facebook_like_graph
from repro.simulation.runner import run_accuracy_experiment
from repro.simulation.scenario import AccuracyScenario
from repro.simulation.workload import build_workload

BENCH_FULL_ENV = "REPRO_BENCH_BATCH_FULL"


def bench_full_requested() -> bool:
    flag = os.environ.get(BENCH_FULL_ENV, "").strip()
    return flag in ("1", "true", "yes") or full_requested()


@dataclass(frozen=True)
class BenchSize:
    label: str
    n_nodes: int
    target_edges: int
    n_documents: int
    iterations: int
    repetitions: int
    min_speedup: float


REDUCED = BenchSize(
    label="reduced (300 nodes)",
    n_nodes=300,
    target_edges=6600,
    n_documents=40,
    iterations=8,
    repetitions=2,
    min_speedup=2.0,
)
# The committed measurement (benchmarks/results/batch_engine.txt) exceeds
# the issue's 5x target; the assertion floor sits below it so that ±15%
# machine noise (observed on shared runners) cannot fail a healthy build,
# while a real regression in the batch path still does.
FULL = BenchSize(
    label="full (1000 nodes, issue target)",
    n_nodes=1000,
    target_edges=22000,
    n_documents=100,
    iterations=30,
    repetitions=4,
    min_speedup=4.0,
)


def _build_setting(size: BenchSize):
    graph = facebook_like_graph(
        FacebookLikeConfig(
            n_nodes=size.n_nodes, target_edges=size.target_edges, n_egos=8
        ),
        seed=11,
    )
    adjacency = CompressedAdjacency.from_networkx(graph)
    model = synthetic_word_embeddings(
        SyntheticCorpusConfig(
            n_words=6000, dim=128, n_clusters=400, intra_cluster_cosine=0.72
        ),
        seed=12,
    )
    workload = build_workload(model, n_queries=100, threshold=0.6, seed=13)
    scenario = AccuracyScenario(
        n_documents=size.n_documents,
        alphas=(0.1, 0.5, 0.9),
        max_distance=8,
        ttl=50,
        iterations=size.iterations,
        seed=0,
    )
    return adjacency, workload, scenario


def _time_engine(adjacency, workload, scenario, engine, repetitions) -> tuple[float, object]:
    best = float("inf")
    grid = None
    for _ in range(repetitions):
        started = time.perf_counter()
        grid = run_accuracy_experiment(adjacency, workload, scenario, engine=engine)
        best = min(best, time.perf_counter() - started)
    return best, grid


def test_batch_engine_speedup():
    size = FULL if bench_full_requested() else REDUCED
    adjacency, workload, scenario = _build_setting(size)

    # Warm both pipelines (operator caches, LU factorization, imports) so
    # the measurement reflects steady-state per-iteration cost.
    warm = AccuracyScenario(
        n_documents=size.n_documents, alphas=scenario.alphas, iterations=1, seed=1
    )
    run_accuracy_experiment(adjacency, workload, warm)
    run_accuracy_experiment(adjacency, workload, warm, engine="scalar")

    scalar_time, scalar_grid = _time_engine(
        adjacency, workload, scenario, "scalar", size.repetitions
    )
    batch_time, batch_grid = _time_engine(
        adjacency, workload, scenario, "batch", size.repetitions
    )
    speedup = scalar_time / batch_time
    # Peak memory of one driver run per engine (untimed pass: tracemalloc
    # adds a few percent of overhead, so it never touches the speed numbers).
    _, scalar_peak = measure_peak_memory(
        lambda: run_accuracy_experiment(
            adjacency, workload, scenario, engine="scalar"
        )
    )
    _, batch_peak = measure_peak_memory(
        lambda: run_accuracy_experiment(adjacency, workload, scenario)
    )
    walks = sum(scalar_grid.samples.values())
    success_gap = sum(
        abs(batch_grid.successes.get(key, 0) - scalar_grid.successes.get(key, 0))
        for key in set(batch_grid.samples) | set(scalar_grid.samples)
    )

    # Separate files per size, so routine reduced-mode runs (tier-1, CI
    # smoke) never overwrite the committed full-size measurement.
    report_name = "batch_engine" if size is FULL else "batch_engine_reduced"
    emit_report(
        report_name,
        "\n".join(
            [
                "Fig. 3 accuracy driver: batched vs scalar-loop execution",
                f"configuration: {size.label}",
                f"  graph: {adjacency.n_nodes} nodes / {adjacency.n_edges} edges",
                f"  scenario: M={scenario.n_documents} documents, "
                f"alphas={scenario.alphas}, distances 0-{scenario.max_distance}, "
                f"TTL {scenario.ttl}, {scenario.iterations} iterations "
                f"({walks} walks total)",
                f"  scalar loop : {scalar_time * 1e3:8.1f} ms "
                f"(best of {size.repetitions}; peak memory "
                f"{scalar_peak / 1e6:.1f} MB)",
                f"  batched     : {batch_time * 1e3:8.1f} ms "
                f"(best of {size.repetitions}; peak memory "
                f"{batch_peak / 1e6:.1f} MB)",
                f"  speedup     : {speedup:8.2f}x (floor {size.min_speedup}x)",
                "grids identical: "
                f"{batch_grid.successes == scalar_grid.successes} "
                f"(success-count gap {success_gap} of {walks} walks)",
                "batched pipeline = run_queries lockstep walks "
                "+ one multi-column diffusion per iteration "
                "(cached sparse-LU solve, one factorization per alpha)",
                f"kernel backend: {kernel_info()['backend']} "
                "(repro.kernels dispatch; numba JIT when installed)",
            ]
        ),
        data={
            "criterion": "wall_clock_speedup",
            "kernels": kernel_info(),
            "seed": 11,  # graph seed; embeddings/workload use 12/13
            "configuration": {
                "label": size.label,
                "n_nodes": adjacency.n_nodes,
                "n_edges": adjacency.n_edges,
                "n_documents": size.n_documents,
                "alphas": list(scenario.alphas),
                "ttl": scenario.ttl,
                "iterations": scenario.iterations,
                "repetitions": size.repetitions,
                "walks": int(walks),
            },
            "scalar": {
                "time_s": scalar_time,
                "peak_memory_bytes": scalar_peak,
            },
            "batch": {"time_s": batch_time, "peak_memory_bytes": batch_peak},
            "speedup": speedup,
            "min_speedup": size.min_speedup,
            "grids_identical": batch_grid.successes == scalar_grid.successes,
            "success_count_gap": int(success_gap),
        },
    )

    # Correctness first: the batched pipeline must reproduce the scalar
    # driver's grid.  Sample counts are structurally identical; success
    # counts have been identical in every observed run, but the batch path's
    # exact multi-column solve only agrees with the scalar power iteration
    # to ~1e-10, so a tiny cross-platform slack guards against a near-tie
    # argmax flip masquerading as a benchmark failure.
    assert batch_grid.samples == scalar_grid.samples
    assert success_gap <= max(1, walks // 100), (
        f"batched grid diverged from scalar grid: {success_gap} of {walks} "
        "walk outcomes differ"
    )
    # Then speed: regressions in the batch path fail loudly.
    assert speedup >= size.min_speedup, (
        f"batched driver only {speedup:.2f}x faster than the scalar loop "
        f"(floor {size.min_speedup}x at {size.label})"
    )
