"""Benchmark: informed diffusion walk vs the blind baselines of §II-A.

The comparison the paper motivates but does not tabulate: equal-TTL walks
plus flooding at an equal message budget.
"""

from benchmarks.conftest import emit_report
from repro.experiments.ablations import baseline_comparison
from repro.simulation.reporting import format_rows


def test_baseline_comparison(benchmark, env, bench_iterations):
    rows = benchmark.pedantic(
        lambda: baseline_comparison(
            n_documents=1000,
            iterations=(bench_iterations or 50) * 3,
        ),
        rounds=1,
        iterations=1,
    )
    emit_report(
        "baseline_comparison",
        format_rows(
            rows,
            title="diffusion walk vs blind baselines, M=1000, TTL=50, "
            "equal message budgets",
        ),
        data={
            "n_documents": 1000,
            "ttl": 50,
            "iterations": (bench_iterations or 50) * 3,
            "rows": rows,
        },
    )
    by_method = {row["method"]: row for row in rows}
    informed = by_method["diffusion walk"]["success rate"]
    # The headline claim: diffusion hints beat every blind method.
    assert informed >= by_method["random walk"]["success rate"]
    assert informed >= by_method["flooding@budget"]["success rate"]
    # flooding honors the budget
    assert by_method["flooding@budget"]["mean messages"] <= 50 + 1e-9
