"""Per-phase kernel hotspot profile of the walk/push/power hot paths.

The measurement the raw-speed pass is steered by: every hot-path consumer
calls its inner loops through :mod:`repro.kernels.dispatch`, so wrapping the
four dispatch attributes with timing shims during representative end-to-end
workloads yields, per phase,

* how much wall clock each kernel accounts for (time and call count), and
* how much is "other" — everything outside the dispatched loops, i.e. the
  part a JIT kernel swap cannot touch.

Workload phases:

* ``batch_walk``   — lockstep :func:`repro.core.batch.run_queries` over an
  embedding-guided policy (exercises ``masked_segment_argmax`` +
  ``sparse_key_lookup``);
* ``dense_push``   — :func:`repro.gsp.push.forward_push` on a localized
  delta (exercises ``scatter_add_weighted_rows``);
* ``sparse_push``  — :func:`repro.gsp.push.sparse_forward_push` multi-column
  cold start (exercises ``csr_row_peaks``);
* ``pruned_power`` — :class:`repro.gsp.filters.SparsePersonalizedPageRank`
  (the non-kernel baseline phase: pruned power iteration spends its time in
  scipy spmatmul, which bounds what kernel work can win there).

Writes ``results/kernel_profile.{txt,json}`` (``--reduced``:
``results/kernel_profile_reduced.{txt,json}``, the CI smoke size).  The
JSON records which kernel backend ran (``kernel_info``) so profiles from
numpy and numba hosts never get compared silently.

Usage::

    PYTHONPATH=src python benchmarks/profile_kernels.py [--reduced]
"""

from __future__ import annotations

import argparse
import sys
import time
import warnings
from collections import defaultdict
from contextlib import contextmanager
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(_REPO_ROOT), str(_REPO_ROOT / "src")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

import numpy as np
import scipy.sparse as sp

from benchmarks.conftest import emit_report, measure_peak_memory
from repro.core.batch import run_queries
from repro.core.engine import WalkConfig
from repro.core.forwarding import PrecomputedScorePolicy
from repro.core.search import DiffusionSearchNetwork
from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.social import FacebookLikeConfig, facebook_like_graph
from repro.gsp.filters import PrunedMassWarning, SparsePersonalizedPageRank
from repro.gsp.normalization import transition_matrix
from repro.gsp.push import forward_push, sparse_forward_push
from repro.kernels import dispatch

SEED = 23

KERNEL_NAMES = (
    "masked_segment_argmax",
    "sparse_key_lookup",
    "csr_row_peaks",
    "scatter_add_weighted_rows",
)


class KernelTimer:
    """Wraps the dispatch attributes; accumulates per-kernel time + calls."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = defaultdict(float)
        self.calls: dict[str, int] = defaultdict(int)

    def _wrap(self, name: str, fn):
        def timed(*args, **kwargs):
            started = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                self.seconds[name] += time.perf_counter() - started
                self.calls[name] += 1

        return timed

    @contextmanager
    def instrumented(self):
        originals = {name: getattr(dispatch, name) for name in KERNEL_NAMES}
        for name, fn in originals.items():
            setattr(dispatch, name, self._wrap(name, fn))
        try:
            yield self
        finally:
            for name, fn in originals.items():
                setattr(dispatch, name, fn)

    def snapshot(self) -> dict[str, dict[str, float]]:
        return {
            name: {
                "seconds": self.seconds.get(name, 0.0),
                "calls": self.calls.get(name, 0),
            }
            for name in KERNEL_NAMES
        }


def build_setting(reduced: bool):
    n_nodes = 400 if reduced else 2000
    target_edges = n_nodes * 11
    dim = 32 if reduced else 96
    n_docs = 60 if reduced else 400
    n_queries = 60 if reduced else 400
    graph = facebook_like_graph(
        FacebookLikeConfig(
            n_nodes=n_nodes, target_edges=target_edges, n_egos=8
        ),
        seed=SEED,
    )
    adjacency = CompressedAdjacency.from_networkx(graph)
    rng = np.random.default_rng(SEED)
    net = DiffusionSearchNetwork(graph, dim=dim, alpha=0.5)
    for i in range(n_docs):
        net.place_document(
            f"doc-{i}", rng.standard_normal(dim), int(rng.integers(n_nodes))
        )
    net.diffuse(method="power", tol=1e-8)
    queries = rng.standard_normal((n_queries, dim))
    starts = rng.integers(0, n_nodes, size=n_queries)
    return adjacency, net, queries, starts, rng


def profile_phase(timer_factory, fn):
    """Run ``fn`` instrumented; returns (elapsed_s, kernels_snapshot)."""
    timer = timer_factory()
    with timer.instrumented():
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
    return elapsed, timer.snapshot()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--reduced",
        action="store_true",
        help="CI smoke size (writes kernel_profile_reduced.{txt,json})",
    )
    args = parser.parse_args(argv)

    adjacency, net, queries, starts, rng = build_setting(args.reduced)
    operator = transition_matrix(adjacency, "column")
    n = adjacency.n_nodes
    dim = net.dim
    # One sparse-backed score-table policy per query (the accuracy driver's
    # shape): scores s = E e_q as a CSR column, so the hop loop runs the
    # fused masked_segment_argmax + sparse_key_lookup fast path.
    emb_csr = sp.csr_matrix(net.embeddings)
    policies = [
        PrecomputedScorePolicy(emb_csr @ sp.csr_matrix(q.reshape(-1, 1)))
        for q in queries
    ]
    config = WalkConfig(ttl=30, fanout=1, k=3)

    # Localized dense delta: a handful of hot rows, the incremental-refresh
    # shape where the scatter kernel dominates.
    dense_delta = np.zeros((n, dim))
    hot = rng.integers(0, n, size=8)
    dense_delta[hot] = rng.standard_normal((hot.size, dim))

    sparse_signal = net.personalization_sparse()
    ppr = SparsePersonalizedPageRank(0.5, epsilon=1e-3, tol=1e-8)

    phases = {
        "batch_walk": lambda: run_queries(
            adjacency, net.stores, policies, queries, starts, config, seed=SEED
        ),
        "dense_push": lambda: forward_push(
            operator, dense_delta, alpha=0.5, tol=1e-8
        ),
        "sparse_push": lambda: sparse_forward_push(
            operator, sparse_signal, alpha=0.5, tol=1e-6, epsilon=1e-3
        ),
        "pruned_power": lambda: ppr.apply_detailed(operator, sparse_signal),
    }

    # Warm once (operator caches, JIT compilation when numba is live) so the
    # profile reflects steady state, not first-call compilation.  Pruned-mass
    # accuracy warnings are irrelevant to a timing profile.
    warnings.filterwarnings("ignore", category=PrunedMassWarning)
    for fn in phases.values():
        fn()

    results: dict[str, dict] = {}
    for phase_name, fn in phases.items():
        elapsed, kernels = profile_phase(KernelTimer, fn)
        kernel_total = sum(entry["seconds"] for entry in kernels.values())
        results[phase_name] = {
            "end_to_end_s": elapsed,
            "kernel_s": kernel_total,
            "other_s": max(0.0, elapsed - kernel_total),
            "kernel_share": kernel_total / elapsed if elapsed > 0 else 0.0,
            "kernels": kernels,
        }

    # One untimed pass under tracemalloc for the schema-required peak.
    def _all_phases():
        for fn in phases.values():
            fn()

    _, peak = measure_peak_memory(_all_phases)

    info = dispatch.kernel_info()
    lines = [
        "Kernel hotspot profile (dispatch-layer instrumentation)",
        f"mode: {'reduced (CI smoke)' if args.reduced else 'full'}; "
        f"graph: {adjacency.n_nodes} nodes / {adjacency.n_edges} edges; "
        f"dim {dim}; {queries.shape[0]} walks",
        f"kernel backend: {info['backend']} "
        f"(requested {info['requested']}, numba_available "
        f"{info['numba_available']}, version {info['numba_version']})",
        "",
    ]
    for phase_name, row in results.items():
        lines.append(
            f"{phase_name:13s}: {row['end_to_end_s'] * 1e3:9.2f} ms total | "
            f"{row['kernel_s'] * 1e3:8.2f} ms in kernels "
            f"({row['kernel_share'] * 100:5.1f}%) | "
            f"{row['other_s'] * 1e3:8.2f} ms other"
        )
        for kernel_name, entry in row["kernels"].items():
            if entry["calls"]:
                lines.append(
                    f"    {kernel_name:28s} {entry['seconds'] * 1e3:8.2f} ms "
                    f"over {entry['calls']:6d} calls"
                )
    lines.append("")
    lines.append(
        "'other' = end-to-end minus dispatched-kernel time: scipy spmatmul, "
        "slicing, allocation — the share a kernel swap cannot accelerate."
    )

    name = "kernel_profile_reduced" if args.reduced else "kernel_profile"
    emit_report(
        name,
        "\n".join(lines),
        data={
            "criterion": "per_phase_kernel_wall_clock_breakdown",
            "seed": SEED,
            "peak_memory_bytes": peak,
            "mode": "reduced" if args.reduced else "full",
            "kernel_info": info,
            "configuration": {
                "n_nodes": adjacency.n_nodes,
                "n_edges": adjacency.n_edges,
                "dim": dim,
                "n_queries": int(queries.shape[0]),
                "ttl": config.ttl,
            },
            "phases": results,
        },
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
