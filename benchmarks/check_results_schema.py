"""Schema gate for benchmark result JSONs (run by CI after the bench smokes).

Every machine-readable result a CI bench step emits must carry the two
fields downstream tooling keys on:

* ``criterion`` — what the headline number *is* (wall clock vs modeled
  critical path vs simulated clock ...), so cross-PR comparisons never mix
  measurement regimes silently;
* ``peak_memory_bytes`` — the tracemalloc(+workers) peak of the measured
  run, so memory regressions surface alongside timing ones;
* ``seed`` — the RNG seed (or the primary one, when a bench uses several)
  that drove the measured run, so any headline number can be regenerated
  bit-for-bit instead of argued about.

All are accepted anywhere in the document (top level or nested — e.g. the
sharded bench stores ``speedup.criterion`` and ``scale_run.peak_memory_bytes``).
Extra required dotted paths can be added per file with ``--require``.

Usage::

    python benchmarks/check_results_schema.py results/a.json results/b.json
    python benchmarks/check_results_schema.py results/serving_reduced.json \
        --require faults.goodput saturation_sweep
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

BASE_REQUIRED_KEYS = ("criterion", "peak_memory_bytes", "seed")


def contains_key(obj: Any, key: str) -> bool:
    """Recursive presence of ``key`` anywhere in a JSON document."""
    if isinstance(obj, dict):
        if key in obj:
            return True
        return any(contains_key(value, key) for value in obj.values())
    if isinstance(obj, list):
        return any(contains_key(item, key) for item in obj)
    return False


def resolve_path(obj: Any, dotted: str) -> bool:
    """True when the dotted path exists from the document root."""
    node = obj
    for part in dotted.split("."):
        if isinstance(node, list):
            try:
                node = node[int(part)]
                continue
            except (ValueError, IndexError):
                return False
        if not isinstance(node, dict) or part not in node:
            return False
        node = node[part]
    return True


def check_file(path: Path, extra_paths: list[str]) -> list[str]:
    """Returns a list of problems (empty when the file conforms)."""
    problems: list[str] = []
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    for key in BASE_REQUIRED_KEYS:
        if not contains_key(document, key):
            problems.append(f"{path}: missing required field {key!r}")
    for dotted in extra_paths:
        if not resolve_path(document, dotted):
            problems.append(f"{path}: missing required path {dotted!r}")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", type=Path)
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="DOTTED.PATH",
        help="additional dotted path that must exist from the document root",
    )
    args = parser.parse_args(argv)
    problems: list[str] = []
    for path in args.files:
        problems.extend(check_file(path, args.require))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        print(f"schema OK: {len(args.files)} file(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
