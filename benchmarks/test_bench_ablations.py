"""Benchmarks: ablations of the paper's design choices (DESIGN.md §5).

Each bench regenerates one ablation table: the alpha continuum, parallel
walks, top-k tracking, document placement, and personalization weighting.
"""

import pytest

from benchmarks.conftest import emit_report
from repro.experiments.ablations import (
    alpha_sweep,
    fanout_sweep,
    multi_gold_recall,
    personalization_comparison,
    placement_comparison,
    topk_sweep,
)
from repro.simulation.reporting import format_rows


def test_alpha_sweep(benchmark, env, bench_iterations):
    """The noise-vs-reach trade-off (§V-C) on a fine alpha grid."""
    rows = benchmark.pedantic(
        lambda: alpha_sweep(n_documents=1000, iterations=bench_iterations),
        rounds=1,
        iterations=1,
    )
    emit_report(
        "ablation_alpha_sweep",
        format_rows(rows, title="alpha sweep, M=1000 (paper samples 0.1/0.5/0.9)"),
        data={"n_documents": 1000, "iterations": bench_iterations, "rows": rows},
    )
    assert len(rows) == 8
    assert all(0 <= row["success rate"] <= 1 for row in rows)


def test_fanout_sweep(benchmark, env, bench_iterations):
    """Parallel walks (paper future work): success vs message cost."""
    rows = benchmark.pedantic(
        lambda: fanout_sweep(n_documents=1000, iterations=bench_iterations),
        rounds=1,
        iterations=1,
    )
    emit_report(
        "ablation_fanout",
        format_rows(rows, title="parallel walks, M=1000"),
        data={"n_documents": 1000, "iterations": bench_iterations, "rows": rows},
    )
    by_fanout = {row["fanout"]: row["success rate"] for row in rows}
    # more walkers never hurt accuracy (they strictly add coverage)
    assert by_fanout[4] >= by_fanout[1] - 0.05


def test_topk_sweep(benchmark, env, bench_iterations):
    """Top-k tracking (paper future work): k=1 vs 5 vs 10."""
    rows = benchmark.pedantic(
        lambda: topk_sweep(n_documents=1000, iterations=bench_iterations),
        rounds=1,
        iterations=1,
    )
    emit_report(
        "ablation_topk",
        format_rows(rows, title="top-k tracking, M=1000"),
        data={"n_documents": 1000, "iterations": bench_iterations, "rows": rows},
    )
    for row in rows:
        assert row["top-k hit rate"] >= row["top-1 hit rate"]


def test_multi_gold_recall(benchmark, env, bench_iterations):
    """Top-k recall with several golds in the network (paper future work)."""
    rows = benchmark.pedantic(
        lambda: multi_gold_recall(
            n_documents=1000, k=5, iterations=bench_iterations
        ),
        rounds=1,
        iterations=1,
    )
    emit_report(
        "ablation_multigold",
        format_rows(rows, title="multi-gold top-5 recall, M=1000, TTL=50"),
        data={
            "n_documents": 1000,
            "k": 5,
            "iterations": bench_iterations,
            "rows": rows,
        },
    )
    assert rows[0]["any-gold hit rate"] >= rows[0]["recall@budget"]


def test_placement_comparison(benchmark, env, bench_iterations):
    """Uniform vs community-correlated placement (§V-B conjecture)."""
    rows = benchmark.pedantic(
        lambda: placement_comparison(
            n_documents=1000, iterations=bench_iterations
        ),
        rounds=1,
        iterations=1,
    )
    emit_report(
        "ablation_placement",
        format_rows(
            rows,
            title="uniform vs correlated placement, M=1000, alpha=0.5 "
            "(paper: correlation is expected to aid diffusion)",
        ),
        data={"n_documents": 1000, "iterations": bench_iterations, "rows": rows},
    )
    assert {row["placement"] for row in rows} == {"uniform", "correlated"}


def test_personalization_comparison(benchmark, env, bench_iterations):
    """Sum (paper) vs mean/sqrt/l2 weightings (§IV-A risk discussion)."""
    rows = benchmark.pedantic(
        lambda: personalization_comparison(
            n_documents=1000, iterations=bench_iterations
        ),
        rounds=1,
        iterations=1,
    )
    emit_report(
        "ablation_personalization",
        format_rows(rows, title="personalization weighting, M=1000"),
        data={"n_documents": 1000, "iterations": bench_iterations, "rows": rows},
    )
    assert {row["weighting"] for row in rows} == {"sum", "mean", "sqrt", "l2"}
