"""Benchmark: accuracy under stale diffusion state (time-evolving conditions).

The paper's future-work axis: documents move after the warm-up and queries
route on yesterday's embeddings.  Measures how gracefully accuracy degrades
with the fraction of moved documents.
"""

from benchmarks.conftest import emit_report
from repro.experiments.staleness import staleness_sweep
from repro.simulation.reporting import format_rows


def test_staleness_sweep(benchmark, env, bench_iterations):
    rows = benchmark.pedantic(
        lambda: staleness_sweep(n_documents=1000, iterations=bench_iterations),
        rounds=1,
        iterations=1,
    )
    emit_report(
        "staleness_sweep",
        format_rows(
            rows,
            title="success rate vs fraction of documents moved since the "
            "last diffusion (M=1000, alpha=0.5)",
        ),
        data={"n_documents": 1000, "iterations": bench_iterations, "rows": rows},
    )
    by_fraction = {row["stale fraction"]: row["success rate"] for row in rows}
    # fresh hints must beat fully stale hints
    assert by_fraction[0.0] >= by_fraction[1.0]
