"""Benchmark: scalability of the warm-up and query phases with network size.

Not a paper artifact, but the operational question a deployer asks: how do
diffusion cost and per-query walk cost grow with the overlay size?
"""

import numpy as np
import pytest

from benchmarks.conftest import emit_report
from repro.core.engine import WalkConfig, run_query
from repro.core.forwarding import PrecomputedScorePolicy
from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.social import FacebookLikeConfig, facebook_like_graph
from repro.gsp.filters import PersonalizedPageRank
from repro.gsp.normalization import transition_matrix
from repro.simulation.reporting import format_rows

SIZES = (500, 1000, 2000)
DIM = 64

_ROWS = []


def _build(n):
    graph = facebook_like_graph(
        FacebookLikeConfig(
            n_nodes=n, target_edges=int(21.8 * n), n_egos=10
        ),
        seed=n,
    )
    adjacency = CompressedAdjacency.from_networkx(graph)
    operator = transition_matrix(adjacency, "column")
    rng = np.random.default_rng(n)
    personalization = rng.standard_normal((n, DIM))
    return adjacency, operator, personalization


@pytest.mark.parametrize("n_nodes", SIZES)
def test_diffusion_scaling(benchmark, n_nodes):
    adjacency, operator, personalization = _build(n_nodes)
    ppr = PersonalizedPageRank(0.5, tol=1e-8)
    outcome = benchmark(lambda: ppr.apply_detailed(operator, personalization))
    _ROWS.append(
        {
            "phase": "diffusion",
            "nodes": n_nodes,
            "edges": adjacency.n_edges,
            "sweeps": outcome.iterations,
        }
    )
    assert outcome.converged


@pytest.mark.parametrize("n_nodes", SIZES)
def test_walk_scaling(benchmark, n_nodes):
    adjacency, operator, personalization = _build(n_nodes)
    rng = np.random.default_rng(1)
    scores = PersonalizedPageRank(0.5, tol=1e-8).apply(
        operator, personalization @ rng.standard_normal(DIM)
    )
    policy = PrecomputedScorePolicy(scores)
    query = rng.standard_normal(DIM)
    config = WalkConfig(ttl=50)
    starts = rng.integers(0, n_nodes, size=20)

    def run():
        return [
            run_query(adjacency, {}, policy, query, int(s), config) for s in starts
        ]

    results = benchmark(run)
    _ROWS.append(
        {
            "phase": "20 walks (TTL 50)",
            "nodes": n_nodes,
            "edges": adjacency.n_edges,
            "sweeps": "-",
        }
    )
    if n_nodes == SIZES[-1]:
        emit_report(
            "scalability",
            format_rows(_ROWS, title="warm-up and query cost vs overlay size"),
            data={"sizes": list(SIZES), "dim": DIM, "rows": _ROWS},
        )
    assert all(len(r.visits) <= 50 for r in results)
