"""Benchmark: full vs incremental re-diffusion cost as churn grows.

A 1000-node overlay re-diffuses after documents move.  The full strategy
re-runs the whole push diffusion; the incremental strategy pushes only the
sparse personalization delta and patches the cached scores
(:mod:`repro.simulation.refresh`).  Both restore identical routing hints, so
the decision-relevant numbers are the sweep / edge-operation counts recorded
here: for a single moved document the incremental refresh does a fraction of
the work, and the advantage narrows as the change approaches the whole
network.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit_report
from repro.core.search import DiffusionSearchNetwork
from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.social import FacebookLikeConfig, facebook_like_graph
from repro.gsp.normalization import transition_matrix
from repro.simulation.refresh import SignalRefresher
from repro.simulation.reporting import format_rows

N_NODES = 1000
N_DOCUMENTS = 1000
ALPHA = 0.5
TOL = 1e-8
CHURN_SIZES = (1, 5, 20, 100, 500)


@pytest.fixture(scope="module")
def overlay():
    graph = facebook_like_graph(
        FacebookLikeConfig(n_nodes=N_NODES, target_edges=15000, n_egos=8), seed=5
    )
    return CompressedAdjacency.from_networkx(graph)


@pytest.fixture(scope="module")
def placement(overlay):
    """Document scores and nodes for a uniform M=1000 placement."""
    rng = np.random.default_rng(11)
    doc_scores = rng.standard_normal(N_DOCUMENTS)
    nodes = rng.integers(0, overlay.n_nodes, size=N_DOCUMENTS)
    return doc_scores, nodes


def _signal(doc_scores, nodes):
    return np.bincount(nodes, weights=doc_scores, minlength=N_NODES)


def test_refresh_cost_vs_churn(benchmark, overlay, placement):
    """Sweep churn size; record the full-vs-incremental cost table."""
    doc_scores, nodes = placement
    operator = transition_matrix(overlay, "column")
    refresher = SignalRefresher(operator, ALPHA, tol=TOL)
    signal = _signal(doc_scores, nodes)
    base = refresher.cold_start(signal)
    rng = np.random.default_rng(12)

    rows = []
    single_doc = None
    for n_moved in CHURN_SIZES:
        moved = nodes.copy()
        which = rng.choice(N_DOCUMENTS, size=n_moved, replace=False)
        moved[which] = rng.integers(0, N_NODES, size=n_moved)
        new_signal = _signal(doc_scores, moved)
        incremental = refresher.refresh(
            "incremental", base.scores, signal, new_signal
        )
        full = refresher.refresh("full", base.scores, signal, new_signal)
        assert np.max(np.abs(incremental.scores - full.scores)) < 1e-6
        rows.append(
            {
                "docs moved": n_moved,
                "incr sweeps": incremental.sweeps,
                "incr edge ops": incremental.edge_operations,
                "full sweeps": full.sweeps,
                "full edge ops": full.edge_operations,
                "ops ratio": round(
                    incremental.edge_operations / max(1, full.edge_operations), 3
                ),
            }
        )
        if n_moved == 1:
            single_doc = (incremental, full, new_signal)

    emit_report(
        "incremental_refresh",
        format_rows(
            rows,
            title=(
                f"incremental vs full push re-diffusion cost, "
                f"{N_NODES}-node overlay, M={N_DOCUMENTS}, alpha={ALPHA}"
            ),
        ),
        data={
            "n_nodes": N_NODES,
            "n_documents": N_DOCUMENTS,
            "alpha": ALPHA,
            "rows": rows,
        },
    )
    # A single moved document must cost measurably less than a full redo.
    incremental, full, new_signal = single_doc
    assert incremental.edge_operations < 0.5 * full.edge_operations
    assert incremental.sweeps <= full.sweeps + 5

    benchmark(
        lambda: refresher.refresh(
            "incremental", base.scores, signal, new_signal
        )
    )


def test_facade_single_placement_refresh(benchmark, overlay):
    """DiffusionSearchNetwork: patching one placement beats a full redo."""
    rng = np.random.default_rng(13)
    dim = 16
    net = DiffusionSearchNetwork(overlay, dim=dim, alpha=ALPHA)
    for i in range(300):
        net.place_document(
            f"d{i}", rng.standard_normal(dim), int(rng.integers(N_NODES))
        )
    cold = net.diffuse(method="push", tol=TOL)

    def place_and_refresh():
        net.place_document("hot", rng.standard_normal(dim), 7)
        outcome = net.diffuse(method="push", tol=TOL)
        net.remove_document("hot")
        net.diffuse(method="push", tol=TOL)
        return outcome

    outcome = benchmark.pedantic(place_and_refresh, rounds=3, iterations=1)
    assert outcome.incremental
    assert outcome.operations < 0.5 * cold.operations
