"""Benchmark: recall under injected failures, and what resilience buys back.

The paper's evaluation (and every prior benchmark here) assumes a fault-free
overlay.  This bench measures the embedding-guided walk on the same kind of
community overlay while a seeded :class:`repro.runtime.faults.FaultPlan`
crashes peers and drops messages, sweeping

    crash fraction x message-drop probability x walker redundancy

and reporting, per cell: recall@10 against brute-force gold, the ratio to
the fault-free recall, message/retry overhead, and the fraction of queries
that came back ``degraded``.  A zombie row (stale-embedding peers that still
route) completes the taxonomy.

The committed claim (ISSUE 7 acceptance): with **10% of nodes crashed and
5% message drop, k=2 redundant walkers recover >= 80% of the fault-free
recall@10**.  The fault-free sweep cell must also match the no-injector
engine exactly — the equivalence guarantee, asserted here end to end.

Reduced mode (default; CI smoke) runs a small overlay; full mode
(``REPRO_BENCH_FAULT_FULL=1`` or ``REPRO_FULL=1``) the committed scale.
Results land in ``results/fault_tolerance{,_reduced}.{txt,json}``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from benchmarks.conftest import emit_report, measure_peak_memory
from repro.core import diffuse_embeddings
from repro.core.backends import SparseDiffusionBackend
from repro.core.engine import ResilienceConfig, WalkConfig, run_query
from repro.core.forwarding import EmbeddingGuidedPolicy
from repro.graphs.generators import community_cycle_adjacency
from repro.retrieval.vector_store import DocumentStore
from repro.runtime.faults import FaultInjector, FaultPlan, choose_live_starts

BENCH_FULL_ENV = "REPRO_BENCH_FAULT_FULL"

DIM = 32
DEGREE = 8
CROSS_FRACTION = 0.05
ALPHA = 0.5
RECALL_K = 10
GRAPH_SEED = 31
DOC_SEED = 32
QUERY_SEED = 33
START_SEED = 34
PLAN_SEED = 35


def bench_full_requested() -> bool:
    flag = os.environ.get(BENCH_FULL_ENV, "").strip()
    if flag in ("1", "true", "yes"):
        return True
    return os.environ.get("REPRO_FULL", "").strip() in ("1", "true", "yes")


@dataclass(frozen=True)
class BenchSize:
    label: str
    n_nodes: int
    n_communities: int
    n_docs: int
    n_queries: int
    ttl: int
    crash_sweep: tuple[float, ...]
    drop_sweep: tuple[float, ...]
    redundancy_sweep: tuple[int, ...]
    min_recall_ratio: float  # acceptance: crash=0.10, drop=0.05, k=2


REDUCED = BenchSize(
    label="reduced (1.5k nodes, 120 docs, 40 queries)",
    n_nodes=1_500,
    n_communities=6,
    n_docs=120,
    n_queries=40,
    ttl=60,
    crash_sweep=(0.0, 0.10, 0.20),
    drop_sweep=(0.0, 0.05),
    redundancy_sweep=(1, 2),
    min_recall_ratio=0.8,
)
FULL = BenchSize(
    label="full (8k nodes, 400 docs, 100 queries)",
    n_nodes=8_000,
    n_communities=16,
    n_docs=400,
    n_queries=100,
    ttl=80,
    crash_sweep=(0.0, 0.05, 0.10, 0.20),
    drop_sweep=(0.0, 0.05, 0.10),
    redundancy_sweep=(1, 2, 3),
    min_recall_ratio=0.8,
)


def _build_corpus(size: BenchSize):
    """Overlay + placed documents + diffused embeddings + query set."""
    adjacency = community_cycle_adjacency(
        size.n_nodes,
        DEGREE,
        n_communities=size.n_communities,
        cross_fraction=CROSS_FRACTION,
        seed=GRAPH_SEED,
    )
    rng = np.random.default_rng(DOC_SEED)
    doc_embeddings = rng.standard_normal((size.n_docs, DIM))
    doc_embeddings /= np.linalg.norm(doc_embeddings, axis=1, keepdims=True)
    doc_nodes = rng.integers(0, size.n_nodes, size=size.n_docs)
    stores: dict[int, DocumentStore] = {}
    e0 = np.zeros((size.n_nodes, DIM))
    for doc_id, (node, vector) in enumerate(zip(doc_nodes, doc_embeddings)):
        store = stores.setdefault(int(node), DocumentStore(DIM))
        store.add(doc_id, vector)
        e0[node] += vector
    embeddings = diffuse_embeddings(
        adjacency,
        e0,
        alpha=ALPHA,
        method=SparseDiffusionBackend(epsilon=1e-4),
        tol=1e-8,
    ).embeddings
    policy = EmbeddingGuidedPolicy(embeddings)

    # Queries: perturbed documents; gold = brute-force cosine top-10.
    qrng = np.random.default_rng(QUERY_SEED)
    picks = qrng.integers(0, size.n_docs, size=size.n_queries)
    queries = doc_embeddings[picks] + 0.25 * qrng.standard_normal(
        (size.n_queries, DIM)
    )
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)
    gold = [
        set(np.argsort(-(doc_embeddings @ q))[:RECALL_K].tolist())
        for q in queries
    ]
    return adjacency, stores, policy, queries, gold, {
        int(n) for n in doc_nodes
    }


def _run_cell(
    adjacency,
    stores,
    policy,
    queries,
    gold,
    starts,
    *,
    ttl: int,
    plan: FaultPlan | None,
    redundancy: int,
):
    """One sweep cell: every query through one (plan, redundancy) setting."""
    faults = FaultInjector(plan) if plan is not None else None
    resilience = (
        ResilienceConfig(redundancy=redundancy) if faults is not None else None
    )
    recalls, messages, retries, rerouted, degraded = [], 0, 0, 0, 0
    for query, want, start in zip(queries, gold, starts):
        result = run_query(
            adjacency,
            stores,
            policy,
            query,
            int(start),
            WalkConfig(ttl=ttl, k=RECALL_K),
            faults=faults,
            resilience=resilience,
        )
        recalls.append(len(set(result.tracker.doc_ids()) & want) / RECALL_K)
        messages += result.messages
        retries += result.retries
        rerouted += result.rerouted
        degraded += int(result.degraded)
    n = len(recalls)
    return {
        "recall_at_10": float(np.mean(recalls)),
        "mean_messages": messages / n,
        "mean_retries": retries / n,
        "mean_rerouted": rerouted / n,
        "degraded_fraction": degraded / n,
    }


def test_fault_tolerance():
    size = FULL if bench_full_requested() else REDUCED
    corpus, corpus_peak = measure_peak_memory(lambda: _build_corpus(size))
    adjacency, stores, policy, queries, gold, _ = corpus
    kwargs = dict(ttl=size.ttl)

    # Fault-free reference: the plain engine, no injector on the path.
    base_starts = choose_live_starts(
        FaultPlan(size.n_nodes), size.n_queries, np.random.default_rng(START_SEED)
    )
    baseline = _run_cell(
        adjacency, stores, policy, queries, gold, base_starts,
        plan=None, redundancy=1, **kwargs,
    )
    base_recall = baseline["recall_at_10"]

    # Equivalence: the trivial-plan resilient walk is bit-identical.
    trivial = _run_cell(
        adjacency, stores, policy, queries, gold, base_starts,
        plan=FaultPlan(size.n_nodes), redundancy=1, **kwargs,
    )

    sweep = []
    for crash in size.crash_sweep:
        for drop in size.drop_sweep:
            plan = FaultPlan.generate(
                size.n_nodes,
                crash_fraction=crash,
                drop_probability=drop,
                seed=PLAN_SEED,
            )
            starts = choose_live_starts(
                plan, size.n_queries, np.random.default_rng(START_SEED)
            )
            for redundancy in size.redundancy_sweep:
                cell = _run_cell(
                    adjacency, stores, policy, queries, gold, starts,
                    plan=plan, redundancy=redundancy, **kwargs,
                )
                cell.update(
                    crash_fraction=crash,
                    drop_probability=drop,
                    redundancy=redundancy,
                    recall_ratio=cell["recall_at_10"] / base_recall,
                    message_overhead=cell["mean_messages"]
                    / baseline["mean_messages"],
                )
                sweep.append(cell)

    # Zombie row: peers that route but serve stale embeddings.
    zombie_plan = FaultPlan.generate(
        size.n_nodes, zombie_fraction=0.10, seed=PLAN_SEED
    )
    zombie = _run_cell(
        adjacency, stores, policy, queries, gold, base_starts,
        plan=zombie_plan, redundancy=1, **kwargs,
    )
    zombie["recall_ratio"] = zombie["recall_at_10"] / base_recall

    def cell_at(crash, drop, redundancy):
        return next(
            c
            for c in sweep
            if c["crash_fraction"] == crash
            and c["drop_probability"] == drop
            and c["redundancy"] == redundancy
        )

    acceptance = cell_at(0.10, 0.05, 2)
    lone = cell_at(0.10, 0.05, 1)

    lines = [
        "Recall under injected failures (crash x drop x redundancy sweep)",
        f"configuration: {size.label}; dim={DIM}, degree~{DEGREE}, "
        f"alpha={ALPHA}, ttl={size.ttl}, recall@{RECALL_K}, "
        f"plan seed={PLAN_SEED}",
        f"fault-free baseline: recall@10 {base_recall:.4f}, "
        f"{baseline['mean_messages']:.1f} msgs/query",
        f"equivalence (trivial plan, resilient path): recall@10 "
        f"{trivial['recall_at_10']:.4f} "
        f"(delta {abs(trivial['recall_at_10'] - base_recall):.2e})",
        " crash  drop  k | recall@10  ratio | msgs/q  x-over  retries/q "
        "reroute/q  degraded",
    ]
    for c in sweep:
        lines.append(
            f" {c['crash_fraction']:5.2f} {c['drop_probability']:5.2f} "
            f"{c['redundancy']:2d} |   {c['recall_at_10']:7.4f} "
            f"{c['recall_ratio']:6.3f} | {c['mean_messages']:6.1f} "
            f"{c['message_overhead']:7.2f} {c['mean_retries']:10.2f} "
            f"{c['mean_rerouted']:9.2f} {c['degraded_fraction']:9.2f}"
        )
    lines += [
        f" zombies 10% (k=1): recall@10 {zombie['recall_at_10']:.4f} "
        f"(ratio {zombie['recall_ratio']:.3f})",
        f"acceptance (crash=0.10, drop=0.05): k=1 ratio "
        f"{lone['recall_ratio']:.3f} -> k=2 ratio "
        f"{acceptance['recall_ratio']:.3f} "
        f"(floor {size.min_recall_ratio})",
    ]
    emit_report(
        "fault_tolerance" if size is FULL else "fault_tolerance_reduced",
        "\n".join(lines),
        data={
            "criterion": "recall_at_10_vs_brute_force",
            "seed": GRAPH_SEED,  # fault plans use PLAN_SEED (in configuration)
            "peak_memory_bytes": corpus_peak,
            "configuration": {
                "label": size.label,
                "n_nodes": size.n_nodes,
                "n_communities": size.n_communities,
                "n_docs": size.n_docs,
                "n_queries": size.n_queries,
                "dim": DIM,
                "degree": DEGREE,
                "alpha": ALPHA,
                "ttl": size.ttl,
                "recall_k": RECALL_K,
                "plan_seed": PLAN_SEED,
            },
            "baseline": baseline,
            "equivalence_trivial_plan": trivial,
            "sweep": sweep,
            "zombies_10pct": zombie,
            "acceptance": {
                "crash_fraction": 0.10,
                "drop_probability": 0.05,
                "redundancy": 2,
                "recall_ratio": acceptance["recall_ratio"],
                "floor": size.min_recall_ratio,
            },
        },
    )

    # The trivial-plan resilient path must match the plain engine exactly.
    assert trivial["recall_at_10"] == base_recall
    assert trivial["mean_messages"] == baseline["mean_messages"]
    assert trivial["degraded_fraction"] == 0.0
    # The fault-free sweep cell (crash=0, drop=0, k=1) is the baseline too.
    clean_cell = cell_at(0.0, 0.0, 1)
    assert clean_cell["recall_at_10"] == base_recall
    # Failures must actually bite (reroutes happen) and resilience must pay:
    assert lone["mean_rerouted"] > 0
    assert acceptance["recall_ratio"] >= size.min_recall_ratio, (
        f"k=2 redundant walkers recover only "
        f"{acceptance['recall_ratio']:.3f} of fault-free recall@10 "
        f"(floor {size.min_recall_ratio})"
    )
    # Redundancy must not fall below the lone walker under the same faults.
    assert acceptance["recall_at_10"] >= lone["recall_at_10"]
