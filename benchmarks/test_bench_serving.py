"""Benchmark: online serving under load and faults (the robustness claims).

Two claims committed by this bench, both over the :class:`repro.serving`
stack (micro-batching + admission control + deadline budgets + circuit
breaker) driving the walk engines on a community overlay:

**A — boundedness.**  Under an open-loop Poisson overload (~2x the service's
modeled capacity), an *unbounded* ingress queue grows linearly with the run
horizon and completion p99 grows with it; with admission control the queue
depth is capped, p99 stays flat across horizons, and the pressure surfaces
as an explicit shed rate instead.  A saturation sweep (offered rate vs
p50/p95/p99/throughput/shed) maps the whole curve.

**B — health-aware goodput.**  With a :class:`FaultPlan` crashing 10% of
peers and dropping 5% of messages, the per-peer circuit breaker (which only
*observes* walk failures) must keep goodput — mean recall@10 over all
submitted queries — within 10% of the oracle baseline that statically
quarantines exactly the crashed peers (fault-free routing, no breaker),
while the naive configuration (same resilient walks, no quarantine at all)
degrades measurably below the breaker.

Latencies are simulation-clock units (the CostModel prices batch setup,
hops, and refreshes); wall-clock and peak memory of the whole drive are
reported alongside.  Reduced mode (default; CI smoke) runs a small overlay;
full mode (``REPRO_BENCH_SERVING_FULL=1`` or ``REPRO_FULL=1``) the
committed scale.  Results land in ``results/serving{,_reduced}.{txt,json}``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from benchmarks.conftest import emit_report, measure_peak_memory
from repro.core import diffuse_embeddings
from repro.core.backends import SparseDiffusionBackend
from repro.core.engine import ResilienceConfig, WalkConfig
from repro.core.forwarding import EmbeddingGuidedPolicy
from repro.graphs.generators import community_cycle_adjacency
from repro.retrieval.vector_store import DocumentStore
from repro.runtime.events import EventQueue
from repro.runtime.faults import FaultInjector, FaultPlan, choose_live_starts
from repro.serving import (
    AdmissionConfig,
    BreakerConfig,
    MicroBatchConfig,
    PeerCircuitBreaker,
    QueryRequest,
    QueryService,
    ServingConfig,
)
from repro.serving.service import CostModel
from repro.simulation.workload import poisson_arrival_times

BENCH_FULL_ENV = "REPRO_BENCH_SERVING_FULL"

DIM = 32
DEGREE = 8
CROSS_FRACTION = 0.05
ALPHA = 0.5
RECALL_K = 10
GRAPH_SEED = 41
DOC_SEED = 42
QUERY_SEED = 43
START_SEED = 44
PLAN_SEED = 45
ARRIVAL_SEED = 46

# Simulated-time prices (see CostModel): a full batch of B queries costs
# batch_overhead + per_query*B to set up, then the longest walk's hops.
COST = CostModel(batch_overhead=0.25, per_query=0.01, hop_cost=0.02)
MAX_BATCH = 16
MAX_WAIT = 0.5


def bench_full_requested() -> bool:
    flag = os.environ.get(BENCH_FULL_ENV, "").strip()
    if flag in ("1", "true", "yes"):
        return True
    return os.environ.get("REPRO_FULL", "").strip() in ("1", "true", "yes")


@dataclass(frozen=True)
class BenchSize:
    label: str
    n_nodes: int
    n_communities: int
    n_docs: int
    n_query_pool: int  # distinct query vectors (reused round-robin)
    ttl: int
    horizon: float  # base run horizon (simulated time)
    rate_fractions: tuple[float, ...]  # saturation sweep, x capacity
    fault_rate_fraction: float  # offered load for part B
    fault_horizon: float
    goodput_floor: float  # breaker >= floor x oracle
    naive_gap: float  # naive <= (1 - gap) x breaker


REDUCED = BenchSize(
    label="reduced (1.5k nodes, 120 docs)",
    n_nodes=1_500,
    n_communities=6,
    n_docs=120,
    n_query_pool=40,
    ttl=40,
    horizon=60.0,
    rate_fractions=(0.3, 0.6, 0.9, 1.3, 2.0),
    fault_rate_fraction=0.5,
    fault_horizon=120.0,
    goodput_floor=0.90,
    naive_gap=0.02,
)
FULL = BenchSize(
    label="full (8k nodes, 400 docs)",
    n_nodes=8_000,
    n_communities=16,
    n_docs=400,
    n_query_pool=120,
    ttl=60,
    horizon=120.0,
    rate_fractions=(0.2, 0.4, 0.6, 0.8, 1.0, 1.3, 1.7, 2.2),
    fault_rate_fraction=0.5,
    fault_horizon=300.0,
    goodput_floor=0.90,
    naive_gap=0.02,
)


def modeled_capacity(size: BenchSize) -> float:
    """Steady-state completions/time at full batches (the saturation knee)."""
    batch_time = (
        COST.batch_overhead
        + COST.per_query * MAX_BATCH
        + (size.ttl - 1) * COST.hop_cost
    )
    return MAX_BATCH / batch_time


def _build_corpus(size: BenchSize):
    """Overlay + placed documents + diffused policy + query set + gold."""
    adjacency = community_cycle_adjacency(
        size.n_nodes,
        DEGREE,
        n_communities=size.n_communities,
        cross_fraction=CROSS_FRACTION,
        seed=GRAPH_SEED,
    )
    rng = np.random.default_rng(DOC_SEED)
    doc_embeddings = rng.standard_normal((size.n_docs, DIM))
    doc_embeddings /= np.linalg.norm(doc_embeddings, axis=1, keepdims=True)
    doc_nodes = rng.integers(0, size.n_nodes, size=size.n_docs)
    stores: dict[int, DocumentStore] = {}
    e0 = np.zeros((size.n_nodes, DIM))
    for doc_id, (node, vector) in enumerate(zip(doc_nodes, doc_embeddings)):
        store = stores.setdefault(int(node), DocumentStore(DIM))
        store.add(doc_id, vector)
        e0[node] += vector
    embeddings = diffuse_embeddings(
        adjacency,
        e0,
        alpha=ALPHA,
        method=SparseDiffusionBackend(epsilon=1e-4),
        tol=1e-8,
    ).embeddings
    policy = EmbeddingGuidedPolicy(embeddings)

    qrng = np.random.default_rng(QUERY_SEED)
    picks = qrng.integers(0, size.n_docs, size=size.n_query_pool)
    queries = doc_embeddings[picks] + 0.25 * qrng.standard_normal(
        (size.n_query_pool, DIM)
    )
    queries /= np.linalg.norm(queries, axis=1, keepdims=True)
    gold = [
        set(np.argsort(-(doc_embeddings @ q))[:RECALL_K].tolist())
        for q in queries
    ]
    return adjacency, stores, policy, queries, gold


def _drive(
    adjacency,
    stores,
    policy,
    queries,
    starts,
    *,
    size: BenchSize,
    rate: float,
    horizon: float,
    admission: AdmissionConfig,
    faults: FaultInjector | None = None,
    breaker: PeerCircuitBreaker | None = None,
    static_quarantine=None,
    resilience: ResilienceConfig | None = None,
    arrival_seed: int = ARRIVAL_SEED,
):
    """One service run under an open-loop Poisson stream; returns the service."""
    queue = EventQueue()
    service = QueryService(
        adjacency,
        stores,
        policy,
        config=ServingConfig(
            walk=WalkConfig(ttl=size.ttl, k=RECALL_K),
            batch=MicroBatchConfig(max_batch=MAX_BATCH, max_wait=MAX_WAIT),
            admission=admission,
            cost=COST,
            resilience=resilience,
        ),
        queue=queue,
        faults=faults,
        breaker=breaker,
        static_quarantine=static_quarantine,
        seed=7,
    )
    arrivals = poisson_arrival_times(rate, horizon=horizon, seed=arrival_seed)
    pool = len(queries)
    for i, t in enumerate(arrivals):
        request = QueryRequest(
            query_id=i,
            embedding=queries[i % pool],
            start_node=int(starts[i % len(starts)]),
        )
        queue.schedule_at(float(t), lambda r=request: service.submit(r))
    service.drain()
    return service


def _goodput(service, gold, pool: int) -> float:
    """Mean recall@10 over ALL submitted queries (shed queries score 0)."""
    total = 0.0
    submitted = service.metrics.submitted
    for response in service.responses:
        if response.result is None:
            continue
        want = gold[int(response.query_id) % pool]
        got = set(response.result.tracker.doc_ids())
        total += len(got & want) / RECALL_K
    return total / max(submitted, 1)


def test_online_serving():
    size = FULL if bench_full_requested() else REDUCED
    capacity = modeled_capacity(size)
    wall_start = time.perf_counter()

    (corpus, peak_memory) = measure_peak_memory(lambda: _build_corpus(size))
    adjacency, stores, policy, queries, gold = corpus
    srng = np.random.default_rng(START_SEED)
    all_starts = srng.integers(0, size.n_nodes, size=256)
    bounded = AdmissionConfig(max_pending=4 * MAX_BATCH)
    unbounded = AdmissionConfig(max_pending=None)

    # ---- Part A: saturation sweep + boundedness under overload -------------
    sweep = []
    for fraction in size.rate_fractions:
        rate = fraction * capacity
        service = _drive(
            adjacency, stores, policy, queries, all_starts,
            size=size, rate=rate, horizon=size.horizon, admission=bounded,
        )
        summary = service.metrics.summary(horizon=size.horizon)
        summary.update(rate=rate, rate_fraction=fraction)
        sweep.append(summary)

    overload_rate = 2.0 * capacity
    overload = {}
    for label, admission in (("bounded", bounded), ("unbounded", unbounded)):
        for mult in (1, 2):
            service = _drive(
                adjacency, stores, policy, queries, all_starts,
                size=size, rate=overload_rate,
                horizon=size.horizon * mult, admission=admission,
            )
            overload[f"{label}_x{mult}"] = service.metrics.summary(
                horizon=size.horizon * mult
            )

    # ---- Part B: goodput under faults (oracle vs breaker vs naive) ---------
    plan = FaultPlan.generate(
        size.n_nodes,
        crash_fraction=0.10,
        drop_probability=0.05,
        seed=PLAN_SEED,
    )
    live_starts = choose_live_starts(
        plan, 256, np.random.default_rng(START_SEED)
    )
    fault_rate = size.fault_rate_fraction * capacity
    resilience = ResilienceConfig(max_retries=2)
    fault_kwargs = dict(
        size=size,
        rate=fault_rate,
        horizon=size.fault_horizon,
        admission=bounded,
        resilience=resilience,
    )

    oracle_service = _drive(
        adjacency, stores, policy, queries, live_starts,
        faults=FaultInjector(plan),
        static_quarantine=plan.crashed_nodes(0.0),
        **fault_kwargs,
    )
    breaker = PeerCircuitBreaker(
        BreakerConfig(
            # Above the per-walk retry budget (max_retries=2), so one
            # unlucky hop can't trip a healthy peer.
            failure_threshold=3,
            window=size.fault_horizon,
            cooldown=size.fault_horizon / 3,
        )
    )
    breaker_service = _drive(
        adjacency, stores, policy, queries, live_starts,
        faults=FaultInjector(plan),
        breaker=breaker,
        **fault_kwargs,
    )
    naive_service = _drive(
        adjacency, stores, policy, queries, live_starts,
        faults=FaultInjector(plan),
        **fault_kwargs,
    )

    pool = len(queries)
    goodputs = {
        "oracle_static_quarantine": _goodput(oracle_service, gold, pool),
        "breaker_learned": _goodput(breaker_service, gold, pool),
        "naive_no_quarantine": _goodput(naive_service, gold, pool),
    }
    breaker_ratio = goodputs["breaker_learned"] / goodputs["oracle_static_quarantine"]
    naive_ratio = goodputs["naive_no_quarantine"] / goodputs["breaker_learned"]
    wall_seconds = time.perf_counter() - wall_start

    # ---- report ------------------------------------------------------------
    lines = [
        "Online serving under load and faults",
        f"configuration: {size.label}; dim={DIM}, degree~{DEGREE}, "
        f"alpha={ALPHA}, ttl={size.ttl}, recall@{RECALL_K}",
        f"cost model: batch_overhead={COST.batch_overhead}, "
        f"per_query={COST.per_query}, hop_cost={COST.hop_cost}; "
        f"max_batch={MAX_BATCH}, max_wait={MAX_WAIT}",
        f"modeled capacity: {capacity:.2f} queries/time-unit",
        "",
        "saturation sweep (bounded queue, horizon "
        f"{size.horizon:.0f}):",
        "  rate(xcap)   offered |   p50    p95    p99 | thruput  shed  "
        "mean_batch",
    ]
    for cell in sweep:
        lines.append(
            f"  {cell['rate_fraction']:9.2f} {cell['rate']:9.2f} | "
            f"{cell['p50']:5.2f} {cell['p95']:6.2f} {cell['p99']:6.2f} | "
            f"{cell['throughput']:7.2f} {cell['shed_rate']:5.2f} "
            f"{cell['mean_batch_size']:9.2f}"
        )
    lines += [
        "",
        f"overload boundedness (rate 2.0 x capacity = {overload_rate:.2f}):",
        "  config        horizon |    p99  thruput  shed_rate  completed",
    ]
    for key in ("bounded_x1", "bounded_x2", "unbounded_x1", "unbounded_x2"):
        cell = overload[key]
        label, mult = key.rsplit("_x", 1)
        lines.append(
            f"  {label:<12} {float(mult) * size.horizon:7.0f} | "
            f"{cell['p99']:6.2f} {cell['throughput']:8.2f} "
            f"{cell['shed_rate']:10.2f} {cell['completed']:10d}"
        )
    lines += [
        "",
        f"faults (crash 10%, drop 5%; rate {fault_rate:.2f} = "
        f"{size.fault_rate_fraction:.1f} x capacity, horizon "
        f"{size.fault_horizon:.0f}):",
        f"  oracle (static quarantine): goodput "
        f"{goodputs['oracle_static_quarantine']:.4f}",
        f"  breaker (learned):          goodput "
        f"{goodputs['breaker_learned']:.4f} "
        f"(ratio to oracle {breaker_ratio:.3f}, floor {size.goodput_floor}; "
        f"trips={breaker.trips}, quarantined="
        f"{len(breaker.quarantined(size.fault_horizon))})",
        f"  naive (no quarantine):      goodput "
        f"{goodputs['naive_no_quarantine']:.4f} "
        f"(ratio to breaker {naive_ratio:.3f})",
        "",
        f"wall time {wall_seconds:.1f}s; peak memory "
        f"{peak_memory / 1e6:.1f} MB (corpus build + diffusion)",
    ]

    emit_report(
        "serving" if size is FULL else "serving_reduced",
        "\n".join(lines),
        data={
            "configuration": {
                "label": size.label,
                "n_nodes": size.n_nodes,
                "n_communities": size.n_communities,
                "n_docs": size.n_docs,
                "n_query_pool": size.n_query_pool,
                "dim": DIM,
                "degree": DEGREE,
                "alpha": ALPHA,
                "ttl": size.ttl,
                "recall_k": RECALL_K,
                "max_batch": MAX_BATCH,
                "max_wait": MAX_WAIT,
                "cost_model": {
                    "batch_overhead": COST.batch_overhead,
                    "per_query": COST.per_query,
                    "hop_cost": COST.hop_cost,
                },
                "modeled_capacity": capacity,
                "plan_seed": PLAN_SEED,
            },
            "criterion": "simulated_clock_latency_recall_goodput",
            "seed": GRAPH_SEED,  # arrivals/fault plans use ARRIVAL/PLAN_SEED
            "peak_memory_bytes": peak_memory,
            "wall_seconds": wall_seconds,
            "saturation_sweep": sweep,
            "overload": overload,
            "faults": {
                "crash_fraction": 0.10,
                "drop_probability": 0.05,
                "rate": fault_rate,
                "horizon": size.fault_horizon,
                "goodput": goodputs,
                "breaker_ratio_to_oracle": breaker_ratio,
                "naive_ratio_to_breaker": naive_ratio,
                "breaker_trips": breaker.trips,
                "breaker_quarantined": len(
                    breaker.quarantined(size.fault_horizon)
                ),
                "oracle": oracle_service.metrics.summary(
                    horizon=size.fault_horizon
                ),
                "breaker": breaker_service.metrics.summary(
                    horizon=size.fault_horizon
                ),
                "naive": naive_service.metrics.summary(
                    horizon=size.fault_horizon
                ),
            },
        },
    )

    # ---- acceptance --------------------------------------------------------
    # A. Admission control bounds the tail; an unbounded queue does not.
    b1, b2 = overload["bounded_x1"], overload["bounded_x2"]
    u1, u2 = overload["unbounded_x1"], overload["unbounded_x2"]
    assert u2["p99"] > 1.4 * u1["p99"], (
        f"unbounded queue p99 did not grow with horizon "
        f"({u1['p99']:.2f} -> {u2['p99']:.2f}): overload too weak"
    )
    assert b2["p99"] < 1.25 * b1["p99"], (
        f"bounded p99 drifted with horizon ({b1['p99']:.2f} -> "
        f"{b2['p99']:.2f}): admission control not engaging"
    )
    assert b2["p99"] < u2["p99"], "bounded p99 should beat unbounded under overload"
    assert b2["shed_rate"] > 0.1, "overload must surface as explicit shedding"
    # Every submitted query resolved explicitly, in every run.
    for cell in list(overload.values()) + sweep:
        assert cell["ok"] + cell["degraded"] + cell["rejected"] == cell["submitted"]

    # B. The learned breaker stays within 10% of oracle routing; naive pays.
    assert breaker.trips > 0, "breaker never tripped under 10% crashed peers"
    assert breaker_ratio >= size.goodput_floor, (
        f"breaker goodput only {breaker_ratio:.3f} of oracle "
        f"(floor {size.goodput_floor})"
    )
    assert naive_ratio <= 1.0 - size.naive_gap, (
        f"naive config should degrade measurably vs the breaker "
        f"(got ratio {naive_ratio:.3f})"
    )
