"""Benchmark: document-oriented diffusion vs query-oriented learned routing.

The two informed-search families of §II-A head to head: the diffusion scheme
works for *any* query immediately after the warm-up, while query-oriented
routing must learn from repeated traffic and stays blind to unseen query
directions (the cold-start problem).  Averaged over several independent
placements; the learned router trains on repeats of the evaluated query —
its best case (popular repeated content).
"""

import numpy as np

from benchmarks.conftest import emit_report
from repro.baselines.query_routing import (
    LearnedRoutingPolicy,
    learned_routing_walk,
    train_routing_policy,
)
from repro.core.engine import WalkConfig, run_query
from repro.core.forwarding import PrecomputedScorePolicy
from repro.simulation.reporting import format_rows
from repro.simulation.runner import IterationSampler
from repro.utils.rng import spawn_rngs

M_DOCUMENTS = 500
TTL = 50
INSTANCES = 6
EVAL_PER_INSTANCE = 20


def _experiment(env, training_rounds):
    sampler = IterationSampler(env.adjacency, env.workload)
    config = WalkConfig(ttl=TTL, fanout=1, k=1)
    n = env.adjacency.n_nodes
    hits = {"diffusion": 0, "learned (cold)": 0, "learned (warm)": 0}
    total = 0

    for instance_rng in spawn_rngs(71, INSTANCES):
        data = sampler.sample(M_DOCUMENTS, instance_rng)
        scores = sampler.diffuse_scores(data.relevance_signal, 0.5)

        warm_policy = LearnedRoutingPolicy(env.adjacency, epsilon=0.2)
        training = [(data.query_embedding, data.gold_word)] * training_rounds
        train_routing_policy(
            env.adjacency, data.stores, warm_policy, training,
            ttl=TTL, seed=instance_rng,
        )
        cold_policy = LearnedRoutingPolicy(env.adjacency, epsilon=0.2)

        for _ in range(EVAL_PER_INSTANCE):
            start = int(instance_rng.integers(n))
            total += 1
            diffusion_result = run_query(
                env.adjacency, data.stores, PrecomputedScorePolicy(scores),
                data.query_embedding, start, config,
            )
            hits["diffusion"] += diffusion_result.found(data.gold_word, top=1)
            for name, policy in (
                ("learned (cold)", cold_policy),
                ("learned (warm)", warm_policy),
            ):
                result = learned_routing_walk(
                    env.adjacency, data.stores, policy, data.query_embedding,
                    start, config, learn=False, seed=instance_rng,
                )
                hits[name] += result.found(data.gold_word, top=1)

    return [
        {"method": name, "success rate": round(count / total, 3)}
        for name, count in hits.items()
    ]


def test_diffusion_vs_learned_routing(benchmark, env, bench_iterations):
    training_rounds = 400 if bench_iterations is None else 250
    rows = benchmark.pedantic(
        lambda: _experiment(env, training_rounds), rounds=1, iterations=1
    )
    emit_report(
        "query_routing_comparison",
        format_rows(
            rows,
            title=(
                f"document-oriented diffusion vs query-oriented routing, "
                f"M={M_DOCUMENTS}, TTL={TTL}, {INSTANCES} placements, "
                f"{training_rounds} training repeats of the evaluated query"
            ),
        ),
        data={
            "n_documents": M_DOCUMENTS,
            "ttl": TTL,
            "instances": INSTANCES,
            "training_rounds": training_rounds,
            "rows": rows,
        },
    )
    by_method = {row["method"]: row["success rate"] for row in rows}
    # diffusion needs no training; cold query-routing is the §II-A weakness
    assert by_method["diffusion"] > by_method["learned (cold)"]
    # repeated traffic helps the query-oriented method (its §II-A strength)
    assert by_method["learned (warm)"] >= by_method["learned (cold)"]
