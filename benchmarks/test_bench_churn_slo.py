"""Benchmark: SLO-driven refresh scheduling under sustained churn.

The claim committed by this bench: under a sustained churn stream
(10⁵+ events in full mode) the :class:`repro.churn.RefreshScheduler` —
deciding defer / incremental / full per tick from the
:class:`~repro.churn.StalenessTracker` bound and the fitted
:class:`~repro.churn.RefreshCostModel` — holds serving quality
(overlap@100 of served vs exact diffusion scores ≥ 0.95 at every
checkpoint) at measurably lower refresh cost (total edge operations)
than refreshing fully on every tick, while the never-refresh baseline
drops below that quality floor.  Alongside, the tracker's cheap bound is
validated against ground truth: at every checkpoint it must dominate the
true L1 error of the SLO policy's served scores.

Four policies replay the *same* deterministic event sequence on the
scalar relevance signal (one diffusable weight per node, the harness of
:class:`repro.simulation.refresh.SignalRefresher`):

* ``stale``     — warm up once, never refresh (free, rots);
* ``full``      — re-diffuse from scratch every tick (fresh, O(network)/tick);
* ``slo``       — the scheduler, with a banked per-tick edge-op budget;
* ``slo_tight`` — the scheduler starved of budget, to show the explicit
  degradation path (stale serving with a stamped, still-sound bound).

Reduced mode (default; the CI ``churn-smoke`` step) runs a small overlay;
full mode (``REPRO_BENCH_CHURN_FULL=1`` or ``REPRO_FULL=1``) the
committed 10⁵-event scale.  Results land in
``benchmarks/results/churn_slo{,_reduced}.{txt,json}``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from benchmarks.conftest import emit_report, measure_peak_memory
from repro.churn import (
    ChurnRates,
    ChurnStream,
    RefreshSLO,
    RefreshScheduler,
    SignalChurnState,
)
from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.generators import connected_watts_strogatz
from repro.gsp.filters import PersonalizedPageRank
from repro.gsp.normalization import transition_matrix
from repro.simulation.refresh import SignalRefresher

BENCH_FULL_ENV = "REPRO_BENCH_CHURN_FULL"

ALPHA = 0.5
TOL = 1e-8
OVERLAP_K = 100
SEED = 71  # one seed drives graph, placement, and churn generation
OVERLAP_FLOOR = 0.95
# The SLO path must spend measurably less than full-every-tick, not
# marginally less: at most this fraction of its edge operations.
SLO_COST_CEILING = 0.7

RATES = ChurnRates(
    doc_add=1.0,
    doc_move=6.0,
    doc_delete=1.0,
    node_leave=0.1,
    node_join=0.1,
)


def bench_full_requested() -> bool:
    flag = os.environ.get(BENCH_FULL_ENV, "").strip()
    if flag in ("1", "true", "yes"):
        return True
    return os.environ.get("REPRO_FULL", "").strip() in ("1", "true", "yes")


@dataclass(frozen=True)
class BenchSize:
    label: str
    n_nodes: int
    degree: int
    n_docs: int
    n_events: int
    events_per_tick: int
    checkpoint_every: int  # ticks between exact-solve checkpoints
    staleness_target: float  # L1 score-error units
    budget_fraction: float  # per-tick budget as a fraction of one full run
    tight_budget_fraction: float  # the deliberately starved variant
    max_banked_ticks: float


REDUCED = BenchSize(
    label="reduced (400 nodes, 2.5k events)",
    n_nodes=400,
    degree=6,
    n_docs=120,
    n_events=2_500,
    events_per_tick=5,
    checkpoint_every=50,
    staleness_target=2.0,
    budget_fraction=0.8,
    tight_budget_fraction=0.05,
    max_banked_ticks=20.0,
)
FULL = BenchSize(
    label="full (1k nodes, 100k events)",
    n_nodes=1_000,
    degree=6,
    n_docs=300,
    n_events=100_000,
    # Small ticks keep per-tick dirty mass (~7 L1 units) well below the
    # incremental/full crossover: the push intercept (sweeps to drain any
    # delta to tol) dominates incremental cost, so large batches erode
    # the saving while tiny ones just multiply the tick count.
    events_per_tick=4,
    checkpoint_every=1_250,
    staleness_target=2.0,
    budget_fraction=0.8,
    tight_budget_fraction=0.05,
    max_banked_ticks=20.0,
)


def _build(size: BenchSize):
    """Operator, initial placement, and the deterministic churn stream."""
    adjacency = CompressedAdjacency.from_networkx(
        connected_watts_strogatz(size.n_nodes, size.degree, 0.2, seed=SEED)
    )
    operator = transition_matrix(adjacency, "column")
    rng = np.random.default_rng(SEED)
    placement = {
        f"doc-{d}": int(rng.integers(size.n_nodes)) for d in range(size.n_docs)
    }
    stream = ChurnStream(
        size.n_nodes, RATES, initial_placement=placement, seed=SEED
    )
    events = stream.events(n=size.n_events)
    return operator, placement, events


def _ticks(events, per_tick):
    for start in range(0, len(events), per_tick):
        yield events[start:start + per_tick]


def _overlap(a: np.ndarray, b: np.ndarray, k: int) -> float:
    top_a = set(np.argsort(-a)[:k].tolist())
    top_b = set(np.argsort(-b)[:k].tolist())
    return len(top_a & top_b) / k


def _run_policy(policy: str, size: BenchSize, operator, placement, events):
    """Replay the event stream under one refresh policy.

    Returns per-checkpoint quality records plus total refresh cost.  The
    exact reference at each checkpoint is a direct linear solve of the
    current signal — ground truth, charged to nobody.
    """
    exact_filter = PersonalizedPageRank(ALPHA, method="solve")
    refresher = SignalRefresher(operator, ALPHA, tol=TOL)
    state = SignalChurnState(size.n_nodes, initial_placement=placement)
    warmup = refresher.cold_start(state.signal.copy())
    served = warmup.scores
    state.commit_refresh(warmup.residual_l1, full=True)
    edge_ops = warmup.edge_operations

    scheduler = None
    if policy in ("slo", "slo_tight"):
        fraction = (
            size.budget_fraction
            if policy == "slo"
            else size.tight_budget_fraction
        )
        full_cost = refresher.cost_estimate("full")
        scheduler = RefreshScheduler(
            RefreshSLO(
                staleness_target=size.staleness_target,
                refresh_budget_per_tick=fraction * full_cost,
                max_banked_ticks=size.max_banked_ticks,
            ),
            refresher.cost_model,  # the refresher's own fit — one pricing brain
        )

    checkpoints = []
    for tick, batch in enumerate(_ticks(events, size.events_per_tick), 1):
        for event in batch:
            state.apply(event)
        if policy == "full":
            outcome = refresher.refresh(
                "full", served, state.baseline, state.signal
            )
            served = outcome.scores
            state.commit_refresh(outcome.residual_l1, full=True)
            edge_ops += outcome.edge_operations
        elif scheduler is not None:
            scheduler.tick()
            decision = scheduler.decide(state.bound(), state.dirty_mass)
            if decision.action != "defer":
                outcome = refresher.refresh(
                    decision.action, served, state.baseline, state.signal
                )
                served = outcome.scores
                state.commit_refresh(
                    outcome.residual_l1, full=decision.action == "full"
                )
                scheduler.commit(decision, outcome.edge_operations)
                edge_ops += outcome.edge_operations
        if tick % size.checkpoint_every == 0:
            exact = exact_filter.apply(operator, state.signal)
            checkpoints.append(
                {
                    "tick": tick,
                    "events": tick * size.events_per_tick,
                    "overlap": _overlap(served, exact, OVERLAP_K),
                    "true_l1_error": float(np.abs(served - exact).sum()),
                    "bound": state.bound(),
                }
            )
    return {
        "policy": policy,
        "edge_operations": int(edge_ops),
        "warmup_edge_operations": int(warmup.edge_operations),
        "checkpoints": checkpoints,
        "min_overlap": min(c["overlap"] for c in checkpoints),
        "scheduler": scheduler.summary() if scheduler is not None else None,
    }


def test_churn_slo_scheduling():
    size = FULL if bench_full_requested() else REDUCED
    wall_start = time.perf_counter()
    operator, placement, events = _build(size)

    def drive():
        return {
            policy: _run_policy(policy, size, operator, placement, events)
            for policy in ("stale", "full", "slo", "slo_tight")
        }

    results, peak_memory = measure_peak_memory(drive)
    wall_seconds = time.perf_counter() - wall_start

    stale, full, slo = results["stale"], results["full"], results["slo"]
    tight = results["slo_tight"]
    cost_ratio = slo["edge_operations"] / full["edge_operations"]
    sched = slo["scheduler"]

    # ---- report ------------------------------------------------------------
    lines = [
        "SLO-driven refresh scheduling under sustained churn",
        f"configuration: {size.label}; degree~{size.degree}, alpha={ALPHA}, "
        f"tol={TOL:g}, seed={SEED}",
        f"churn: {size.n_events} events "
        f"(rates: add={RATES.doc_add}, move={RATES.doc_move}, "
        f"delete={RATES.doc_delete}, leave={RATES.node_leave}, "
        f"join={RATES.node_join}), {size.events_per_tick} events/tick",
        f"SLO: staleness_target={size.staleness_target} (L1), per-tick "
        f"budget={size.budget_fraction:.2f} x full-run cost, "
        f"bank cap={size.max_banked_ticks:g} ticks",
        "",
        "policy      edge-ops (x warmup) | min overlap@100 | verdict",
    ]
    tight_ratio = tight["edge_operations"] / full["edge_operations"]
    verdicts = {
        "stale": "quality floor violated (expected)",
        "full": "fresh every tick (cost ceiling)",
        "slo": f"scheduled ({cost_ratio:.2f}x full-every-tick cost)",
        "slo_tight": (
            f"starved budget ({tight_ratio:.2f}x): explicit degradation"
        ),
    }
    for record in (stale, full, slo, tight):
        ops = record["edge_operations"]
        rel = ops / record["warmup_edge_operations"]
        lines.append(
            f"  {record['policy']:<9} {ops:>12,d} ({rel:6.1f}x) | "
            f"{record['min_overlap']:15.3f} | "
            + verdicts[record["policy"]]
        )
    lines += [
        "",
        f"scheduler: {sched['decisions']} over {sched['ticks']} ticks, "
        f"{sched['slo_violations']} SLO violations (served stale, stamped), "
        f"{sched['total_refresh_operations']:,d} refresh edge-ops",
        f"starved scheduler: {tight['scheduler']['decisions']}, "
        f"{tight['scheduler']['slo_violations']} SLO violations",
        "",
        "SLO-policy checkpoints (bound must dominate true error):",
        "    events |  overlap@100 | true L1 error |  bound",
    ]
    for check in slo["checkpoints"]:
        lines.append(
            f"  {check['events']:>8d} | {check['overlap']:12.3f} | "
            f"{check['true_l1_error']:13.4g} | {check['bound']:8.4g}"
        )
    lines.append(
        f"\nwall time {wall_seconds:.1f}s; peak memory "
        f"{peak_memory / 1e6:.1f} MB (all four replays)"
    )

    emit_report(
        "churn_slo" if size is FULL else "churn_slo_reduced",
        "\n".join(lines),
        data={
            "configuration": {
                "label": size.label,
                "n_nodes": size.n_nodes,
                "degree": size.degree,
                "n_docs": size.n_docs,
                "n_events": size.n_events,
                "events_per_tick": size.events_per_tick,
                "checkpoint_every": size.checkpoint_every,
                "alpha": ALPHA,
                "tol": TOL,
                "overlap_k": OVERLAP_K,
                "rates": {
                    "doc_add": RATES.doc_add,
                    "doc_move": RATES.doc_move,
                    "doc_delete": RATES.doc_delete,
                    "node_leave": RATES.node_leave,
                    "node_join": RATES.node_join,
                },
                "slo": {
                    "staleness_target": size.staleness_target,
                    "budget_fraction": size.budget_fraction,
                    "max_banked_ticks": size.max_banked_ticks,
                },
            },
            "seed": SEED,
            "criterion": "edge_operations_vs_overlap_at_100",
            "peak_memory_bytes": peak_memory,
            "wall_seconds": wall_seconds,
            "policies": results,
            "slo_cost_ratio_to_full": cost_ratio,
        },
    )

    # ---- acceptance --------------------------------------------------------
    # The scheduler holds the quality floor ...
    assert slo["min_overlap"] >= OVERLAP_FLOOR, (
        f"SLO policy violated the overlap floor: {slo['min_overlap']:.3f} "
        f"< {OVERLAP_FLOOR}"
    )
    # ... at measurably lower refresh cost than refreshing every tick ...
    assert cost_ratio < SLO_COST_CEILING, (
        f"SLO policy spent {cost_ratio:.2f}x of full-every-tick edge ops "
        f"(ceiling {SLO_COST_CEILING}): scheduling saved nothing"
    )
    # ... while never refreshing rots below the floor (the floor is real).
    assert stale["min_overlap"] < OVERLAP_FLOOR, (
        f"stale-only still at overlap {stale['min_overlap']:.3f}: churn too "
        "weak to discriminate policies"
    )
    # The cheap staleness bound is sound: it dominates the true L1 error of
    # the served scores at every checkpoint — including under starvation,
    # where serving stale is only honest if the stamped bound still holds.
    for record in (slo, tight):
        for check in record["checkpoints"]:
            assert check["bound"] >= check["true_l1_error"] - 1e-9, (
                f"staleness bound {check['bound']:.4g} under-reports true "
                f"error {check['true_l1_error']:.4g} at "
                f"{check['events']} events ({record['policy']})"
            )
    # Starving the budget forces explicit degradation: violations are
    # counted, not hidden, and quality trails the funded scheduler.
    assert tight["scheduler"]["slo_violations"] > 0
    assert tight["min_overlap"] <= slo["min_overlap"]
    # Full-every-tick stays essentially exact — the cost ceiling we beat is
    # a real quality ceiling too.
    assert full["min_overlap"] >= 0.99
