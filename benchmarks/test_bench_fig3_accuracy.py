"""Benchmark: Fig. 3 — hit accuracy vs. query–gold distance.

Regenerates the paper's four panels (M = 10, 100, 1000, 10000 documents;
alpha in {0.1, 0.5, 0.9}; TTL 50; top-1; single walk) and prints the
accuracy series per alpha.  Shape assertions check the qualitative claims of
§V-C: perfect accuracy at distance 0, high accuracy within ~2 hops, decline
beyond, and degradation as M grows.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit_report
from repro.simulation.metrics import AccuracyGrid
from repro.simulation.reporting import format_accuracy_grid, sparkline
from repro.simulation.runner import run_accuracy_experiment
from repro.simulation.scenario import AccuracyScenario

PAPER_ALPHAS = (0.1, 0.5, 0.9)
PANEL = {10: "3a", 100: "3b", 1000: "3c", 10000: "3d"}

#: Qualitative series from the paper's figures (what the shape should echo):
PAPER_NOTES = {
    10: "accuracy ~1.0 through 2 hops, declines from 3 hops",
    100: "accuracy ~1.0 through 2 hops, declines from 3 hops",
    1000: "high accuracy only at 0-1 hops; heavier diffusion helps close range",
    10000: "performance deteriorates considerably; only immediate vicinity hits",
}

_RESULTS: dict[int, AccuracyGrid] = {}


def _run_panel(env, n_documents, iterations):
    scenario = AccuracyScenario(
        n_documents=n_documents,
        alphas=PAPER_ALPHAS,
        max_distance=8,
        ttl=50,
        iterations=iterations or 300,
        seed=0,
    )
    return run_accuracy_experiment(env.adjacency, env.workload, scenario)


def _report(env, n_documents, grid):
    lines = [
        format_accuracy_grid(
            grid,
            title=(
                f"Fig. {PANEL[n_documents]}: hit accuracy vs distance, "
                f"M = {n_documents} documents ({env.label})"
            ),
        )
    ]
    for alpha in grid.alphas:
        lines.append(f"  a={alpha:g} |{sparkline(grid.series(alpha))}|")
    lines.append(f"paper: {PAPER_NOTES[n_documents]}")
    emit_report(
        f"fig{PANEL[n_documents]}_m{n_documents}",
        "\n".join(lines),
        data={
            "n_documents": n_documents,
            "environment": env.label,
            "alphas": list(grid.alphas),
            "series": {
                str(alpha): [
                    None if np.isnan(v) else float(v)
                    for v in grid.series(alpha)
                ]
                for alpha in grid.alphas
            },
        },
    )


def _mean_over(grid, distances):
    values = [
        grid.accuracy(alpha, d)
        for alpha in grid.alphas
        for d in distances
        if grid.sample_count(alpha, d) > 0
    ]
    return float(np.mean(values)) if values else float("nan")


@pytest.mark.parametrize("n_documents", [10, 100, 1000, 10000])
def test_fig3_accuracy_panel(benchmark, env, bench_iterations, n_documents):
    grid = benchmark.pedantic(
        _run_panel,
        args=(env, n_documents, bench_iterations),
        rounds=1,
        iterations=1,
    )
    _RESULTS[n_documents] = grid
    _report(env, n_documents, grid)

    # Shape assertion 1: a query starting on the gold node always succeeds.
    for alpha in grid.alphas:
        assert grid.accuracy(alpha, 0) == 1.0

    # Shape assertion 2: accuracy declines with distance (near >> far).
    near = _mean_over(grid, (0, 1, 2))
    far = _mean_over(grid, (5, 6, 7, 8))
    assert near > far + 0.2, f"no distance decline at M={n_documents}"


def test_fig3_cross_panel_degradation(benchmark, env, bench_iterations):
    """Paper: 'accuracy sharply declines as the number of documents increases'."""

    def summarize():
        for m in (10, 10000):
            if m not in _RESULTS:
                _RESULTS[m] = _run_panel(env, m, bench_iterations)
        return {
            m: _mean_over(_RESULTS[m], (1, 2, 3, 4)) for m in (10, 10000)
        }

    means = benchmark.pedantic(summarize, rounds=1, iterations=1)
    emit_report(
        "fig3_cross_panel",
        "mean accuracy over distances 1-4:\n"
        + "\n".join(f"  M={m:>6}: {value:.3f}" for m, value in means.items())
        + "\npaper: accuracy at M=10 far exceeds accuracy at M=10000",
        data={"mean_accuracy_distances_1_4": {str(m): v for m, v in means.items()}},
    )
    assert means[10] > means[10000] + 0.1
