"""Benchmark: exact vs LSH vs HNSW retrieval (the §II-B/III-A substrate).

Supports the paper's premise that bi-encoder retrieval is cheap: measures
query latency of the three back-ends over the synthetic vocabulary and
reports recall@10 against brute force.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit_report
from repro.embeddings.similarity import dot_scores, l2_normalize
from repro.retrieval.hnsw import HNSWIndex
from repro.retrieval.lsh import LSHIndex
from repro.retrieval.scoring import top_k_indices
from repro.simulation.reporting import format_rows

K = 10
N_QUERIES = 20


@pytest.fixture(scope="module")
def corpus(env):
    # Queries are stored vectors: their exact top-10 are themselves plus
    # same-cluster siblings (cosine ~0.72), the regime ANN indexes target.
    vectors = l2_normalize(env.model.vectors[:6000])
    ids = env.model.words[:6000]
    rng = np.random.default_rng(3)
    query_rows = rng.choice(len(ids), size=N_QUERIES, replace=False)
    queries = vectors[query_rows]
    return ids, vectors, queries


@pytest.fixture(scope="module")
def exact_answers(corpus):
    ids, vectors, queries = corpus
    return [
        {ids[int(i)] for i in top_k_indices(dot_scores(q, vectors), K)}
        for q in queries
    ]


_ROWS = []


def _recall(results, exact_answers):
    hits = sum(len(res & exact) for res, exact in zip(results, exact_answers))
    return hits / (K * len(exact_answers))


def test_exact_bruteforce(benchmark, corpus, exact_answers):
    ids, vectors, queries = corpus

    def run():
        return [
            {ids[int(i)] for i in top_k_indices(dot_scores(q, vectors), K)}
            for q in queries
        ]

    results = benchmark(run)
    _ROWS.append({"backend": "exact", "recall@10": 1.0, "candidates": len(ids)})
    assert _recall(results, exact_answers) == 1.0


def test_lsh(benchmark, corpus, exact_answers):
    ids, vectors, queries = corpus
    index = LSHIndex.build(ids, vectors, n_planes=10, n_tables=16, seed=0)

    def run():
        return [{doc for doc, _ in index.query(q, K)} for q in queries]

    results = benchmark(run)
    recall = _recall(results, exact_answers)
    mean_candidates = float(
        np.mean([index.candidates(q).size for q in queries])
    )
    _ROWS.append(
        {
            "backend": "LSH(10x16)",
            "recall@10": round(recall, 3),
            "candidates": round(mean_candidates, 0),
        }
    )
    assert recall > 0.3  # probes a small fraction of the corpus


def test_hnsw(benchmark, corpus, exact_answers):
    ids, vectors, queries = corpus
    index = HNSWIndex.build(ids, vectors, m=12, ef_construction=80, seed=0)

    def run():
        return [{doc for doc, _ in index.query(q, K, ef=64)} for q in queries]

    results = benchmark(run)
    recall = _recall(results, exact_answers)
    _ROWS.append(
        {"backend": "HNSW(m=12,ef=64)", "recall@10": round(recall, 3), "candidates": "-"}
    )
    emit_report(
        "ann_backends",
        format_rows(
            _ROWS,
            title=f"ANN back-ends, {len(ids)} vectors, {N_QUERIES} queries, recall@{K}",
        ),
        data={
            "n_vectors": len(ids),
            "n_queries": N_QUERIES,
            "k": K,
            "rows": _ROWS,
        },
    )
    assert recall > 0.6
