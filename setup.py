"""Legacy setup shim.

The environment has setuptools but no ``wheel`` package, so PEP 660 editable
installs fail; ``pip install -e . --no-build-isolation`` falls back to this
shim (all real metadata lives in pyproject.toml).
"""

from setuptools import setup

setup()
