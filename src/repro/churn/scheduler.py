"""SLO-driven refresh scheduling: defer vs incremental vs full, priced.

The incremental push refresh wins big for small deltas (~0.35× edge ops
for one moved document) but converges to full-recompute cost near ~500
moves — and nothing in a static pipeline decides *when* to pay which
cost.  Under sustained churn that decision is the whole game: refresh too
eagerly and the refresh budget dwarfs the query work; refresh too lazily
and the served scores silently rot.

:class:`RefreshScheduler` makes the decision explicit, per tick and per
signal::

                         ┌─ bound ≤ target ────────────► DEFER (within SLO)
    staleness bound ─────┤
    (StalenessTracker)   └─ bound > target ─┬─ cheapest affordable action
                                            │  (fitted RefreshCostModel)
                                            ├──► INCREMENTAL  (cost ∝ dirty mass)
                                            ├──► FULL         (cost ≈ O(edges))
                                            └──► DEFER (budget exhausted —
                                                 serve stale, stamped, SLO
                                                 violation counted)

Budget is an edge-operation allowance that accrues per tick and *banks*
up to a cap, so a full recompute is amortized: a few deferred ticks save
enough allowance to afford the re-baseline instead of being locked out of
it forever.  Degradation is always explicit — a deferral over the target
is counted as an SLO violation and the serving layer stamps the staleness
bound onto every response it serves meanwhile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils import check_non_negative, check_positive, check_probability

__all__ = [
    "REFRESH_STRATEGIES",
    "RefreshCostModel",
    "RefreshDecision",
    "RefreshSLO",
    "RefreshScheduler",
    "check_strategy",
]

#: The refresh strategies the cost model prices (shared with
#: :class:`repro.simulation.refresh.SignalRefresher`, which re-exports it).
REFRESH_STRATEGIES = ("stale", "incremental", "full")


def check_strategy(strategy: str) -> str:
    """Validate a refresh-strategy name up front with a clear error."""
    if strategy not in REFRESH_STRATEGIES:
        raise ValueError(
            f"unknown refresh strategy {strategy!r}; "
            f"expected one of {REFRESH_STRATEGIES}"
        )
    return strategy


class RefreshCostModel:
    """Fitted edge-operation prices for the refresh strategies.

    One pricing brain shared by
    :meth:`repro.simulation.refresh.SignalRefresher.cost_estimate` and
    :class:`RefreshScheduler`, so nobody duplicates the "what would this
    refresh cost?" logic.  The model keeps two exponentially-weighted fits
    updated from *observed* runs:

    * ``full`` — a constant: edge operations of a cold-start/full push
      (work is O(network), independent of the change size);
    * ``incremental`` — an *affine* law, ``intercept + slope × dirty L1
      mass``, fit from exponentially-weighted moments of (mass, ops)
      observations.  Push work has a large constant term (draining any
      delta to ``tol`` costs a near-fixed number of sweeps over the
      delta's support) plus a mass-dependent part; a purely proportional
      rate extrapolated from small observed masses systematically
      overprices mid-size deltas and flips decisions to ``full`` at the
      wrong crossover.  With fewer than two distinct observed masses the
      fit degenerates to the through-origin rate.

    Before any observation the estimates fall back to an analytic prior,
    ``nnz × ⌈log(tol)/log(1−α)⌉`` sweeps for a full run and the same
    figure scaled by dirty mass for incremental (unit-signal-mass
    assumption) — rough, but only ever used before the first real run.
    ``stale`` is always free.  The incremental estimate is deliberately
    *not* clamped below the full estimate: near saturation (hundreds of
    moved documents) incremental genuinely costs more than recomputing,
    and the scheduler must be able to see that crossover to pick ``full``.
    """

    def __init__(
        self,
        *,
        nnz: int,
        alpha: float,
        tol: float,
        smoothing: float = 0.5,
    ) -> None:
        check_probability(alpha, "alpha")
        check_probability(smoothing, "smoothing")
        check_positive(tol, "tol")
        self.nnz = int(nnz)
        self.alpha = float(alpha)
        self.tol = float(tol)
        self.smoothing = float(smoothing)
        self._full_cost: float | None = None
        # EWMA moments of incremental (dirty mass, edge ops) observations:
        # E[m], E[ops], E[m²], E[m·ops] — enough for the affine fit.
        self._inc_m: float | None = None
        self._inc_ops: float | None = None
        self._inc_mm: float | None = None
        self._inc_mops: float | None = None

    def _prior_full(self) -> float:
        if self.alpha >= 1.0 or self.tol >= 1.0:
            return float(max(self.nnz, 1))
        sweeps = math.ceil(math.log(self.tol) / math.log(1.0 - self.alpha))
        return float(max(self.nnz, 1) * max(1, sweeps))

    def _blend(self, old: float | None, new: float) -> float:
        if old is None:
            return new
        return (1.0 - self.smoothing) * old + self.smoothing * new

    def observe(
        self, strategy: str, dirty_mass: float, edge_operations: int
    ) -> None:
        """Fold one observed refresh into the fit.

        ``dirty_mass`` is the L1 norm of the signal delta the run diffused
        (for ``full``/cold-start runs: the L1 mass of the whole signal,
        used once to seed the incremental rate).
        """
        check_strategy(strategy)
        check_non_negative(dirty_mass, "dirty_mass")
        if strategy == "stale":
            return
        if strategy == "full":
            self._full_cost = self._blend(self._full_cost, float(edge_operations))
            if self._inc_m is None and dirty_mass > 0:
                # Seed the incremental fit with the full run as one
                # (mass, ops) point — a through-origin rate until a real
                # incremental observation arrives.
                self._observe_incremental(dirty_mass, float(edge_operations))
            return
        if dirty_mass > 0:
            self._observe_incremental(dirty_mass, float(edge_operations))

    def _observe_incremental(self, mass: float, ops: float) -> None:
        self._inc_m = self._blend(self._inc_m, mass)
        self._inc_ops = self._blend(self._inc_ops, ops)
        self._inc_mm = self._blend(self._inc_mm, mass * mass)
        self._inc_mops = self._blend(self._inc_mops, mass * ops)

    def _incremental_fit(self) -> tuple[float, float] | None:
        """(intercept, slope) of the affine incremental law, if observed."""
        if self._inc_m is None:
            return None
        variance = self._inc_mm - self._inc_m**2
        if variance <= 1e-9 * max(1.0, self._inc_m**2):
            # One point (or identical masses): price through the origin.
            return 0.0, self._inc_ops / self._inc_m
        slope = (self._inc_mops - self._inc_m * self._inc_ops) / variance
        # Costs are non-decreasing in mass and non-negative at zero mass;
        # noise-driven violations would invert the incremental/full
        # crossover, so clamp rather than trust them.
        slope = max(slope, 0.0)
        intercept = max(self._inc_ops - slope * self._inc_m, 0.0)
        return intercept, slope

    def estimate(self, strategy: str, dirty_mass: float = 0.0) -> float:
        """Predicted edge operations of running ``strategy`` now."""
        check_strategy(strategy)
        check_non_negative(dirty_mass, "dirty_mass")
        if strategy == "stale":
            return 0.0
        full = self._full_cost if self._full_cost is not None else self._prior_full()
        if strategy == "full":
            return full
        fit = self._incremental_fit()
        if fit is None:
            # Unit-mass assumption, pre-observation.
            return self._prior_full() * dirty_mass
        intercept, slope = fit
        return intercept + slope * dirty_mass


@dataclass(frozen=True)
class RefreshSLO:
    """The target the scheduler steers to, and the budget it steers with.

    Parameters
    ----------
    staleness_target:
        Maximum acceptable staleness bound (L1 score-error units, the
        quantity :meth:`repro.churn.StalenessTracker.bound` maintains).  At
        or below it the scheduler always defers — serving is "fresh
        enough" by declaration.
    refresh_budget_per_tick:
        Edge operations granted to the refresh plane per scheduler tick.
        ``inf`` (default) means refreshes are never budget-limited: the
        scheduler still defers within the target but always repairs an
        SLO breach immediately.
    max_banked_ticks:
        Unused allowance banks up to this many ticks' worth, so a full
        recompute (which typically exceeds one tick's allowance) is
        amortized across deferred ticks rather than permanently
        unaffordable.
    """

    staleness_target: float
    refresh_budget_per_tick: float = math.inf
    max_banked_ticks: float = 10.0

    def __post_init__(self) -> None:
        check_non_negative(self.staleness_target, "staleness_target")
        if not self.refresh_budget_per_tick > 0:
            raise ValueError(
                "refresh_budget_per_tick must be positive, got "
                f"{self.refresh_budget_per_tick}"
            )
        check_positive(self.max_banked_ticks, "max_banked_ticks")

    @property
    def unlimited(self) -> bool:
        return math.isinf(self.refresh_budget_per_tick)


@dataclass(frozen=True)
class RefreshDecision:
    """One scheduling verdict: what to do, why, and what it should cost."""

    action: str  # "defer" | "incremental" | "full"
    # "within_slo" | "cheapest" | "no_baseline" | "residual_only"
    # | "budget_exhausted"
    reason: str
    bound: float
    estimated_cost: float
    within_slo: bool


class RefreshScheduler:
    """Chooses defer / incremental / full per tick against a staleness SLO.

    Drive it with one :meth:`tick` per scheduling round, one
    :meth:`decide` per managed signal, and one :meth:`commit` per refresh
    actually executed (spending the budget with the *observed* cost and
    feeding the cost model's fit).  The scheduler is pure decision state —
    it never touches signals itself, so the same instance can arbitrate
    any number of signals against one shared budget.
    """

    def __init__(self, slo: RefreshSLO, cost_model: RefreshCostModel) -> None:
        self.slo = slo
        self.cost_model = cost_model
        self._banked = 0.0 if not slo.unlimited else math.inf
        self.ticks = 0
        self.decisions: dict[str, int] = {"defer": 0, "incremental": 0, "full": 0}
        self.slo_violations = 0  # deferred while over the target
        self.total_refresh_operations = 0

    # ---------------------------------------------------------------- budget

    @property
    def banked_budget(self) -> float:
        """Edge-operation allowance currently available."""
        return self._banked

    def tick(self) -> None:
        """Accrue one tick's refresh allowance (banked up to the cap)."""
        self.ticks += 1
        if self.slo.unlimited:
            return
        cap = self.slo.refresh_budget_per_tick * self.slo.max_banked_ticks
        self._banked = min(self._banked + self.slo.refresh_budget_per_tick, cap)

    # -------------------------------------------------------------- decisions

    def decide(self, bound: float, dirty_mass: float) -> RefreshDecision:
        """Pick an action for one signal given its current staleness state.

        ``bound`` is the tracker's error bound (∞ when no baseline
        exists); ``dirty_mass`` its pending L1 delta, which prices the
        incremental option.
        """
        if bound <= self.slo.staleness_target:
            return self._record(
                RefreshDecision("defer", "within_slo", bound, 0.0, True)
            )
        full_cost = self.cost_model.estimate("full")
        if math.isinf(bound):
            # No baseline to patch — incremental is undefined, full or bust.
            action, cost, reason = "full", full_cost, "no_baseline"
        elif dirty_mass == 0.0:
            # The breach is entirely abandoned push residual; an incremental
            # patch of a zero delta cannot reduce it — only a re-baseline
            # clears accumulated residual.
            action, cost, reason = "full", full_cost, "residual_only"
        else:
            incremental_cost = self.cost_model.estimate(
                "incremental", dirty_mass
            )
            if incremental_cost <= full_cost:
                action, cost, reason = "incremental", incremental_cost, "cheapest"
            else:
                action, cost, reason = "full", full_cost, "cheapest"
        if cost > self._banked:
            # Explicit degradation: out of refresh allowance, serve stale
            # (stamped by the serving layer) instead of falling behind
            # silently.  The breach is counted; the bank keeps accruing.
            self.slo_violations += 1
            return self._record(
                RefreshDecision("defer", "budget_exhausted", bound, cost, False)
            )
        return self._record(RefreshDecision(action, reason, bound, cost, False))

    def commit(self, decision: RefreshDecision, edge_operations: int) -> None:
        """Charge an executed refresh to the budget at its observed cost."""
        if decision.action == "defer":
            raise ValueError("cannot commit a 'defer' decision")
        self.total_refresh_operations += int(edge_operations)
        if not self.slo.unlimited:
            # Observed cost may overshoot the estimate; the deficit carries
            # (the bank can go negative) so sustained underestimation
            # self-corrects instead of overspending every tick.
            self._banked -= float(edge_operations)

    def _record(self, decision: RefreshDecision) -> RefreshDecision:
        self.decisions[decision.action] += 1
        return decision

    def summary(self) -> dict[str, float | int | dict[str, int]]:
        """Machine-readable digest for benchmark reports."""
        return {
            "ticks": self.ticks,
            "decisions": dict(self.decisions),
            "slo_violations": self.slo_violations,
            "total_refresh_operations": self.total_refresh_operations,
        }
