"""Churn-at-scale: staleness-aware serving under sustained content churn.

The paper defers "time-evolving conditions" to future work.  This package
is that future work's operational core — keeping a diffusion-search
deployment correct-enough and live while documents and nodes churn
continuously (10⁵–10⁶ events), without ever paying for freshness it
cannot afford or hiding staleness it cannot repair:

* :class:`ChurnStream` — deterministic seeded churn workloads
  (document add/move/delete, node join/leave) over the shared event
  clock, composable with :class:`repro.runtime.faults.FaultInjector`;
* :class:`StalenessTracker` — a cheap, sound upper bound on the served
  scores' L1 error from dirty-mass + push-residual accounting, so
  scheduling acts on an *estimate* instead of ground truth;
* :class:`RefreshScheduler` / :class:`RefreshSLO` — per-tick
  defer / incremental / full decisions against a staleness target and an
  edge-operation budget, priced by the fitted :class:`RefreshCostModel`
  shared with :class:`repro.simulation.refresh.SignalRefresher`;
* :class:`SignalChurnState` — the scalar-signal harness the churn
  benchmark and examples drive.

Serving integration lives in :mod:`repro.serving.service`
(``StalenessConfig(slo=...)``): batches consume the network's staleness
bound, refreshes are scheduled rather than size-gated, and responses are
stamped with the bound they were served under.
"""

from repro.churn.scheduler import (
    REFRESH_STRATEGIES,
    RefreshCostModel,
    RefreshDecision,
    RefreshSLO,
    RefreshScheduler,
    check_strategy,
)
from repro.churn.signal import SignalChurnState
from repro.churn.staleness import StalenessTracker
from repro.churn.stream import (
    CHURN_KINDS,
    ChurnEvent,
    ChurnRates,
    ChurnStream,
    apply_churn_event,
)

__all__ = [
    "CHURN_KINDS",
    "ChurnEvent",
    "ChurnRates",
    "ChurnStream",
    "REFRESH_STRATEGIES",
    "RefreshCostModel",
    "RefreshDecision",
    "RefreshSLO",
    "RefreshScheduler",
    "SignalChurnState",
    "StalenessTracker",
    "apply_churn_event",
    "check_strategy",
]
