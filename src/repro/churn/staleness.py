"""Cheap per-signal staleness bounds — act on an estimate, not ground truth.

Under sustained churn the refresh scheduler needs to know *how wrong* the
served scores currently are without paying for the refresh (or an exact
solve) just to find out.  :class:`StalenessTracker` maintains an upper
bound on the L1 error of a served diffusion using only O(1)-per-event
bookkeeping:

* **pending dirty mass** — per-node L1 magnitude of the personalization
  delta accumulated since the last committed refresh.  Entries are *set*,
  not summed: repeated churn on one node coalesces to its current
  distance from the diffused baseline, so the bound (like the refresh
  itself) scales with distinct dirty nodes rather than raw event count.
* **accumulated push residual** — every tolerance-converged incremental
  patch abandons up to its final residual L1 of un-diffused correction
  (:attr:`repro.gsp.push.PushResult.residual_l1`); those leftovers add up
  across patches and only a full refresh clears them.

The bound is sound for column-normalized operators: the PPR filter
``H = α (I − (1−α) A)⁻¹`` satisfies ``‖H‖₁ ≤ 1`` when ``‖A‖₁ ≤ 1``
(a Neumann series of column-substochastic terms), so

    ‖served − exact‖₁ = ‖H·Δ_pending + H·r_accumulated‖₁
                      ≤ Σᵤ ‖Δ_pending[u]‖₁ + Σ residual_l1  =  bound()

— validated bound-vs-true-error on every checkpoint by
``benchmarks/test_bench_churn_slo.py``.
"""

from __future__ import annotations

import math

__all__ = ["StalenessTracker"]


class StalenessTracker:
    """Maintains an L1 staleness bound for one served diffusion signal."""

    def __init__(self) -> None:
        self._pending: dict[int, float] = {}
        self._residual_l1 = 0.0
        # No baseline yet (or the last full run failed to converge): the
        # pending-delta decomposition is undefined and the bound is ∞ until
        # a full refresh commits.
        self._baseline_known = False

    # -------------------------------------------------------------- recording

    def set_pending(self, node: int, delta_l1: float) -> None:
        """Record node ``node``'s current L1 distance from the baseline.

        Idempotent per node — callers recompute the distance after each
        churn event and *overwrite*, so N moves of the same document cost
        one entry, not N.  A zero distance (the node churned back to its
        diffused state) removes the entry.
        """
        if delta_l1 < 0:
            raise ValueError(f"delta_l1 must be >= 0, got {delta_l1}")
        node = int(node)
        if delta_l1 == 0.0:
            self._pending.pop(node, None)
        else:
            self._pending[node] = float(delta_l1)

    def invalidate(self) -> None:
        """Declare the baseline unknown (bound becomes ∞ until a full run)."""
        self._baseline_known = False
        self._pending.clear()

    def record_refresh(self, residual_l1: float, *, full: bool) -> None:
        """Commit a refresh: pending mass is diffused, residual is kept.

        A ``full`` refresh re-baselines — prior accumulated residual is
        replaced by the new run's own leftover; an incremental patch adds
        its leftover on top of what previous patches abandoned.
        """
        if residual_l1 < 0:
            raise ValueError(f"residual_l1 must be >= 0, got {residual_l1}")
        if full:
            self._residual_l1 = float(residual_l1)
            self._baseline_known = True
        else:
            self._residual_l1 += float(residual_l1)
        self._pending.clear()

    # ------------------------------------------------------------- inspection

    @property
    def dirty_count(self) -> int:
        """Distinct nodes with pending (coalesced) churn."""
        return len(self._pending)

    @property
    def dirty_mass(self) -> float:
        """Total pending L1 personalization delta (the incremental work unit)."""
        return float(sum(self._pending.values()))

    @property
    def accumulated_residual_l1(self) -> float:
        """L1 residual abandoned by refreshes since the last full run."""
        return self._residual_l1

    @property
    def baseline_known(self) -> bool:
        return self._baseline_known

    def bound(self) -> float:
        """Upper bound on the served signal's L1 error (∞ without baseline)."""
        if not self._baseline_known:
            return math.inf
        return self.dirty_mass + self._residual_l1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StalenessTracker(dirty={self.dirty_count}, "
            f"mass={self.dirty_mass:.4g}, residual={self._residual_l1:.4g}, "
            f"bound={self.bound():.4g})"
        )
