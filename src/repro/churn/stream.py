"""Deterministic, seeded churn streams over the event clock.

The paper's evaluation is a single frozen snapshot; a live deployment sees
documents and nodes arrive, move and leave continuously.  This module
defines that workload as *data*: a :class:`ChurnStream` generates a
reproducible sequence of :class:`ChurnEvent` s from ``(config, seed)`` —
the churn analogue of :class:`repro.runtime.faults.FaultPlan` — which can
be replayed against any consumer:

* :func:`apply_churn_event` mutates a
  :class:`~repro.core.search.DiffusionSearchNetwork` (documents placed,
  moved, removed; departing nodes take their documents with them), which
  feeds the network's dirty-node/dirty-mass machinery;
* :meth:`ChurnStream.install` schedules the events on an
  :class:`~repro.runtime.events.EventQueue`, so churn interleaves with
  query arrivals and with a :class:`~repro.runtime.faults.FaultInjector`
  on one shared clock (churn draws from its own seeded generator, so
  adding faults never perturbs the churn sequence and vice versa).

Event kinds and their feasibility rules:

* ``doc_add`` — a new document appears on a live node;
* ``doc_move`` — an existing document relocates (``origin`` → ``node``);
* ``doc_delete`` — an existing document disappears;
* ``node_leave`` — a live node departs, taking its documents (the stream
  never empties the overlay: at least one node stays);
* ``node_join`` — a previously departed node returns (empty).

Kinds compete as independent Poisson processes (:class:`ChurnRates`);
infeasible kinds (no documents to move, no departed node to rejoin) are
excluded from the race at that instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from repro.runtime.events import EventQueue, ScheduledEvent
from repro.utils import check_non_negative, check_positive_int, ensure_rng
from repro.utils.rng import RngLike

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.search import DiffusionSearchNetwork

__all__ = [
    "CHURN_KINDS",
    "ChurnEvent",
    "ChurnRates",
    "ChurnStream",
    "apply_churn_event",
]

CHURN_KINDS = ("doc_add", "doc_move", "doc_delete", "node_leave", "node_join")


@dataclass(frozen=True)
class ChurnEvent:
    """One churn occurrence at a simulation time.

    ``node`` is the affected/destination node (``doc_move``: where the
    document lands; ``node_leave``/``node_join``: the node itself);
    ``origin`` is set only for ``doc_move`` (where it came from).
    """

    time: float
    kind: str
    doc_id: str | None = None
    node: int | None = None
    origin: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in CHURN_KINDS:
            raise ValueError(
                f"unknown churn kind {self.kind!r}; expected one of {CHURN_KINDS}"
            )


@dataclass(frozen=True)
class ChurnRates:
    """Per-kind Poisson intensities (events per simulation time unit)."""

    doc_add: float = 0.0
    doc_move: float = 0.0
    doc_delete: float = 0.0
    node_leave: float = 0.0
    node_join: float = 0.0

    def __post_init__(self) -> None:
        for kind in CHURN_KINDS:
            check_non_negative(getattr(self, kind), kind)
        if self.total == 0.0:
            raise ValueError("at least one churn rate must be positive")

    @property
    def total(self) -> float:
        return sum(getattr(self, kind) for kind in CHURN_KINDS)


class ChurnStream:
    """Seeded generator of churn event sequences over a fixed overlay.

    The stream tracks the evolving document placement and live-node set
    *during generation*, so every emitted event is feasible at its time
    (moves reference live documents, joins reference departed nodes, ...).
    Generation is a pure function of the constructor arguments: calling
    :meth:`events` twice, or on two identically-configured streams,
    yields identical sequences.
    """

    def __init__(
        self,
        n_nodes: int,
        rates: ChurnRates,
        *,
        initial_placement: Mapping[str, int] | None = None,
        seed: RngLike = 0,
        doc_prefix: str = "churn-doc-",
    ) -> None:
        check_positive_int(n_nodes, "n_nodes")
        self.n_nodes = int(n_nodes)
        self.rates = rates
        self.initial_placement = dict(initial_placement or {})
        for doc_id, node in self.initial_placement.items():
            if not 0 <= node < self.n_nodes:
                raise ValueError(
                    f"initial placement of {doc_id!r} at node {node} out of "
                    f"range [0, {self.n_nodes})"
                )
        self.seed = seed
        self.doc_prefix = doc_prefix

    # ------------------------------------------------------------- generation

    def events(
        self,
        *,
        horizon: float | None = None,
        n: int | None = None,
    ) -> list[ChurnEvent]:
        """Generate the deterministic event sequence.

        Exactly one of ``horizon`` (events until that time) or ``n`` (that
        many events) must be given.
        """
        if (horizon is None) == (n is None):
            raise ValueError("specify exactly one of horizon= or n=")
        if horizon is not None:
            check_non_negative(horizon, "horizon")
        if n is not None:
            check_non_negative(int(n), "n")
        rng = ensure_rng(self.seed)
        placement = dict(self.initial_placement)
        live = list(range(self.n_nodes))
        departed: list[int] = []
        doc_counter = 0
        now = 0.0
        events: list[ChurnEvent] = []

        while True:
            if n is not None and len(events) >= n:
                break
            kinds, rates = self._feasible(placement, live, departed)
            if not kinds:
                break
            total = float(sum(rates))
            now += float(rng.exponential(1.0 / total))
            if horizon is not None and now > horizon:
                break
            kind = kinds[
                int(rng.choice(len(kinds), p=np.asarray(rates) / total))
            ]
            if kind == "doc_add":
                doc_id = f"{self.doc_prefix}{doc_counter}"
                doc_counter += 1
                node = live[int(rng.integers(len(live)))]
                placement[doc_id] = node
                events.append(ChurnEvent(now, kind, doc_id=doc_id, node=node))
            elif kind == "doc_move":
                docs = list(placement)
                doc_id = docs[int(rng.integers(len(docs)))]
                origin = placement[doc_id]
                candidates = [v for v in live if v != origin] or live
                node = candidates[int(rng.integers(len(candidates)))]
                placement[doc_id] = node
                events.append(
                    ChurnEvent(now, kind, doc_id=doc_id, node=node, origin=origin)
                )
            elif kind == "doc_delete":
                docs = list(placement)
                doc_id = docs[int(rng.integers(len(docs)))]
                node = placement.pop(doc_id)
                events.append(ChurnEvent(now, kind, doc_id=doc_id, node=node))
            elif kind == "node_leave":
                node = live.pop(int(rng.integers(len(live))))
                departed.append(node)
                # The node's documents depart with it; the applier mirrors
                # this, so the event itself carries only the node.
                for doc_id in [d for d, v in placement.items() if v == node]:
                    del placement[doc_id]
                events.append(ChurnEvent(now, kind, node=node))
            else:  # node_join
                node = departed.pop(int(rng.integers(len(departed))))
                live.append(node)
                events.append(ChurnEvent(now, kind, node=node))
        return events

    def _feasible(
        self,
        placement: dict[str, int],
        live: list[int],
        departed: list[int],
    ) -> tuple[list[str], list[float]]:
        """Kinds that can fire now, with their rates (the competing risks)."""
        kinds: list[str] = []
        rates: list[float] = []
        for kind in CHURN_KINDS:
            rate = getattr(self.rates, kind)
            if rate <= 0:
                continue
            if kind in ("doc_move", "doc_delete") and not placement:
                continue
            if kind in ("doc_add", "doc_move") and not live:
                continue
            if kind == "node_leave" and len(live) <= 1:
                continue
            if kind == "node_join" and not departed:
                continue
            kinds.append(kind)
            rates.append(rate)
        return kinds, rates

    # ------------------------------------------------------------ integration

    def install(
        self,
        queue: EventQueue,
        handler: Callable[[ChurnEvent], None],
        *,
        horizon: float | None = None,
        n: int | None = None,
    ) -> list[ScheduledEvent]:
        """Schedule the stream's events on a shared clock.

        Each generated event dispatches ``handler(event)`` at its time.
        Composable with a :class:`~repro.runtime.faults.FaultInjector`
        installed on the same queue (and with query arrivals): all draw
        from independent seeded generators, so their interleaving is a
        deterministic merge by timestamp.
        """
        scheduled: list[ScheduledEvent] = []
        for event in self.events(horizon=horizon, n=n):
            scheduled.append(
                queue.schedule_at(
                    event.time, lambda event=event: handler(event)
                )
            )
        return scheduled


def apply_churn_event(
    network: "DiffusionSearchNetwork",
    event: ChurnEvent,
    *,
    embedding_of: Callable[[str], np.ndarray] | None = None,
) -> None:
    """Replay one churn event against a search network.

    ``embedding_of`` supplies the vector for ``doc_add`` events (a seeded
    deterministic generator keeps replays exact); moves reuse the stored
    embedding.  ``node_join`` is a no-op on the network — the topology is
    fixed and a returning node simply becomes eligible for future
    placements — while ``node_leave`` removes every document homed on the
    departing node, mirroring the stream's own bookkeeping.
    """
    if event.kind == "doc_add":
        if embedding_of is None:
            raise ValueError("doc_add events require an embedding_of callback")
        network.place_document(event.doc_id, embedding_of(event.doc_id), event.node)
    elif event.kind == "doc_move":
        node = network.location_of(event.doc_id)
        vector = np.array(
            network.stores[node].embedding_of(event.doc_id), copy=True
        )
        network.remove_document(event.doc_id)
        network.place_document(event.doc_id, vector, event.node)
    elif event.kind == "doc_delete":
        network.remove_document(event.doc_id)
    elif event.kind == "node_leave":
        for doc_id in list(network.documents_at(event.node)):
            network.remove_document(doc_id)
    # node_join: nothing to mutate on a fixed topology.
