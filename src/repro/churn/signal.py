"""Scalar-signal view of a churn stream, with staleness bookkeeping.

The experiment drivers and the churn benchmark work on the scalar
relevance signal of :class:`repro.simulation.refresh.SignalRefresher`
(one diffusable weight per node) rather than the full embedding matrix —
same mathematics, a fraction of the cost.  :class:`SignalChurnState`
maintains that signal under a :class:`~repro.churn.stream.ChurnStream`:

* each event updates the per-node signal (documents contribute their
  weight at their home node) in O(1);
* each touched node's pending delta vs the *diffused baseline* is pushed
  into a :class:`~repro.churn.staleness.StalenessTracker` — overwritten,
  not accumulated, so repeated churn on one node coalesces exactly like
  the refresh itself does;
* :meth:`commit_refresh` advances the baseline after a refresh and hands
  the push residual to the tracker.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.churn.staleness import StalenessTracker
from repro.churn.stream import ChurnEvent

__all__ = ["SignalChurnState"]


class SignalChurnState:
    """Evolving per-node document-mass signal plus its staleness tracker."""

    def __init__(
        self,
        n_nodes: int,
        *,
        initial_placement: Mapping[str, int] | None = None,
        weight_of: Callable[[str], float] | None = None,
    ) -> None:
        self.n_nodes = int(n_nodes)
        self.weight_of = weight_of or (lambda doc_id: 1.0)
        self.placement: dict[str, int] = dict(initial_placement or {})
        self.signal = np.zeros(self.n_nodes, dtype=np.float64)
        for doc_id, node in self.placement.items():
            self.signal[node] += self.weight_of(doc_id)
        # The baseline is what the served scores were diffused from; until
        # the first commit there is none and the tracker's bound is ∞.
        self.baseline: np.ndarray | None = None
        self.tracker = StalenessTracker()

    # ---------------------------------------------------------------- events

    def apply(self, event: ChurnEvent) -> None:
        """Fold one churn event into the signal and the staleness tracker."""
        touched: list[int] = []
        if event.kind == "doc_add":
            weight = self.weight_of(event.doc_id)
            self.placement[event.doc_id] = event.node
            self.signal[event.node] += weight
            touched = [event.node]
        elif event.kind == "doc_move":
            weight = self.weight_of(event.doc_id)
            origin = self.placement[event.doc_id]
            self.placement[event.doc_id] = event.node
            self.signal[origin] -= weight
            self.signal[event.node] += weight
            touched = [origin, event.node]
        elif event.kind == "doc_delete":
            weight = self.weight_of(event.doc_id)
            node = self.placement.pop(event.doc_id)
            self.signal[node] -= weight
            touched = [node]
        elif event.kind == "node_leave":
            for doc_id in [
                d for d, v in self.placement.items() if v == event.node
            ]:
                self.signal[event.node] -= self.weight_of(doc_id)
                del self.placement[doc_id]
            touched = [event.node]
        # node_join: no signal change.
        if self.baseline is not None:
            for node in touched:
                self.tracker.set_pending(
                    node, abs(float(self.signal[node] - self.baseline[node]))
                )

    # --------------------------------------------------------------- refresh

    def commit_refresh(self, residual_l1: float, *, full: bool) -> None:
        """Advance the baseline to the current signal after a refresh."""
        self.baseline = self.signal.copy()
        self.tracker.record_refresh(residual_l1, full=full)

    @property
    def dirty_mass(self) -> float:
        return self.tracker.dirty_mass

    def bound(self) -> float:
        return self.tracker.bound()
