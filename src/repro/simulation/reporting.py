"""Plain-text and CSV reporting for experiment results.

The benchmark harness prints the same rows/series the paper reports; these
helpers render them as aligned ASCII tables (no plotting dependencies).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.simulation.metrics import AccuracyGrid


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_rows(
    rows: Sequence[Mapping[str, object]], *, title: str | None = None
) -> str:
    """Render dict rows (shared keys become columns)."""
    if not rows:
        return title or "(no rows)"
    headers = list(rows[0].keys())
    return format_table(
        headers, [[row.get(h, "") for h in headers] for row in rows], title=title
    )


def format_accuracy_grid(grid: AccuracyGrid, *, title: str | None = None) -> str:
    """Render one Fig. 3 panel: a row per alpha, a column per distance."""
    headers = ["alpha \\ dist"] + [str(d) for d in range(grid.max_distance + 1)]
    rows = []
    for alpha in grid.alphas:
        rows.append([f"a={alpha:g}"] + [grid.accuracy(alpha, d) for d in range(grid.max_distance + 1)])
    return format_table(headers, rows, title=title)


def sparkline(values: Sequence[float]) -> str:
    """Unicode mini-chart of a series (NaN rendered as a space)."""
    blocks = "▁▂▃▄▅▆▇█"
    chars = []
    for value in values:
        if value != value:
            chars.append(" ")
        else:
            clamped = min(max(value, 0.0), 1.0)
            chars.append(blocks[min(int(clamped * len(blocks)), len(blocks) - 1)])
    return "".join(chars)


def write_csv(
    path: str | Path,
    rows: Sequence[Mapping[str, object]],
) -> None:
    """Write dict rows to CSV (header from the first row's keys)."""
    path = Path(path)
    if not rows:
        path.write_text("")
        return
    headers = list(rows[0].keys())
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=headers)
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def write_json(path: str | Path, payload: object) -> None:
    """Write a JSON report (floats rounded by json defaults)."""
    Path(path).write_text(json.dumps(payload, indent=2, default=str))
