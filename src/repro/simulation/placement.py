"""Document placement over P2P nodes.

The paper distributes documents uniformly (§V-B) and conjectures that
realistic, spatially correlated distributions would aid diffusion; the
community-correlated placement implements that conjecture for the ablation.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.retrieval.vector_store import DocumentStore
from repro.utils import check_positive, check_probability, ensure_rng
from repro.utils.rng import RngLike


def uniform_placement(
    n_documents: int,
    n_nodes: int,
    *,
    seed: RngLike = None,
) -> np.ndarray:
    """Assign each document to a node uniformly at random (paper §V-B)."""
    check_positive(n_documents, "n_documents")
    check_positive(n_nodes, "n_nodes")
    rng = ensure_rng(seed)
    return rng.integers(0, n_nodes, size=n_documents, dtype=np.int64)


def community_correlated_placement(
    doc_clusters: np.ndarray,
    node_communities: np.ndarray,
    *,
    mixing: float = 0.0,
    seed: RngLike = None,
) -> np.ndarray:
    """Place same-cluster documents inside the same graph community.

    Each document cluster is mapped to one community (chosen with probability
    proportional to community size, so small communities are not overloaded);
    a document lands on a uniform node of its cluster's community, except
    with probability ``mixing`` it escapes to a uniform node anywhere.
    Documents with cluster −1 (no topic) are always placed uniformly.
    """
    check_probability(mixing, "mixing")
    rng = ensure_rng(seed)
    doc_clusters = np.asarray(doc_clusters, dtype=np.int64)
    node_communities = np.asarray(node_communities, dtype=np.int64)
    n_nodes = node_communities.shape[0]
    if n_nodes == 0:
        raise ValueError("node_communities is empty")

    community_ids = np.unique(node_communities)
    community_members = {
        int(c): np.flatnonzero(node_communities == c) for c in community_ids
    }
    sizes = np.asarray([community_members[int(c)].size for c in community_ids])
    community_probs = sizes / sizes.sum()

    cluster_ids = np.unique(doc_clusters[doc_clusters >= 0])
    community_of_cluster = {
        int(cluster): int(community_ids[rng.choice(community_ids.size, p=community_probs)])
        for cluster in cluster_ids
    }

    nodes = np.empty(doc_clusters.shape[0], dtype=np.int64)
    for i, cluster in enumerate(doc_clusters):
        if cluster < 0 or rng.random() < mixing:
            nodes[i] = rng.integers(n_nodes)
        else:
            members = community_members[community_of_cluster[int(cluster)]]
            nodes[i] = members[int(rng.integers(members.size))]
    return nodes


def build_stores(
    doc_ids: Sequence[Hashable],
    embeddings: np.ndarray,
    nodes: np.ndarray,
    dim: int,
) -> dict[int, DocumentStore]:
    """Group placed documents into per-node :class:`DocumentStore` objects.

    Builds each store with one bulk insertion (the naive per-document path is
    quadratic in collection size, which matters at M = 10,000).
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    nodes = np.asarray(nodes, dtype=np.int64)
    if len(doc_ids) != embeddings.shape[0] or len(doc_ids) != nodes.shape[0]:
        raise ValueError("doc_ids, embeddings and nodes must be aligned")
    stores: dict[int, DocumentStore] = {}
    order = np.argsort(nodes, kind="stable")
    sorted_nodes = nodes[order]
    sorted_embeddings = embeddings[order]
    boundaries = np.flatnonzero(np.diff(sorted_nodes)) + 1
    starts = [0, *boundaries.tolist()]
    ends = [*boundaries.tolist(), order.shape[0]]
    order_list = order.tolist()
    node_list = sorted_nodes.tolist()
    for lo, hi in zip(starts, ends):
        stores[node_list[lo]] = DocumentStore.from_documents(
            dim,
            [doc_ids[i] for i in order_list[lo:hi]],
            sorted_embeddings[lo:hi],
        )
    return stores
