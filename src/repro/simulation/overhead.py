"""Bandwidth and storage accounting for the advertisement phase.

The paper motivates diffusion against the "fundamental bandwidth and storage
constraints" of distributed indexes (§I) and the storage cost of
document-oriented advertising (§II-A).  This module quantifies the trade-off
for a given topology:

* **diffusion** — every node stores one d-dimensional embedding per neighbor
  plus its own; warm-up traffic is measured by actually running the
  asynchronous protocol (or estimated from the contraction rate).
* **k-hop index advertisement** — the classic document-oriented scheme:
  every node pushes its document index to all nodes within radius k; storage
  grows with the documents in the k-ball, traffic with the ball size.
* **full replication** — the broadcast-index upper bound the paper calls
  "prohibitive" for blockchain-style dissemination.

All figures are bytes, assuming float64 embeddings and ``id_bytes`` per
document identifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log

import numpy as np

from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.metrics import bfs_distances
from repro.utils import check_positive, ensure_rng
from repro.utils.rng import RngLike

FLOAT_BYTES = 8.0


@dataclass(frozen=True)
class OverheadReport:
    """Per-node storage and total advertisement traffic of one scheme."""

    scheme: str
    storage_per_node_bytes: float
    total_traffic_bytes: float

    def as_row(self) -> dict[str, object]:
        return {
            "scheme": self.scheme,
            "storage/node (KiB)": round(self.storage_per_node_bytes / 1024, 1),
            "traffic total (MiB)": round(self.total_traffic_bytes / (1024 * 1024), 2),
        }


def diffusion_overhead(
    adjacency: CompressedAdjacency,
    dim: int,
    *,
    alpha: float = 0.5,
    tol: float = 1e-6,
) -> OverheadReport:
    """Estimated diffusion cost: state per node and warm-up traffic.

    Storage: own personalization + estimate + one cached embedding and
    degree per neighbor.  Traffic: the synchronous-equivalent bound — the
    error contracts by (1−alpha) per round, so
    ``rounds ≈ log(tol) / log(1−alpha)`` rounds of one push per directed
    edge (the coalesced push protocol approaches this; the measured variant
    is :func:`measured_diffusion_overhead`).
    """
    check_positive(dim, "dim")
    mean_degree = float(adjacency.degrees.mean()) if adjacency.n_nodes else 0.0
    storage = FLOAT_BYTES * dim * (2 + mean_degree) + 16.0 * mean_degree
    if alpha >= 1.0:
        rounds = 1
    else:
        rounds = max(1, ceil(log(tol) / log(1.0 - alpha)))
    per_message = FLOAT_BYTES * dim + 16.0
    traffic = rounds * 2.0 * adjacency.n_edges * per_message
    return OverheadReport("diffusion (estimate)", storage, traffic)


def measured_diffusion_overhead(
    adjacency: CompressedAdjacency,
    dim: int,
    *,
    alpha: float = 0.5,
    tol: float = 1e-6,
    seed: RngLike = 0,
) -> OverheadReport:
    """Run the asynchronous protocol and report its actual traffic."""
    from repro.runtime.gossip import AsyncPPRDiffusion

    rng = ensure_rng(seed)
    personalization = rng.standard_normal((adjacency.n_nodes, dim))
    protocol = AsyncPPRDiffusion(
        adjacency, personalization, alpha=alpha, tol=tol, seed=rng
    )
    outcome = protocol.run()
    mean_degree = float(adjacency.degrees.mean())
    storage = FLOAT_BYTES * dim * (2 + mean_degree) + 16.0 * mean_degree
    return OverheadReport("diffusion (measured)", storage, outcome.bytes)


def khop_index_overhead(
    adjacency: CompressedAdjacency,
    *,
    radius: int,
    documents_per_node: float,
    id_bytes: float = 40.0,
    sample_sources: int | None = 100,
    seed: RngLike = 0,
) -> OverheadReport:
    """Document-oriented k-hop advertisement (Crespo & Garcia-Molina style).

    Each node sends its full document-id index to every node within
    ``radius`` hops (relayed hop-by-hop, so traffic counts one copy per
    edge traversal along BFS trees); each node stores the indexes of its
    k-ball.  Ball sizes are measured by (sampled) BFS.
    """
    check_positive(radius, "radius")
    rng = ensure_rng(seed)
    n = adjacency.n_nodes
    sources = (
        np.arange(n)
        if sample_sources is None or sample_sources >= n
        else rng.choice(n, size=sample_sources, replace=False)
    )
    ball_sizes = []
    relay_hops = []
    for source in sources:
        dist = bfs_distances(adjacency, int(source))
        in_ball = (dist > 0) & (dist <= radius)
        ball_sizes.append(int(in_ball.sum()))
        relay_hops.append(int(dist[in_ball].sum()))
    mean_ball = float(np.mean(ball_sizes))
    mean_relays = float(np.mean(relay_hops))
    index_bytes = documents_per_node * id_bytes
    storage = mean_ball * index_bytes
    traffic = n * mean_relays * index_bytes
    return OverheadReport(f"{radius}-hop index", storage, traffic)


def full_replication_overhead(
    adjacency: CompressedAdjacency,
    *,
    documents_per_node: float,
    id_bytes: float = 40.0,
) -> OverheadReport:
    """Broadcast the global index to everyone (the blockchain-style bound)."""
    n = adjacency.n_nodes
    index_bytes = documents_per_node * id_bytes
    storage = (n - 1) * index_bytes
    # Efficient gossip broadcast: each node's index crosses every edge once.
    traffic = n * index_bytes * 2.0 * adjacency.n_edges / max(n, 1)
    return OverheadReport("full replication", storage, traffic)


def overhead_comparison(
    adjacency: CompressedAdjacency,
    *,
    dim: int = 300,
    documents_per_node: float = 2.5,
    alpha: float = 0.5,
    radii: tuple[int, ...] = (1, 2),
    measure_diffusion: bool = False,
    seed: RngLike = 0,
) -> list[dict[str, object]]:
    """Tabulate the schemes side by side for one topology."""
    reports = [diffusion_overhead(adjacency, dim, alpha=alpha)]
    if measure_diffusion:
        reports.append(
            measured_diffusion_overhead(adjacency, dim, alpha=alpha, seed=seed)
        )
    for radius in radii:
        reports.append(
            khop_index_overhead(
                adjacency,
                radius=radius,
                documents_per_node=documents_per_node,
                seed=seed,
            )
        )
    reports.append(
        full_replication_overhead(adjacency, documents_per_node=documents_per_node)
    )
    return [report.as_row() for report in reports]
