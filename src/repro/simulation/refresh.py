"""Re-diffusion strategies for time-evolving content (churn workloads).

The paper defers "time-evolving conditions" to future work; operationally
the question is *how* to restore fresh routing hints after documents move.
This module compares the three answers on the scalar relevance signal used
by the experiment drivers (see :mod:`repro.simulation.runner`):

* ``stale`` — do nothing; keep routing on yesterday's scores (free, lossy).
* ``full`` — re-diffuse the whole signal from scratch (exact, O(network)).
* ``incremental`` — forward-push only the *delta* signal and patch the old
  scores (exact to push tolerance, O(change)); the strategy enabled by
  :class:`repro.core.backends.PushDiffusionBackend`.

``full`` and ``incremental`` agree to within tolerance, so the comparison
is about *cost* (push/edge-operation counts), which the benchmark suite
records as churn grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.churn.scheduler import (
    REFRESH_STRATEGIES,
    RefreshCostModel,
    check_strategy,
)
from repro.gsp.push import forward_push, push_refresh

__all__ = [
    "REFRESH_STRATEGIES",
    "RefreshCostModel",
    "RefreshOutcome",
    "SignalRefresher",
    "check_strategy",
]


@dataclass(frozen=True)
class RefreshOutcome:
    """Refreshed scores plus the work the strategy performed.

    ``residual_l1`` is the L1 mass the push left un-diffused (0 for
    ``stale``); staleness trackers add it to their error bound after an
    incremental refresh (see :class:`repro.churn.StalenessTracker`).
    """

    strategy: str
    scores: np.ndarray
    sweeps: int
    pushes: int
    edge_operations: int
    residual_l1: float = 0.0


class SignalRefresher:
    """Maintains diffused scores for a drifting per-node relevance signal.

    Built once per (operator, alpha); :meth:`cold_start` diffuses the
    initial signal, then :meth:`refresh` applies one of the
    :data:`REFRESH_STRATEGIES` to follow a changed signal.  All diffusion
    runs through the forward-push kernel so full and incremental costs are
    measured in the same unit (edge operations).
    """

    def __init__(
        self,
        operator: sp.spmatrix,
        alpha: float,
        *,
        tol: float = 1e-8,
        max_sweeps: int = 10_000,
    ) -> None:
        # Column layout once, up front: forward_push scatters along columns,
        # and converting per call would put O(n + m) back into every
        # supposedly O(change) refresh.
        self.operator = operator.tocsc()
        self.alpha = float(alpha)
        self.tol = float(tol)
        self.max_sweeps = int(max_sweeps)
        self.cost_model = RefreshCostModel(
            nnz=self.operator.nnz, alpha=self.alpha, tol=self.tol
        )

    def cold_start(self, signal: np.ndarray) -> RefreshOutcome:
        """Diffuse ``signal`` from scratch (the initial warm-up)."""
        result = forward_push(
            self.operator,
            signal,
            alpha=self.alpha,
            tol=self.tol,
            max_sweeps=self.max_sweeps,
        )
        self.cost_model.observe(
            "full",
            float(np.abs(np.asarray(signal, dtype=np.float64)).sum()),
            result.edge_operations,
        )
        return RefreshOutcome(
            strategy="full",
            scores=result.estimate,
            sweeps=result.sweeps,
            pushes=result.pushes,
            edge_operations=result.edge_operations,
            residual_l1=result.residual_l1,
        )

    def cost_estimate(self, strategy: str, dirty_mass: float = 0.0) -> float:
        """Predicted edge operations of ``refresh(strategy, ...)`` now.

        ``dirty_mass`` is the L1 norm of the pending signal delta (what a
        :class:`repro.churn.StalenessTracker` maintains).  Fitted from this
        refresher's own observed runs via :class:`RefreshCostModel` — the
        same pricing the SLO scheduler consumes, so scheduler decisions and
        refresher accounting can never drift apart.
        """
        return self.cost_model.estimate(strategy, dirty_mass)

    def refresh(
        self,
        strategy: str,
        old_scores: np.ndarray,
        old_signal: np.ndarray,
        new_signal: np.ndarray,
    ) -> RefreshOutcome:
        """Follow the signal change ``old_signal → new_signal``.

        ``old_scores`` must be the diffusion of ``old_signal`` (e.g. a prior
        :meth:`cold_start`/:meth:`refresh` result).
        """
        check_strategy(strategy)
        if strategy == "stale":
            return RefreshOutcome(
                strategy=strategy,
                scores=old_scores,
                sweeps=0,
                pushes=0,
                edge_operations=0,
            )
        if strategy == "full":
            return self.cold_start(new_signal)
        delta = np.asarray(new_signal, dtype=np.float64) - np.asarray(
            old_signal, dtype=np.float64
        )
        patched, result = push_refresh(
            self.operator,
            old_scores,
            delta,
            alpha=self.alpha,
            tol=self.tol,
            max_sweeps=self.max_sweeps,
        )
        self.cost_model.observe(
            "incremental", float(np.abs(delta).sum()), result.edge_operations
        )
        return RefreshOutcome(
            strategy=strategy,
            scores=patched,
            sweeps=result.sweeps,
            pushes=result.pushes,
            edge_operations=result.edge_operations,
            residual_l1=result.residual_l1,
        )
