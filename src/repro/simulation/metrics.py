"""Metric aggregation for the accuracy and hop-count experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class AccuracyGrid:
    """Hit accuracy indexed by (teleport alpha, query–gold distance).

    Mirrors one Fig. 3 panel: one curve per alpha over distances 0..max.
    """

    alphas: tuple[float, ...]
    max_distance: int
    successes: dict[tuple[float, int], int] = field(default_factory=dict)
    samples: dict[tuple[float, int], int] = field(default_factory=dict)

    def record(self, alpha: float, distance: int, success: bool) -> None:
        key = (float(alpha), int(distance))
        self.samples[key] = self.samples.get(key, 0) + 1
        if success:
            self.successes[key] = self.successes.get(key, 0) + 1

    def accuracy(self, alpha: float, distance: int) -> float:
        """Hit rate for one cell; NaN when the cell has no samples."""
        key = (float(alpha), int(distance))
        n = self.samples.get(key, 0)
        if n == 0:
            return float("nan")
        return self.successes.get(key, 0) / n

    def sample_count(self, alpha: float, distance: int) -> int:
        return self.samples.get((float(alpha), int(distance)), 0)

    def series(self, alpha: float) -> list[float]:
        """The accuracy curve for one alpha over distances 0..max_distance."""
        return [self.accuracy(alpha, d) for d in range(self.max_distance + 1)]

    def as_rows(self) -> list[dict[str, float]]:
        """Flat rows (one per alpha/distance cell) for CSV export."""
        rows = []
        for alpha in self.alphas:
            for distance in range(self.max_distance + 1):
                rows.append(
                    {
                        "alpha": alpha,
                        "distance": distance,
                        "accuracy": self.accuracy(alpha, distance),
                        "samples": self.sample_count(alpha, distance),
                    }
                )
        return rows

    def merge(self, other: "AccuracyGrid") -> None:
        """Fold another grid's counts into this one (parallel sharding)."""
        if other.alphas != self.alphas or other.max_distance != self.max_distance:
            raise ValueError("grids have different shapes")
        for key, count in other.samples.items():
            self.samples[key] = self.samples.get(key, 0) + count
        for key, count in other.successes.items():
            self.successes[key] = self.successes.get(key, 0) + count


@dataclass(frozen=True)
class HopStatistics:
    """One Table I row: success rate and hop distribution of successes."""

    n_documents: int
    successes: int
    samples: int
    median_hops: float
    mean_hops: float
    std_hops: float

    @property
    def success_rate(self) -> float:
        return self.successes / self.samples if self.samples else float("nan")

    def as_row(self) -> dict[str, object]:
        return {
            "M documents": self.n_documents,
            "success rate": f"{self.successes} / {self.samples}",
            "median hops": self.median_hops,
            "mean hops": round(self.mean_hops, 2),
            "std hops": round(self.std_hops, 2),
        }


def summarize_hops(
    n_documents: int, hops_of_successes: list[int], total_samples: int
) -> HopStatistics:
    """Aggregate per-query hop counts into a :class:`HopStatistics` row.

    ``hops_of_successes`` holds, for each successful query, the hop index at
    which the gold document's node was reached (paper §V-D).
    """
    if len(hops_of_successes) > total_samples:
        raise ValueError("more successes than samples")
    if hops_of_successes:
        array = np.asarray(hops_of_successes, dtype=np.float64)
        median = float(np.median(array))
        mean = float(array.mean())
        std = float(array.std(ddof=0))
    else:
        median = mean = std = float("nan")
    return HopStatistics(
        n_documents=n_documents,
        successes=len(hops_of_successes),
        samples=total_samples,
        median_hops=median,
        mean_hops=mean,
        std_hops=std,
    )
