"""Experiment harness: the simulation of paper Fig. 2.

Generate documents and queries from the embedding space, distribute documents
over the graph, diffuse node embeddings, then forward queries and measure hit
accuracy (Fig. 3) and hop counts (Table I).
"""

from repro.simulation.scenario import AccuracyScenario, HopCountScenario
from repro.simulation.workload import RetrievalWorkload, build_workload
from repro.simulation.placement import (
    build_stores,
    community_correlated_placement,
    uniform_placement,
)
from repro.simulation.metrics import AccuracyGrid, HopStatistics, summarize_hops
from repro.simulation.runner import (
    IterationSampler,
    run_accuracy_experiment,
    run_hop_count_experiment,
)
from repro.simulation.refresh import (
    REFRESH_STRATEGIES,
    RefreshCostModel,
    RefreshOutcome,
    SignalRefresher,
    check_strategy,
)
from repro.simulation.reporting import format_table, format_accuracy_grid, write_csv

__all__ = [
    "AccuracyScenario",
    "HopCountScenario",
    "RetrievalWorkload",
    "build_workload",
    "uniform_placement",
    "community_correlated_placement",
    "build_stores",
    "AccuracyGrid",
    "HopStatistics",
    "summarize_hops",
    "IterationSampler",
    "run_accuracy_experiment",
    "run_hop_count_experiment",
    "REFRESH_STRATEGIES",
    "RefreshCostModel",
    "RefreshOutcome",
    "SignalRefresher",
    "check_strategy",
    "format_table",
    "format_accuracy_grid",
    "write_csv",
]
