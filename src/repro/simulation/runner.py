"""Experiment drivers implementing the simulation of paper Fig. 2.

Performance note: the drivers exploit the linearity of the diffusion.  The
walk only compares ``e_q · e_v`` across candidate hops, and ``E = H E0``, so
diffusing the *scalar* per-node signal ``x0 = E0 e_q`` yields exactly those
scores (``s = H x0 = E e_q``) at 1/dim of the cost of diffusing the full
embedding matrix.  ``tests/integration`` verifies the equivalence against the
full-matrix pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.batch import run_queries
from repro.core.engine import WalkConfig, run_query
from repro.core.forwarding import ForwardingPolicy, PrecomputedScorePolicy
from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.communities import label_propagation_communities
from repro.graphs.metrics import bfs_distances
from repro.gsp.filters import (
    SPARSE_DEFAULT_EPSILON,
    PersonalizedPageRank,
    SparsePersonalizedPageRank,
)
from repro.gsp.normalization import transition_matrix
from repro.retrieval.vector_store import DocumentStore
from repro.simulation.metrics import AccuracyGrid, HopStatistics, summarize_hops
from repro.simulation.placement import (
    build_stores,
    community_correlated_placement,
    uniform_placement,
)
from repro.simulation.scenario import AccuracyScenario, HopCountScenario
from repro.simulation.workload import RetrievalWorkload
from repro.utils.rng import spawn_rngs

PolicyFactory = Callable[[np.ndarray, CompressedAdjacency], ForwardingPolicy]


def _default_policy_factory(
    scores: np.ndarray, adjacency: CompressedAdjacency
) -> ForwardingPolicy:
    return PrecomputedScorePolicy(scores)


@dataclass
class IterationData:
    """One simulation iteration: a placed document set plus its query."""

    query_word: str
    gold_word: str
    query_embedding: np.ndarray
    gold_node: int
    stores: dict[int, DocumentStore]
    relevance_signal: np.ndarray  # x0[u] = e0_u · e_q before diffusion


class IterationSampler:
    """Draws simulation iterations: query, gold + irrelevant docs, placement.

    Reused across iterations so the normalized transition matrix (and any
    community structure for correlated placement) is computed once per graph.
    """

    def __init__(
        self,
        adjacency: CompressedAdjacency,
        workload: RetrievalWorkload,
        *,
        weighting: str = "sum",
        placement: str = "uniform",
        communities: np.ndarray | None = None,
        correlation_mixing: float = 0.0,
        community_seed: int = 0,
    ) -> None:
        if weighting not in ("sum", "mean", "sqrt", "l2"):
            raise ValueError(f"unknown weighting {weighting!r}")
        if placement not in ("uniform", "correlated"):
            raise ValueError(f"unknown placement {placement!r}")
        self.adjacency = adjacency
        self.workload = workload
        self.model = workload.model
        self.dim = self.model.dim
        self.weighting = weighting
        self.placement = placement
        self.correlation_mixing = float(correlation_mixing)
        self.operator = transition_matrix(adjacency, "column")
        self._filters: dict[float, PersonalizedPageRank] = {}
        self._multi_filters: dict[tuple, PersonalizedPageRank] = {}
        self._sparse_filters: dict[tuple, SparsePersonalizedPageRank] = {}
        if placement == "correlated":
            if communities is None:
                communities = label_propagation_communities(
                    adjacency, seed=community_seed
                )
            self.communities = np.asarray(communities, dtype=np.int64)
            cluster_of = self.model.metadata.get("cluster_of")
            if cluster_of is None:
                raise ValueError(
                    "correlated placement needs the embedding model's "
                    "'cluster_of' metadata (synthetic models provide it)"
                )
            self._cluster_of = np.asarray(cluster_of, dtype=np.int64)
            self._word_index = {w: i for i, w in enumerate(self.model.words)}
        else:
            self.communities = None

    # ----------------------------------------------------------------- sample

    def sample(self, n_documents: int, rng: np.random.Generator) -> IterationData:
        """Draw one iteration: 1 gold + (M−1) irrelevant docs, placed."""
        query_word, gold_word = self.workload.sample_case(rng)
        irrelevant = self.workload.sample_irrelevant(rng, n_documents - 1)
        doc_words = [gold_word] + irrelevant
        doc_embeddings = self.model.vectors_for(doc_words)

        if self.placement == "uniform":
            nodes = uniform_placement(
                len(doc_words), self.adjacency.n_nodes, seed=rng
            )
        else:
            clusters = np.asarray(
                [self._cluster_of[self._word_index[w]] for w in doc_words]
            )
            nodes = community_correlated_placement(
                clusters,
                self.communities,
                mixing=self.correlation_mixing,
                seed=rng,
            )

        stores = build_stores(doc_words, doc_embeddings, nodes, self.dim)
        query_embedding = self.model.vector(query_word)
        signal = self._relevance_signal(doc_embeddings, nodes, query_embedding)
        return IterationData(
            query_word=query_word,
            gold_word=gold_word,
            query_embedding=query_embedding,
            gold_node=int(nodes[0]),
            stores=stores,
            relevance_signal=signal,
        )

    def _relevance_signal(
        self,
        doc_embeddings: np.ndarray,
        nodes: np.ndarray,
        query_embedding: np.ndarray,
    ) -> np.ndarray:
        """Per-node ``e0_u · e_q`` under the configured weighting."""
        n = self.adjacency.n_nodes
        counts = np.bincount(nodes, minlength=n).astype(np.float64)
        occupied = counts > 0
        if self.weighting == "l2":
            # The normalized sum needs the actual per-node vector norms.
            sums = np.zeros((n, self.dim), dtype=np.float64)
            np.add.at(sums, nodes, doc_embeddings)
            norms = np.linalg.norm(sums, axis=1)
            scores = sums @ query_embedding
            with np.errstate(invalid="ignore", divide="ignore"):
                scores = np.where(norms > 0, scores / norms, 0.0)
            return scores
        doc_scores = doc_embeddings @ query_embedding
        signal = np.bincount(nodes, weights=doc_scores, minlength=n)
        if self.weighting == "mean":
            signal[occupied] /= counts[occupied]
        elif self.weighting == "sqrt":
            signal[occupied] /= np.sqrt(counts[occupied])
        return signal

    # ---------------------------------------------------------------- diffuse

    def diffuse_scores(
        self, signal: np.ndarray, alpha: float, *, tol: float = 1e-10
    ) -> np.ndarray:
        """PPR-diffuse the scalar relevance signal (eq. 6, one column)."""
        ppr = self._filters.get(alpha)
        if ppr is None:
            ppr = self._filters[alpha] = PersonalizedPageRank(alpha, tol=tol)
        return ppr.apply(self.operator, signal)

    def diffuse_scores_sparse(
        self,
        signal: np.ndarray,
        alpha: float,
        *,
        epsilon: float = SPARSE_DEFAULT_EPSILON,
        tol: float = 1e-10,
    ):
        """Sparse PPR-diffusion of the scalar relevance signal: CSR out.

        The sparse-first counterpart of :meth:`diffuse_scores` for
        benchmark-scale graphs: the (mostly zero) relevance signal is
        diffused with :class:`SparsePersonalizedPageRank`, so cost scales
        with the diffused support instead of ``n_nodes``.  Returns an
        ``(n, 1)`` CSR column directly consumable by
        :class:`repro.core.forwarding.PrecomputedScorePolicy`.
        """
        key = (float(alpha), float(epsilon), float(tol))
        ppr = self._sparse_filters.get(key)
        if ppr is None:
            ppr = self._sparse_filters[key] = SparsePersonalizedPageRank(
                alpha, epsilon=epsilon, tol=tol
            )
        signal = np.asarray(signal, dtype=np.float64)
        return ppr.apply(self.operator, signal.reshape(-1, 1))

    def diffuse_scores_multi(
        self,
        signal: np.ndarray,
        alphas: Sequence[float],
        *,
        tol: float = 1e-10,
        method: str = "solve",
    ) -> np.ndarray:
        """Diffuse one scalar signal under several alphas in a single pass.

        Stacks the signal into one column per alpha and runs the whole stack
        through a single multi-alpha filter call instead of one
        :class:`PersonalizedPageRank` application per alpha.  The default
        ``method="solve"`` reuses one cached sparse LU factorization per
        alpha across iterations (the operator never changes within a
        sampler), turning the per-iteration cost into a handful of
        triangular solves — an order of magnitude cheaper than re-running
        the power iteration, and *exact*, so columns agree with
        ``diffuse_scores(signal, alphas[c])`` to within its ``tol``.  With
        ``method="power"`` every column instead freezes at its own
        convergence point and is bit-identical to the scalar path.
        """
        alphas = tuple(float(a) for a in alphas)
        if not alphas:
            raise ValueError("alphas must be non-empty")
        signal = np.asarray(signal, dtype=np.float64)
        if len(alphas) == 1 and method == "power":
            return self.diffuse_scores(signal, alphas[0], tol=tol)[:, None]
        key = (alphas, method, float(tol))
        ppr = self._multi_filters.get(key)
        if ppr is None:
            ppr = self._multi_filters[key] = PersonalizedPageRank(
                alphas, tol=tol, method=method
            )
        stacked = np.repeat(signal[:, None], len(alphas), axis=1)
        return ppr.apply(self.operator, stacked)


def sample_start_nodes(
    distances: np.ndarray,
    max_distance: int,
    rng: np.random.Generator,
) -> dict[int, int]:
    """One querying node per radius 0..max_distance (paper §V-C).

    Radii with no node at that exact distance are omitted (e.g. beyond the
    graph's eccentricity from the gold node).
    """
    starts: dict[int, int] = {}
    for radius in range(max_distance + 1):
        candidates = np.flatnonzero(distances == radius)
        if candidates.size:
            starts[radius] = int(candidates[int(rng.integers(candidates.size))])
    return starts


def _check_engine(engine: str) -> None:
    if engine not in ("batch", "scalar"):
        raise ValueError(f"engine must be 'batch' or 'scalar', got {engine!r}")


def run_accuracy_experiment(
    adjacency: CompressedAdjacency,
    workload: RetrievalWorkload,
    scenario: AccuracyScenario,
    *,
    communities: np.ndarray | None = None,
    policy_factory: PolicyFactory = _default_policy_factory,
    engine: str = "batch",
) -> AccuracyGrid:
    """Reproduce one Fig. 3 panel.

    Per iteration: place 1 gold + (M−1) irrelevant documents, compute the
    diffused relevance scores for every alpha in one multi-column pass,
    sample one querying node per radius from the gold node, and launch the
    whole (alpha, radius) grid of TTL-bounded walks as a single batch through
    :func:`repro.core.batch.run_queries`.  A query succeeds when the gold
    document is its final top-1.

    ``engine="scalar"`` retains the original one-walk-at-a-time loop (the
    reference implementation benchmarked against the batch path).  The walk
    engines themselves are bit-identical for deterministic policies; the
    batch path additionally swaps the per-alpha power-iteration diffusion
    for the exact multi-column solve, whose scores agree with the scalar
    path's to within its power tolerance (~1e-10) — so grids can in
    principle differ where two neighbors' diffused scores tie closer than
    that truncation error (not observed in practice; the equivalence tests
    sweep both engines).
    """
    _check_engine(engine)
    sampler = IterationSampler(
        adjacency,
        workload,
        weighting=scenario.weighting,
        placement=scenario.placement,
        communities=communities,
        correlation_mixing=scenario.correlation_mixing,
    )
    grid = AccuracyGrid(tuple(scenario.alphas), scenario.max_distance)
    config = WalkConfig(ttl=scenario.ttl, fanout=scenario.fanout, k=scenario.k)
    rngs = spawn_rngs(scenario.seed, scenario.iterations)

    for rng in rngs:
        data = sampler.sample(scenario.n_documents, rng)
        distances = bfs_distances(adjacency, data.gold_node)
        starts = sample_start_nodes(distances, scenario.max_distance, rng)
        if engine == "scalar":
            for alpha in scenario.alphas:
                scores = sampler.diffuse_scores(data.relevance_signal, alpha)
                policy = policy_factory(scores, adjacency)
                for radius, start in starts.items():
                    result = run_query(
                        adjacency,
                        data.stores,
                        policy,
                        data.query_embedding,
                        start,
                        config,
                        query_id=data.query_word,
                        seed=rng,
                    )
                    grid.record(alpha, radius, result.found(data.gold_word, top=1))
            continue
        score_rows = np.ascontiguousarray(
            sampler.diffuse_scores_multi(data.relevance_signal, scenario.alphas).T
        )
        cells: list[tuple[float, int]] = []
        batch_policies: list[ForwardingPolicy] = []
        batch_starts: list[int] = []
        for j, alpha in enumerate(scenario.alphas):
            policy = policy_factory(score_rows[j], adjacency)
            for radius, start in starts.items():
                cells.append((alpha, radius))
                batch_policies.append(policy)
                batch_starts.append(start)
        results = run_queries(
            adjacency,
            data.stores,
            batch_policies,
            data.query_embedding,
            batch_starts,
            config,
            query_ids=data.query_word,
            seed=rng,
        )
        for (alpha, radius), result in zip(cells, results):
            grid.record(alpha, radius, result.found(data.gold_word, top=1))
    return grid


def run_hop_count_experiment(
    adjacency: CompressedAdjacency,
    workload: RetrievalWorkload,
    scenario: HopCountScenario,
    *,
    communities: np.ndarray | None = None,
    policy_factory: PolicyFactory = _default_policy_factory,
    engine: str = "batch",
) -> HopStatistics:
    """Reproduce one Table I row.

    Per iteration: place 1 gold + (M−1) irrelevant documents, then launch
    all ``queries_per_iteration`` queries from uniformly sampled nodes as
    one batch; record the hop at which successful queries reached the gold
    document.  ``engine="scalar"`` retains the original per-walk loop.
    """
    _check_engine(engine)
    sampler = IterationSampler(
        adjacency,
        workload,
        weighting=scenario.weighting,
        placement=scenario.placement,
        communities=communities,
        correlation_mixing=scenario.correlation_mixing,
    )
    config = WalkConfig(ttl=scenario.ttl, fanout=scenario.fanout, k=scenario.k)
    rngs = spawn_rngs(scenario.seed, scenario.iterations)

    hops_of_successes: list[int] = []
    total = 0
    for rng in rngs:
        data = sampler.sample(scenario.n_documents, rng)
        scores = sampler.diffuse_scores(data.relevance_signal, scenario.alpha)
        policy = policy_factory(scores, adjacency)
        starts = rng.integers(
            0, adjacency.n_nodes, size=scenario.queries_per_iteration
        )
        if engine == "scalar":
            results = [
                run_query(
                    adjacency,
                    data.stores,
                    policy,
                    data.query_embedding,
                    int(start),
                    config,
                    query_id=data.query_word,
                    seed=rng,
                )
                for start in starts
            ]
        else:
            results = run_queries(
                adjacency,
                data.stores,
                policy,
                data.query_embedding,
                starts,
                config,
                query_ids=data.query_word,
                seed=rng,
            )
        for result in results:
            total += 1
            if result.found(data.gold_word, top=1):
                hops = result.hops_to(data.gold_word)
                assert hops is not None
                hops_of_successes.append(hops)
    return summarize_hops(scenario.n_documents, hops_of_successes, total)
