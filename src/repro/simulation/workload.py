"""Query/document workload construction (paper §V-B).

"We generate queries and documents from the Glove dataset using 1000 random
words as queries and their nearest neighbors as gold documents, provided that
their cosine similarity is over 0.6 and the two sets do not overlap.  The
remaining words are treated as a pool of irrelevant documents."

Also provides the open-loop arrival process (:func:`poisson_arrival_times`)
the online-serving layer uses to drive query streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.embeddings.model import WordEmbeddingModel
from repro.utils import check_positive, check_probability, ensure_rng
from repro.utils.rng import RngLike


@dataclass
class RetrievalWorkload:
    """Queries with their gold documents plus the irrelevant-document pool."""

    model: WordEmbeddingModel
    queries: list[str]
    gold_of: dict[str, list[str]]
    irrelevant_pool: list[str]
    threshold: float

    def __post_init__(self) -> None:
        query_set = set(self.queries)
        gold_set = {g for golds in self.gold_of.values() for g in golds}
        if query_set & gold_set:
            raise ValueError("query and gold sets overlap")
        pool_set = set(self.irrelevant_pool)
        if pool_set & query_set or pool_set & gold_set:
            raise ValueError("irrelevant pool overlaps queries or golds")

    # ---------------------------------------------------------------- access

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    def query_embedding(self, query: str) -> np.ndarray:
        return self.model.vector(query)

    def sample_case(self, rng: np.random.Generator) -> tuple[str, str]:
        """Draw a (query word, one of its gold documents) pair."""
        query = self.queries[int(rng.integers(len(self.queries)))]
        golds = self.gold_of[query]
        gold = golds[int(rng.integers(len(golds)))]
        return query, gold

    def sample_irrelevant(
        self,
        rng: np.random.Generator,
        count: int,
        *,
        exclude: set[str] | None = None,
    ) -> list[str]:
        """Draw ``count`` distinct irrelevant documents from the pool."""
        pool = self.irrelevant_pool
        if exclude:
            pool = [w for w in pool if w not in exclude]
        if count > len(pool):
            raise ValueError(
                f"requested {count} irrelevant documents but the pool has "
                f"{len(pool)}; enlarge the vocabulary"
            )
        idx = rng.choice(len(pool), size=count, replace=False)
        return [pool[int(i)] for i in idx]


def build_workload(
    model: WordEmbeddingModel,
    *,
    n_queries: int = 1000,
    threshold: float = 0.6,
    seed: RngLike = None,
    max_candidates: int | None = None,
) -> RetrievalWorkload:
    """Construct the paper's workload from an embedding model.

    Random words are accepted as queries when they have at least one neighbor
    above the cosine ``threshold`` that is not itself a query; those neighbors
    become the query's gold documents.  Queries and golds are kept disjoint
    ("the two sets do not overlap"); every remaining word lands in the
    irrelevant pool.
    """
    check_positive(n_queries, "n_queries")
    check_probability(threshold, "threshold", inclusive=False)
    rng = ensure_rng(seed)

    n_words = len(model)
    order = rng.permutation(n_words)
    if max_candidates is not None:
        order = order[:max_candidates]

    queries: list[str] = []
    gold_of: dict[str, list[str]] = {}
    query_set: set[str] = set()
    gold_set: set[str] = set()

    for idx in order:
        if len(queries) >= n_queries:
            break
        word = model.word_at(int(idx))
        if word in gold_set or word in query_set:
            continue
        neighbors = [
            neighbor
            for neighbor, _ in model.neighbors_above(word, threshold)
            if neighbor not in query_set
        ]
        if not neighbors:
            continue
        queries.append(word)
        query_set.add(word)
        gold_of[word] = neighbors
        gold_set.update(neighbors)

    if not queries:
        raise ValueError(
            "no query words have neighbors above the threshold; lower the "
            "threshold or raise the embedding model's intra-cluster cosine"
        )

    irrelevant_pool = [
        word
        for word in model.words
        if word not in query_set and word not in gold_set
    ]
    return RetrievalWorkload(
        model=model,
        queries=queries,
        gold_of=gold_of,
        irrelevant_pool=irrelevant_pool,
        threshold=threshold,
    )


def poisson_arrival_times(
    rate: float,
    *,
    horizon: float | None = None,
    n: int | None = None,
    seed: RngLike = None,
) -> np.ndarray:
    """Arrival timestamps of a homogeneous Poisson process of intensity ``rate``.

    Open-loop by construction: arrivals are independent of service state, so
    an overloaded server sees the queue grow rather than the offered load
    back off — the regime admission control exists for.

    Exactly one of ``horizon`` (generate until that time) or ``n`` (generate
    that many arrivals) must be given.  Returns a sorted float array of
    times, starting after 0.
    """
    check_positive(rate, "rate")
    if (horizon is None) == (n is None):
        raise ValueError("specify exactly one of horizon= or n=")
    rng = ensure_rng(seed)
    if n is not None:
        check_positive(n, "n")
        return np.cumsum(rng.exponential(1.0 / rate, size=int(n)))
    check_positive(horizon, "horizon")
    times: list[np.ndarray] = []
    total = 0.0
    # Draw in expected-size chunks until the horizon is crossed.
    chunk = max(16, int(rate * horizon * 1.2) + 1)
    while total <= horizon:
        gaps = rng.exponential(1.0 / rate, size=chunk)
        block = total + np.cumsum(gaps)
        times.append(block)
        total = float(block[-1])
    merged = np.concatenate(times)
    return merged[merged <= horizon]
