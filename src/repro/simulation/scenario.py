"""Scenario configurations for the paper's two experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils import check_positive, check_probability


@dataclass(frozen=True)
class AccuracyScenario:
    """Configuration of the hit-accuracy experiment (paper §V-C, Fig. 3).

    One scenario covers one document count ``n_documents`` (a Fig. 3 panel);
    accuracy is measured at every query–gold distance ``0..max_distance`` and
    every teleport probability in ``alphas``, with ``iterations`` independent
    document placements.
    """

    n_documents: int
    alphas: tuple[float, ...] = (0.1, 0.5, 0.9)
    max_distance: int = 8
    ttl: int = 50
    k: int = 1
    fanout: int = 1
    iterations: int = 100
    weighting: str = "sum"
    placement: str = "uniform"
    correlation_mixing: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive(self.n_documents, "n_documents")
        check_positive(self.ttl, "ttl")
        check_positive(self.k, "k")
        check_positive(self.fanout, "fanout")
        check_positive(self.iterations, "iterations")
        if self.max_distance < 0:
            raise ValueError("max_distance must be >= 0")
        if not self.alphas:
            raise ValueError("alphas must be non-empty")
        for alpha in self.alphas:
            check_probability(alpha, "alpha", inclusive=False)
        if self.placement not in ("uniform", "correlated"):
            raise ValueError(
                f"placement must be 'uniform' or 'correlated', got {self.placement!r}"
            )
        check_probability(self.correlation_mixing, "correlation_mixing")


@dataclass(frozen=True)
class HopCountScenario:
    """Configuration of the hop-count experiment (paper §V-D, Table I).

    The paper uses alpha = 0.5, 500 iterations of 10 uniformly-placed queries
    (5,000 samples) per document count, TTL 50.
    """

    n_documents: int
    alpha: float = 0.5
    iterations: int = 500
    queries_per_iteration: int = 10
    ttl: int = 50
    k: int = 1
    fanout: int = 1
    weighting: str = "sum"
    placement: str = "uniform"
    correlation_mixing: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive(self.n_documents, "n_documents")
        check_probability(self.alpha, "alpha", inclusive=False)
        check_positive(self.iterations, "iterations")
        check_positive(self.queries_per_iteration, "queries_per_iteration")
        check_positive(self.ttl, "ttl")
        check_positive(self.k, "k")
        check_positive(self.fanout, "fanout")
        if self.placement not in ("uniform", "correlated"):
            raise ValueError(
                f"placement must be 'uniform' or 'correlated', got {self.placement!r}"
            )
        check_probability(self.correlation_mixing, "correlation_mixing")

    @property
    def total_samples(self) -> int:
        return self.iterations * self.queries_per_iteration
