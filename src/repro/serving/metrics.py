"""Latency/outcome accounting for the online query service.

Collects one record per submitted query (the service guarantees every
submission produces exactly one :class:`~repro.serving.service.QueryResponse`,
so the counters here partition the stream) plus per-batch and refresh
bookkeeping, and summarizes them the way the saturation benchmark and the
CI schema check expect: p50/p95/p99 completion latency, throughput over a
horizon, and shed/degraded counts and rates.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.serving.service import QueryResponse

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Counters and latency samples for one service lifetime.

    Latency percentiles are computed over *completed* queries (outcomes
    ``OK`` and ``DEGRADED``) — a shed query never ran, so folding its
    non-latency into the distribution would flatter the very overload the
    shed rate is there to expose.  Rejections are counted per reason
    instead (``queue_full``/``throttled``/``queue_depth``/``deadline``).
    """

    def __init__(self) -> None:
        self.submitted = 0
        self.ok = 0
        self.degraded = 0
        self.rejected = 0
        self.rejected_by_reason: dict[str, int] = {}
        self.deadline_hits = 0
        self.stale_served = 0
        self.refreshes = 0
        self.full_refreshes = 0
        self.deferred_refreshes = 0
        self.failed_refreshes = 0
        # SLO-scheduled serving only: batches served stale while the
        # staleness bound exceeded the target (budget exhausted).
        self.slo_violations = 0
        self.batches = 0
        self.batched_queries = 0
        self._latencies: list[float] = []

    # -------------------------------------------------------------- recording

    def record_submitted(self) -> None:
        self.submitted += 1

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_queries += int(size)

    def record_response(self, response: "QueryResponse") -> None:
        """Fold one finished query into the counters."""
        from repro.serving.service import Outcome  # local: import cycle

        if response.outcome is Outcome.REJECTED:
            self.rejected += 1
            reason = response.reason or "unknown"
            self.rejected_by_reason[reason] = (
                self.rejected_by_reason.get(reason, 0) + 1
            )
            return
        if response.outcome is Outcome.DEGRADED:
            self.degraded += 1
        else:
            self.ok += 1
        if response.result is not None and response.result.deadline_hit:
            self.deadline_hits += 1
        if response.stale_served:
            self.stale_served += 1
        self._latencies.append(float(response.latency))

    # ------------------------------------------------------------- inspection

    @property
    def completed(self) -> int:
        """Queries that ran to a result (OK + DEGRADED)."""
        return self.ok + self.degraded

    @property
    def pending(self) -> int:
        """Admitted queries not yet resolved to a response."""
        return self.submitted - self.completed - self.rejected

    @property
    def mean_batch_size(self) -> float:
        return self.batched_queries / self.batches if self.batches else math.nan

    def latency_percentile(self, percentile: float) -> float:
        """Completion-latency percentile (NaN when nothing completed)."""
        if not self._latencies:
            return math.nan
        return float(np.percentile(self._latencies, percentile))

    def throughput(self, horizon: float) -> float:
        """Completed queries per time unit over ``horizon``."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        return self.completed / float(horizon)

    def summary(self, *, horizon: float | None = None) -> dict[str, Any]:
        """The machine-readable digest benchmarks emit per sweep cell."""
        submitted = max(self.submitted, 1)  # rate denominators
        out: dict[str, Any] = {
            "submitted": self.submitted,
            "completed": self.completed,
            "ok": self.ok,
            "degraded": self.degraded,
            "rejected": self.rejected,
            "rejected_by_reason": dict(self.rejected_by_reason),
            "shed_rate": self.rejected / submitted,
            "degraded_rate": self.degraded / submitted,
            "deadline_hits": self.deadline_hits,
            "stale_served": self.stale_served,
            "refreshes": self.refreshes,
            "full_refreshes": self.full_refreshes,
            "deferred_refreshes": self.deferred_refreshes,
            "failed_refreshes": self.failed_refreshes,
            "slo_violations": self.slo_violations,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "p50": self.latency_percentile(50),
            "p95": self.latency_percentile(95),
            "p99": self.latency_percentile(99),
            "mean_latency": (
                float(np.mean(self._latencies)) if self._latencies else math.nan
            ),
            "max_latency": (
                float(np.max(self._latencies)) if self._latencies else math.nan
            ),
        }
        if horizon is not None:
            out["throughput"] = self.throughput(horizon)
        return out
