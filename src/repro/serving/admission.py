"""Admission control and load shedding for the query service.

Two independent mechanisms, both optional, both evaluated at submit time
(before a query ever reaches the batcher):

* **bounded ingress queue** — a hard cap on in-flight (pending) queries and
  an optional lower *shed* watermark; crossing either rejects the query with
  an explicit reason instead of letting the queue grow without bound, which
  is what converts an overload from unbounded p99 growth into a bounded-
  latency / elevated-shed-rate regime.
* **token bucket** — a long-run rate limiter: the bucket refills at
  ``tokens_per_time`` and each admitted query spends one token, so bursts up
  to ``bucket_capacity`` pass but sustained over-rate traffic is throttled.

The controller never blocks: a query is admitted (``None``) or rejected with
a machine-readable reason string, which the service surfaces verbatim as
``QueryResponse.reason`` and the metrics count per reason.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils import check_positive, check_positive_int

__all__ = ["AdmissionConfig", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs for :class:`AdmissionController`.

    Parameters
    ----------
    max_pending:
        Hard ingress-queue bound.  ``None`` disables the bound (the
        "naive"/unbounded configuration the serving benchmark contrasts
        against).
    shed_depth:
        Optional early-shed watermark ``<= max_pending``; queries arriving
        at or above this depth are rejected with reason ``"queue_depth"``
        even though the hard cap has not been hit yet.
    tokens_per_time:
        Token-bucket refill rate (queries per simulation time unit).
        ``None`` disables rate limiting.
    bucket_capacity:
        Burst allowance when rate limiting is on; the bucket starts full.
    """

    max_pending: int | None = 256
    shed_depth: int | None = None
    tokens_per_time: float | None = None
    bucket_capacity: float = 32.0

    def __post_init__(self) -> None:
        if self.max_pending is not None:
            check_positive_int(self.max_pending, "max_pending")
        if self.shed_depth is not None:
            check_positive_int(self.shed_depth, "shed_depth")
            if self.max_pending is not None and self.shed_depth > self.max_pending:
                raise ValueError(
                    f"shed_depth {self.shed_depth} exceeds max_pending "
                    f"{self.max_pending}"
                )
        if self.tokens_per_time is not None:
            check_positive(self.tokens_per_time, "tokens_per_time")
            check_positive(self.bucket_capacity, "bucket_capacity")


class AdmissionController:
    """Stateless-per-query admit/reject decisions with token-bucket state."""

    def __init__(self, config: AdmissionConfig | None = None) -> None:
        self.config = config or AdmissionConfig()
        self._tokens = float(self.config.bucket_capacity)
        self._last_refill = 0.0

    def admit(self, now: float, depth: int) -> str | None:
        """Decide on one arrival.

        Parameters
        ----------
        now:
            Current simulation time (drives token-bucket refill; must be
            non-decreasing across calls).
        depth:
            Number of queries currently pending inside the service (batcher
            plus backlog plus in-flight batch).

        Returns ``None`` to admit, or a rejection reason: ``"queue_full"``
        (hard cap), ``"queue_depth"`` (shed watermark), ``"throttled"``
        (token bucket empty).  A rejected query consumes no token.
        """
        cfg = self.config
        if cfg.max_pending is not None and depth >= cfg.max_pending:
            return "queue_full"
        if cfg.shed_depth is not None and depth >= cfg.shed_depth:
            return "queue_depth"
        if cfg.tokens_per_time is not None:
            elapsed = float(now) - self._last_refill
            if elapsed > 0:
                self._tokens = min(
                    cfg.bucket_capacity,
                    self._tokens + elapsed * cfg.tokens_per_time,
                )
                self._last_refill = float(now)
            if self._tokens < 1.0:
                return "throttled"
            self._tokens -= 1.0
        return None

    @property
    def tokens(self) -> float:
        """Current bucket level (diagnostic)."""
        return self._tokens
