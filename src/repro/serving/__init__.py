"""Robust online query serving over the walk engines.

Micro-batching, admission control, deadline budgets, per-peer circuit
breaking, and staleness-aware refresh — see :mod:`repro.serving.service`
for the architecture overview.
"""

from repro.serving.admission import AdmissionConfig, AdmissionController
from repro.serving.breaker import BreakerConfig, PeerCircuitBreaker
from repro.serving.metrics import ServiceMetrics
from repro.serving.scheduler import MicroBatchConfig, MicroBatcher
from repro.serving.service import (
    CostModel,
    Outcome,
    QueryRequest,
    QueryResponse,
    QueryService,
    RefreshSLO,
    ServingConfig,
    StalenessConfig,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "BreakerConfig",
    "CostModel",
    "MicroBatchConfig",
    "MicroBatcher",
    "Outcome",
    "PeerCircuitBreaker",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "RefreshSLO",
    "ServiceMetrics",
    "ServingConfig",
    "StalenessConfig",
]
