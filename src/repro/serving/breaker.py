"""Per-peer circuit breaker driven by observed forwarding failures.

The resilient walk (PR 7) already *survives* dead or lossy peers by
rerouting and retrying, but it pays for each encounter in TTL: every reroute
or retry burns hops that could have explored the graph.  The breaker turns
those observations into avoidance: peers that keep failing are quarantined
for a cooldown so subsequent walks never attempt them, recovering most of
the wasted budget without any oracle knowledge of the fault plan.

Classic three-state machine, evaluated lazily against simulation time:

* ``CLOSED`` — healthy; failures accumulate in a sliding window, and any
  successful contact clears it.  The discriminating signal is *failures
  without intervening successes*: a crashed peer only ever fails, so it
  reaches the threshold in a handful of encounters, while a healthy peer
  behind a lossy link keeps getting its window wiped by the successful
  retries/visits that follow each transient drop.
* ``OPEN`` — quarantined; entered when the window reaches
  ``failure_threshold`` failures, holds for ``cooldown`` time units.
  Walks exclude OPEN peers via the engine's ``quarantine`` parameter.
* ``HALF_OPEN`` — cooldown expired; the peer is *not* excluded, so the next
  walks probe it naturally.  ``half_open_successes`` successful contacts
  close it; any failure re-opens it immediately.

There are no timers: state is derived from recorded timestamps on demand,
so the breaker works inside the discrete-event simulation without owning
events.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.utils import check_positive, check_positive_int

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.engine import SearchResult

__all__ = ["BreakerConfig", "PeerCircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Knobs for :class:`PeerCircuitBreaker`.

    Parameters
    ----------
    failure_threshold:
        Failures within ``window`` — with no intervening success — that trip
        a CLOSED peer to OPEN.  Keep it above the per-walk retry budget so a
        single unlucky hop (every retry against one peer dropped) cannot
        trip a healthy peer on its own.
    window:
        Sliding-window length (simulation time units) over which failures
        count toward the threshold.
    cooldown:
        How long an OPEN peer stays quarantined before probing resumes.
    half_open_successes:
        Consecutive successful contacts required to close a HALF_OPEN peer.
    """

    failure_threshold: int = 3
    window: float = 50.0
    cooldown: float = 200.0
    half_open_successes: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.failure_threshold, "failure_threshold")
        check_positive(self.window, "window")
        check_positive(self.cooldown, "cooldown")
        check_positive_int(self.half_open_successes, "half_open_successes")


class PeerCircuitBreaker:
    """Tracks per-peer health and yields the current quarantine set."""

    def __init__(self, config: BreakerConfig | None = None) -> None:
        self.config = config or BreakerConfig()
        self._failures: dict[int, deque[float]] = {}
        self._open_until: dict[int, float] = {}
        self._probe_successes: dict[int, int] = {}
        self.trips = 0

    # -------------------------------------------------------------- state

    def state(self, peer: int, now: float) -> str:
        until = self._open_until.get(peer)
        if until is None:
            return CLOSED
        return OPEN if now < until else HALF_OPEN

    def quarantined(self, now: float) -> frozenset[int]:
        """Peers to exclude from walks right now (OPEN only).

        HALF_OPEN peers are deliberately *not* excluded — allowing traffic
        through is what probes them.
        """
        return frozenset(
            peer for peer, until in self._open_until.items() if now < until
        )

    # ---------------------------------------------------------- transitions

    def record_failure(self, peer: int, now: float) -> None:
        """One failed forwarding attempt (dead-peer reroute or drop retry)."""
        state = self.state(peer, now)
        if state == OPEN:
            return  # already quarantined; nothing new to learn
        if state == HALF_OPEN:
            # Failed probe: re-open for a full cooldown.
            self._trip(peer, now)
            return
        window = self._failures.setdefault(peer, deque())
        window.append(float(now))
        cutoff = float(now) - self.config.window
        while window and window[0] < cutoff:
            window.popleft()
        if len(window) >= self.config.failure_threshold:
            self._trip(peer, now)

    def record_success(self, peer: int, now: float) -> None:
        """One successful contact with ``peer``."""
        state = self.state(peer, now)
        if state == CLOSED:
            # A healthy response wipes the failure window: only failure
            # *streaks* trip the breaker, not lifetime totals — otherwise a
            # few-percent transient drop rate eventually quarantines every
            # busy peer.
            self._failures.pop(peer, None)
            return
        if state != HALF_OPEN:
            return
        count = self._probe_successes.get(peer, 0) + 1
        if count >= self.config.half_open_successes:
            self._open_until.pop(peer, None)
            self._probe_successes.pop(peer, None)
            self._failures.pop(peer, None)
        else:
            self._probe_successes[peer] = count

    def _trip(self, peer: int, now: float) -> None:
        self._open_until[peer] = float(now) + self.config.cooldown
        self._probe_successes.pop(peer, None)
        self._failures.pop(peer, None)
        self.trips += 1

    # ------------------------------------------------------------- ingestion

    def observe(self, result: "SearchResult", now: float) -> None:
        """Fold one walk's outcome into the breaker.

        Successes first (peers actually visited responded), then failures
        (``SearchResult.failed_peers`` counts per-peer reroutes/retries), so
        a peer that both served and later dropped still accrues the failure.
        """
        for node in set(result.path):
            self.record_success(int(node), now)
        for peer, count in result.failed_peers.items():
            for _ in range(int(count)):
                self.record_failure(int(peer), now)
