"""The online query service: admission → micro-batch → deadline-aware walks.

:class:`QueryService` turns the repository's one-shot search primitives into
a long-lived serving loop over the discrete-event clock:

1. **Admission** (:mod:`repro.serving.admission`) — each arriving query is
   admitted or shed immediately with an explicit reason; the ingress queue
   never grows without bound unless explicitly configured to.
2. **Micro-batching** (:mod:`repro.serving.scheduler`) — admitted queries
   coalesce into engine batches under the dual trigger (``max_batch`` items
   or ``max_wait`` elapsed), then execute through the vectorized
   :func:`~repro.core.batch.run_queries` (fault-free) or the per-query
   resilient :func:`~repro.core.engine.run_query` (faults / quarantine).
3. **Deadline budgets** — a simple :class:`CostModel` prices batch setup and
   per-hop time; a query whose deadline precedes its walk start is shed
   (``REJECTED``/``"deadline"``), and one that can start but not finish gets
   a hop budget so the walk returns best-so-far partials (``DEGRADED`` with
   ``deadline_hit``) instead of blowing its deadline or silently dropping.
4. **Health-aware routing** — an optional
   :class:`~repro.serving.breaker.PeerCircuitBreaker` folds each walk's
   per-peer failure observations into a quarantine set that subsequent
   walks route around; a ``static_quarantine`` supports oracle baselines.
5. **Staleness-aware refresh** — when the underlying
   :class:`~repro.core.search.DiffusionSearchNetwork` is stale, a small
   dirty set is patched in-line via the incremental push path (its cost
   charged to the batch); a large one is deferred and the batch serves the
   stale cache, marked ``stale_served``, rather than blocking on a full
   re-diffusion.  With ``StalenessConfig(slo=RefreshSLO(...))`` the size
   heuristic is replaced by the SLO-driven
   :class:`~repro.churn.RefreshScheduler`: each batch consults the
   network's staleness *bound*, picks defer / incremental / full by fitted
   cost within a banked edge-operation budget, and every response is
   stamped with the bound it was served under
   (``QueryResponse.staleness_bound``).

Every submitted query resolves to exactly one :class:`QueryResponse` with
outcome ``OK``, ``DEGRADED``, or ``REJECTED`` — never a silent drop.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Mapping

import numpy as np

from repro.churn.scheduler import RefreshCostModel, RefreshScheduler, RefreshSLO
from repro.core.batch import run_queries
from repro.core.engine import (
    ResilienceConfig,
    SearchResult,
    WalkConfig,
    run_query,
)
from repro.core.forwarding import ForwardingPolicy
from repro.graphs.adjacency import CompressedAdjacency
from repro.retrieval.vector_store import DocumentStore
from repro.runtime.events import EventQueue
from repro.runtime.faults import FaultInjector
from repro.serving.admission import AdmissionConfig, AdmissionController
from repro.serving.breaker import PeerCircuitBreaker
from repro.serving.metrics import ServiceMetrics
from repro.serving.scheduler import MicroBatchConfig, MicroBatcher
from repro.utils import check_non_negative, check_positive, check_positive_int
from repro.utils.rng import RngLike, derive_rng

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.search import DiffusionSearchNetwork

__all__ = [
    "CostModel",
    "Outcome",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "RefreshSLO",
    "ServingConfig",
    "StalenessConfig",
]


class Outcome(str, Enum):
    """Per-query disposition: the service's explicit result taxonomy."""

    OK = "ok"
    DEGRADED = "degraded"
    REJECTED = "rejected"


@dataclass(frozen=True)
class CostModel:
    """Prices service work in simulation time units (drives deadlines).

    ``walk_start = flush_time + refresh_cost + batch_overhead +
    per_query × batch_size``; each walk then advances ``hop_cost`` per hop.
    """

    batch_overhead: float = 0.5
    per_query: float = 0.05
    hop_cost: float = 1.0
    refresh_overhead: float = 1.0
    refresh_per_dirty: float = 0.25
    refresh_per_node: float = 0.01

    def __post_init__(self) -> None:
        check_non_negative(self.batch_overhead, "batch_overhead")
        check_non_negative(self.per_query, "per_query")
        check_positive(self.hop_cost, "hop_cost")
        check_non_negative(self.refresh_overhead, "refresh_overhead")
        check_non_negative(self.refresh_per_dirty, "refresh_per_dirty")
        check_non_negative(self.refresh_per_node, "refresh_per_node")


@dataclass(frozen=True)
class StalenessConfig:
    """When and how to patch a stale diffusion before serving a batch.

    A dirty set up to ``max_dirty_refresh`` nodes is refreshed in-line with
    the incremental ``method`` path; anything larger is deferred (the batch
    serves stale, marked ``stale_served``) on the grounds that blocking the
    whole batch on a near-full re-diffusion costs more than slightly stale
    routing scores.

    Setting ``slo`` replaces that size heuristic with SLO-driven
    scheduling (:class:`repro.churn.RefreshScheduler`): per batch, the
    network's staleness *bound* is compared to ``slo.staleness_target``
    and the cheaper of incremental/full is run when affordable within the
    banked edge-operation budget — otherwise the batch is served stale and
    the breach counted (``ServiceMetrics.slo_violations``).  With churn
    absent and an unlimited-budget SLO the scheduled path makes exactly
    the decisions the heuristic path makes (defer when clean, patch when
    dirty), so serving results are identical — pinned by tests.
    """

    max_dirty_refresh: int = 64
    method: str = "push"
    tol: float = 1e-8
    max_iterations: int = 10_000
    slo: RefreshSLO | None = None

    def __post_init__(self) -> None:
        check_positive_int(self.max_dirty_refresh, "max_dirty_refresh")
        check_positive(self.tol, "tol")
        check_positive_int(self.max_iterations, "max_iterations")


@dataclass(frozen=True)
class ServingConfig:
    """Everything the service needs beyond the data plane objects."""

    walk: WalkConfig = field(default_factory=WalkConfig)
    batch: MicroBatchConfig = field(default_factory=MicroBatchConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    cost: CostModel = field(default_factory=CostModel)
    resilience: ResilienceConfig | None = None
    staleness: StalenessConfig = field(default_factory=StalenessConfig)


@dataclass
class QueryRequest:
    """One query as submitted to the service."""

    query_id: Hashable
    embedding: np.ndarray
    start_node: int
    arrival: float = 0.0
    deadline: float = math.inf


@dataclass
class QueryResponse:
    """The service's answer for one submitted query (exactly one per query)."""

    query_id: Hashable
    outcome: Outcome
    reason: str | None
    result: SearchResult | None
    arrival: float
    started: float | None
    completed: float
    stale_served: bool = False
    # Upper bound on the L1 error of the diffusion scores this query was
    # routed with (0.0 when the service has no network attached; may be
    # ``inf`` when no diffusion baseline exists).  Stamped so downstream
    # consumers can judge a stale-served answer instead of trusting it
    # blindly.
    staleness_bound: float = 0.0

    @property
    def latency(self) -> float:
        """Arrival-to-completion time (meaningless for rejections)."""
        return self.completed - self.arrival


class QueryService:
    """Long-lived query serving over the walk engines (see module docstring).

    Parameters
    ----------
    adjacency, stores, policy:
        The data plane: overlay topology, per-node document stores, and the
        forwarding policy over the diffused embeddings.
    config:
        All serving knobs (:class:`ServingConfig`).
    queue:
        The shared :class:`~repro.runtime.events.EventQueue`; supply the
        simulation's queue so load generators and fault timelines share the
        clock.  A private queue is created when omitted.
    faults:
        Optional :class:`~repro.runtime.faults.FaultInjector`; its presence
        switches execution to the per-query resilient engine.
    breaker:
        Optional :class:`~repro.serving.breaker.PeerCircuitBreaker`; it
        observes every resilient walk and its OPEN peers are excluded from
        subsequent walks.
    static_quarantine:
        Peers to exclude from every walk regardless of the breaker (oracle
        baselines, operator denylists).
    network:
        The owning :class:`~repro.core.search.DiffusionSearchNetwork`, if
        any — enables the staleness-aware refresh path.  ``stores`` and
        ``policy`` should come from the same network.
    on_response:
        Callback invoked with each :class:`QueryResponse` as it resolves
        (rejections resolve at submit time, completions at walk end).
    """

    def __init__(
        self,
        adjacency: CompressedAdjacency,
        stores: Mapping[int, DocumentStore],
        policy: ForwardingPolicy,
        *,
        config: ServingConfig | None = None,
        queue: EventQueue | None = None,
        faults: FaultInjector | None = None,
        breaker: PeerCircuitBreaker | None = None,
        static_quarantine: Iterable[int] | None = None,
        network: "DiffusionSearchNetwork | None" = None,
        on_response: Callable[[QueryResponse], None] | None = None,
        seed: RngLike = None,
    ) -> None:
        self.adjacency = adjacency
        self.stores = stores
        self.policy = policy
        self.config = config or ServingConfig()
        # Not `queue or EventQueue()`: an empty EventQueue is falsy (len 0),
        # which would silently discard the caller's shared clock.
        self.queue = EventQueue() if queue is None else queue
        self.faults = faults
        self.breaker = breaker
        self.static_quarantine = (
            frozenset(int(p) for p in static_quarantine)
            if static_quarantine
            else frozenset()
        )
        self.network = network
        self.on_response = on_response
        self.metrics = ServiceMetrics()
        self.responses: list[QueryResponse] = []
        self.admission = AdmissionController(self.config.admission)
        self.batcher: MicroBatcher[QueryRequest] = MicroBatcher(
            self.queue, self._on_flush, self.config.batch
        )
        self._backlog: deque[QueryRequest] = deque()
        self._in_flight = 0
        self._busy = False
        self._batch_counter = 0
        self._serving_stale = False
        self._staleness_bound = 0.0
        self._seed = seed
        # SLO-driven refresh scheduling (repro.churn): built only when the
        # config opts in AND a network is attached — the scheduler needs
        # the network's staleness bound to decide anything.
        self.refresh_scheduler: RefreshScheduler | None = None
        slo = self.config.staleness.slo
        if slo is not None and network is not None:
            model = RefreshCostModel(
                nnz=2 * network.adjacency.n_edges,
                alpha=network.alpha,
                tol=self.config.staleness.tol,
            )
            # Seed the fit from the warm-up diffusion when one exists: its
            # cost anchors the full price, and cost ÷ signal mass anchors
            # the incremental rate — without this the analytic prior
            # overprices small deltas until the first observed run.
            warmup = network.last_diffusion
            if warmup is not None and warmup.converged and not warmup.incremental:
                model.observe(
                    "full", network.diffused_signal_mass(), warmup.operations
                )
            self.refresh_scheduler = RefreshScheduler(slo, model)

    @classmethod
    def from_network(
        cls,
        network: "DiffusionSearchNetwork",
        **kwargs: object,
    ) -> "QueryService":
        """Build a service over a diffused search network's data plane."""
        return cls(
            network.adjacency,
            network.stores,
            network.default_policy(),
            network=network,
            **kwargs,  # type: ignore[arg-type]
        )

    # ---------------------------------------------------------------- ingress

    @property
    def depth(self) -> int:
        """Queries currently inside the service (batcher + backlog + running)."""
        return len(self.batcher) + len(self._backlog) + self._in_flight

    def submit(self, request: QueryRequest) -> QueryResponse | None:
        """Offer one query; returns the rejection response, or ``None``.

        Call from an event action (or before starting the clock): the
        arrival timestamp is taken from ``queue.now``.  An admitted query's
        response arrives later via :attr:`responses` / ``on_response``.
        """
        now = self.queue.now
        request.arrival = now
        self.metrics.record_submitted()
        reason = self.admission.admit(now, self.depth)
        if reason is None and request.deadline <= now:
            reason = "deadline"  # dead on arrival; don't waste a slot
        if reason is not None:
            response = QueryResponse(
                query_id=request.query_id,
                outcome=Outcome.REJECTED,
                reason=reason,
                result=None,
                arrival=now,
                started=None,
                completed=now,
            )
            self._resolve(response)
            return response
        self.batcher.add(request)
        return None

    def drain(self) -> None:
        """Run the clock until every admitted query resolves.

        No eager flush: pending items always have an armed window timer, so
        batches form at their scheduled times, not at drain time.
        """
        while True:
            while self.queue.step():
                pass
            if len(self.batcher):
                self.batcher.flush()
                continue
            return

    # ------------------------------------------------------------- batch path

    def _on_flush(self, batch: list[QueryRequest]) -> None:
        if self._busy:
            self._backlog.extend(batch)
            return
        self._run_batch(batch)

    def _run_batch(self, batch: list[QueryRequest]) -> None:
        cost = self.config.cost
        self._in_flight += len(batch)
        self.metrics.record_batch(len(batch))
        refresh_cost = self._maybe_refresh()
        walk_start = (
            self.queue.now
            + refresh_cost
            + cost.batch_overhead
            + cost.per_query * len(batch)
        )

        # Shed queries that cannot even start before their deadline.
        runnable: list[QueryRequest] = []
        for request in batch:
            if request.deadline <= walk_start:
                self._in_flight -= 1
                self._resolve(
                    QueryResponse(
                        query_id=request.query_id,
                        outcome=Outcome.REJECTED,
                        reason="deadline",
                        result=None,
                        arrival=request.arrival,
                        started=None,
                        completed=self.queue.now,
                    )
                )
            else:
                runnable.append(request)
        if not runnable:
            self._finish_batch(self.queue.now)
            return

        # Deadline → hop budget: hop h completes at walk_start + h·hop_cost.
        ttl = self.config.walk.ttl
        budgets: list[int] = []
        any_finite = False
        for request in runnable:
            if math.isinf(request.deadline):
                budgets.append(ttl)
            else:
                any_finite = True
                slack = request.deadline - walk_start
                budgets.append(max(1, min(ttl, math.ceil(slack / cost.hop_cost))))

        results = self._execute(runnable, budgets if any_finite else None, walk_start)

        busy_until = walk_start
        for request, result in zip(runnable, results):
            completed = walk_start + result.hops_used * cost.hop_cost
            busy_until = max(busy_until, completed)
            outcome = Outcome.DEGRADED if result.degraded else Outcome.OK
            reason = None
            if result.degraded:
                reason = "deadline" if result.deadline_hit else "faults"
            self._in_flight -= 1
            self._resolve(
                QueryResponse(
                    query_id=request.query_id,
                    outcome=outcome,
                    reason=reason,
                    result=result,
                    arrival=request.arrival,
                    started=walk_start,
                    completed=completed,
                    stale_served=self._serving_stale,
                    staleness_bound=self._staleness_bound,
                )
            )
        self._finish_batch(busy_until)

    def _execute(
        self,
        batch: list[QueryRequest],
        budgets: list[int] | None,
        walk_start: float,
    ) -> list[SearchResult]:
        quarantine: frozenset[int] = self.static_quarantine
        if self.breaker is not None:
            quarantine = quarantine | self.breaker.quarantined(walk_start)
        resilience = self.config.resilience
        seed = derive_rng(self._seed, "batch", self._batch_counter)
        self._batch_counter += 1

        if self.faults is None and not quarantine and resilience is None:
            # Fault-free fast path: the vectorized lockstep engine.  With no
            # finite deadlines (budgets None) this is bit-identical to a
            # direct run_queries call — pinned by tests.
            embeddings = np.stack(
                [np.asarray(r.embedding, dtype=np.float64) for r in batch]
            )
            return run_queries(
                self.adjacency,
                self.stores,
                self.policy,
                embeddings,
                [r.start_node for r in batch],
                self.config.walk,
                query_ids=[r.query_id for r in batch],
                seed=seed,
                hop_budgets=budgets,
            )

        results: list[SearchResult] = []
        for i, request in enumerate(batch):
            result = run_query(
                self.adjacency,
                self.stores,
                self.policy,
                request.embedding,
                request.start_node,
                self.config.walk,
                query_id=request.query_id,
                seed=derive_rng(seed, "walk", i),
                faults=self.faults,
                resilience=resilience,
                hop_budget=None if budgets is None else budgets[i],
                quarantine=quarantine or None,
            )
            if self.breaker is not None:
                self.breaker.observe(result, walk_start)
            results.append(result)
        return results

    def _finish_batch(self, busy_until: float) -> None:
        """Hold the service busy until the batch completes, then drain."""
        self._busy = True
        self.queue.schedule_at(max(busy_until, self.queue.now), self._on_complete)

    def _on_complete(self) -> None:
        self._busy = False
        if self._backlog:
            take = min(len(self._backlog), self.config.batch.max_batch)
            batch = [self._backlog.popleft() for _ in range(take)]
            self._run_batch(batch)

    # -------------------------------------------------------------- staleness

    def _maybe_refresh(self) -> float:
        """Patch a stale diffusion if cheap; otherwise serve stale.

        Returns the simulated time cost charged to the current batch and
        updates :attr:`_serving_stale` and :attr:`_staleness_bound` (both
        stamped onto the batch's responses).  With an SLO configured the
        decision is delegated to the :class:`~repro.churn.RefreshScheduler`
        (:meth:`_slo_refresh`); otherwise the original dirty-count
        heuristic applies.
        """
        network = self.network
        if network is None:
            self._serving_stale = False
            self._staleness_bound = 0.0
            return 0.0
        if self.refresh_scheduler is not None:
            return self._slo_refresh(network)
        if not network.is_stale:
            self._serving_stale = False
            self._staleness_bound = network.staleness_bound()
            return 0.0
        staleness = self.config.staleness
        dirty = len(network.dirty_nodes)
        if dirty > staleness.max_dirty_refresh:
            self.metrics.deferred_refreshes += 1
            self._serving_stale = True
            self._staleness_bound = network.staleness_bound()
            return 0.0
        try:
            outcome = network.diffuse(
                method=staleness.method,
                tol=staleness.tol,
                max_iterations=staleness.max_iterations,
                incremental=True,
            )
        except ValueError:
            # No baseline to patch (or backend without incremental support):
            # a full re-diffusion would block the batch, so defer and serve
            # the stale cache instead.
            self.metrics.deferred_refreshes += 1
            self._serving_stale = True
            self._staleness_bound = network.staleness_bound()
            return 0.0
        if not outcome.converged:
            self.metrics.failed_refreshes += 1
            self._serving_stale = True
            self._staleness_bound = network.staleness_bound()
            return 0.0
        self.metrics.refreshes += 1
        self._serving_stale = False
        self._staleness_bound = network.staleness_bound()
        # The cached embeddings changed object identity; rebuild the policy
        # view over them.
        self.policy = network.default_policy()
        cost = self.config.cost
        return cost.refresh_overhead + cost.refresh_per_dirty * dirty

    def _slo_refresh(self, network: "DiffusionSearchNetwork") -> float:
        """SLO-scheduled refresh: one scheduler tick per served batch.

        The scheduler sees the network's staleness *bound* (dirty mass +
        accumulated push residual, an O(1) read) rather than a node count,
        prices incremental vs full with its fitted cost model, and spends a
        banked edge-operation budget.  Degradation is explicit: a deferral
        over the target serves stale, stamps the bound onto the batch's
        responses, and counts an SLO violation.
        """
        scheduler = self.refresh_scheduler
        assert scheduler is not None
        staleness = self.config.staleness
        cost = self.config.cost
        scheduler.tick()
        decision = scheduler.decide(network.staleness_bound(), network.dirty_mass)
        if decision.action == "defer":
            stale = network.is_stale and not decision.within_slo
            if stale:
                self.metrics.deferred_refreshes += 1
                self.metrics.slo_violations += 1
            self._serving_stale = network.is_stale
            self._staleness_bound = decision.bound
            return 0.0
        dirty = len(network.dirty_nodes)
        dirty_mass = network.dirty_mass
        try:
            outcome = network.diffuse(
                method=staleness.method,
                tol=staleness.tol,
                max_iterations=staleness.max_iterations,
                incremental=decision.action == "incremental",
            )
        except ValueError:
            # Incremental chosen but no baseline survived (e.g. a fault
            # path cleared it between decide and diffuse): serve stale now;
            # the next tick's decision sees bound=∞ and schedules a full.
            self.metrics.deferred_refreshes += 1
            self._serving_stale = True
            self._staleness_bound = network.staleness_bound()
            return 0.0
        if not outcome.converged:
            self.metrics.failed_refreshes += 1
            self._serving_stale = True
            self._staleness_bound = network.staleness_bound()
            return 0.0
        scheduler.commit(decision, outcome.operations)
        # Feed the fit with what the run actually diffused: the pending L1
        # mass for an incremental patch, the whole signal's mass for a full
        # run (which also re-anchors the incremental rate if unseeded).
        scheduler.cost_model.observe(
            decision.action,
            dirty_mass
            if decision.action == "incremental"
            else network.diffused_signal_mass(),
            outcome.operations,
        )
        self.metrics.refreshes += 1
        if decision.action == "full":
            self.metrics.full_refreshes += 1
        self._serving_stale = False
        self._staleness_bound = network.staleness_bound()
        self.policy = network.default_policy()
        if decision.action == "full":
            return cost.refresh_overhead + cost.refresh_per_node * network.n_nodes
        return cost.refresh_overhead + cost.refresh_per_dirty * dirty

    # ------------------------------------------------------------------ misc

    def _resolve(self, response: QueryResponse) -> None:
        self.metrics.record_response(response)
        self.responses.append(response)
        if self.on_response is not None:
            self.on_response(response)
