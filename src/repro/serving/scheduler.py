"""Micro-batching scheduler: coalesce a query stream into engine batches.

The vectorized batch engine (``run_queries``) amortizes CSR gathers and
policy evaluation across queries, but an online arrival stream delivers
queries one at a time.  The :class:`MicroBatcher` bridges the two with the
classic dual trigger:

* **size** — the pending set reaches ``max_batch``: flush immediately.
* **time** — ``max_wait`` elapsed since the *first* pending query arrived:
  flush whatever has accumulated (bounded added latency for the query that
  opened the window).

Timing rides the shared :class:`~repro.runtime.events.EventQueue`, so the
batcher composes with the rest of the simulation (fault injectors, load
generators) on one clock.  The size trigger cancels the armed timer via
``ScheduledEvent.cancel()`` — safe even when the timer already dispatched in
the same tick, because cancel-after-dispatch is an idempotent no-op that
returns ``False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, TypeVar

from repro.runtime.events import EventQueue, ScheduledEvent
from repro.utils import check_positive, check_positive_int

__all__ = ["MicroBatchConfig", "MicroBatcher"]

T = TypeVar("T")


@dataclass(frozen=True)
class MicroBatchConfig:
    """Dual-trigger knobs: flush at ``max_batch`` items or after ``max_wait``."""

    max_batch: int = 32
    max_wait: float = 5.0

    def __post_init__(self) -> None:
        check_positive_int(self.max_batch, "max_batch")
        check_positive(self.max_wait, "max_wait")


class MicroBatcher(Generic[T]):
    """Accumulates items and hands full or timed-out batches to ``flush_cb``."""

    def __init__(
        self,
        queue: EventQueue,
        flush_cb: Callable[[list[T]], None],
        config: MicroBatchConfig | None = None,
    ) -> None:
        self.queue = queue
        self.flush_cb = flush_cb
        self.config = config or MicroBatchConfig()
        self._pending: list[T] = []
        self._timer: ScheduledEvent | None = None
        self.flushes_by_size = 0
        self.flushes_by_timer = 0

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, item: T) -> None:
        """Enqueue one item; may flush synchronously on the size trigger."""
        self._pending.append(item)
        if len(self._pending) >= self.config.max_batch:
            self.flushes_by_size += 1
            self._flush()
            return
        if self._timer is None:
            self._timer = self.queue.schedule(self.config.max_wait, self._on_timer)

    def flush(self) -> None:
        """Force out whatever is pending (e.g. at end of stream)."""
        if self._pending:
            self._flush()

    def _on_timer(self) -> None:
        self._timer = None
        if self._pending:
            self.flushes_by_timer += 1
            self._flush()

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        self.flush_cb(batch)
