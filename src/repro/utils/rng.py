"""Deterministic randomness helpers.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh entropy).  Centralizing the
coercion here keeps experiment drivers reproducible: a single scenario seed is
split into independent child generators with :func:`spawn_rngs` so that, e.g.,
document placement and query sampling never share a stream.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

RngLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so components can share
    a stream when the caller wants them to.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, an int, a SeedSequence or a Generator, got {type(seed)!r}"
    )


def spawn_rngs(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent child generators.

    Uses :class:`numpy.random.SeedSequence` spawning, so the children are
    independent of each other *and* of the parent stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator's own stream.
        seq = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def derive_rng(seed: RngLike, *keys: Union[int, str]) -> np.random.Generator:
    """Derive a named child generator from ``seed``.

    ``keys`` identify the consumer (e.g. ``derive_rng(seed, "placement", 3)``);
    the same seed and keys always produce the same stream, while different keys
    produce independent streams.
    """
    material: list[int] = []
    for key in keys:
        if isinstance(key, str):
            material.extend(key.encode("utf-8"))
        elif isinstance(key, (int, np.integer)):
            material.append(int(key) & 0xFFFFFFFF)
        else:
            raise TypeError(f"keys must be int or str, got {type(key)!r}")
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**63 - 1))
    elif isinstance(seed, np.random.SeedSequence):
        base = seed.entropy if isinstance(seed.entropy, int) else 0
    elif seed is None:
        base = np.random.SeedSequence().entropy  # fresh entropy
    else:
        base = int(seed)
    seq = np.random.SeedSequence(entropy=base, spawn_key=tuple(material))
    return np.random.default_rng(seq)


def shard_rng(seed: RngLike, shard_id: int) -> np.random.Generator:
    """Deterministic per-shard generator for worker processes.

    The sharded precompute (:mod:`repro.core.shard`) fans shards out to a
    process pool; each worker derives its stream from the *parent* seed plus
    its shard id, so a sharded run is bit-reproducible regardless of pool
    size, task scheduling order, or multiprocessing start method: shard
    ``i`` sees the same stream whether it runs in the calling process (the
    serial executor), in any of N pool workers, or across repeated runs.
    Streams for different shards are statistically independent
    (:class:`numpy.random.SeedSequence` spawn keys).

    Pass an *integer* parent seed for cross-process determinism — a
    ``Generator`` parent is stateful, so the derived stream then depends on
    how much of the parent stream was consumed first (and ``None`` draws
    fresh entropy).
    """
    if not isinstance(shard_id, (int, np.integer)) or shard_id < 0:
        raise ValueError(f"shard_id must be a non-negative int, got {shard_id!r}")
    return derive_rng(seed, "shard", int(shard_id))
