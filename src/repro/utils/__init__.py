"""Shared utilities: seeded randomness, validation and small helpers."""

from repro.utils.rng import ensure_rng, spawn_rngs, derive_rng, shard_rng
from repro.utils.validation import (
    check_probability,
    check_positive,
    check_non_negative,
    check_int,
    check_positive_int,
    check_non_negative_int,
    check_matrix_2d,
    check_vector_1d,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "derive_rng",
    "shard_rng",
    "check_probability",
    "check_positive",
    "check_non_negative",
    "check_int",
    "check_positive_int",
    "check_non_negative_int",
    "check_matrix_2d",
    "check_vector_1d",
]
