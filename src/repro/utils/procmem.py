"""Cross-process peak-memory accounting for multiprocessing benchmarks.

``tracemalloc`` only sees allocations made by the *current* process, so a
benchmark that fans work out to a process pool under-reports its footprint:
the parent's traced peak misses every worker-side buffer (shard operators,
per-shard iterates, pickled round results).  This module is the contract
between the benchmark harness (``benchmarks/conftest.measure_peak_memory``)
and pool-spawning library code (:class:`repro.core.shard.PoolShardExecutor`):

* the measurer calls :func:`enable_worker_tracing` before running the
  measured callable (and :func:`disable_worker_tracing` after);
* pool-spawning code checks :func:`worker_tracing_enabled` when it starts a
  pool, runs every worker under ``tracemalloc``, ships each worker task's
  traced peak back with the task result, and reports it to the parent with
  :func:`record_child_peak`;
* the measurer reads :func:`max_child_peak` once the callable returns and
  reports ``parent_peak + max_child_peak``.

``parent + max(child)`` is the deliberate aggregate: workers run
concurrently with the parent, so the worst single worker adds to the
parent's resident set, while *summing* all workers would over-count pools
wider than the machine (workers at their peaks at different times).  It is
a lower bound on the true fleet-wide peak for pools with >1 simultaneously
peaking worker — callers that need the pessimistic bound can sum
:func:`child_peaks` instead.

The enable flag is mirrored in the ``REPRO_TRACE_WORKER_MEMORY``
environment variable so worker processes observe it under any
multiprocessing start method: ``fork`` children inherit the parent's
environment (and module state) at fork time, ``spawn`` children re-import
this module and read the variable fresh.
"""

from __future__ import annotations

import os

#: Environment mirror of the tracing flag (read by worker processes).
TRACE_ENV = "REPRO_TRACE_WORKER_MEMORY"

_child_peaks: list[int] = []


def enable_worker_tracing() -> None:
    """Ask subsequently created worker pools to trace their memory."""
    os.environ[TRACE_ENV] = "1"


def disable_worker_tracing() -> None:
    """Stop asking worker pools to trace their memory."""
    os.environ.pop(TRACE_ENV, None)


def worker_tracing_enabled() -> bool:
    """True when a measurement harness requested worker-side tracing."""
    return os.environ.get(TRACE_ENV, "").strip() in ("1", "true", "yes")


def record_child_peak(peak_bytes: int) -> None:
    """Report one worker process's traced peak back to the parent."""
    if peak_bytes < 0:
        raise ValueError(f"peak_bytes must be >= 0, got {peak_bytes}")
    _child_peaks.append(int(peak_bytes))


def reset_child_peaks() -> None:
    """Clear recorded worker peaks (start of a measurement)."""
    _child_peaks.clear()


def child_peaks() -> tuple[int, ...]:
    """All worker peaks recorded since the last reset (one per task)."""
    return tuple(_child_peaks)


def max_child_peak() -> int:
    """Largest worker peak recorded since the last reset (0 when none)."""
    return max(_child_peaks, default=0)
