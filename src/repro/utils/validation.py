"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

import numpy as np


def check_probability(value: float, name: str, *, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in [0, 1] (or (0, 1) if not inclusive)."""
    value = float(value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer (bools are rejected).

    Accepts Python and numpy integers; rejects floats even when integral
    (``2.0``), so silently truncating counts can never slip through, and
    rejects booleans, which *are* ints in Python but are never a sensible
    retry/redundancy count.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {value!r}")
    return int(value)


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a strictly positive integer."""
    check_int(value, name)
    check_positive(value, name)
    return int(value)


def check_non_negative_int(value: int, name: str) -> int:
    """Validate that ``value`` is a non-negative integer."""
    check_int(value, name)
    check_non_negative(value, name)
    return int(value)


def check_matrix_2d(array: np.ndarray, name: str) -> np.ndarray:
    """Validate that ``array`` is a 2-D numpy array and return it as float64."""
    array = np.asarray(array, dtype=np.float64)
    if array.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {array.shape}")
    return array


def check_vector_1d(array: np.ndarray, name: str) -> np.ndarray:
    """Validate that ``array`` is a 1-D numpy array and return it as float64."""
    array = np.asarray(array, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {array.shape}")
    return array
