"""Convergence diagnostics for the asynchronous diffusion.

The diffusion's fixed point satisfies ``E = (1−a) A E + a E0`` (paper eq. 7 at
convergence); the residual of that equation is therefore a decentralized
protocol's natural convergence certificate, and the distance to the
closed-form solution bounds it by a constant factor.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def fixed_point_residual(
    operator: sp.spmatrix,
    embeddings: np.ndarray,
    personalization: np.ndarray,
    alpha: float,
) -> float:
    """Max-norm residual of the PPR fixed-point equation."""
    embeddings = np.asarray(embeddings, dtype=np.float64)
    personalization = np.asarray(personalization, dtype=np.float64)
    expected = (1.0 - alpha) * (operator @ embeddings) + alpha * personalization
    if embeddings.size == 0:
        return 0.0
    return float(np.max(np.abs(embeddings - expected)))


def diffusion_error(embeddings: np.ndarray, reference: np.ndarray) -> float:
    """Max absolute elementwise difference between two diffusion outputs."""
    embeddings = np.asarray(embeddings, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if embeddings.shape != reference.shape:
        raise ValueError(
            f"shape mismatch: {embeddings.shape} vs {reference.shape}"
        )
    if embeddings.size == 0:
        return 0.0
    return float(np.max(np.abs(embeddings - reference)))
