"""Decentralized asynchronous runtime: a discrete-event P2P simulator.

The paper's diffusion is "iterative and asynchronous": node pairs exchange
embeddings at arbitrary (but not arbitrarily long) intervals and the estimates
converge to the closed-form PPR diffusion.  This package provides the
machinery to execute that protocol faithfully — an event queue, a simulated
network with per-link latencies and message accounting, node actors, and the
asynchronous diffusion overlay — plus churn operations (join/leave/update).
"""

from repro.runtime.events import EventQueue, ScheduledEvent
from repro.runtime.faults import (
    CrashWindow,
    FaultDecision,
    FaultInjector,
    FaultPlan,
    choose_live_starts,
)
from repro.runtime.network import LatencyModel, SimNetwork, TrafficStats
from repro.runtime.node import SimNode
from repro.runtime.gossip import (
    AsyncDiffusionNode,
    AsyncPPRDiffusion,
    DegreeAnnounce,
    EmbeddingPush,
)
from repro.runtime.convergence import fixed_point_residual, diffusion_error

__all__ = [
    "EventQueue",
    "ScheduledEvent",
    "CrashWindow",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "choose_live_starts",
    "LatencyModel",
    "SimNetwork",
    "TrafficStats",
    "SimNode",
    "AsyncDiffusionNode",
    "AsyncPPRDiffusion",
    "DegreeAnnounce",
    "EmbeddingPush",
    "fixed_point_residual",
    "diffusion_error",
]
