"""Base class for node actors living inside a :class:`SimNetwork`."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.network import SimNetwork


class SimNode:
    """A P2P node actor: receives messages and timer callbacks.

    Subclasses override the ``on_*`` hooks.  Nodes communicate exclusively by
    :meth:`send`-ing messages to direct neighbors — there is no shared state,
    which keeps implementations honest about what a decentralized protocol
    can know.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = int(node_id)
        self.network: "SimNetwork | None" = None

    # ------------------------------------------------------------- plumbing

    def attach(self, network: "SimNetwork") -> None:
        """Called by the network when the node joins it."""
        self.network = network

    def send(self, dst: int, message: Any) -> None:
        """Send ``message`` to neighbor ``dst`` (delivered after link latency)."""
        if self.network is None:
            raise RuntimeError(f"node {self.node_id} is not attached to a network")
        self.network.send(self.node_id, dst, message)

    def set_timer(self, delay: float, tag: Any = None):
        """Schedule :meth:`on_timer` after ``delay``; returns the event handle."""
        if self.network is None:
            raise RuntimeError(f"node {self.node_id} is not attached to a network")
        return self.network.schedule_timer(self.node_id, delay, tag)

    def neighbors(self) -> list[int]:
        """Current neighbor ids (reads the network's live topology)."""
        if self.network is None:
            return []
        return self.network.neighbors_of(self.node_id)

    # ------------------------------------------------------------ overrides

    def on_start(self) -> None:
        """Hook invoked once when the simulation starts (or node joins)."""

    def on_message(self, src: int, message: Any) -> None:
        """Hook invoked on message delivery."""

    def on_timer(self, tag: Any) -> None:
        """Hook invoked when a timer set by :meth:`set_timer` fires."""

    def on_neighbor_added(self, neighbor: int) -> None:
        """Hook invoked when an incident edge appears (churn)."""

    def on_neighbor_removed(self, neighbor: int) -> None:
        """Hook invoked when an incident edge disappears (churn)."""
