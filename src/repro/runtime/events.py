"""Discrete-event queue with deterministic ordering.

Events at equal timestamps dispatch in insertion order (a monotonically
increasing sequence number breaks ties), so simulations are exactly
reproducible for a given seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class ScheduledEvent:
    """An action scheduled at a simulation time.

    Cancelled events stay in the heap but are skipped on pop (lazy deletion),
    which keeps cancellation O(1).
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    dispatched: bool = field(default=False, compare=False)

    def cancel(self) -> bool:
        """Mark the event so the queue skips it.

        Idempotent in both directions: cancelling twice is fine, and
        cancelling an event that has *already dispatched* is a no-op (the
        action ran; pretending otherwise would corrupt bookkeeping built on
        the flag).  Holders racing a timer — e.g. a batch scheduler whose
        flush timer may fire in the same tick that fills the batch — can
        therefore always call ``cancel()`` and branch on the return value.

        Returns ``True`` when the event will never run (freshly cancelled or
        already cancelled), ``False`` when it already dispatched.
        """
        if self.dispatched:
            return False
        self.cancelled = True
        return True


class EventQueue:
    """A priority queue of :class:`ScheduledEvent` ordered by (time, seq)."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = 0
        self._now = 0.0
        self._dispatched = 0

    @property
    def now(self) -> float:
        """Current simulation time (time of the last dispatched event)."""
        return self._now

    @property
    def dispatched(self) -> int:
        """Number of events executed so far."""
        return self._dispatched

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(self, delay: float, action: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        event = ScheduledEvent(self._now + float(delay), self._seq, action)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, action: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``action`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: time {time} < now {self._now}"
            )
        event = ScheduledEvent(float(time), self._seq, action)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> bool:
        """Dispatch the next event; returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._dispatched += 1
            event.dispatched = True
            event.action()
            return True
        return False

    def run(
        self,
        *,
        until: float | None = None,
        max_events: int | None = None,
    ) -> int:
        """Dispatch events until exhaustion, ``until`` time, or event budget.

        Returns the number of events dispatched by this call.
        """
        dispatched = 0
        while self._heap:
            if max_events is not None and dispatched >= max_events:
                break
            # Peek for the time limit without popping cancelled entries eagerly.
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                self._now = until
                break
            if not self.step():
                break
            dispatched += 1
        return dispatched
