"""Asynchronous decentralized PPR diffusion (paper §IV-B, following [34]).

Each node maintains an estimate of its diffused embedding plus a cache of the
last embedding received from each neighbor, and repeatedly applies the local
fixed-point update

    e_u ← a · e0_u + (1 − a) · Σ_v W[u, v] · ê_v ,     W[u, v] = 1 / deg(v)

(the column-stochastic normalization: each neighbor's embedding arrives scaled
by that neighbor's own degree, which the neighbor piggybacks on its pushes —
no global knowledge is required).  Two scheduling modes are provided:

* ``push`` — a node re-broadcasts whenever its estimate moved by more than
  ``tol`` since its last broadcast.  The protocol quiesces on its own, which
  doubles as a decentralized convergence detector.
* ``periodic`` — nodes wake at exponential intervals and exchange with one
  random neighbor, the literal "node pairs exchange and update embeddings"
  process of the paper; convergence is in distribution, checked by horizon.

Because the update map is a ``(1 − a)``-contraction in every norm in which
``W`` is non-expansive, stale-value asynchronous iteration converges to the
closed-form diffusion of eq. (6); tests verify agreement with
:class:`repro.gsp.filters.PersonalizedPageRank` to tight tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.graphs.adjacency import CompressedAdjacency
from repro.gsp.normalization import transition_matrix
from repro.runtime.convergence import fixed_point_residual
from repro.runtime.network import LatencyModel, SimNetwork
from repro.runtime.node import SimNode
from repro.utils import check_positive, check_probability, ensure_rng
from repro.utils.rng import RngLike, spawn_rngs


@dataclass(frozen=True)
class EmbeddingPush:
    """A node's current embedding estimate plus its current degree."""

    vector: np.ndarray
    degree: int

    def size_bytes(self) -> float:
        return 8.0 * np.asarray(self.vector).size + 16.0


@dataclass(frozen=True)
class DegreeAnnounce:
    """Degree-only notification (sent when topology changes)."""

    degree: int

    def size_bytes(self) -> float:
        return 16.0


@dataclass(frozen=True)
class ExchangeRequest:
    """Periodic-mode handshake: carries the initiator's push and asks for one back."""

    push: EmbeddingPush

    def size_bytes(self) -> float:
        return self.push.size_bytes() + 8.0


class AsyncDiffusionNode(SimNode):
    """A node participating in the asynchronous PPR diffusion."""

    def __init__(
        self,
        node_id: int,
        personalization: np.ndarray,
        *,
        alpha: float = 0.5,
        tol: float = 1e-6,
        mode: str = "push",
        period: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(node_id)
        check_probability(alpha, "alpha")
        if alpha == 0.0:
            raise ValueError("alpha must be positive")
        check_positive(tol, "tol")
        check_positive(period, "period")
        if mode not in ("push", "periodic"):
            raise ValueError(f"mode must be 'push' or 'periodic', got {mode!r}")
        self.alpha = float(alpha)
        self.tol = float(tol)
        self.mode = mode
        self.period = float(period)
        self.rng = rng or np.random.default_rng()
        self.personalization = np.asarray(personalization, dtype=np.float64).copy()
        self.estimate = self.alpha * self.personalization
        self.neighbor_estimates: dict[int, np.ndarray] = {}
        self.neighbor_degrees: dict[int, int] = {}
        self._last_broadcast: np.ndarray | None = None
        self._flush_scheduled = False
        # Broadcast coalescing window: pushes triggered by a burst of incoming
        # updates are merged into one outgoing broadcast per node, keeping
        # message cost ~O(edges) per convergence round instead of O(Σ deg²).
        self.flush_delay = 0.25 * self.period

    # ------------------------------------------------------------- protocol

    def _current_push(self) -> EmbeddingPush:
        return EmbeddingPush(self.estimate.copy(), len(self.neighbors()))

    def recompute(self) -> float:
        """Apply the local fixed-point update; returns the estimate change."""
        aggregate = np.zeros_like(self.personalization)
        for neighbor in self.neighbors():
            cached = self.neighbor_estimates.get(neighbor)
            if cached is None:
                continue
            degree = self.neighbor_degrees.get(neighbor, 0)
            if degree > 0:
                aggregate += cached / degree
        updated = self.alpha * self.personalization + (1.0 - self.alpha) * aggregate
        change = float(np.max(np.abs(updated - self.estimate))) if updated.size else 0.0
        self.estimate = updated
        return change

    def broadcast(self) -> None:
        """Push the current estimate (and degree) to every neighbor."""
        push = self._current_push()
        for neighbor in self.neighbors():
            self.send(neighbor, push)
        self._last_broadcast = self.estimate.copy()

    def _maybe_broadcast(self) -> None:
        if self._last_broadcast is None:
            self.broadcast()
            return
        drift = float(np.max(np.abs(self.estimate - self._last_broadcast)))
        if drift > self.tol and not self._flush_scheduled:
            self._flush_scheduled = True
            self.set_timer(self.flush_delay, "flush")

    def _absorb(self, src: int, push: EmbeddingPush) -> None:
        self.neighbor_estimates[src] = np.asarray(push.vector, dtype=np.float64)
        self.neighbor_degrees[src] = int(push.degree)

    # ---------------------------------------------------------------- hooks

    def on_start(self) -> None:
        self.recompute()
        if self.mode == "push":
            self.broadcast()
        else:
            self.broadcast()  # seed caches so early exchanges are informed
            self._schedule_wakeup()

    def _schedule_wakeup(self) -> None:
        self.set_timer(float(self.rng.exponential(self.period)), "wakeup")

    def on_timer(self, tag: Any) -> None:
        if tag == "flush":
            self._flush_scheduled = False
            if self._last_broadcast is None or float(
                np.max(np.abs(self.estimate - self._last_broadcast))
            ) > self.tol:
                self.broadcast()
            return
        if tag != "wakeup" or self.mode != "periodic":
            return
        neighbors = self.neighbors()
        if neighbors:
            partner = neighbors[int(self.rng.integers(len(neighbors)))]
            self.recompute()
            self.send(partner, ExchangeRequest(self._current_push()))
        self._schedule_wakeup()

    def on_message(self, src: int, message: Any) -> None:
        if isinstance(message, ExchangeRequest):
            self._absorb(src, message.push)
            self.recompute()
            self.send(src, self._current_push())
            return
        if isinstance(message, EmbeddingPush):
            self._absorb(src, message)
            self.recompute()
            if self.mode == "push":
                self._maybe_broadcast()
            return
        if isinstance(message, DegreeAnnounce):
            self.neighbor_degrees[src] = int(message.degree)
            self.recompute()
            if self.mode == "push":
                self._maybe_broadcast()

    def on_neighbor_added(self, neighbor: int) -> None:
        # The local degree changed, so every neighbor's weight for this node
        # changed too: re-push to everyone (the push carries the new degree).
        self.recompute()
        self.broadcast()

    def on_neighbor_removed(self, neighbor: int) -> None:
        self.neighbor_estimates.pop(neighbor, None)
        self.neighbor_degrees.pop(neighbor, None)
        self.recompute()
        if self.neighbors():
            self.broadcast()

    # ------------------------------------------------------------- mutation

    def set_personalization(self, personalization: np.ndarray) -> None:
        """Replace the local document summary (paper: collection updates)."""
        self.personalization = np.asarray(personalization, dtype=np.float64).copy()
        self.recompute()
        if self.mode == "push":
            self._maybe_broadcast()


@dataclass(frozen=True)
class AsyncDiffusionOutcome:
    """Result of running the asynchronous diffusion to quiescence/horizon."""

    embeddings: np.ndarray
    node_ids: list[int]
    events: int
    messages: int
    bytes: float
    time: float
    residual: float


class AsyncPPRDiffusion:
    """Orchestrates a network of :class:`AsyncDiffusionNode` actors.

    This is the decentralized counterpart of
    ``PersonalizedPageRank(alpha).apply(transition_matrix(G), E0)``; it also
    exposes churn operations (join / leave / collection updates) that the
    closed form cannot express.
    """

    def __init__(
        self,
        topology: CompressedAdjacency,
        personalization: np.ndarray,
        *,
        alpha: float = 0.5,
        tol: float = 1e-6,
        mode: str = "push",
        period: float = 1.0,
        latency: LatencyModel | None = None,
        loss_probability: float = 0.0,
        seed: RngLike = None,
    ) -> None:
        personalization = np.asarray(personalization, dtype=np.float64)
        if personalization.ndim == 1:
            personalization = personalization[:, None]
        if personalization.shape[0] != topology.n_nodes:
            raise ValueError(
                f"personalization has {personalization.shape[0]} rows for "
                f"{topology.n_nodes} nodes"
            )
        if loss_probability and mode == "push":
            raise ValueError(
                "push mode has no retransmission and can stall under loss; "
                "use mode='periodic' when injecting message loss"
            )
        self.alpha = float(alpha)
        self.tol = float(tol)
        self.dim = personalization.shape[1]
        rngs = spawn_rngs(seed, topology.n_nodes + 1)
        self.network = SimNetwork(
            topology,
            latency=latency,
            drop_probability=loss_probability,
            seed=rngs[0],
        )
        for node_id in range(topology.n_nodes):
            node = AsyncDiffusionNode(
                node_id,
                personalization[node_id],
                alpha=alpha,
                tol=tol,
                mode=mode,
                period=period,
                rng=rngs[node_id + 1],
            )
            self.network.attach(node)
        self._extra_rng = ensure_rng(seed)

    # ----------------------------------------------------------------- churn

    def join_node(
        self,
        node_id: int,
        neighbors: list[int],
        personalization: np.ndarray,
        *,
        mode: str = "push",
    ) -> AsyncDiffusionNode:
        """Add a node with its links and personalization (paper: node entry)."""
        self.network.add_node(node_id)
        node = AsyncDiffusionNode(
            node_id,
            np.asarray(personalization, dtype=np.float64),
            alpha=self.alpha,
            tol=self.tol,
            mode=mode,
            rng=ensure_rng(self._extra_rng.integers(2**63 - 1)),
        )
        self.network.attach(node)
        for neighbor in neighbors:
            self.network.add_edge(node_id, neighbor)
        node.on_start()
        return node

    def leave_node(self, node_id: int) -> None:
        """Remove a node and its links (neighbors re-converge automatically)."""
        self.network.remove_node(node_id)

    def update_personalization(self, node_id: int, personalization: np.ndarray) -> None:
        """Change one node's document summary and let the change re-diffuse."""
        actor = self.network.actor(node_id)
        assert isinstance(actor, AsyncDiffusionNode)
        actor.set_personalization(personalization)

    # ------------------------------------------------------------------- run

    def run(
        self,
        *,
        until: float | None = None,
        max_events: int | None = None,
    ) -> AsyncDiffusionOutcome:
        """Run to quiescence (push mode), or to ``until``/``max_events``."""
        events = self.network.run(until=until, max_events=max_events)
        return self.snapshot(events=events)

    def snapshot(self, *, events: int = 0) -> AsyncDiffusionOutcome:
        """Collect the current estimates and convergence residual."""
        node_ids = sorted(self.network.actors)
        embeddings = np.vstack(
            [self.network.actor(node_id).estimate for node_id in node_ids]
        )
        personalization = np.vstack(
            [self.network.actor(node_id).personalization for node_id in node_ids]
        )
        adjacency = self.network.to_adjacency()
        operator = transition_matrix(adjacency, "column")
        residual = fixed_point_residual(
            operator, embeddings, personalization, self.alpha
        )
        return AsyncDiffusionOutcome(
            embeddings=embeddings,
            node_ids=node_ids,
            events=events,
            messages=self.network.stats.messages,
            bytes=self.network.stats.bytes,
            time=self.network.now,
            residual=residual,
        )

    def node(self, node_id: int) -> AsyncDiffusionNode:
        actor = self.network.actor(node_id)
        assert isinstance(actor, AsyncDiffusionNode)
        return actor
