"""The simulated P2P network: topology, message delivery, accounting.

Topology is mutable (churn support); message sends are only permitted along
current edges, mirroring a real overlay where a node can only talk to peers
it holds connections to.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable, Iterable

import numpy as np

from repro.graphs.adjacency import CompressedAdjacency
from repro.runtime.events import EventQueue
from repro.runtime.node import SimNode
from repro.utils import check_non_negative, check_probability, ensure_rng
from repro.utils.rng import RngLike

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.faults import FaultInjector


@dataclass(frozen=True)
class LatencyModel:
    """Per-message link delay: ``base + Uniform(0, jitter)`` time units."""

    base: float = 1.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        check_non_negative(self.base, "base")
        check_non_negative(self.jitter, "jitter")

    def sample(self, rng: np.random.Generator) -> float:
        if self.jitter == 0.0:
            return self.base
        return self.base + float(rng.uniform(0.0, self.jitter))


@dataclass
class TrafficStats:
    """Message and (approximate) byte accounting for a simulation run.

    ``by_type`` counts sends per message class; dropped messages are
    *additionally* counted under a ``dropped:``-prefixed key, so per-type
    loss is observable (a protocol that tolerates losing ``EmbeddingPush``
    but not ``QueryResponse`` can tell the two apart).
    """

    messages: int = 0
    bytes: float = 0.0
    dropped: int = 0
    duplicated: int = 0
    by_type: dict[str, int] = field(default_factory=dict)

    def record(self, message: Any) -> None:
        self.messages += 1
        self.bytes += float(getattr(message, "size_bytes", lambda: 64.0)())
        name = type(message).__name__
        self.by_type[name] = self.by_type.get(name, 0) + 1

    def record_dropped(self, message: Any) -> None:
        """Count one lost message (already recorded as sent by :meth:`record`)."""
        self.dropped += 1
        name = f"dropped:{type(message).__name__}"
        self.by_type[name] = self.by_type.get(name, 0) + 1


class SimNetwork:
    """Event-driven network of :class:`SimNode` actors.

    Parameters
    ----------
    topology:
        Initial undirected topology; nodes are the internal ids ``0..n-1``.
    latency:
        Link delay model applied to every message.
    drop_probability:
        Independent probability that any message is silently dropped in
        flight (failure injection).  Protocols relying on periodic
        retransmission (e.g. periodic-mode gossip) tolerate loss; one-shot
        push protocols may stall, which tests exercise deliberately.
        (``loss_probability`` is accepted as a legacy alias.)
    seed:
        Seeds latency jitter and loss draws (and nothing else — node logic
        draws from its own streams so traffic noise never perturbs protocol
        randomness).

    Richer failure modes — node crash/recover schedules, per-message
    duplication and extra delay — are injected by installing a
    :class:`repro.runtime.faults.FaultInjector`
    (``injector.install(network)``) rather than through constructor knobs.
    """

    def __init__(
        self,
        topology: CompressedAdjacency,
        *,
        latency: LatencyModel | None = None,
        drop_probability: float = 0.0,
        loss_probability: float | None = None,
        seed: RngLike = None,
    ) -> None:
        if loss_probability is not None:
            warnings.warn(
                "loss_probability is deprecated; use drop_probability",
                DeprecationWarning,
                stacklevel=2,
            )
            if drop_probability not in (0.0, loss_probability):
                raise ValueError(
                    f"conflicting drop_probability={drop_probability} and "
                    f"legacy loss_probability={loss_probability}; pass only "
                    "drop_probability"
                )
            drop_probability = loss_probability
        check_probability(drop_probability, "drop_probability")
        if drop_probability >= 1.0:
            raise ValueError("drop_probability must be < 1 (nothing would arrive)")
        self.queue = EventQueue()
        self.latency = latency or LatencyModel()
        self.drop_probability = float(drop_probability)
        self._rng = ensure_rng(seed)
        self._adjacency: dict[int, set[int]] = {
            u: set(int(v) for v in topology.neighbors(u))
            for u in range(topology.n_nodes)
        }
        self._nodes: dict[int, SimNode] = {}
        self._down: set[int] = set()
        self._fault_injector: "FaultInjector | None" = None
        self.stats = TrafficStats()
        self._started = False

    @property
    def loss_probability(self) -> float:
        """Legacy alias of :attr:`drop_probability`."""
        return self.drop_probability

    # ------------------------------------------------------------- topology

    @property
    def node_ids(self) -> list[int]:
        return sorted(self._adjacency)

    def neighbors_of(self, node_id: int) -> list[int]:
        """Sorted neighbor list of ``node_id`` (live topology)."""
        return sorted(self._adjacency[node_id])

    def degree_of(self, node_id: int) -> int:
        return len(self._adjacency[node_id])

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adjacency.get(u, ())

    def add_node(self, node_id: int) -> None:
        """Add an isolated node to the topology (churn: join)."""
        if node_id in self._adjacency:
            raise ValueError(f"node {node_id} already exists")
        self._adjacency[int(node_id)] = set()

    def remove_node(self, node_id: int) -> None:
        """Remove a node and its incident edges (churn: leave)."""
        for neighbor in list(self._adjacency[node_id]):
            self.remove_edge(node_id, neighbor)
        del self._adjacency[node_id]
        self._nodes.pop(node_id, None)

    def add_edge(self, u: int, v: int) -> None:
        """Add an edge, notifying both endpoint actors."""
        if u == v:
            raise ValueError("self-loops are not allowed")
        if v in self._adjacency[u]:
            return
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        for node_id, other in ((u, v), (v, u)):
            actor = self._nodes.get(node_id)
            if actor is not None and self._started:
                actor.on_neighbor_added(other)

    def remove_edge(self, u: int, v: int) -> None:
        """Remove an edge, notifying both endpoint actors."""
        if v not in self._adjacency.get(u, ()):
            return
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        for node_id, other in ((u, v), (v, u)):
            actor = self._nodes.get(node_id)
            if actor is not None and self._started:
                actor.on_neighbor_removed(other)

    # ------------------------------------------------------------- failures

    def set_fault_injector(self, injector: "FaultInjector | None") -> None:
        """Register the per-message fault hook (see :mod:`repro.runtime.faults`)."""
        self._fault_injector = injector

    def fail_node(self, node_id: int) -> None:
        """Crash ``node_id``: it stops sending, receiving, and firing timers.

        Unlike :meth:`remove_node` (churn: a voluntary, announced leave),
        a crash keeps the topology intact — neighbors still *believe* the
        links exist, exactly the condition failure detection in the query
        path has to handle.
        """
        if node_id not in self._adjacency:
            raise ValueError(f"node {node_id} is not in the topology")
        self._down.add(int(node_id))

    def restore_node(self, node_id: int) -> None:
        """Bring a crashed node back (protocol state is whatever it was)."""
        self._down.discard(int(node_id))

    def is_down(self, node_id: int) -> bool:
        return node_id in self._down

    @property
    def down_nodes(self) -> frozenset[int]:
        return frozenset(self._down)

    def to_adjacency(self) -> CompressedAdjacency:
        """Snapshot the live topology as a :class:`CompressedAdjacency`."""
        nodes = sorted(self._adjacency)
        index = {label: i for i, label in enumerate(nodes)}
        edges = [
            (index[u], index[v])
            for u in nodes
            for v in self._adjacency[u]
            if u < v
        ]
        adjacency = CompressedAdjacency.from_edges(len(nodes), edges)
        return CompressedAdjacency(adjacency.indptr, adjacency.indices, nodes)

    # ---------------------------------------------------------------- actors

    def attach(self, node: SimNode) -> None:
        """Register an actor for an existing topology node."""
        if node.node_id not in self._adjacency:
            raise ValueError(f"node {node.node_id} is not in the topology")
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id} already has an actor")
        self._nodes[node.node_id] = node
        node.attach(self)
        if self._started:
            node.on_start()

    def attach_all(self, nodes: Iterable[SimNode]) -> None:
        for node in nodes:
            self.attach(node)

    def actor(self, node_id: int) -> SimNode:
        return self._nodes[node_id]

    @property
    def actors(self) -> dict[int, SimNode]:
        return dict(self._nodes)

    # -------------------------------------------------------------- messaging

    @property
    def now(self) -> float:
        return self.queue.now

    def send(self, src: int, dst: int, message: Any) -> None:
        """Deliver ``message`` from ``src`` to adjacent ``dst`` after latency."""
        if dst not in self._adjacency.get(src, ()):
            raise ValueError(f"no edge {src} -> {dst}; nodes may only message neighbors")
        if src in self._down:
            # A crashed process produces no traffic; whatever event tried to
            # send on its behalf is void.
            return
        self.stats.record(message)
        if self.drop_probability and self._rng.random() < self.drop_probability:
            self.stats.record_dropped(message)
            return
        copies, extra_delay = 1, 0.0
        if self._fault_injector is not None:
            decision = self._fault_injector.decide(src, dst, self.now)
            if not decision.deliver:
                self.stats.record_dropped(message)
                return
            copies = int(decision.copies)
            extra_delay = float(decision.extra_delay)
            if copies > 1:
                self.stats.duplicated += copies - 1

        def deliver() -> None:
            actor = self._nodes.get(dst)
            # The destination may have left the network while in flight —
            # or crashed, in which case the message is lost on arrival.
            if dst in self._down:
                self.stats.record_dropped(message)
                return
            if actor is not None and self.has_edge(src, dst):
                actor.on_message(src, message)

        for _ in range(copies):
            delay = self.latency.sample(self._rng) + extra_delay
            self.queue.schedule(delay, deliver)

    def schedule_timer(self, node_id: int, delay: float, tag: Hashable):
        """Schedule a timer callback on ``node_id`` (skipped while crashed)."""

        def fire() -> None:
            actor = self._nodes.get(node_id)
            if actor is not None and node_id not in self._down:
                actor.on_timer(tag)

        return self.queue.schedule(delay, fire)

    # ------------------------------------------------------------------- run

    def start(self) -> None:
        """Invoke ``on_start`` on all attached actors (idempotent)."""
        if self._started:
            return
        self._started = True
        for node_id in sorted(self._nodes):
            self._nodes[node_id].on_start()

    def run(
        self,
        *,
        until: float | None = None,
        max_events: int | None = None,
    ) -> int:
        """Start (if needed) and dispatch events; returns events dispatched."""
        self.start()
        return self.queue.run(until=until, max_events=max_events)
