"""The simulated P2P network: topology, message delivery, accounting.

Topology is mutable (churn support); message sends are only permitted along
current edges, mirroring a real overlay where a node can only talk to peers
it holds connections to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable

import numpy as np

from repro.graphs.adjacency import CompressedAdjacency
from repro.runtime.events import EventQueue
from repro.runtime.node import SimNode
from repro.utils import check_non_negative, ensure_rng
from repro.utils.rng import RngLike


@dataclass(frozen=True)
class LatencyModel:
    """Per-message link delay: ``base + Uniform(0, jitter)`` time units."""

    base: float = 1.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        check_non_negative(self.base, "base")
        check_non_negative(self.jitter, "jitter")

    def sample(self, rng: np.random.Generator) -> float:
        if self.jitter == 0.0:
            return self.base
        return self.base + float(rng.uniform(0.0, self.jitter))


@dataclass
class TrafficStats:
    """Message and (approximate) byte accounting for a simulation run."""

    messages: int = 0
    bytes: float = 0.0
    dropped: int = 0
    by_type: dict[str, int] = field(default_factory=dict)

    def record(self, message: Any) -> None:
        self.messages += 1
        self.bytes += float(getattr(message, "size_bytes", lambda: 64.0)())
        name = type(message).__name__
        self.by_type[name] = self.by_type.get(name, 0) + 1


class SimNetwork:
    """Event-driven network of :class:`SimNode` actors.

    Parameters
    ----------
    topology:
        Initial undirected topology; nodes are the internal ids ``0..n-1``.
    latency:
        Link delay model applied to every message.
    loss_probability:
        Independent probability that any message is silently dropped in
        flight (failure injection).  Protocols relying on periodic
        retransmission (e.g. periodic-mode gossip) tolerate loss; one-shot
        push protocols may stall, which tests exercise deliberately.
    seed:
        Seeds latency jitter and loss draws (and nothing else — node logic
        draws from its own streams so traffic noise never perturbs protocol
        randomness).
    """

    def __init__(
        self,
        topology: CompressedAdjacency,
        *,
        latency: LatencyModel | None = None,
        loss_probability: float = 0.0,
        seed: RngLike = None,
    ) -> None:
        check_non_negative(loss_probability, "loss_probability")
        if loss_probability >= 1.0:
            raise ValueError("loss_probability must be < 1 (nothing would arrive)")
        self.queue = EventQueue()
        self.latency = latency or LatencyModel()
        self.loss_probability = float(loss_probability)
        self._rng = ensure_rng(seed)
        self._adjacency: dict[int, set[int]] = {
            u: set(int(v) for v in topology.neighbors(u))
            for u in range(topology.n_nodes)
        }
        self._nodes: dict[int, SimNode] = {}
        self.stats = TrafficStats()
        self._started = False

    # ------------------------------------------------------------- topology

    @property
    def node_ids(self) -> list[int]:
        return sorted(self._adjacency)

    def neighbors_of(self, node_id: int) -> list[int]:
        """Sorted neighbor list of ``node_id`` (live topology)."""
        return sorted(self._adjacency[node_id])

    def degree_of(self, node_id: int) -> int:
        return len(self._adjacency[node_id])

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adjacency.get(u, ())

    def add_node(self, node_id: int) -> None:
        """Add an isolated node to the topology (churn: join)."""
        if node_id in self._adjacency:
            raise ValueError(f"node {node_id} already exists")
        self._adjacency[int(node_id)] = set()

    def remove_node(self, node_id: int) -> None:
        """Remove a node and its incident edges (churn: leave)."""
        for neighbor in list(self._adjacency[node_id]):
            self.remove_edge(node_id, neighbor)
        del self._adjacency[node_id]
        self._nodes.pop(node_id, None)

    def add_edge(self, u: int, v: int) -> None:
        """Add an edge, notifying both endpoint actors."""
        if u == v:
            raise ValueError("self-loops are not allowed")
        if v in self._adjacency[u]:
            return
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        for node_id, other in ((u, v), (v, u)):
            actor = self._nodes.get(node_id)
            if actor is not None and self._started:
                actor.on_neighbor_added(other)

    def remove_edge(self, u: int, v: int) -> None:
        """Remove an edge, notifying both endpoint actors."""
        if v not in self._adjacency.get(u, ()):
            return
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        for node_id, other in ((u, v), (v, u)):
            actor = self._nodes.get(node_id)
            if actor is not None and self._started:
                actor.on_neighbor_removed(other)

    def to_adjacency(self) -> CompressedAdjacency:
        """Snapshot the live topology as a :class:`CompressedAdjacency`."""
        nodes = sorted(self._adjacency)
        index = {label: i for i, label in enumerate(nodes)}
        edges = [
            (index[u], index[v])
            for u in nodes
            for v in self._adjacency[u]
            if u < v
        ]
        adjacency = CompressedAdjacency.from_edges(len(nodes), edges)
        return CompressedAdjacency(adjacency.indptr, adjacency.indices, nodes)

    # ---------------------------------------------------------------- actors

    def attach(self, node: SimNode) -> None:
        """Register an actor for an existing topology node."""
        if node.node_id not in self._adjacency:
            raise ValueError(f"node {node.node_id} is not in the topology")
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id} already has an actor")
        self._nodes[node.node_id] = node
        node.attach(self)
        if self._started:
            node.on_start()

    def attach_all(self, nodes: Iterable[SimNode]) -> None:
        for node in nodes:
            self.attach(node)

    def actor(self, node_id: int) -> SimNode:
        return self._nodes[node_id]

    @property
    def actors(self) -> dict[int, SimNode]:
        return dict(self._nodes)

    # -------------------------------------------------------------- messaging

    @property
    def now(self) -> float:
        return self.queue.now

    def send(self, src: int, dst: int, message: Any) -> None:
        """Deliver ``message`` from ``src`` to adjacent ``dst`` after latency."""
        if dst not in self._adjacency.get(src, ()):
            raise ValueError(f"no edge {src} -> {dst}; nodes may only message neighbors")
        self.stats.record(message)
        if self.loss_probability and self._rng.random() < self.loss_probability:
            self.stats.dropped += 1
            return
        delay = self.latency.sample(self._rng)

        def deliver() -> None:
            actor = self._nodes.get(dst)
            # The destination may have left the network while in flight.
            if actor is not None and self.has_edge(src, dst):
                actor.on_message(src, message)

        self.queue.schedule(delay, deliver)

    def schedule_timer(self, node_id: int, delay: float, tag: Hashable):
        """Schedule a timer callback on ``node_id``."""

        def fire() -> None:
            actor = self._nodes.get(node_id)
            if actor is not None:
                actor.on_timer(tag)

        return self.queue.schedule(delay, fire)

    # ------------------------------------------------------------------- run

    def start(self) -> None:
        """Invoke ``on_start`` on all attached actors (idempotent)."""
        if self._started:
            return
        self._started = True
        for node_id in sorted(self._nodes):
            self._nodes[node_id].on_start()

    def run(
        self,
        *,
        until: float | None = None,
        max_events: int | None = None,
    ) -> int:
        """Start (if needed) and dispatch events; returns events dispatched."""
        self.start()
        return self.queue.run(until=until, max_events=max_events)
