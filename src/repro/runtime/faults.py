"""Deterministic fault injection for the simulated P2P overlay.

The paper's evaluation assumes every peer answers and every message
arrives; a real overlay has neither.  This module defines the failure
taxonomy the rest of the stack is hardened against, as *data* — a seeded
:class:`FaultPlan` — plus the :class:`FaultInjector` that drives it, so a
faulty run is exactly reproducible from ``(plan, workload, seed)``:

- **node crash / recover** — a crashed node neither receives, evaluates,
  nor forwards anything; its incident links are effectively dark for the
  duration of its :class:`CrashWindow`.
- **message drop** — independent per-message Bernoulli loss on top of
  whatever the network's own ``drop_probability`` models.
- **message delay** — extra per-message latency, ``Uniform(0, extra_delay)``.
- **message duplication** — per-message Bernoulli duplication (the
  at-least-once failure mode of retransmitting transports).
- **zombie peers** — nodes that stay up and keep routing but serve *stale*
  embeddings: their local evaluation is worthless even though the walk
  passes straight through them.

Two consumers, one plan:

- the synchronous walk engine (:func:`repro.core.engine.run_query`) asks
  point questions — :meth:`FaultInjector.alive` with the hop index as the
  logical time, :meth:`FaultInjector.deliver` per forwarding attempt;
- the event-driven runtime gets the same plan scheduled through the
  :class:`~repro.runtime.events.EventQueue`:
  :meth:`FaultInjector.install` registers crash/recover events on a
  :class:`~repro.runtime.network.SimNetwork` and hooks its per-message
  drop/delay/duplication decisions.

Both paths draw from the injector's own seeded generator, never from the
protocol's, so injecting faults perturbs *only* the failures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.utils import check_non_negative, check_probability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.network import SimNetwork

__all__ = [
    "CrashWindow",
    "FaultDecision",
    "FaultPlan",
    "FaultInjector",
    "choose_live_starts",
]


@dataclass(frozen=True)
class CrashWindow:
    """One node's downtime interval ``[start, end)`` (``end=inf``: permanent)."""

    node: int
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        check_non_negative(self.start, "start")
        if self.end <= self.start:
            raise ValueError(
                f"crash window must end after it starts, got "
                f"[{self.start}, {self.end})"
            )

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class FaultDecision:
    """Per-message verdict handed back to the network's send path."""

    deliver: bool = True
    copies: int = 1
    extra_delay: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable schedule of faults for one overlay.

    The plan is pure data — it can be generated
    (:meth:`generate`), constructed explicitly for targeted tests, hashed
    into experiment configs, and replayed exactly.  Probabilities apply
    per message; crashes are time windows; ``zombies`` are node ids that
    answer with stale embeddings for the whole run.
    """

    n_nodes: int
    crashes: tuple[CrashWindow, ...] = ()
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    extra_delay: float = 0.0
    zombies: frozenset[int] = frozenset()
    seed: int = 0

    def __post_init__(self) -> None:
        check_probability(self.drop_probability, "drop_probability")
        check_probability(self.duplicate_probability, "duplicate_probability")
        check_non_negative(self.extra_delay, "extra_delay")
        for window in self.crashes:
            if not 0 <= window.node < self.n_nodes:
                raise ValueError(
                    f"crash window node {window.node} out of range "
                    f"[0, {self.n_nodes})"
                )
        for node in self.zombies:
            if not 0 <= node < self.n_nodes:
                raise ValueError(
                    f"zombie node {node} out of range [0, {self.n_nodes})"
                )

    # ----------------------------------------------------------- inspection

    def crashed_at(self, node: int, time: float) -> bool:
        """Is ``node`` inside any of its crash windows at ``time``?"""
        return any(w.node == node and w.covers(time) for w in self.crashes)

    def crashed_nodes(self, time: float) -> frozenset[int]:
        """All nodes down at ``time``."""
        return frozenset(w.node for w in self.crashes if w.covers(time))

    def is_zombie(self, node: int) -> bool:
        return node in self.zombies

    def live_nodes(self, time: float = 0.0) -> list[int]:
        """Node ids not crashed at ``time`` (zombies count as live)."""
        down = self.crashed_nodes(time)
        return [n for n in range(self.n_nodes) if n not in down]

    @property
    def is_trivial(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            not self.crashes
            and not self.zombies
            and self.drop_probability == 0.0
            and self.duplicate_probability == 0.0
            and self.extra_delay == 0.0
        )

    # ----------------------------------------------------------- generation

    @classmethod
    def generate(
        cls,
        n_nodes: int,
        *,
        crash_fraction: float = 0.0,
        crash_start: float = 0.0,
        recover_after: float = math.inf,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        extra_delay: float = 0.0,
        zombie_fraction: float = 0.0,
        protect: Iterable[int] = (),
        seed: int = 0,
    ) -> "FaultPlan":
        """Sample a plan: which nodes crash (and when) is a function of ``seed``.

        ``crash_fraction`` of the eligible nodes (everything except
        ``protect``) crash at ``crash_start`` and recover ``recover_after``
        time units later (never, by default).  ``zombie_fraction`` of the
        *remaining* live nodes serve stale embeddings.  The two sets are
        disjoint — a crashed node cannot also be a zombie.
        """
        check_probability(crash_fraction, "crash_fraction")
        check_probability(zombie_fraction, "zombie_fraction")
        rng = np.random.default_rng(seed)
        protected = set(int(p) for p in protect)
        eligible = np.asarray(
            [n for n in range(n_nodes) if n not in protected], dtype=np.int64
        )
        n_crashed = int(round(crash_fraction * eligible.shape[0]))
        crashed = (
            np.sort(rng.choice(eligible, size=n_crashed, replace=False))
            if n_crashed
            else np.empty(0, dtype=np.int64)
        )
        end = (
            math.inf
            if math.isinf(recover_after)
            else crash_start + float(recover_after)
        )
        remaining = np.asarray(
            sorted(set(eligible.tolist()) - set(crashed.tolist())),
            dtype=np.int64,
        )
        n_zombies = int(round(zombie_fraction * remaining.shape[0]))
        zombies = (
            np.sort(rng.choice(remaining, size=n_zombies, replace=False))
            if n_zombies
            else np.empty(0, dtype=np.int64)
        )
        return cls(
            n_nodes=n_nodes,
            crashes=tuple(
                CrashWindow(int(node), float(crash_start), end)
                for node in crashed
            ),
            drop_probability=float(drop_probability),
            duplicate_probability=float(duplicate_probability),
            extra_delay=float(extra_delay),
            zombies=frozenset(int(z) for z in zombies),
            seed=int(seed),
        )


@dataclass
class FaultInjector:
    """Executes a :class:`FaultPlan`: answers liveness/delivery questions.

    Holds the one seeded generator all fault draws come from, plus counters
    for reporting.  Draws happen in call order, which both consumers make
    deterministic (the engine processes walkers in frontier order; the
    network in event order), so a run is reproducible from the plan seed.
    :meth:`reset` rewinds the stream for an exact replay.
    """

    plan: FaultPlan
    _rng: np.random.Generator = field(init=False, repr=False)
    dropped: int = field(default=0, init=False)
    duplicated: int = field(default=0, init=False)
    crash_detections: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.plan.seed)

    def reset(self) -> None:
        """Rewind the fault stream and counters for an exact replay."""
        self._rng = np.random.default_rng(self.plan.seed)
        self.dropped = 0
        self.duplicated = 0
        self.crash_detections = 0

    # ----------------------------------------------- synchronous-engine API

    def alive(self, node: int, time: float) -> bool:
        """Is ``node`` up at ``time``?  (The walk engine passes hop indices.)"""
        return not self.plan.crashed_at(node, time)

    def is_zombie(self, node: int) -> bool:
        return self.plan.is_zombie(node)

    def deliver(self, src: int, dst: int) -> bool:
        """Draw the drop lottery for one message attempt on link src→dst."""
        if (
            self.plan.drop_probability
            and self._rng.random() < self.plan.drop_probability
        ):
            self.dropped += 1
            return False
        return True

    def note_crash_detection(self) -> None:
        """Count one detected-dead-peer event (engine bookkeeping)."""
        self.crash_detections += 1

    # ------------------------------------------------- event-driven API

    def decide(self, src: int, dst: int, time: float) -> FaultDecision:
        """Full per-message verdict for the :class:`SimNetwork` send path."""
        if not self.deliver(src, dst):
            return FaultDecision(deliver=False)
        copies = 1
        if (
            self.plan.duplicate_probability
            and self._rng.random() < self.plan.duplicate_probability
        ):
            copies = 2
            self.duplicated += 1
        extra = 0.0
        if self.plan.extra_delay:
            extra = float(self._rng.uniform(0.0, self.plan.extra_delay))
        return FaultDecision(deliver=True, copies=copies, extra_delay=extra)

    def install(self, network: "SimNetwork") -> "FaultInjector":
        """Wire this injector into an event-driven network.

        Registers the per-message hook and schedules every crash/recover
        transition through the network's :class:`EventQueue`, so fault
        timing participates in the same deterministic (time, seq) order as
        protocol traffic.  Windows already open at the current simulation
        time take effect immediately.
        """
        network.set_fault_injector(self)
        for window in self.plan.crashes:
            if window.covers(network.now):
                network.fail_node(window.node)
            elif window.start > network.now:
                network.queue.schedule_at(
                    window.start,
                    lambda node=window.node: network.fail_node(node),
                )
            if not math.isinf(window.end) and window.end > network.now:
                network.queue.schedule_at(
                    window.end,
                    lambda node=window.node: network.restore_node(node),
                )
        return self

    # ------------------------------------------------------------- helpers

    def pick_live_start(
        self, rng: np.random.Generator, time: float = 0.0
    ) -> int:
        """Sample a non-crashed start node (a dead user issues no queries)."""
        live = self.plan.live_nodes(time)
        if not live:
            raise ValueError("every node is crashed; no live start node")
        return int(live[int(rng.integers(0, len(live)))])


def choose_live_starts(
    plan: FaultPlan,
    n: int,
    rng: np.random.Generator,
    *,
    time: float = 0.0,
) -> np.ndarray:
    """Sample ``n`` query start nodes among the nodes live at ``time``."""
    live = np.asarray(plan.live_nodes(time), dtype=np.int64)
    if live.size == 0:
        raise ValueError("every node is crashed; no live start node")
    return live[rng.integers(0, live.size, size=n)]
