"""Per-figure/table experiment drivers (CLI entry points).

Run with ``python -m repro.experiments.fig3_accuracy [--full]`` etc.  Without
``--full`` (or ``REPRO_FULL=1``) the drivers use a scaled-down configuration
that preserves the shapes the paper reports while completing in minutes; with
it they run the paper-scale setup (4,039-node graph, 1,000 queries, 500
Table-I iterations).
"""

from repro.experiments.common import ExperimentEnvironment, get_environment

__all__ = ["ExperimentEnvironment", "get_environment"]
