"""Shared experiment setup: graph, embedding model, workload.

The environment is cached per (full, placement needs) so the benchmark suite
builds the graph and workload once and reuses them across benches.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

import networkx as nx

from repro.embeddings.model import WordEmbeddingModel
from repro.embeddings.synthetic import SyntheticCorpusConfig, synthetic_word_embeddings
from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.social import FacebookLikeConfig, facebook_like_graph
from repro.simulation.workload import RetrievalWorkload, build_workload

ENV_FULL = "REPRO_FULL"

#: Paper parameters (§V): Facebook graph, 300-d vectors, 1000 queries, cos>0.6
FULL_GRAPH = FacebookLikeConfig(n_nodes=4039, target_edges=88234, n_egos=10)
FULL_EMBEDDINGS = SyntheticCorpusConfig(
    n_words=30_000, dim=300, n_clusters=2_000, intra_cluster_cosine=0.72
)
FULL_QUERIES = 1000

#: Scaled configuration: same shape, minutes instead of hours.
SCALED_GRAPH = FacebookLikeConfig(n_nodes=1200, target_edges=26000, n_egos=10)
SCALED_EMBEDDINGS = SyntheticCorpusConfig(
    n_words=18_000, dim=300, n_clusters=1_200, intra_cluster_cosine=0.72
)
SCALED_QUERIES = 300

GOLD_THRESHOLD = 0.6  # paper §V-B
SETUP_SEED = 20220427  # arXiv submission date of the paper


def full_requested() -> bool:
    """True when the paper-scale configuration was requested via env var."""
    return os.environ.get(ENV_FULL, "").strip() in ("1", "true", "yes")


@dataclass(frozen=True)
class ExperimentEnvironment:
    """Everything an experiment driver needs, built once."""

    label: str
    graph: nx.Graph
    adjacency: CompressedAdjacency
    model: WordEmbeddingModel
    workload: RetrievalWorkload

    @property
    def n_nodes(self) -> int:
        return self.adjacency.n_nodes


@lru_cache(maxsize=4)
def get_environment(full: bool = False) -> ExperimentEnvironment:
    """Build (or fetch the cached) experiment environment.

    ``full=True`` reproduces the paper-scale setup; the default is the scaled
    configuration described in DESIGN.md §5.
    """
    if full:
        graph_config, emb_config, n_queries = FULL_GRAPH, FULL_EMBEDDINGS, FULL_QUERIES
        label = "full (paper-scale)"
    else:
        graph_config, emb_config, n_queries = (
            SCALED_GRAPH,
            SCALED_EMBEDDINGS,
            SCALED_QUERIES,
        )
        label = "scaled"
    graph = facebook_like_graph(graph_config, seed=SETUP_SEED)
    adjacency = CompressedAdjacency.from_networkx(graph)
    model = synthetic_word_embeddings(emb_config, seed=SETUP_SEED + 1)
    workload = build_workload(
        model,
        n_queries=n_queries,
        threshold=GOLD_THRESHOLD,
        seed=SETUP_SEED + 2,
    )
    return ExperimentEnvironment(
        label=label,
        graph=graph,
        adjacency=adjacency,
        model=model,
        workload=workload,
    )


def resolve_full(flag: bool | None) -> bool:
    """Combine an explicit CLI flag with the environment variable."""
    if flag is None:
        return full_requested()
    return flag or full_requested()
