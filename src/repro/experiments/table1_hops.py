"""Table I driver: average hop count of successful queries.

For alpha = 0.5 and M ∈ {10, 100, 1000, 10000}: distribute 1 gold + (M−1)
irrelevant documents per iteration, launch 10 uniformly placed queries per
iteration, and report success rate plus median / mean / std hops to the gold
document over all samples (paper: 500 iterations = 5,000 samples).

Usage::

    python -m repro.experiments.table1_hops [--full] [--iterations N]
"""

from __future__ import annotations

import argparse

from repro.experiments.common import get_environment, resolve_full
from repro.simulation.metrics import HopStatistics
from repro.simulation.reporting import format_rows, write_csv
from repro.simulation.runner import run_hop_count_experiment
from repro.simulation.scenario import HopCountScenario

PAPER_DOCUMENT_COUNTS = (10, 100, 1000, 10000)

#: Table I as printed in the paper, for side-by-side comparison.
PAPER_TABLE1 = {
    10: {"success": "1905 / 5000", "median": 3, "mean": 7.62, "std": 10.83},
    100: {"success": "1265 / 5000", "median": 4, "mean": 11.21, "std": 13.37},
    1000: {"success": "1054 / 5000", "median": 9, "mean": 15.26, "std": 14.55},
    10000: {"success": "877 / 5000", "median": 9, "mean": 14.31, "std": 13.36},
}


def run_row(
    n_documents: int,
    *,
    full: bool = False,
    iterations: int | None = None,
    seed: int = 0,
) -> HopStatistics:
    """Run one Table I row."""
    env = get_environment(full)
    if iterations is None:
        iterations = 500 if full else 120
    scenario = HopCountScenario(
        n_documents=n_documents,
        alpha=0.5,
        iterations=iterations,
        queries_per_iteration=10,
        ttl=50,
        seed=seed,
    )
    return run_hop_count_experiment(env.adjacency, env.workload, scenario)


def run_all(
    *,
    full: bool = False,
    iterations: int | None = None,
    document_counts: tuple[int, ...] = PAPER_DOCUMENT_COUNTS,
) -> dict[int, HopStatistics]:
    """Run every row; returns {n_documents: statistics}."""
    return {m: run_row(m, full=full, iterations=iterations) for m in document_counts}


def render(results: dict[int, HopStatistics], label: str) -> str:
    """Measured table next to the paper's printed values."""
    rows = []
    for m, stats in results.items():
        paper = PAPER_TABLE1.get(m, {})
        rows.append(
            {
                **stats.as_row(),
                "paper success": paper.get("success", "-"),
                "paper median": paper.get("median", "-"),
                "paper mean": paper.get("mean", "-"),
            }
        )
    return format_rows(
        rows, title=f"Table I — average hop count ({label} configuration)"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale configuration")
    parser.add_argument("--iterations", type=int, default=None)
    parser.add_argument("--csv", type=str, default=None)
    args = parser.parse_args(argv)

    full = resolve_full(args.full)
    results = run_all(full=full, iterations=args.iterations)
    print(render(results, get_environment(full).label))

    if args.csv:
        write_csv(args.csv, [stats.as_row() for stats in results.values()])
        print(f"wrote {args.csv}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
