"""Time-evolving conditions: search accuracy under stale diffusion state.

The paper defers "time-evolving conditions" to future work (§V-B).  This
experiment quantifies the cost of staleness: documents keep moving after the
diffusion warm-up, and queries route on embeddings computed for the *old*
placement.  The sweep re-places a growing fraction of the documents without
re-diffusing and measures the top-1 hit rate, answering the operational
question "how often must the network re-diffuse?".

:func:`refresh_strategy_sweep` extends the question to *how* to re-diffuse:
alongside the do-nothing baseline it measures the accuracy and cost of a
full re-diffusion versus the incremental push refresh
(:mod:`repro.simulation.refresh`), which patches the old scores from the
sparse change alone.

Usage::

    python -m repro.experiments.staleness [--full] [--iterations N] [--refresh]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.engine import WalkConfig, run_query
from repro.core.forwarding import PrecomputedScorePolicy
from repro.experiments.common import get_environment, resolve_full
from repro.simulation.placement import build_stores
from repro.simulation.refresh import REFRESH_STRATEGIES, SignalRefresher
from repro.simulation.reporting import format_rows
from repro.utils.rng import spawn_rngs

DEFAULT_STALE_FRACTIONS = (0.0, 0.1, 0.25, 0.5, 1.0)


def _flatten_stores(stores):
    """Flatten per-node stores into aligned (doc_ids, embeddings, nodes)."""
    doc_ids, embeddings, nodes = [], [], []
    for node, store in stores.items():
        for doc_id in store.doc_ids:
            doc_ids.append(doc_id)
            embeddings.append(store.embedding_of(doc_id))
            nodes.append(node)
    return doc_ids, np.vstack(embeddings), np.asarray(nodes, dtype=np.int64)


def _move_fraction(nodes, fraction, n, rng):
    """Re-place a ``fraction`` of the documents on uniform random nodes."""
    moved_nodes = nodes.copy()
    n_moved = int(round(fraction * nodes.size))
    if n_moved:
        which = rng.choice(nodes.size, size=n_moved, replace=False)
        moved_nodes[which] = rng.integers(0, n, size=n_moved)
    return moved_nodes


def staleness_sweep(
    *,
    n_documents: int = 1000,
    stale_fractions: tuple[float, ...] = DEFAULT_STALE_FRACTIONS,
    alpha: float = 0.5,
    ttl: int = 50,
    starts_per_iteration: int = 4,
    full: bool = False,
    iterations: int | None = None,
) -> list[dict[str, object]]:
    """Hit rate when a fraction of documents moved after the last diffusion.

    ``stale_fraction = 0`` is the paper's setting (fresh diffusion);
    ``1.0`` means every document — including the gold — moved, so the
    diffusion hints describe a placement that no longer exists.
    """
    from repro.simulation.runner import IterationSampler

    env = get_environment(full)
    if iterations is None:
        iterations = 150 if full else 50
    sampler = IterationSampler(env.adjacency, env.workload)
    config = WalkConfig(ttl=ttl, fanout=1, k=1)
    n = env.adjacency.n_nodes

    successes = {fraction: 0 for fraction in stale_fractions}
    total = 0
    for rng in spawn_rngs(53, iterations):
        data = sampler.sample(n_documents, rng)
        # Diffusion runs on the original placement...
        scores = sampler.diffuse_scores(data.relevance_signal, alpha)
        policy = PrecomputedScorePolicy(scores)

        # ...then documents move. Rebuild the true stores per fraction.
        doc_ids, embeddings, nodes = _flatten_stores(data.stores)

        starts = rng.integers(0, n, size=starts_per_iteration)
        total += starts_per_iteration
        for fraction in stale_fractions:
            moved_nodes = _move_fraction(nodes, fraction, n, rng)
            stores = build_stores(doc_ids, embeddings, moved_nodes, env.model.dim)
            # paired design: identical starts across fractions cut variance
            for start in starts:
                result = run_query(
                    env.adjacency, stores, policy,
                    data.query_embedding, int(start), config,
                )
                successes[fraction] += result.found(data.gold_word, top=1)

    return [
        {
            "stale fraction": fraction,
            "success rate": round(successes[fraction] / total, 3),
        }
        for fraction in stale_fractions
    ]


def refresh_strategy_sweep(
    *,
    n_documents: int = 1000,
    stale_fractions: tuple[float, ...] = DEFAULT_STALE_FRACTIONS,
    strategies: tuple[str, ...] = REFRESH_STRATEGIES,
    alpha: float = 0.5,
    ttl: int = 50,
    starts_per_iteration: int = 4,
    full: bool = False,
    iterations: int | None = None,
    tol: float = 1e-8,
) -> list[dict[str, object]]:
    """Accuracy *and cost* of each refresh strategy as churn grows.

    After a fraction of the documents moves, the network can keep the stale
    scores, re-diffuse from scratch, or push only the delta.  Returns one
    row per (stale fraction, strategy) with the top-1 hit rate and the mean
    refresh cost in push sweeps / edge operations; ``full`` and
    ``incremental`` restore identical accuracy, so the edge-operation
    column is the decision-relevant number.
    """
    from repro.simulation.runner import IterationSampler

    env = get_environment(full)
    if iterations is None:
        iterations = 150 if full else 50
    sampler = IterationSampler(env.adjacency, env.workload)
    refresher = SignalRefresher(sampler.operator, alpha, tol=tol)
    config = WalkConfig(ttl=ttl, fanout=1, k=1)
    n = env.adjacency.n_nodes

    successes = {(f, s): 0 for f in stale_fractions for s in strategies}
    sweeps = {(f, s): 0 for f in stale_fractions for s in strategies}
    operations = {(f, s): 0 for f in stale_fractions for s in strategies}
    total = 0
    n_refreshes = 0
    for rng in spawn_rngs(53, iterations):
        data = sampler.sample(n_documents, rng)
        base = refresher.cold_start(data.relevance_signal)

        doc_ids, embeddings, nodes = _flatten_stores(data.stores)
        doc_scores = embeddings @ data.query_embedding

        starts = rng.integers(0, n, size=starts_per_iteration)
        total += starts_per_iteration
        n_refreshes += 1
        for fraction in stale_fractions:
            moved_nodes = _move_fraction(nodes, fraction, n, rng)
            stores = build_stores(doc_ids, embeddings, moved_nodes, env.model.dim)
            # The moved placement's relevance signal ("sum" weighting).
            moved_signal = np.bincount(
                moved_nodes, weights=doc_scores, minlength=n
            )
            for strategy in strategies:
                outcome = refresher.refresh(
                    strategy, base.scores, data.relevance_signal, moved_signal
                )
                sweeps[fraction, strategy] += outcome.sweeps
                operations[fraction, strategy] += outcome.edge_operations
                policy = PrecomputedScorePolicy(outcome.scores)
                for start in starts:
                    result = run_query(
                        env.adjacency, stores, policy,
                        data.query_embedding, int(start), config,
                    )
                    successes[fraction, strategy] += result.found(
                        data.gold_word, top=1
                    )

    return [
        {
            "stale fraction": fraction,
            "strategy": strategy,
            "success rate": round(successes[fraction, strategy] / total, 3),
            "mean sweeps": round(sweeps[fraction, strategy] / n_refreshes, 1),
            "mean edge ops": round(
                operations[fraction, strategy] / n_refreshes, 1
            ),
        }
        for fraction in stale_fractions
        for strategy in strategies
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--iterations", type=int, default=None)
    parser.add_argument("--documents", type=int, default=1000)
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="compare refresh strategies (stale / incremental / full) "
        "instead of the plain staleness sweep",
    )
    args = parser.parse_args(argv)
    if args.refresh:
        rows = refresh_strategy_sweep(
            n_documents=args.documents,
            full=resolve_full(args.full),
            iterations=args.iterations,
        )
        title = (
            f"refresh strategies under churn, M={args.documents}, alpha=0.5 "
            "(full vs incremental push re-diffusion)"
        )
    else:
        rows = staleness_sweep(
            n_documents=args.documents,
            full=resolve_full(args.full),
            iterations=args.iterations,
        )
        title = (
            f"search under stale diffusion state, M={args.documents}, "
            "alpha=0.5 (paper future work: time-evolving conditions)"
        )
    print(format_rows(rows, title=title))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
