"""Time-evolving conditions: search accuracy under stale diffusion state.

The paper defers "time-evolving conditions" to future work (§V-B).  This
experiment quantifies the cost of staleness: documents keep moving after the
diffusion warm-up, and queries route on embeddings computed for the *old*
placement.  The sweep re-places a growing fraction of the documents without
re-diffusing and measures the top-1 hit rate, answering the operational
question "how often must the network re-diffuse?".

Usage::

    python -m repro.experiments.staleness [--full] [--iterations N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core.engine import WalkConfig, run_query
from repro.core.forwarding import PrecomputedScorePolicy
from repro.experiments.common import get_environment, resolve_full
from repro.simulation.placement import build_stores
from repro.simulation.reporting import format_rows
from repro.utils.rng import spawn_rngs

DEFAULT_STALE_FRACTIONS = (0.0, 0.1, 0.25, 0.5, 1.0)


def staleness_sweep(
    *,
    n_documents: int = 1000,
    stale_fractions: tuple[float, ...] = DEFAULT_STALE_FRACTIONS,
    alpha: float = 0.5,
    ttl: int = 50,
    starts_per_iteration: int = 4,
    full: bool = False,
    iterations: int | None = None,
) -> list[dict[str, object]]:
    """Hit rate when a fraction of documents moved after the last diffusion.

    ``stale_fraction = 0`` is the paper's setting (fresh diffusion);
    ``1.0`` means every document — including the gold — moved, so the
    diffusion hints describe a placement that no longer exists.
    """
    from repro.simulation.runner import IterationSampler

    env = get_environment(full)
    if iterations is None:
        iterations = 150 if full else 50
    sampler = IterationSampler(env.adjacency, env.workload)
    config = WalkConfig(ttl=ttl, fanout=1, k=1)
    n = env.adjacency.n_nodes

    successes = {fraction: 0 for fraction in stale_fractions}
    total = 0
    for rng in spawn_rngs(53, iterations):
        data = sampler.sample(n_documents, rng)
        # Diffusion runs on the original placement...
        scores = sampler.diffuse_scores(data.relevance_signal, alpha)
        policy = PrecomputedScorePolicy(scores)

        # ...then documents move. Rebuild the true stores per fraction.
        doc_ids, embeddings, nodes = [], [], []
        for node, store in data.stores.items():
            for doc_id in store.doc_ids:
                doc_ids.append(doc_id)
                embeddings.append(store.embedding_of(doc_id))
                nodes.append(node)
        embeddings = np.vstack(embeddings)
        nodes = np.asarray(nodes, dtype=np.int64)

        starts = rng.integers(0, n, size=starts_per_iteration)
        total += starts_per_iteration
        for fraction in stale_fractions:
            moved_nodes = nodes.copy()
            n_moved = int(round(fraction * len(doc_ids)))
            if n_moved:
                which = rng.choice(len(doc_ids), size=n_moved, replace=False)
                moved_nodes[which] = rng.integers(0, n, size=n_moved)
            stores = build_stores(doc_ids, embeddings, moved_nodes, env.model.dim)
            # paired design: identical starts across fractions cut variance
            for start in starts:
                result = run_query(
                    env.adjacency, stores, policy,
                    data.query_embedding, int(start), config,
                )
                successes[fraction] += result.found(data.gold_word, top=1)

    return [
        {
            "stale fraction": fraction,
            "success rate": round(successes[fraction] / total, 3),
        }
        for fraction in stale_fractions
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--iterations", type=int, default=None)
    parser.add_argument("--documents", type=int, default=1000)
    args = parser.parse_args(argv)
    rows = staleness_sweep(
        n_documents=args.documents,
        full=resolve_full(args.full),
        iterations=args.iterations,
    )
    print(
        format_rows(
            rows,
            title=(
                f"search under stale diffusion state, M={args.documents}, "
                "alpha=0.5 (paper future work: time-evolving conditions)"
            ),
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
