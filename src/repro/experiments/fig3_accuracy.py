"""Fig. 3 driver: hit accuracy vs. query–gold distance.

Reproduces all four panels (M = 10, 100, 1000, 10000 documents) with
alpha ∈ {0.1, 0.5, 0.9}, TTL 50, top-1 tracking, single walks.

Usage::

    python -m repro.experiments.fig3_accuracy [--full] [--iterations N]
"""

from __future__ import annotations

import argparse

from repro.experiments.common import get_environment, resolve_full
from repro.simulation.metrics import AccuracyGrid
from repro.simulation.reporting import format_accuracy_grid, sparkline, write_csv
from repro.simulation.runner import run_accuracy_experiment
from repro.simulation.scenario import AccuracyScenario

PAPER_DOCUMENT_COUNTS = (10, 100, 1000, 10000)
PAPER_ALPHAS = (0.1, 0.5, 0.9)
PANEL_OF = {10: "3a", 100: "3b", 1000: "3c", 10000: "3d"}


def run_panel(
    n_documents: int,
    *,
    full: bool = False,
    iterations: int | None = None,
    seed: int = 0,
) -> AccuracyGrid:
    """Run one Fig. 3 panel and return its accuracy grid."""
    env = get_environment(full)
    if iterations is None:
        iterations = 300 if full else 60
    scenario = AccuracyScenario(
        n_documents=n_documents,
        alphas=PAPER_ALPHAS,
        max_distance=8,
        ttl=50,
        iterations=iterations,
        seed=seed,
    )
    return run_accuracy_experiment(env.adjacency, env.workload, scenario)


def run_all(
    *,
    full: bool = False,
    iterations: int | None = None,
    document_counts: tuple[int, ...] = PAPER_DOCUMENT_COUNTS,
) -> dict[int, AccuracyGrid]:
    """Run every panel; returns {n_documents: grid}."""
    return {
        m: run_panel(m, full=full, iterations=iterations) for m in document_counts
    }


def render(results: dict[int, AccuracyGrid], label: str) -> str:
    """Human-readable report of all panels, matching the paper's layout."""
    lines = [f"Fig. 3 — hit accuracy vs distance ({label} configuration)", ""]
    for m, grid in results.items():
        panel = PANEL_OF.get(m, f"M={m}")
        lines.append(format_accuracy_grid(grid, title=f"Fig. {panel}: M = {m} documents"))
        for alpha in grid.alphas:
            lines.append(f"  a={alpha:g} |{sparkline(grid.series(alpha))}|")
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale configuration")
    parser.add_argument("--iterations", type=int, default=None)
    parser.add_argument("--csv", type=str, default=None, help="write cells to CSV")
    args = parser.parse_args(argv)

    full = resolve_full(args.full)
    results = run_all(full=full, iterations=args.iterations)
    print(render(results, get_environment(full).label))

    if args.csv:
        rows = []
        for m, grid in results.items():
            for row in grid.as_rows():
                rows.append({"n_documents": m, **row})
        write_csv(args.csv, rows)
        print(f"wrote {args.csv}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
