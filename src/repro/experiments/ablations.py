"""Ablation studies around the paper's design choices.

Each function isolates one knob the paper discusses qualitatively:

* ``alpha_sweep`` — the noise-vs-reach trade-off of §V-C on a continuum of
  teleport probabilities (the paper samples only {0.1, 0.5, 0.9}).
* ``fanout_sweep`` — parallel walks (named future work in §V-B).
* ``topk_sweep`` — top-k retrieval beyond the paper's top-1 (future work).
* ``placement_comparison`` — uniform vs community-correlated documents
  (§V-B conjectures correlation "is expected to aid diffusion").
* ``personalization_comparison`` — sum vs mean/sqrt/l2 weighting (§IV-A's
  "many irrelevant documents" risk).
* ``baseline_comparison`` — diffusion-guided walk vs blind baselines at the
  same TTL, plus flooding at an equal message budget.
* ``aggregation_comparison`` — flat-sum personalization vs the
  sketch-partitioned multi-channel aggregation (the §VI future-work
  direction, implemented in :mod:`repro.core.aggregation`).

Usage::

    python -m repro.experiments.ablations [--full] [--which NAME]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.baselines import flood_query
from repro.core.aggregation import ChannelHasher, MaxChannelPolicy, channel_relevance_signals
from repro.core.engine import WalkConfig, run_query
from repro.core.forwarding import (
    DegreeBiasedPolicy,
    PrecomputedScorePolicy,
    RandomWalkPolicy,
)
from repro.experiments.common import get_environment, resolve_full
from repro.simulation.metrics import HopStatistics
from repro.simulation.reporting import format_rows
from repro.simulation.runner import (
    IterationSampler,
    run_accuracy_experiment,
    run_hop_count_experiment,
)
from repro.simulation.scenario import AccuracyScenario, HopCountScenario
from repro.utils.rng import spawn_rngs


def _hop_scenario(n_documents: int, full: bool, iterations: int | None, **overrides):
    if iterations is None:
        iterations = 200 if full else 60
    return HopCountScenario(
        n_documents=n_documents, iterations=iterations, seed=17, **overrides
    )


def alpha_sweep(
    *,
    n_documents: int = 1000,
    alphas: tuple[float, ...] = (0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 0.95),
    full: bool = False,
    iterations: int | None = None,
) -> list[dict[str, object]]:
    """Success rate across a fine alpha grid (one row per alpha)."""
    env = get_environment(full)
    rows = []
    for alpha in alphas:
        scenario = _hop_scenario(n_documents, full, iterations, alpha=alpha)
        stats = run_hop_count_experiment(env.adjacency, env.workload, scenario)
        rows.append(
            {
                "alpha": alpha,
                "success rate": round(stats.success_rate, 3),
                "median hops": stats.median_hops,
                "mean hops": round(stats.mean_hops, 2)
                if stats.mean_hops == stats.mean_hops
                else "-",
            }
        )
    return rows


def fanout_sweep(
    *,
    n_documents: int = 1000,
    fanouts: tuple[int, ...] = (1, 2, 3, 4),
    full: bool = False,
    iterations: int | None = None,
) -> list[dict[str, object]]:
    """Parallel walks: success rate and message cost per fanout."""
    env = get_environment(full)
    rows = []
    for fanout in fanouts:
        scenario = _hop_scenario(n_documents, full, iterations, fanout=fanout)
        stats = run_hop_count_experiment(env.adjacency, env.workload, scenario)
        rows.append(
            {
                "fanout": fanout,
                "success rate": round(stats.success_rate, 3),
                "median hops": stats.median_hops,
                "approx messages/query": fanout * scenario.ttl,
            }
        )
    return rows


def topk_sweep(
    *,
    n_documents: int = 1000,
    ks: tuple[int, ...] = (1, 5, 10),
    full: bool = False,
    iterations: int | None = None,
) -> list[dict[str, object]]:
    """Top-k tracking: does a larger tracker rescue borderline queries?

    Success here means the gold document appears anywhere in the final
    tracker (top-k hit rate), versus the paper's strict top-1.
    """
    env = get_environment(full)
    rows = []
    for k in ks:
        if iterations is None:
            n_iter = 200 if full else 60
        else:
            n_iter = iterations
        scenario = HopCountScenario(
            n_documents=n_documents, iterations=n_iter, k=k, seed=17
        )
        sampler = IterationSampler(env.adjacency, env.workload)
        config = WalkConfig(ttl=scenario.ttl, fanout=1, k=k)
        rngs = spawn_rngs(scenario.seed, scenario.iterations)
        top1 = topk = total = 0
        for rng in rngs:
            data = sampler.sample(scenario.n_documents, rng)
            scores = sampler.diffuse_scores(data.relevance_signal, scenario.alpha)
            policy = PrecomputedScorePolicy(scores)
            starts = rng.integers(
                0, env.adjacency.n_nodes, size=scenario.queries_per_iteration
            )
            for start in starts:
                result = run_query(
                    env.adjacency,
                    data.stores,
                    policy,
                    data.query_embedding,
                    int(start),
                    config,
                )
                total += 1
                top1 += result.found(data.gold_word, top=1)
                topk += result.found(data.gold_word)
        rows.append(
            {
                "k": k,
                "top-1 hit rate": round(top1 / total, 3),
                f"top-k hit rate": round(topk / total, 3),
            }
        )
    return rows


def placement_comparison(
    *,
    n_documents: int = 1000,
    full: bool = False,
    iterations: int | None = None,
) -> list[dict[str, object]]:
    """Uniform vs community-correlated placement (accuracy at 1-4 hops)."""
    env = get_environment(full)
    if iterations is None:
        iterations = 120 if full else 40
    rows = []
    for placement, mixing in (("uniform", 0.0), ("correlated", 0.1)):
        scenario = AccuracyScenario(
            n_documents=n_documents,
            alphas=(0.5,),
            max_distance=6,
            iterations=iterations,
            placement=placement,
            correlation_mixing=mixing,
            seed=23,
        )
        grid = run_accuracy_experiment(env.adjacency, env.workload, scenario)
        row: dict[str, object] = {"placement": placement}
        for distance in range(7):
            row[f"acc@{distance}"] = round(grid.accuracy(0.5, distance), 3)
        rows.append(row)
    return rows


def personalization_comparison(
    *,
    n_documents: int = 1000,
    full: bool = False,
    iterations: int | None = None,
) -> list[dict[str, object]]:
    """Sum (paper) vs mean / sqrt / l2 personalization weightings."""
    env = get_environment(full)
    rows = []
    for weighting in ("sum", "mean", "sqrt", "l2"):
        scenario = _hop_scenario(n_documents, full, iterations, weighting=weighting)
        stats = run_hop_count_experiment(env.adjacency, env.workload, scenario)
        rows.append(
            {
                "weighting": weighting,
                "success rate": round(stats.success_rate, 3),
                "median hops": stats.median_hops,
            }
        )
    return rows


def baseline_comparison(
    *,
    n_documents: int = 1000,
    full: bool = False,
    iterations: int | None = None,
    ttl: int = 50,
) -> list[dict[str, object]]:
    """Diffusion-guided walk vs blind baselines.

    Walk methods run at the same TTL; flooding runs with the hop radius it
    can afford under an *equal message budget* (TTL messages), which is the
    honest comparison the P2P literature insists on.
    """
    env = get_environment(full)
    if iterations is None:
        iterations = 150 if full else 50
    sampler = IterationSampler(env.adjacency, env.workload)
    rngs = spawn_rngs(31, iterations)
    config = WalkConfig(ttl=ttl, fanout=1, k=1)

    methods = ("diffusion walk", "random walk", "degree-biased walk", "flooding@budget")
    successes = {m: 0 for m in methods}
    messages = {m: 0 for m in methods}
    total = 0

    for rng in rngs:
        data = sampler.sample(n_documents, rng)
        scores = sampler.diffuse_scores(data.relevance_signal, 0.5)
        guided = PrecomputedScorePolicy(scores)
        blind = RandomWalkPolicy()
        hubby = DegreeBiasedPolicy(env.adjacency)
        start = int(rng.integers(env.adjacency.n_nodes))
        total += 1

        runs = {
            "diffusion walk": run_query(
                env.adjacency, data.stores, guided, data.query_embedding,
                start, config, seed=rng,
            ),
            "random walk": run_query(
                env.adjacency, data.stores, blind, data.query_embedding,
                start, config, seed=rng,
            ),
            "degree-biased walk": run_query(
                env.adjacency, data.stores, hubby, data.query_embedding,
                start, config, seed=rng,
            ),
            "flooding@budget": flood_query(
                env.adjacency, data.stores, data.query_embedding, start,
                config, max_messages=ttl,
            ),
        }
        for name, result in runs.items():
            successes[name] += result.found(data.gold_word, top=1)
            messages[name] += result.messages

    return [
        {
            "method": name,
            "success rate": round(successes[name] / total, 3),
            "mean messages": round(messages[name] / total, 1),
        }
        for name in methods
    ]


def multi_gold_recall(
    *,
    n_documents: int = 1000,
    k: int = 5,
    max_golds: int = 5,
    full: bool = False,
    iterations: int | None = None,
    ttl: int = 50,
) -> list[dict[str, object]]:
    """Top-k recall with *multiple* gold documents in the network.

    The paper evaluates top-1 with a single gold; its future work asks about
    top-k performance.  Here every gold of the sampled query (up to
    ``max_golds``) is placed, and we measure the fraction retrieved into a
    size-``k`` tracker — per-hop-budget recall rather than a binary hit.
    """
    env = get_environment(full)
    if iterations is None:
        iterations = 200 if full else 60
    sampler = IterationSampler(env.adjacency, env.workload)
    config = WalkConfig(ttl=ttl, fanout=1, k=k)
    n = env.adjacency.n_nodes
    model = env.model

    recalled = placed_total = queries = any_hits = 0
    rng_master = spawn_rngs(59, iterations)
    from repro.simulation.placement import build_stores, uniform_placement

    for rng in rng_master:
        query = env.workload.queries[int(rng.integers(len(env.workload.queries)))]
        golds = env.workload.gold_of[query][:max_golds]
        n_irrelevant = max(0, n_documents - len(golds))
        irrelevant = env.workload.sample_irrelevant(rng, n_irrelevant)
        doc_words = list(golds) + irrelevant
        embeddings = model.vectors_for(doc_words)
        nodes = uniform_placement(len(doc_words), n, seed=rng)
        stores = build_stores(doc_words, embeddings, nodes, model.dim)
        query_embedding = model.vector(query)
        signal = np.bincount(
            nodes, weights=embeddings @ query_embedding, minlength=n
        )
        scores = sampler.diffuse_scores(signal, 0.5)
        policy = PrecomputedScorePolicy(scores)
        start = int(rng.integers(n))
        result = run_query(
            env.adjacency, stores, policy, query_embedding, start, config
        )
        found = sum(result.found(gold) for gold in golds)
        recalled += found
        placed_total += len(golds)
        any_hits += found > 0
        queries += 1

    return [
        {
            "k": k,
            "mean golds placed": round(placed_total / queries, 2),
            "recall@budget": round(recalled / placed_total, 3),
            "any-gold hit rate": round(any_hits / queries, 3),
        }
    ]


def aggregation_comparison(
    *,
    n_documents: int = 10000,
    channel_bits: tuple[int, ...] = (0, 2, 3, 4),
    full: bool = False,
    iterations: int | None = None,
    ttl: int = 50,
) -> list[dict[str, object]]:
    """Flat sum (paper) vs sketch-partitioned multi-channel personalization.

    Implements the paper's future-work direction (§VI): channels partition
    each node's documents by a shared random-hyperplane hash and diffuse
    independently; queries route on the best channel.  ``n_bits = 0`` is the
    paper's flat sum.  Evaluated where the flat sum collapses (high M).
    """
    env = get_environment(full)
    if iterations is None:
        iterations = 150 if full else 40
    sampler = IterationSampler(env.adjacency, env.workload)
    config = WalkConfig(ttl=ttl, fanout=1, k=1)
    n = env.adjacency.n_nodes
    dim = env.model.dim

    hashers = {
        bits: ChannelHasher(dim, bits, seed=1234) for bits in channel_bits
    }
    successes = {bits: 0 for bits in channel_bits}
    total = 0

    for rng in spawn_rngs(47, iterations):
        data = sampler.sample(n_documents, rng)
        # Recover the placed documents from the per-node stores.
        doc_embeddings, doc_nodes = [], []
        for node, store in data.stores.items():
            matrix = store.matrix()
            doc_embeddings.append(matrix)
            doc_nodes.extend([node] * matrix.shape[0])
        embeddings = np.vstack(doc_embeddings)
        nodes = np.asarray(doc_nodes, dtype=np.int64)

        start = int(rng.integers(n))
        total += 1
        for bits, hasher in hashers.items():
            signals = channel_relevance_signals(
                embeddings, nodes, n, data.query_embedding, hasher
            )
            channel_scores = np.vstack(
                [sampler.diffuse_scores(signals[c], 0.5) for c in range(hasher.n_channels)]
            )
            policy = MaxChannelPolicy(channel_scores)
            result = run_query(
                env.adjacency, data.stores, policy,
                data.query_embedding, start, config,
            )
            successes[bits] += result.found(data.gold_word, top=1)

    return [
        {
            "channels": 1 << bits,
            "success rate": round(successes[bits] / total, 3),
            "note": "paper (flat sum)" if bits == 0 else "sketch-partitioned",
        }
        for bits in channel_bits
    ]


ABLATIONS = {
    "aggregation": aggregation_comparison,
    "multigold": multi_gold_recall,
    "alpha": alpha_sweep,
    "fanout": fanout_sweep,
    "topk": topk_sweep,
    "placement": placement_comparison,
    "personalization": personalization_comparison,
    "baselines": baseline_comparison,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--iterations", type=int, default=None)
    parser.add_argument(
        "--which",
        choices=sorted(ABLATIONS) + ["all"],
        default="all",
    )
    args = parser.parse_args(argv)
    full = resolve_full(args.full)
    names = sorted(ABLATIONS) if args.which == "all" else [args.which]
    for name in names:
        rows = ABLATIONS[name](full=full, iterations=args.iterations)
        print(format_rows(rows, title=f"Ablation: {name}"))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
