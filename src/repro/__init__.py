"""repro — decentralized content search via Personalized-PageRank diffusion.

Reproduction of Giatsoglou, Krasanakis, Papadopoulos & Kompatsiaris,
"A Graph Diffusion Scheme for Decentralized Content Search based on
Personalized PageRank" (ICDCS 2022 workshops, arXiv:2204.12902).

Quickstart::

    import numpy as np
    from repro import DiffusionSearchNetwork, facebook_like_graph
    from repro.embeddings import synthetic_word_embeddings

    graph = facebook_like_graph(seed=0)
    model = synthetic_word_embeddings(seed=0)
    net = DiffusionSearchNetwork(graph, dim=model.dim, alpha=0.5)
    net.place_document("doc", model.vector("word00001"), node=7)
    net.diffuse()
    hit = net.search(model.vector("word00001"), start_node=2000, ttl=50)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core.search import DiffusionSearchNetwork
from repro.core.engine import (
    ResilienceConfig,
    SearchResult,
    WalkConfig,
    run_query,
)
from repro.core.batch import run_queries
from repro.core.backends import (
    DiffusionBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.core.diffusion import (
    DiffusionOutcome,
    diffuse_embeddings,
    refresh_embeddings,
)
from repro.core.forwarding import (
    DegreeBiasedPolicy,
    EmbeddingGuidedPolicy,
    ForwardingPolicy,
    PrecomputedScorePolicy,
    RandomWalkPolicy,
)
from repro.core.personalization import personalization_matrix, personalization_vector
from repro.embeddings.model import WordEmbeddingModel
from repro.embeddings.synthetic import SyntheticCorpusConfig, synthetic_word_embeddings
from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.social import FacebookLikeConfig, facebook_like_graph
from repro.gsp.filters import (
    HeatKernel,
    PersonalizedPageRank,
    PolynomialFilter,
    SparsePersonalizedPageRank,
)
from repro.retrieval.topk import ScoredDocument, TopKTracker
from repro.retrieval.vector_store import DocumentStore
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.gossip import AsyncPPRDiffusion
from repro.serving import (
    AdmissionConfig,
    BreakerConfig,
    Outcome,
    PeerCircuitBreaker,
    QueryRequest,
    QueryResponse,
    QueryService,
    ServingConfig,
)
from repro.simulation.scenario import AccuracyScenario, HopCountScenario
from repro.simulation.workload import (
    RetrievalWorkload,
    build_workload,
    poisson_arrival_times,
)
from repro.simulation.runner import (
    run_accuracy_experiment,
    run_hop_count_experiment,
)

__version__ = "1.0.0"

__all__ = [
    "DiffusionSearchNetwork",
    "SearchResult",
    "WalkConfig",
    "ResilienceConfig",
    "run_query",
    "FaultPlan",
    "FaultInjector",
    "run_queries",
    "DiffusionOutcome",
    "diffuse_embeddings",
    "refresh_embeddings",
    "DiffusionBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "ForwardingPolicy",
    "EmbeddingGuidedPolicy",
    "PrecomputedScorePolicy",
    "RandomWalkPolicy",
    "DegreeBiasedPolicy",
    "personalization_vector",
    "personalization_matrix",
    "WordEmbeddingModel",
    "SyntheticCorpusConfig",
    "synthetic_word_embeddings",
    "CompressedAdjacency",
    "FacebookLikeConfig",
    "facebook_like_graph",
    "PersonalizedPageRank",
    "SparsePersonalizedPageRank",
    "HeatKernel",
    "PolynomialFilter",
    "ScoredDocument",
    "TopKTracker",
    "DocumentStore",
    "AsyncPPRDiffusion",
    "AccuracyScenario",
    "HopCountScenario",
    "RetrievalWorkload",
    "build_workload",
    "poisson_arrival_times",
    "QueryService",
    "ServingConfig",
    "QueryRequest",
    "QueryResponse",
    "Outcome",
    "AdmissionConfig",
    "BreakerConfig",
    "PeerCircuitBreaker",
    "run_accuracy_experiment",
    "run_hop_count_experiment",
    "__version__",
]
