"""P2P topology substrate: generators, I/O and graph metrics.

The paper evaluates on the SNAP ``ego-Facebook`` graph (4,039 nodes, 88,234
edges).  Without network access we provide a calibrated generative substitute
(:func:`repro.graphs.social.facebook_like_graph`) plus loaders for the real
SNAP edge-list format so the original dataset can be dropped in.
"""

from repro.graphs.adjacency import CompressedAdjacency
from repro.graphs.social import FacebookLikeConfig, facebook_like_graph
from repro.graphs.generators import (
    connected_barabasi_albert,
    connected_erdos_renyi,
    connected_powerlaw_cluster,
    connected_watts_strogatz,
    cycle_union_adjacency,
    grid_graph,
    random_regular,
)
from repro.graphs.io import load_snap_edge_list, save_snap_edge_list
from repro.graphs.metrics import (
    GraphSummary,
    bfs_distances,
    degree_statistics,
    distance_histogram,
    estimate_diameter,
    average_clustering,
    nodes_at_distance,
    summarize_graph,
)
from repro.graphs.communities import label_propagation_communities

__all__ = [
    "CompressedAdjacency",
    "FacebookLikeConfig",
    "facebook_like_graph",
    "connected_barabasi_albert",
    "connected_erdos_renyi",
    "connected_powerlaw_cluster",
    "connected_watts_strogatz",
    "cycle_union_adjacency",
    "grid_graph",
    "random_regular",
    "load_snap_edge_list",
    "save_snap_edge_list",
    "GraphSummary",
    "bfs_distances",
    "degree_statistics",
    "distance_histogram",
    "estimate_diameter",
    "average_clustering",
    "nodes_at_distance",
    "summarize_graph",
    "label_propagation_communities",
]
