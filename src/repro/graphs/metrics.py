"""Graph measurements: BFS distances, clustering, degree statistics.

BFS runs over :class:`~repro.graphs.adjacency.CompressedAdjacency` because the
experiment harness calls it once per iteration (distances from the gold
document's node define Fig. 3's x-axis).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.adjacency import CompressedAdjacency
from repro.utils import ensure_rng
from repro.utils.rng import RngLike

UNREACHABLE = -1


def bfs_distances(adjacency: CompressedAdjacency, source: int) -> np.ndarray:
    """Hop distance from ``source`` to every node (−1 when unreachable).

    Level-synchronous frontier expansion over the CSR arrays: each level
    gathers every frontier node's neighbor row in one shot and keeps the
    still-unlabeled ones, so the cost per level is a handful of array
    operations instead of a Python loop per edge.  The experiment harness
    calls this once per iteration, which made the per-edge loop a measurable
    slice of the Fig. 3 driver.
    """
    if not 0 <= source < adjacency.n_nodes:
        raise ValueError(f"source {source} out of range")
    dist = np.full(adjacency.n_nodes, UNREACHABLE, dtype=np.int64)
    dist[source] = 0
    indptr, indices = adjacency.indptr, adjacency.indices
    iota = np.arange(indices.shape[0], dtype=np.int64)
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        row_starts = indptr[frontier]
        lens = indptr[frontier + 1] - row_starts
        offsets = lens.cumsum()
        total = int(offsets[-1])
        flat = indices[(row_starts - offsets + lens).repeat(lens) + iota[:total]]
        fresh = flat[dist[flat] == UNREACHABLE]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        dist[frontier] = level
    return dist


def nodes_at_distance(
    adjacency: CompressedAdjacency,
    source: int,
    distance: int,
    *,
    distances: np.ndarray | None = None,
) -> np.ndarray:
    """Ids of all nodes exactly ``distance`` hops from ``source``.

    Pass a precomputed ``distances`` array (from :func:`bfs_distances`) to
    avoid re-running BFS for every radius.
    """
    if distances is None:
        distances = bfs_distances(adjacency, source)
    return np.flatnonzero(distances == distance)


def distance_histogram(
    adjacency: CompressedAdjacency,
    *,
    n_sources: int | None = None,
    seed: RngLike = None,
) -> dict[int, int]:
    """Histogram of pairwise hop distances, sampled over ``n_sources`` BFS
    roots (all nodes when ``None``)."""
    rng = ensure_rng(seed)
    n = adjacency.n_nodes
    if n_sources is None or n_sources >= n:
        sources = np.arange(n)
    else:
        sources = rng.choice(n, size=n_sources, replace=False)
    histogram: dict[int, int] = {}
    for source in sources:
        dist = bfs_distances(adjacency, int(source))
        values, counts = np.unique(dist[dist > 0], return_counts=True)
        for value, count in zip(values, counts):
            histogram[int(value)] = histogram.get(int(value), 0) + int(count)
    return histogram


def estimate_diameter(
    adjacency: CompressedAdjacency,
    *,
    n_sweeps: int = 4,
    seed: RngLike = None,
) -> int:
    """Lower-bound the diameter with repeated double sweeps.

    Each sweep runs BFS from a random node, then BFS again from the farthest
    node found; the maximum eccentricity observed is returned.  Exact on
    trees; a tight lower bound on social graphs.
    """
    rng = ensure_rng(seed)
    best = 0
    for _ in range(max(1, n_sweeps)):
        start = int(rng.integers(adjacency.n_nodes))
        dist = bfs_distances(adjacency, start)
        reachable = dist >= 0
        far = int(np.argmax(np.where(reachable, dist, -1)))
        dist2 = bfs_distances(adjacency, far)
        best = max(best, int(dist2.max()))
    return best


def average_clustering(
    adjacency: CompressedAdjacency,
    *,
    n_samples: int | None = None,
    seed: RngLike = None,
) -> float:
    """Mean local clustering coefficient (sampled when ``n_samples`` given).

    The local coefficient of ``u`` is ``2 T(u) / (deg(u) (deg(u) − 1))`` with
    ``T(u)`` the number of triangles through ``u``; degree-<2 nodes count 0.
    """
    rng = ensure_rng(seed)
    n = adjacency.n_nodes
    if n == 0:
        return 0.0
    if n_samples is None or n_samples >= n:
        nodes = np.arange(n)
    else:
        nodes = rng.choice(n, size=n_samples, replace=False)
    neighbor_sets = {}
    total = 0.0
    for u in nodes:
        u = int(u)
        neigh = adjacency.neighbors(u)
        degree = neigh.shape[0]
        if degree < 2:
            continue
        if u not in neighbor_sets:
            neighbor_sets[u] = set(int(x) for x in neigh)
        triangles = 0
        for v in neigh:
            v = int(v)
            if v not in neighbor_sets:
                neighbor_sets[v] = set(int(x) for x in adjacency.neighbors(v))
            triangles += len(neighbor_sets[u] & neighbor_sets[v])
        total += triangles / (degree * (degree - 1))
    return total / nodes.shape[0]


def degree_statistics(adjacency: CompressedAdjacency) -> dict[str, float]:
    """Min / max / mean / median degree of the graph."""
    degrees = adjacency.degrees
    if degrees.size == 0:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "median": 0.0}
    return {
        "min": float(degrees.min()),
        "max": float(degrees.max()),
        "mean": float(degrees.mean()),
        "median": float(np.median(degrees)),
    }


@dataclass(frozen=True)
class GraphSummary:
    """Headline statistics of a topology, for reporting and calibration."""

    n_nodes: int
    n_edges: int
    mean_degree: float
    max_degree: int
    clustering: float
    diameter_lower_bound: int

    def as_row(self) -> dict[str, float]:
        """Flat dict representation for tabular reporting."""
        return {
            "nodes": self.n_nodes,
            "edges": self.n_edges,
            "mean_degree": round(self.mean_degree, 2),
            "max_degree": self.max_degree,
            "clustering": round(self.clustering, 3),
            "diameter>=": self.diameter_lower_bound,
        }


def summarize_graph(
    adjacency: CompressedAdjacency,
    *,
    clustering_samples: int | None = 500,
    seed: RngLike = 0,
) -> GraphSummary:
    """Compute a :class:`GraphSummary` (clustering sampled for speed)."""
    stats = degree_statistics(adjacency)
    return GraphSummary(
        n_nodes=adjacency.n_nodes,
        n_edges=adjacency.n_edges,
        mean_degree=stats["mean"],
        max_degree=int(stats["max"]),
        clustering=average_clustering(
            adjacency, n_samples=clustering_samples, seed=seed
        ),
        diameter_lower_bound=estimate_diameter(adjacency, seed=seed),
    )
