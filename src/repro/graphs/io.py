"""SNAP edge-list I/O.

The SNAP datasets (including ``facebook_combined.txt``) are whitespace-
separated integer pairs with ``#`` comment lines.  When the real dataset is
available on disk, :func:`load_snap_edge_list` drops it straight into the
experiment harness in place of the synthetic social graph.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO

import networkx as nx


def _open_maybe_gzip(path: Path, mode: str) -> IO:
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def load_snap_edge_list(path: str | Path, *, relabel: bool = True) -> nx.Graph:
    """Load an undirected SNAP edge list (optionally gzip-compressed).

    Parameters
    ----------
    relabel:
        When True (default) nodes are relabeled to contiguous integers
        ``0..n-1`` ordered by original id, as the engine expects.
    """
    path = Path(path)
    graph = nx.Graph()
    with _open_maybe_gzip(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{line_no}: expected two node ids, got {line!r}")
            u, v = int(parts[0]), int(parts[1])
            if u == v:
                continue
            graph.add_edge(u, v)
    if graph.number_of_nodes() == 0:
        raise ValueError(f"no edges found in {path}")
    if relabel:
        graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")
    return graph


def save_snap_edge_list(graph: nx.Graph, path: str | Path, *, header: str | None = None) -> None:
    """Write ``graph`` in SNAP edge-list format (gzip if path ends in .gz)."""
    path = Path(path)
    with _open_maybe_gzip(path, "w") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# Nodes: {graph.number_of_nodes()} Edges: {graph.number_of_edges()}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")
