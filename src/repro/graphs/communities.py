"""Label-propagation community detection.

Used by the *correlated document placement* ablation: the paper (§V-B) expects
realistic document distributions to exhibit spatial correlation, i.e. nodes in
the same community hold topically related documents.  Communities give us the
"spatial" unit for that placement.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.adjacency import CompressedAdjacency
from repro.utils import ensure_rng
from repro.utils.rng import RngLike


def label_propagation_communities(
    adjacency: CompressedAdjacency,
    *,
    max_iterations: int = 100,
    seed: RngLike = None,
) -> np.ndarray:
    """Asynchronous label propagation; returns a community id per node.

    Each node repeatedly adopts the most frequent label among its neighbors
    (ties broken uniformly at random) until no label changes or
    ``max_iterations`` passes complete.  Labels are compacted to ``0..k-1``.
    """
    rng = ensure_rng(seed)
    n = adjacency.n_nodes
    labels = np.arange(n, dtype=np.int64)
    order = np.arange(n)
    for _ in range(max_iterations):
        changed = False
        rng.shuffle(order)
        for u in order:
            neigh = adjacency.neighbors(int(u))
            if neigh.size == 0:
                continue
            neighbor_labels = labels[neigh]
            values, counts = np.unique(neighbor_labels, return_counts=True)
            best = values[counts == counts.max()]
            new_label = int(best[rng.integers(best.size)]) if best.size > 1 else int(best[0])
            if new_label != labels[u]:
                labels[u] = new_label
                changed = True
        if not changed:
            break
    # Compact labels to 0..k-1 in order of first appearance.
    _, compact = np.unique(labels, return_inverse=True)
    return compact.astype(np.int64)
