"""Community detection and community-aware graph partitioning.

Label propagation serves two consumers:

* the *correlated document placement* ablation: the paper (§V-B) expects
  realistic document distributions to exhibit spatial correlation, i.e.
  nodes in the same community hold topically related documents.
  Communities give us the "spatial" unit for that placement.
* the **sharded precompute** (:mod:`repro.core.shard`): partitioning the
  overlay along community boundaries minimizes cross-shard edges, which is
  what bounds the residual mass exchanged between shards per round (Hu &
  Lau's observation that community structure localizes computation in
  decentralized social networks).  :func:`community_partition` packs
  detected communities into degree-balanced shards;
  :func:`degree_balanced_partition` is the structure-free fallback.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graphs.adjacency import CompressedAdjacency
from repro.utils import check_positive, ensure_rng
from repro.utils.rng import RngLike


def label_propagation_communities(
    adjacency: CompressedAdjacency,
    *,
    max_iterations: int = 100,
    seed: RngLike = None,
) -> np.ndarray:
    """Asynchronous label propagation; returns a community id per node.

    Each node repeatedly adopts the most frequent label among its neighbors
    (ties broken uniformly at random) until no label changes or
    ``max_iterations`` passes complete.  Labels are compacted to ``0..k-1``.
    """
    rng = ensure_rng(seed)
    n = adjacency.n_nodes
    labels = np.arange(n, dtype=np.int64)
    order = np.arange(n)
    for _ in range(max_iterations):
        changed = False
        rng.shuffle(order)
        for u in order:
            neigh = adjacency.neighbors(int(u))
            if neigh.size == 0:
                continue
            neighbor_labels = labels[neigh]
            values, counts = np.unique(neighbor_labels, return_counts=True)
            best = values[counts == counts.max()]
            new_label = int(best[rng.integers(best.size)]) if best.size > 1 else int(best[0])
            if new_label != labels[u]:
                labels[u] = new_label
                changed = True
        if not changed:
            break
    # Compact labels to 0..k-1 in order of first appearance.
    _, compact = np.unique(labels, return_inverse=True)
    return compact.astype(np.int64)


def fast_label_propagation(
    adjacency: CompressedAdjacency,
    *,
    max_iterations: int = 30,
    batches: int = 8,
    seed: RngLike = None,
) -> np.ndarray:
    """Vectorized label propagation for benchmark-scale graphs.

    :func:`label_propagation_communities` relaxes one node at a time in a
    Python loop — exact asynchronous semantics, but minutes of wall clock
    past ~10⁴ nodes.  This variant batches the sweep: nodes are split into
    ``batches`` random groups per iteration and each group adopts its
    neighbor-majority label in one vectorized step (ragged CSR gather +
    lexsort run-length counting), reading the labels left by the previous
    groups.  Batched semi-asynchronous updates keep the convergence
    behaviour of the sequential rule (synchronous whole-graph updates can
    enter two-coloring limit cycles on bipartite-ish structure) at
    ``O(m log m)`` work per sweep — 10⁶-node overlays finish in seconds
    per sweep instead of hours.

    Ties are broken uniformly at random per node; with a fixed ``seed`` the
    result is deterministic.  Labels are compacted to ``0..k-1``.
    """
    check_positive(max_iterations, "max_iterations")
    check_positive(batches, "batches")
    rng = ensure_rng(seed)
    n = adjacency.n_nodes
    labels = np.arange(n, dtype=np.int64)
    indptr, indices = adjacency.indptr, adjacency.indices
    degrees = adjacency.degrees
    order = np.arange(n)
    for _ in range(max_iterations):
        changed = False
        rng.shuffle(order)
        for batch in np.array_split(order, min(batches, max(1, n))):
            batch = batch[degrees[batch] > 0]
            if batch.size == 0:
                continue
            counts = degrees[batch]
            # Ragged gather of every batch node's neighbor list.
            starts = np.repeat(indptr[batch], counts)
            within = np.arange(counts.sum()) - np.repeat(
                np.concatenate(([0], np.cumsum(counts[:-1]))), counts
            )
            neighbor_labels = labels[indices[starts + within]]
            owner = np.repeat(np.arange(batch.size), counts)
            # Count (owner, label) pairs by sorting, then pick each owner's
            # most frequent label; random jitter < 1 breaks count ties.
            sort = np.lexsort((neighbor_labels, owner))
            owner_sorted = owner[sort]
            label_sorted = neighbor_labels[sort]
            boundary = np.empty(owner_sorted.shape[0], dtype=bool)
            boundary[0] = True
            np.not_equal(owner_sorted[1:], owner_sorted[:-1], out=boundary[1:])
            boundary[1:] |= label_sorted[1:] != label_sorted[:-1]
            group_start = np.flatnonzero(boundary)
            group_counts = np.diff(np.append(group_start, owner_sorted.shape[0]))
            group_owner = owner_sorted[group_start]
            group_label = label_sorted[group_start]
            keys = group_counts + rng.random(group_counts.shape[0])
            # Segment argmax over each owner's groups: sort by (owner,
            # -key) and keep the first row per owner.
            best = np.lexsort((-keys, group_owner))
            first = np.flatnonzero(
                np.concatenate(
                    ([True], group_owner[best][1:] != group_owner[best][:-1])
                )
            )
            winners = group_label[best][first]
            winner_owner = group_owner[best][first]
            new_labels = labels[batch].copy()
            new_labels[winner_owner] = winners
            if np.any(new_labels != labels[batch]):
                changed = True
                labels[batch] = new_labels
        if not changed:
            break
    _, compact = np.unique(labels, return_inverse=True)
    return compact.astype(np.int64)


def degree_balanced_partition(
    adjacency: CompressedAdjacency, n_shards: int
) -> np.ndarray:
    """Structure-free partition balancing total degree across shards.

    Greedy longest-processing-time bin packing: nodes are visited in
    descending degree (ties by ascending id, so the result is
    deterministic) and each goes to the currently lightest shard, weighting
    a node by ``degree + 1`` so degree-0 nodes still spread out.  This is
    the fallback partitioner of the sharded precompute — no community
    structure required, per-shard *work* (proportional to incident edges)
    balanced within one node of optimal — at the price of a high
    cross-shard edge fraction on graphs that do have communities.
    """
    order = np.argsort(-adjacency.degrees, kind="stable")
    assignment = np.empty(adjacency.n_nodes, dtype=np.int64)
    _pack_greedy(
        assignment,
        [order[i : i + 1] for i in range(order.shape[0])],
        (adjacency.degrees[order] + 1).tolist(),
        n_shards,
    )
    return assignment


def community_partition(
    adjacency: CompressedAdjacency,
    n_shards: int,
    *,
    labels: np.ndarray | None = None,
    seed: RngLike = 0,
    max_iterations: int = 30,
) -> np.ndarray:
    """Community-aware partition: pack communities into balanced shards.

    Detects communities with :func:`fast_label_propagation` (or takes
    precomputed ``labels``), weighs each community by its total degree
    (+1 per node), and greedily packs them into ``n_shards`` bins, heaviest
    first, always into the lightest bin.  Communities heavier than the
    ideal per-shard load are split into ideal-sized chunks first, so one
    giant community (the typical label-propagation outcome on graphs
    *without* community structure) cannot serialize the pool — in that
    degenerate case the result approaches
    :func:`degree_balanced_partition`.

    Deterministic for a fixed ``seed`` (default 0 — reproducible by
    default, matching the shard-plan caching in :mod:`repro.core.shard`).
    """
    check_positive(n_shards, "n_shards")
    n = adjacency.n_nodes
    if labels is None:
        labels = fast_label_propagation(
            adjacency, max_iterations=max_iterations, seed=seed
        )
    labels = np.asarray(labels)
    if labels.shape != (n,):
        raise ValueError(
            f"labels must have shape ({n},), got {labels.shape}"
        )
    weights = (adjacency.degrees + 1).astype(np.int64)
    ideal = max(1.0, float(weights.sum()) / n_shards)
    # Group nodes by community (sorted ids within each), then split any
    # community whose weight exceeds the ideal shard load into chunks.
    order = np.argsort(labels, kind="stable")
    boundaries = np.flatnonzero(
        np.concatenate(([True], labels[order][1:] != labels[order][:-1]))
    )
    groups: list[np.ndarray] = []
    group_weights: list[int] = []
    for i, start in enumerate(boundaries):
        stop = boundaries[i + 1] if i + 1 < boundaries.shape[0] else n
        members = np.sort(order[start:stop])
        member_weights = weights[members]
        total = int(member_weights.sum())
        if total <= ideal:
            groups.append(members)
            group_weights.append(total)
            continue
        # Chunk by cumulative weight so each piece lands near the ideal.
        chunk_ids = np.minimum(
            (np.cumsum(member_weights) - 1) // int(ideal),
            max(1, int(np.ceil(total / ideal))) - 1,
        )
        for chunk in range(int(chunk_ids.max()) + 1):
            piece = members[chunk_ids == chunk]
            if piece.size:
                groups.append(piece)
                group_weights.append(int(weights[piece].sum()))
    assignment = np.empty(n, dtype=np.int64)
    _pack_greedy(assignment, groups, group_weights, n_shards)
    return assignment


def _pack_greedy(
    assignment: np.ndarray,
    groups: list[np.ndarray],
    group_weights: list[int],
    n_shards: int,
) -> None:
    """Assign node groups to the least-loaded shard, heaviest group first.

    Writes shard ids into ``assignment`` in place.  Deterministic: groups
    are processed by (descending weight, insertion order) and load ties
    break toward the lowest shard id.
    """
    check_positive(n_shards, "n_shards")
    heap = [(0, shard) for shard in range(n_shards)]
    heapq.heapify(heap)
    order = sorted(
        range(len(groups)), key=lambda i: (-group_weights[i], i)
    )
    for i in order:
        load, shard = heapq.heappop(heap)
        assignment[groups[i]] = shard
        heapq.heappush(heap, (load + group_weights[i], shard))


def cross_shard_fraction(
    adjacency: CompressedAdjacency, assignment: np.ndarray
) -> float:
    """Fraction of edges whose endpoints fall in different shards.

    The quantity community-aware partitioning minimizes: every cross-shard
    edge carries residual mass between shards each round of the sharded
    precompute, so this fraction governs both the mailbox traffic and the
    number of rounds to convergence.  Counted over directed edge slots
    (each undirected edge twice — the fraction is identical).
    """
    assignment = np.asarray(assignment)
    if assignment.shape != (adjacency.n_nodes,):
        raise ValueError(
            f"assignment must have shape ({adjacency.n_nodes},), "
            f"got {assignment.shape}"
        )
    if adjacency.indices.size == 0:
        return 0.0
    src = np.repeat(
        np.arange(adjacency.n_nodes, dtype=np.int64), adjacency.degrees
    )
    return float(np.mean(assignment[src] != assignment[adjacency.indices]))
