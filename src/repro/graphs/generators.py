"""Classic topology generators with a connectivity guarantee.

All generators return *connected* undirected graphs with integer nodes
``0..n-1`` — a P2P overlay that is not connected cannot route queries, and the
experiment harness assumes one component.  Disconnected draws are repaired by
bridging components with random edges (cheaper and less disruptive to the
degree sequence than re-drawing).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.utils import check_positive, check_probability, ensure_rng
from repro.utils.rng import RngLike


def _connect_components(graph: nx.Graph, rng: np.random.Generator) -> nx.Graph:
    """Bridge the components of ``graph`` with random edges (in place)."""
    components = [list(c) for c in nx.connected_components(graph)]
    if len(components) <= 1:
        return graph
    anchor = components[0]
    for component in components[1:]:
        u = anchor[int(rng.integers(len(anchor)))]
        v = component[int(rng.integers(len(component)))]
        graph.add_edge(u, v)
        anchor.extend(component)
    return graph


def connected_erdos_renyi(n: int, p: float, *, seed: RngLike = None) -> nx.Graph:
    """G(n, p) random graph, repaired to a single component."""
    check_positive(n, "n")
    check_probability(p, "p")
    rng = ensure_rng(seed)
    graph = nx.fast_gnp_random_graph(n, p, seed=int(rng.integers(2**31)))
    return _connect_components(graph, rng)


def connected_barabasi_albert(n: int, m: int, *, seed: RngLike = None) -> nx.Graph:
    """Barabási–Albert preferential attachment (already connected for m>=1)."""
    check_positive(n, "n")
    check_positive(m, "m")
    if m >= n:
        raise ValueError(f"m ({m}) must be smaller than n ({n})")
    rng = ensure_rng(seed)
    graph = nx.barabasi_albert_graph(n, m, seed=int(rng.integers(2**31)))
    return _connect_components(graph, rng)


def connected_watts_strogatz(
    n: int, k: int, p: float, *, seed: RngLike = None
) -> nx.Graph:
    """Watts–Strogatz small-world graph, repaired to a single component."""
    check_positive(n, "n")
    check_positive(k, "k")
    check_probability(p, "p")
    rng = ensure_rng(seed)
    graph = nx.watts_strogatz_graph(n, k, p, seed=int(rng.integers(2**31)))
    return _connect_components(graph, rng)


def connected_powerlaw_cluster(
    n: int, m: int, p: float, *, seed: RngLike = None
) -> nx.Graph:
    """Holme–Kim power-law graph with tunable clustering, one component."""
    check_positive(n, "n")
    check_positive(m, "m")
    check_probability(p, "p")
    rng = ensure_rng(seed)
    graph = nx.powerlaw_cluster_graph(n, m, p, seed=int(rng.integers(2**31)))
    return _connect_components(graph, rng)


def random_regular(n: int, d: int, *, seed: RngLike = None) -> nx.Graph:
    """Random d-regular graph, repaired to one component if necessary."""
    check_positive(n, "n")
    check_positive(d, "d")
    if (n * d) % 2 != 0:
        raise ValueError("n * d must be even for a d-regular graph")
    if d >= n:
        raise ValueError(f"d ({d}) must be smaller than n ({n})")
    rng = ensure_rng(seed)
    graph = nx.random_regular_graph(d, n, seed=int(rng.integers(2**31)))
    return _connect_components(graph, rng)


def cycle_union_adjacency(
    n: int, degree: int = 10, *, seed: RngLike = None
) -> "CompressedAdjacency":
    """Random near-regular graph built directly in CSR — no networkx.

    The union of ``degree // 2`` independent random Hamiltonian cycles:
    every node gets degree ``2 · (degree // 2)`` (minus the occasional
    duplicate-edge collision), the graph is connected by construction (each
    cycle alone spans all nodes), and the whole build is a handful of numpy
    array operations — ``O(n · degree)`` time and memory.  This is the
    generator for benchmark-scale topologies (100k+ nodes) where the
    per-edge Python overhead of the networkx generators dominates the
    actual experiment.
    """
    from repro.graphs.adjacency import CompressedAdjacency

    check_positive(n, "n")
    check_positive(degree, "degree")
    if n < 3:
        raise ValueError(f"n must be at least 3 for a cycle, got {n}")
    rng = ensure_rng(seed)
    sources = []
    targets = []
    for _ in range(max(1, degree // 2)):
        permutation = rng.permutation(n).astype(np.int64)
        sources.append(permutation)
        targets.append(np.roll(permutation, -1))
    src = np.concatenate(sources)
    dst = np.concatenate(targets)
    # Symmetrize, then dedup directed edges via composite keys.
    u = np.concatenate((src, dst))
    v = np.concatenate((dst, src))
    keys = np.unique(u * np.int64(n) + v)
    rows = keys // n
    cols = keys % n
    indptr = np.concatenate(
        ([0], np.cumsum(np.bincount(rows, minlength=n)))
    ).astype(np.int64)
    return CompressedAdjacency(indptr, cols)


def community_cycle_adjacency(
    n: int,
    degree: int = 10,
    n_communities: int = 8,
    cross_fraction: float = 0.05,
    *,
    seed: RngLike = None,
) -> "CompressedAdjacency":
    """Planted-community near-regular overlay built directly in CSR.

    The community-structured sibling of :func:`cycle_union_adjacency` (and
    built at the same ``O(n · degree)`` numpy cost): nodes are split into
    ``n_communities`` contiguous blocks, each block gets the union of
    ``degree // 2`` random Hamiltonian cycles *within* the block, and a
    ``cross_fraction`` of additional edge slots is spent on uniform random
    cross-node pairs, plus one cycle through a random representative of
    each community so the overlay is connected by construction.  The result
    has strong, discoverable community structure with a tunable cross-edge
    fraction — the regime where community-aware sharding
    (:func:`repro.graphs.communities.community_partition`) pays off, and
    the benchmark topology for the sharded precompute at 10⁵–10⁶ nodes
    (decentralized social overlays are community-structured; a uniform
    random graph would make *any* partition equally bad).
    """
    from repro.graphs.adjacency import CompressedAdjacency

    check_positive(n, "n")
    check_positive(degree, "degree")
    check_positive(n_communities, "n_communities")
    check_probability(cross_fraction, "cross_fraction")
    if n < 3 * n_communities:
        raise ValueError(
            f"need >= 3 nodes per community for intra cycles, got "
            f"{n} nodes across {n_communities} communities"
        )
    rng = ensure_rng(seed)
    bounds = np.linspace(0, n, n_communities + 1).astype(np.int64)
    sources = []
    targets = []
    for _ in range(max(1, degree // 2)):
        # One permutation per sweep, rolled within each community block:
        # a Hamiltonian cycle inside every block, no edges across.
        permutation = np.empty(n, dtype=np.int64)
        rolled = np.empty(n, dtype=np.int64)
        for c in range(n_communities):
            lo, hi = int(bounds[c]), int(bounds[c + 1])
            block = lo + rng.permutation(hi - lo).astype(np.int64)
            permutation[lo:hi] = block
            rolled[lo:hi] = np.roll(block, -1)
        sources.append(permutation)
        targets.append(rolled)
    # Connectivity spine: a cycle through one representative per community.
    reps = np.array(
        [
            int(bounds[c]) + int(rng.integers(int(bounds[c + 1] - bounds[c])))
            for c in range(n_communities)
        ],
        dtype=np.int64,
    )
    if n_communities > 1:
        sources.append(reps)
        targets.append(np.roll(reps, -1))
    # Tunable leakage: uniform random pairs (mostly cross-community).
    n_cross = int(n * degree * cross_fraction / 2)
    if n_cross:
        pairs = rng.integers(0, n, size=(2, n_cross), dtype=np.int64)
        keep = pairs[0] != pairs[1]
        sources.append(pairs[0][keep])
        targets.append(pairs[1][keep])
    src = np.concatenate(sources)
    dst = np.concatenate(targets)
    u = np.concatenate((src, dst))
    v = np.concatenate((dst, src))
    keys = np.unique(u * np.int64(n) + v)
    rows = keys // n
    cols = keys % n
    indptr = np.concatenate(
        ([0], np.cumsum(np.bincount(rows, minlength=n)))
    ).astype(np.int64)
    return CompressedAdjacency(indptr, cols)


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """2-D grid with nodes relabeled to integers (deterministic topology).

    Grids have long hop distances for their size, which makes them useful for
    testing the distance-dependent behaviour of Fig. 3 deterministically.
    """
    check_positive(rows, "rows")
    check_positive(cols, "cols")
    graph = nx.grid_2d_graph(rows, cols)
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")
