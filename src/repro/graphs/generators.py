"""Classic topology generators with a connectivity guarantee.

All generators return *connected* undirected graphs with integer nodes
``0..n-1`` — a P2P overlay that is not connected cannot route queries, and the
experiment harness assumes one component.  Disconnected draws are repaired by
bridging components with random edges (cheaper and less disruptive to the
degree sequence than re-drawing).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.utils import check_positive, check_probability, ensure_rng
from repro.utils.rng import RngLike


def _connect_components(graph: nx.Graph, rng: np.random.Generator) -> nx.Graph:
    """Bridge the components of ``graph`` with random edges (in place)."""
    components = [list(c) for c in nx.connected_components(graph)]
    if len(components) <= 1:
        return graph
    anchor = components[0]
    for component in components[1:]:
        u = anchor[int(rng.integers(len(anchor)))]
        v = component[int(rng.integers(len(component)))]
        graph.add_edge(u, v)
        anchor.extend(component)
    return graph


def connected_erdos_renyi(n: int, p: float, *, seed: RngLike = None) -> nx.Graph:
    """G(n, p) random graph, repaired to a single component."""
    check_positive(n, "n")
    check_probability(p, "p")
    rng = ensure_rng(seed)
    graph = nx.fast_gnp_random_graph(n, p, seed=int(rng.integers(2**31)))
    return _connect_components(graph, rng)


def connected_barabasi_albert(n: int, m: int, *, seed: RngLike = None) -> nx.Graph:
    """Barabási–Albert preferential attachment (already connected for m>=1)."""
    check_positive(n, "n")
    check_positive(m, "m")
    if m >= n:
        raise ValueError(f"m ({m}) must be smaller than n ({n})")
    rng = ensure_rng(seed)
    graph = nx.barabasi_albert_graph(n, m, seed=int(rng.integers(2**31)))
    return _connect_components(graph, rng)


def connected_watts_strogatz(
    n: int, k: int, p: float, *, seed: RngLike = None
) -> nx.Graph:
    """Watts–Strogatz small-world graph, repaired to a single component."""
    check_positive(n, "n")
    check_positive(k, "k")
    check_probability(p, "p")
    rng = ensure_rng(seed)
    graph = nx.watts_strogatz_graph(n, k, p, seed=int(rng.integers(2**31)))
    return _connect_components(graph, rng)


def connected_powerlaw_cluster(
    n: int, m: int, p: float, *, seed: RngLike = None
) -> nx.Graph:
    """Holme–Kim power-law graph with tunable clustering, one component."""
    check_positive(n, "n")
    check_positive(m, "m")
    check_probability(p, "p")
    rng = ensure_rng(seed)
    graph = nx.powerlaw_cluster_graph(n, m, p, seed=int(rng.integers(2**31)))
    return _connect_components(graph, rng)


def random_regular(n: int, d: int, *, seed: RngLike = None) -> nx.Graph:
    """Random d-regular graph, repaired to one component if necessary."""
    check_positive(n, "n")
    check_positive(d, "d")
    if (n * d) % 2 != 0:
        raise ValueError("n * d must be even for a d-regular graph")
    if d >= n:
        raise ValueError(f"d ({d}) must be smaller than n ({n})")
    rng = ensure_rng(seed)
    graph = nx.random_regular_graph(d, n, seed=int(rng.integers(2**31)))
    return _connect_components(graph, rng)


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """2-D grid with nodes relabeled to integers (deterministic topology).

    Grids have long hop distances for their size, which makes them useful for
    testing the distance-dependent behaviour of Fig. 3 deterministically.
    """
    check_positive(rows, "rows")
    check_positive(cols, "cols")
    graph = nx.grid_2d_graph(rows, cols)
    return nx.convert_node_labels_to_integers(graph, ordering="sorted")
