"""Compact CSR adjacency used by the walk engine and the diffusion kernels.

``networkx`` graphs are the user-facing representation; hot paths (BFS,
TTL-bounded walks, diffusion) run over :class:`CompressedAdjacency`, an
immutable CSR structure with nodes relabeled to ``0..n-1``.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import networkx as nx
import numpy as np
import scipy.sparse as sp


class CompressedAdjacency:
    """Immutable undirected adjacency in CSR form.

    Attributes
    ----------
    indptr, indices:
        Standard CSR row pointers and column indices; the neighbors of node
        ``u`` are ``indices[indptr[u]:indptr[u+1]]``, sorted ascending.
    labels:
        Original node labels, index-aligned with the internal ids.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        labels: Sequence[Hashable] | None = None,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.shape[0]:
            raise ValueError("malformed indptr")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        self.n_nodes = self.indptr.shape[0] - 1
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.n_nodes
        ):
            raise ValueError("indices out of range")
        if labels is None:
            labels = list(range(self.n_nodes))
        labels = list(labels)
        if len(labels) != self.n_nodes:
            raise ValueError(
                f"{len(labels)} labels for {self.n_nodes} nodes"
            )
        self.labels = labels
        self._label_to_id = {label: i for i, label in enumerate(labels)}
        self._degrees = np.diff(self.indptr).astype(np.int64)
        # Normalized-operator memoization, keyed (kind, format) and filled
        # by repro.gsp.normalization.transition_matrix; sound because the
        # adjacency is immutable.  Cached matrices are shared — read-only.
        self._operator_cache: dict[tuple[str, str], sp.spmatrix] = {}
        self._reverse_edges: np.ndarray | None = None

    # ---------------------------------------------------------- construction

    @classmethod
    def from_networkx(cls, graph: nx.Graph) -> "CompressedAdjacency":
        """Build from an undirected :class:`networkx.Graph`.

        Self-loops are dropped (a node never forwards a query to itself).
        """
        if graph.is_directed():
            raise ValueError("graph must be undirected")
        labels = list(graph.nodes())
        index = {label: i for i, label in enumerate(labels)}
        neighbor_lists: list[list[int]] = [[] for _ in labels]
        for u, v in graph.edges():
            if u == v:
                continue
            ui, vi = index[u], index[v]
            neighbor_lists[ui].append(vi)
            neighbor_lists[vi].append(ui)
        indptr = np.zeros(len(labels) + 1, dtype=np.int64)
        for i, neigh in enumerate(neighbor_lists):
            indptr[i + 1] = indptr[i] + len(neigh)
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        for i, neigh in enumerate(neighbor_lists):
            neigh.sort()
            indices[indptr[i] : indptr[i + 1]] = neigh
        return cls(indptr, indices, labels)

    @classmethod
    def from_edges(
        cls, n_nodes: int, edges: Iterable[tuple[int, int]]
    ) -> "CompressedAdjacency":
        """Build from integer edge pairs over nodes ``0..n_nodes-1``."""
        graph = nx.Graph()
        graph.add_nodes_from(range(n_nodes))
        graph.add_edges_from(edges)
        return cls.from_networkx(graph)

    # --------------------------------------------------------------- queries

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbor ids of ``node`` (read-only CSR slice, sorted)."""
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        return int(self._degrees[node])

    @property
    def degrees(self) -> np.ndarray:
        """Degree vector (copy not taken; treat as read-only)."""
        return self._degrees

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.indices.shape[0] // 2)

    def id_of(self, label: Hashable) -> int:
        """Internal id of the original node ``label``."""
        return self._label_to_id[label]

    def label_of(self, node: int) -> Hashable:
        """Original label of internal id ``node``."""
        return self.labels[node]

    @property
    def reverse_edge_positions(self) -> np.ndarray:
        """CSR position of each directed edge's reverse (lazily cached).

        For the edge stored at CSR position ``e`` (``u → indices[e]``),
        ``reverse_edge_positions[e]`` is the CSR position of the opposite
        direction (``indices[e] → u``).  This lets the walk engines mark the
        symmetric per-(query, node) neighbor memory of paper §IV-C with two
        array writes instead of set operations.  Treat as read-only.
        """
        if self._reverse_edges is None:
            src = np.repeat(np.arange(self.n_nodes, dtype=np.int64), self._degrees)
            # CSR order sorts directed edges by (src, dst); sorting them by
            # (dst, src) instead aligns rank r with the edge whose reverse
            # sits at CSR position r, because the graph is symmetric.
            perm = np.lexsort((src, self.indices))
            rev = np.empty(self.indices.shape[0], dtype=np.int64)
            rev[perm] = np.arange(self.indices.shape[0], dtype=np.int64)
            self._reverse_edges = rev
        return self._reverse_edges

    def has_edge(self, u: int, v: int) -> bool:
        """True when ``u`` and ``v`` are adjacent (binary search)."""
        neigh = self.neighbors(u)
        pos = int(np.searchsorted(neigh, v))
        return pos < neigh.shape[0] and neigh[pos] == v

    # ------------------------------------------------------------ conversion

    def to_scipy(self) -> sp.csr_matrix:
        """Unweighted adjacency as a ``scipy.sparse.csr_matrix``."""
        data = np.ones(self.indices.shape[0], dtype=np.float64)
        return sp.csr_matrix(
            (data, self.indices.copy(), self.indptr.copy()),
            shape=(self.n_nodes, self.n_nodes),
        )

    def to_networkx(self) -> nx.Graph:
        """Rebuild a :class:`networkx.Graph` with the original labels."""
        graph = nx.Graph()
        graph.add_nodes_from(self.labels)
        for u in range(self.n_nodes):
            for v in self.neighbors(u):
                if u < v:
                    graph.add_edge(self.labels[u], self.labels[int(v)])
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"CompressedAdjacency(n_nodes={self.n_nodes}, n_edges={self.n_edges})"
        )
