"""Generative substitute for the SNAP ``ego-Facebook`` graph.

The real dataset (4,039 nodes, 88,234 edges) is the union of 10 ego networks:
each ego is adjacent to every member of its network, members cluster into
dense "social circles", and the ego networks touch through a few overlapping
friendships.  :func:`facebook_like_graph` mirrors that construction:

1. ``n_egos`` hub nodes partition the remaining nodes into regions,
2. each hub is adjacent to all members of its region (matching the dataset's
   1,045 max degree),
3. members join overlapping circles wired densely at a rate calibrated so the
   final edge count hits ``target_edges``,
4. hubs form a ring and a few random inter-region friendships glue the
   regions together (keeping the hop-distance profile: short average paths,
   diameter ≈ 8),
5. triadic closure tops up edges until ``target_edges`` is met exactly,
   raising clustering to social-network levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.utils import check_positive, check_probability, ensure_rng
from repro.utils.rng import RngLike


@dataclass(frozen=True)
class FacebookLikeConfig:
    """Calibration knobs for :func:`facebook_like_graph`.

    Defaults reproduce the published statistics of ``ego-Facebook``.
    """

    n_nodes: int = 4039
    target_edges: int = 88234
    n_egos: int = 10
    circle_size_mean: float = 28.0
    circle_size_sigma: float = 0.7
    circles_per_node: float = 1.4
    inter_region_tie_fraction: float = 0.01
    region_concentration: float = 2.0
    closure_fraction: float = 0.25

    def __post_init__(self) -> None:
        check_positive(self.n_nodes, "n_nodes")
        check_positive(self.target_edges, "target_edges")
        check_positive(self.n_egos, "n_egos")
        check_positive(self.circle_size_mean, "circle_size_mean")
        check_positive(self.circle_size_sigma, "circle_size_sigma")
        check_positive(self.circles_per_node, "circles_per_node")
        check_probability(self.inter_region_tie_fraction, "inter_region_tie_fraction")
        check_positive(self.region_concentration, "region_concentration")
        check_probability(self.closure_fraction, "closure_fraction")
        if self.n_nodes <= self.n_egos:
            raise ValueError("n_nodes must exceed n_egos")
        max_edges = self.n_nodes * (self.n_nodes - 1) // 2
        if self.target_edges > max_edges:
            raise ValueError(
                f"target_edges {self.target_edges} exceeds the maximum "
                f"{max_edges} for {self.n_nodes} nodes"
            )


def _draw_circles(
    members: np.ndarray,
    config: FacebookLikeConfig,
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Sample overlapping social circles over a region's member nodes."""
    if members.size < 2:
        return []
    total_slots = max(int(members.size * config.circles_per_node), 2)
    circles: list[np.ndarray] = []
    slots_used = 0
    mu = np.log(config.circle_size_mean)
    while slots_used < total_slots:
        size = int(round(rng.lognormal(mu, config.circle_size_sigma)))
        size = int(np.clip(size, 2, members.size))
        circles.append(rng.choice(members, size=size, replace=False))
        slots_used += size
    return circles


def facebook_like_graph(
    config: FacebookLikeConfig | None = None,
    *,
    seed: RngLike = None,
) -> nx.Graph:
    """Generate a connected social graph calibrated to ``ego-Facebook``.

    Node attributes: ``region`` (ego index) and ``is_hub``.  The returned
    graph has exactly ``config.n_nodes`` nodes and, except for degenerate
    configurations, exactly ``config.target_edges`` edges.
    """
    config = config or FacebookLikeConfig()
    rng = ensure_rng(seed)
    n = config.n_nodes
    n_egos = min(config.n_egos, max(1, n // 20))

    graph = nx.Graph()
    graph.add_nodes_from(range(n))

    hubs = np.arange(n_egos)
    others = np.arange(n_egos, n)
    weights = rng.dirichlet(np.full(n_egos, config.region_concentration))
    region_of = np.empty(n, dtype=np.int64)
    region_of[hubs] = hubs
    region_of[others] = rng.choice(n_egos, size=others.size, p=weights)

    for node in range(n):
        graph.nodes[node]["region"] = int(region_of[node])
        graph.nodes[node]["is_hub"] = bool(node < n_egos)

    # --- 1. hub spokes: every member is adjacent to its ego hub -------------
    for node in others:
        graph.add_edge(int(region_of[node]), int(node))

    # --- 2. hub ring + inter-region weak ties --------------------------------
    if n_egos > 1:
        for i in range(n_egos):
            graph.add_edge(i, (i + 1) % n_egos)
    n_ties = int(round(config.inter_region_tie_fraction * n))
    for _ in range(n_ties):
        u, v = rng.choice(n, size=2, replace=False)
        if region_of[u] != region_of[v]:
            graph.add_edge(int(u), int(v))

    # --- 3. circles, wired at a calibrated density ---------------------------
    circles: list[np.ndarray] = []
    for ego in range(n_egos):
        members = others[region_of[others] == ego]
        circles.extend(_draw_circles(members, config, rng))
    total_pairs = sum(c.size * (c.size - 1) // 2 for c in circles)
    budget = (1.0 - config.closure_fraction) * config.target_edges
    remaining = max(0.0, budget - graph.number_of_edges())
    p_intra = min(1.0, remaining / total_pairs) if total_pairs else 0.0
    for circle in circles:
        size = circle.size
        if size < 2 or p_intra <= 0.0:
            continue
        mask = rng.random((size, size)) < p_intra
        for i in range(size):
            for j in range(i + 1, size):
                if mask[i, j]:
                    graph.add_edge(int(circle[i]), int(circle[j]))

    # --- 4. triadic closure up to the exact edge target ----------------------
    needed = config.target_edges - graph.number_of_edges()
    attempts = 0
    max_attempts = 60 * max(needed, 1)
    while needed > 0 and attempts < max_attempts:
        attempts += 1
        u = int(rng.integers(n))
        neighbors = list(graph.adj[u])
        if len(neighbors) < 2:
            continue
        v, w = rng.choice(len(neighbors), size=2, replace=False)
        v, w = neighbors[int(v)], neighbors[int(w)]
        if v != w and not graph.has_edge(v, w):
            graph.add_edge(v, w)
            needed -= 1
    # Fall back to random intra-region edges if closure saturated locally.
    attempts = 0
    while needed > 0 and attempts < max_attempts:
        attempts += 1
        ego = int(rng.integers(n_egos))
        pool = np.flatnonzero(region_of == ego)
        if pool.size < 2:
            continue
        u, v = rng.choice(pool, size=2, replace=False)
        if not graph.has_edge(int(u), int(v)):
            graph.add_edge(int(u), int(v))
            needed -= 1

    # --- 5. trim any overshoot without disconnecting -------------------------
    # Hub spokes are never removed, so every member keeps its path to the hub
    # ring and the graph stays connected.
    excess = graph.number_of_edges() - config.target_edges
    if excess > 0:
        removable = [
            (u, v)
            for u, v in graph.edges()
            if not (
                (graph.nodes[u]["is_hub"] and graph.nodes[u]["region"] == graph.nodes[v]["region"])
                or (graph.nodes[v]["is_hub"] and graph.nodes[v]["region"] == graph.nodes[u]["region"])
                or (graph.nodes[u]["is_hub"] and graph.nodes[v]["is_hub"])
            )
        ]
        rng.shuffle(removable)
        for u, v in removable[:excess]:
            graph.remove_edge(u, v)

    graph.graph["generator"] = "facebook_like_graph"
    graph.graph["config"] = config
    return graph
