"""Word embedding container mirroring a minimal GenSim ``KeyedVectors`` API.

The paper draws its documents and queries from a pre-trained GloVe vocabulary;
:class:`WordEmbeddingModel` is the in-repo equivalent: an ordered vocabulary
with an aligned matrix of vectors and exact nearest-neighbor search.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.embeddings.similarity import cosine_similarity, l2_normalize


class WordEmbeddingModel:
    """An immutable vocabulary of words with aligned embedding vectors.

    Parameters
    ----------
    words:
        Vocabulary, one entry per embedding row.  Must be unique.
    vectors:
        Array of shape ``(len(words), dim)``.
    metadata:
        Optional free-form provenance (generator parameters, cluster labels...).
    """

    def __init__(
        self,
        words: Sequence[str],
        vectors: np.ndarray,
        metadata: dict | None = None,
    ) -> None:
        words = list(words)
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise ValueError(f"vectors must be 2-D, got shape {vectors.shape}")
        if len(words) != vectors.shape[0]:
            raise ValueError(
                f"{len(words)} words but {vectors.shape[0]} vectors"
            )
        if len(set(words)) != len(words):
            raise ValueError("vocabulary contains duplicate words")
        self._words = words
        self._vectors = vectors
        self._index = {word: i for i, word in enumerate(words)}
        self.metadata = dict(metadata or {})
        self._unit_vectors: np.ndarray | None = None  # lazy cosine cache

    # ------------------------------------------------------------------ basic

    def __len__(self) -> int:
        return len(self._words)

    def __contains__(self, word: str) -> bool:
        return word in self._index

    @property
    def dim(self) -> int:
        """Embedding dimensionality."""
        return self._vectors.shape[1]

    @property
    def words(self) -> list[str]:
        """The vocabulary in index order (copy)."""
        return list(self._words)

    @property
    def vectors(self) -> np.ndarray:
        """The full ``(n_words, dim)`` matrix (read-only view)."""
        view = self._vectors.view()
        view.flags.writeable = False
        return view

    def index_of(self, word: str) -> int:
        """Row index of ``word``; raises ``KeyError`` for unknown words."""
        return self._index[word]

    def word_at(self, index: int) -> str:
        """Vocabulary entry at row ``index``."""
        return self._words[index]

    def vector(self, word: str) -> np.ndarray:
        """The embedding of ``word`` (copy)."""
        return self._vectors[self._index[word]].copy()

    def vectors_for(self, words: Iterable[str]) -> np.ndarray:
        """Stack the embeddings of ``words`` into an ``(n, dim)`` matrix."""
        rows = [self._index[w] for w in words]
        return self._vectors[rows].copy()

    # ------------------------------------------------------------- similarity

    def _unit_matrix(self) -> np.ndarray:
        """Lazily cached L2-normalized vocabulary matrix (vectors are
        immutable, so the cache never invalidates)."""
        if self._unit_vectors is None:
            self._unit_vectors = l2_normalize(self._vectors)
        return self._unit_vectors

    def _cosine_to_all(self, word: str) -> np.ndarray:
        unit_query = l2_normalize(self._vectors[self._index[word]])
        return self._unit_matrix() @ unit_query

    def similarity(self, word_a: str, word_b: str) -> float:
        """Cosine similarity between two vocabulary words."""
        return float(
            cosine_similarity(self.vector(word_a), self.vector(word_b))[0]
        )

    def most_similar(
        self,
        word: str,
        top_n: int = 10,
        *,
        exclude_self: bool = True,
    ) -> list[tuple[str, float]]:
        """The ``top_n`` vocabulary words most cosine-similar to ``word``."""
        sims = self._cosine_to_all(word)
        order = np.argsort(-sims)
        results: list[tuple[str, float]] = []
        self_idx = self._index[word]
        for idx in order:
            if exclude_self and idx == self_idx:
                continue
            results.append((self._words[idx], float(sims[idx])))
            if len(results) >= top_n:
                break
        return results

    def neighbors_above(
        self,
        word: str,
        threshold: float,
        *,
        exclude_self: bool = True,
    ) -> list[tuple[str, float]]:
        """All words with cosine similarity to ``word`` above ``threshold``.

        This is the gold-document construction rule of the paper (§V-B): a
        query word's gold documents are its neighbors with cosine > 0.6.
        """
        sims = self._cosine_to_all(word)
        self_idx = self._index[word]
        hits = [
            (self._words[i], float(sims[i]))
            for i in np.flatnonzero(sims > threshold)
            if not (exclude_self and i == self_idx)
        ]
        hits.sort(key=lambda pair: -pair[1])
        return hits

    def normalized(self) -> "WordEmbeddingModel":
        """A copy of the model with L2-normalized vectors."""
        return WordEmbeddingModel(
            self._words, l2_normalize(self._vectors), dict(self.metadata)
        )

    # -------------------------------------------------------------------- I/O

    def save(self, path: str | Path) -> None:
        """Persist to an ``.npz`` archive (words, vectors)."""
        path = Path(path)
        np.savez_compressed(
            path,
            words=np.asarray(self._words, dtype=object),
            vectors=self._vectors,
        )

    @classmethod
    def load(cls, path: str | Path) -> "WordEmbeddingModel":
        """Load a model previously written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=True) as data:
            words = [str(w) for w in data["words"]]
            vectors = np.asarray(data["vectors"], dtype=np.float64)
        return cls(words, vectors)

    @classmethod
    def from_text_format(cls, path: str | Path) -> "WordEmbeddingModel":
        """Load GloVe's plain-text format: ``word v1 v2 ... vd`` per line.

        Allows plugging in the real ``glove.6B.300d.txt`` when available,
        making the synthetic substitute swappable for the paper's exact data.
        """
        words: list[str] = []
        rows: list[np.ndarray] = []
        with open(Path(path), "r", encoding="utf-8") as handle:
            for line in handle:
                parts = line.rstrip("\n").split(" ")
                if len(parts) < 2:
                    continue
                words.append(parts[0])
                rows.append(np.asarray(parts[1:], dtype=np.float64))
        if not rows:
            raise ValueError(f"no embeddings found in {path}")
        dims = {row.shape[0] for row in rows}
        if len(dims) != 1:
            raise ValueError(f"inconsistent dimensions in {path}: {sorted(dims)}")
        return cls(words, np.vstack(rows))
