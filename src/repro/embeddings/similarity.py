"""Similarity kernels for the bi-encoder vector space model (paper §III-A).

The comparison mechanism ``phi`` of eq. (2) is a dot product or cosine
similarity; the two coincide for L2-normalized embeddings (paper footnote 7).
"""

from __future__ import annotations

import numpy as np


def l2_normalize(vectors: np.ndarray, *, eps: float = 1e-12) -> np.ndarray:
    """Return a copy of ``vectors`` scaled to unit L2 norm.

    Works on a single vector (1-D) or a stack of row vectors (2-D).  Vectors
    with norm below ``eps`` are returned as zeros rather than dividing by ~0.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim == 1:
        norm = float(np.linalg.norm(vectors))
        if norm < eps:
            return np.zeros_like(vectors)
        return vectors / norm
    if vectors.ndim == 2:
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        safe = np.where(norms < eps, 1.0, norms)
        out = vectors / safe
        out[norms[:, 0] < eps] = 0.0
        return out
    raise ValueError(f"vectors must be 1-D or 2-D, got shape {vectors.shape}")


def dot_scores(query: np.ndarray, documents: np.ndarray) -> np.ndarray:
    """Dot-product relevance of ``query`` against each row of ``documents``.

    This is the comparison function used throughout the paper: the relevance of
    a document (or of a node embedding) to a query is ``e_q · e_d`` (eq. 2–3).
    """
    query = np.asarray(query, dtype=np.float64)
    documents = np.asarray(documents, dtype=np.float64)
    if query.ndim != 1:
        raise ValueError(f"query must be 1-D, got shape {query.shape}")
    if documents.ndim == 1:
        documents = documents[None, :]
    if documents.shape[1] != query.shape[0]:
        raise ValueError(
            f"dimension mismatch: query has {query.shape[0]} dims, "
            f"documents have {documents.shape[1]}"
        )
    return documents @ query


def cosine_similarity(query: np.ndarray, documents: np.ndarray) -> np.ndarray:
    """Cosine similarity of ``query`` against each row of ``documents``."""
    query = l2_normalize(np.asarray(query, dtype=np.float64))
    documents = np.asarray(documents, dtype=np.float64)
    if documents.ndim == 1:
        documents = documents[None, :]
    return dot_scores(query, l2_normalize(documents))


def pairwise_cosine(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """Cosine similarity matrix between the rows of ``a`` and rows of ``b``.

    With ``b=None`` computes the self-similarity matrix of ``a``.
    """
    a = l2_normalize(np.asarray(a, dtype=np.float64))
    b_mat = a if b is None else l2_normalize(np.asarray(b, dtype=np.float64))
    return a @ b_mat.T
