"""Synthetic GloVe substitute (substitution documented in DESIGN.md §4).

The paper's retrieval workload only relies on three geometric properties of
the GloVe space:

1. a query word has a handful of *gold* neighbors with cosine similarity above
   a threshold (0.6 in the paper),
2. unrelated words are nearly orthogonal in high dimension, so summing many of
   them produces noise rather than spurious matches, and
3. relevance is linear in the embeddings (dot product), which personalization
   vectors exploit (eq. 3).

A mixture of spherical clusters on the unit sphere reproduces exactly these
properties with controllable parameters: words in the same semantic cluster
have expected pairwise cosine ``intra_cluster_cosine``, while words from
different clusters concentrate around cosine 0 as the dimension grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.embeddings.model import WordEmbeddingModel
from repro.embeddings.similarity import l2_normalize
from repro.utils import check_positive, check_probability, ensure_rng
from repro.utils.rng import RngLike


@dataclass(frozen=True)
class SyntheticCorpusConfig:
    """Parameters of the synthetic word-embedding space.

    Attributes
    ----------
    n_words:
        Vocabulary size.  The paper's experiments need at least
        ``M + n_queries`` distinct words (documents are words, §V-B).
    dim:
        Embedding dimensionality; 300 matches the GloVe vectors the paper uses.
    n_clusters:
        Number of semantic clusters.  Cluster sizes follow a Zipf law so a few
        "topics" are large and most are small, mimicking natural vocabulary.
    intra_cluster_cosine:
        Expected cosine similarity between two words of the same cluster.  The
        paper's gold threshold is 0.6, so the default 0.72 leaves most
        same-cluster pairs above the threshold without making them identical.
    singleton_fraction:
        Fraction of words drawn uniformly on the sphere, belonging to no
        cluster — these can only appear as irrelevant documents.
    zipf_exponent:
        Exponent of the Zipf law for word occurrence frequencies (stored in
        the model metadata and used by the corpus generator).
    cluster_zipf_exponent:
        Exponent of the (milder) Zipf law for cluster sizes.  Kept small so
        gold sets stay a realistic handful of neighbors: real GloVe words
        rarely have more than a few neighbors above cosine 0.6.
    """

    n_words: int = 10_000
    dim: int = 300
    n_clusters: int = 500
    intra_cluster_cosine: float = 0.72
    singleton_fraction: float = 0.2
    zipf_exponent: float = 1.1
    cluster_zipf_exponent: float = 0.3
    word_prefix: str = "word"

    def __post_init__(self) -> None:
        check_positive(self.n_words, "n_words")
        check_positive(self.dim, "dim")
        check_positive(self.n_clusters, "n_clusters")
        check_probability(self.intra_cluster_cosine, "intra_cluster_cosine", inclusive=False)
        check_probability(self.singleton_fraction, "singleton_fraction")
        check_positive(self.zipf_exponent, "zipf_exponent")
        check_positive(self.cluster_zipf_exponent, "cluster_zipf_exponent")


def noise_scale_for_cosine(target_cosine: float, dim: int) -> float:
    """Gaussian noise scale sigma so that two perturbed copies of a unit
    vector have expected cosine ``target_cosine``.

    For ``v_i = normalize(c + sigma * g_i)`` with ``g_i ~ N(0, I_dim)`` and
    unit ``c``, the expected dot product is approximately
    ``1 / (1 + sigma^2 * dim)``; solving for sigma gives the formula below.
    """
    check_probability(target_cosine, "target_cosine", inclusive=False)
    check_positive(dim, "dim")
    return float(np.sqrt((1.0 / target_cosine - 1.0) / dim))


def zipf_weights(count: int, exponent: float) -> np.ndarray:
    """Normalized Zipf probabilities ``p_k ∝ 1 / k^exponent`` for k = 1..count."""
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def synthetic_word_embeddings(
    config: SyntheticCorpusConfig | None = None,
    *,
    seed: RngLike = None,
) -> WordEmbeddingModel:
    """Generate a :class:`WordEmbeddingModel` per ``config``.

    The returned model's ``metadata`` records the generator parameters plus:

    * ``cluster_of`` — per-word cluster id (−1 for singletons),
    * ``frequencies`` — Zipf occurrence probabilities aligned with the vocab,
    * ``cluster_centers`` — the ``(n_clusters, dim)`` center matrix.
    """
    config = config or SyntheticCorpusConfig()
    rng = ensure_rng(seed)

    centers = l2_normalize(rng.standard_normal((config.n_clusters, config.dim)))
    sigma = noise_scale_for_cosine(config.intra_cluster_cosine, config.dim)

    n_singletons = int(round(config.n_words * config.singleton_fraction))
    n_clustered = config.n_words - n_singletons

    cluster_probs = zipf_weights(config.n_clusters, config.cluster_zipf_exponent)
    cluster_of = np.full(config.n_words, -1, dtype=np.int64)
    cluster_of[:n_clustered] = rng.choice(
        config.n_clusters, size=n_clustered, p=cluster_probs
    )
    # Shuffle so cluster membership is not correlated with vocabulary rank
    # (rank determines the Zipf frequency below).
    rng.shuffle(cluster_of)

    vectors = np.empty((config.n_words, config.dim), dtype=np.float64)
    singleton_mask = cluster_of < 0
    n_actual_singletons = int(singleton_mask.sum())
    if n_actual_singletons:
        vectors[singleton_mask] = rng.standard_normal(
            (n_actual_singletons, config.dim)
        )
    clustered_idx = np.flatnonzero(~singleton_mask)
    if clustered_idx.size:
        noise = sigma * rng.standard_normal((clustered_idx.size, config.dim))
        vectors[clustered_idx] = centers[cluster_of[clustered_idx]] + noise
    vectors = l2_normalize(vectors)

    width = max(5, len(str(config.n_words - 1)))
    words = [f"{config.word_prefix}{i:0{width}d}" for i in range(config.n_words)]
    frequencies = zipf_weights(config.n_words, config.zipf_exponent)

    metadata = {
        "generator": "synthetic_word_embeddings",
        "config": config,
        "cluster_of": cluster_of,
        "frequencies": frequencies,
        "cluster_centers": centers,
        "noise_sigma": sigma,
    }
    return WordEmbeddingModel(words, vectors, metadata)
