"""From-scratch distributional embedding trainer (GloVe-family substitute).

Pipeline: tokenized sentences → windowed co-occurrence counts → shifted
positive PMI matrix → truncated SVD.  Levy & Goldberg (2014) showed this
factorization is implicitly what skip-gram/GloVe-style models optimize, so it
is a faithful, dependency-free stand-in for "pre-trained word vectors" and
demonstrates that the search scheme is agnostic to the embedding source
(paper §V-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import svds

from repro.embeddings.model import WordEmbeddingModel
from repro.embeddings.similarity import l2_normalize
from repro.utils import check_non_negative, check_positive


@dataclass
class CooccurrenceCounts:
    """Symmetric windowed co-occurrence statistics over a fixed vocabulary."""

    vocabulary: list[str]
    matrix: sp.csr_matrix  # (n_words, n_words), symmetric counts
    word_counts: np.ndarray  # marginal occurrence counts per word
    total_pairs: float  # total number of counted (word, context) pairs

    def __post_init__(self) -> None:
        n = len(self.vocabulary)
        if self.matrix.shape != (n, n):
            raise ValueError(
                f"matrix shape {self.matrix.shape} does not match vocabulary size {n}"
            )
        if self.word_counts.shape != (n,):
            raise ValueError("word_counts must be aligned with the vocabulary")


def count_cooccurrences(
    sentences: Iterable[Sequence[str]],
    vocabulary: Sequence[str],
    *,
    window: int = 4,
) -> CooccurrenceCounts:
    """Count symmetric co-occurrences of ``vocabulary`` words within ``window``.

    Out-of-vocabulary tokens are skipped (they do not break the window, which
    matches the common practice of filtering the corpus to the vocabulary).
    """
    check_positive(window, "window")
    vocabulary = list(vocabulary)
    index = {word: i for i, word in enumerate(vocabulary)}
    n = len(vocabulary)

    rows: list[int] = []
    cols: list[int] = []
    word_counts = np.zeros(n, dtype=np.float64)
    total_pairs = 0.0

    for sentence in sentences:
        ids = [index[tok] for tok in sentence if tok in index]
        for pos, wid in enumerate(ids):
            word_counts[wid] += 1.0
            upper = min(len(ids), pos + window + 1)
            for ctx_pos in range(pos + 1, upper):
                cid = ids[ctx_pos]
                rows.append(wid)
                cols.append(cid)
                total_pairs += 2.0  # counted once here, symmetrized below

    if rows:
        data = np.ones(len(rows), dtype=np.float64)
        half = sp.coo_matrix((data, (rows, cols)), shape=(n, n))
        matrix = (half + half.T).tocsr()
    else:
        matrix = sp.csr_matrix((n, n), dtype=np.float64)
    return CooccurrenceCounts(vocabulary, matrix, word_counts, total_pairs)


def sppmi_matrix(counts: CooccurrenceCounts, *, shift: float = 1.0) -> sp.csr_matrix:
    """Shifted positive pointwise mutual information of the co-occurrences.

    ``SPPMI[i, j] = max(0, log(P(i, j) / (P(i) P(j))) − log(shift))`` computed
    only on observed pairs (unobserved pairs have PMI −inf, clipped to 0, so
    the sparse structure is preserved).
    """
    check_non_negative(shift, "shift")
    coo = counts.matrix.tocoo()
    if coo.nnz == 0:
        return sp.csr_matrix(counts.matrix.shape, dtype=np.float64)

    pair_total = coo.data.sum()
    context_totals = np.asarray(counts.matrix.sum(axis=0)).ravel()
    word_totals = np.asarray(counts.matrix.sum(axis=1)).ravel()

    p_ij = coo.data / pair_total
    p_i = word_totals[coo.row] / pair_total
    p_j = context_totals[coo.col] / pair_total
    with np.errstate(divide="ignore"):
        pmi = np.log(p_ij / (p_i * p_j))
    if shift > 0:
        pmi = pmi - np.log(shift) if shift != 1.0 else pmi
    data = np.maximum(pmi, 0.0)
    result = sp.coo_matrix((data, (coo.row, coo.col)), shape=counts.matrix.shape)
    result.eliminate_zeros()
    return result.tocsr()


def train_svd_embeddings(
    counts: CooccurrenceCounts,
    dim: int,
    *,
    shift: float = 1.0,
    context_weight: float = 0.5,
    normalize: bool = True,
) -> WordEmbeddingModel:
    """Factorize the SPPMI matrix with truncated SVD into word embeddings.

    ``context_weight`` controls the eigenvalue weighting
    ``W = U diag(S^context_weight)``; 0.5 (symmetric split) is the standard
    choice for similarity tasks.
    """
    check_positive(dim, "dim")
    n = len(counts.vocabulary)
    if dim >= n:
        raise ValueError(
            f"dim must be smaller than the vocabulary size ({n}), got {dim}"
        )
    sppmi = sppmi_matrix(counts, shift=shift)
    if sppmi.nnz == 0:
        raise ValueError("SPPMI matrix is empty; corpus too small or shift too large")
    u, s, _ = svds(sppmi.astype(np.float64), k=dim)
    # svds returns singular values in ascending order; flip for convention.
    order = np.argsort(-s)
    u, s = u[:, order], s[order]
    vectors = u * (s ** context_weight)
    if normalize:
        vectors = l2_normalize(vectors)
    metadata = {
        "generator": "train_svd_embeddings",
        "dim": dim,
        "shift": shift,
        "context_weight": context_weight,
        "singular_values": s,
    }
    return WordEmbeddingModel(counts.vocabulary, vectors, metadata)
