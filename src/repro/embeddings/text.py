"""Synthetic text corpus generation and tokenization.

Feeds the from-scratch embedding trainer (:mod:`repro.embeddings.cooccurrence`)
with sentences whose word co-occurrence statistics mirror a topical corpus:
each sentence draws most of its words from one semantic cluster plus a
background of globally frequent words, so words sharing a topic co-occur far
more often than chance — the signal GloVe-style factorizations pick up.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.utils import check_positive, check_probability, ensure_rng
from repro.utils.rng import RngLike

_TOKEN_RE = re.compile(r"[a-z0-9_]+")


def tokenize(text: str) -> list[str]:
    """Lower-case and split ``text`` into alphanumeric tokens."""
    return _TOKEN_RE.findall(text.lower())


@dataclass(frozen=True)
class ZipfCorpusConfig:
    """Parameters of the synthetic topical corpus.

    Attributes
    ----------
    n_sentences:
        Number of sentences to generate.
    sentence_length:
        Mean sentence length (Poisson distributed, at least 2 tokens).
    topic_adherence:
        Probability that each token is drawn from the sentence's topic rather
        than from the global Zipf background.
    """

    n_sentences: int = 2_000
    sentence_length: int = 12
    topic_adherence: float = 0.8

    def __post_init__(self) -> None:
        check_positive(self.n_sentences, "n_sentences")
        check_positive(self.sentence_length, "sentence_length")
        check_probability(self.topic_adherence, "topic_adherence")


def generate_topic_corpus(
    vocabulary: Sequence[str],
    topic_of: np.ndarray,
    frequencies: np.ndarray,
    config: ZipfCorpusConfig | None = None,
    *,
    seed: RngLike = None,
) -> Iterator[list[str]]:
    """Yield synthetic sentences over ``vocabulary``.

    Parameters
    ----------
    vocabulary:
        Word list; index-aligned with ``topic_of`` and ``frequencies``.
    topic_of:
        Integer topic id per word; words with topic −1 only appear as
        background noise.
    frequencies:
        Global occurrence probabilities per word (will be normalized).
    """
    config = config or ZipfCorpusConfig()
    rng = ensure_rng(seed)
    topic_of = np.asarray(topic_of, dtype=np.int64)
    frequencies = np.asarray(frequencies, dtype=np.float64)
    if len(vocabulary) != topic_of.shape[0] or len(vocabulary) != frequencies.shape[0]:
        raise ValueError("vocabulary, topic_of and frequencies must be aligned")
    frequencies = frequencies / frequencies.sum()

    topics = np.unique(topic_of[topic_of >= 0])
    if topics.size == 0:
        raise ValueError("topic_of assigns no word to any topic")
    members: dict[int, np.ndarray] = {
        int(t): np.flatnonzero(topic_of == t) for t in topics
    }
    # Topic popularity proportional to the total frequency of its members.
    topic_weights = np.asarray(
        [frequencies[members[int(t)]].sum() for t in topics], dtype=np.float64
    )
    topic_weights = topic_weights / topic_weights.sum()

    all_indices = np.arange(len(vocabulary))
    for _ in range(config.n_sentences):
        topic = int(topics[rng.choice(topics.size, p=topic_weights)])
        member_idx = members[topic]
        member_probs = frequencies[member_idx]
        member_probs = member_probs / member_probs.sum()
        length = max(2, int(rng.poisson(config.sentence_length)))
        sentence: list[str] = []
        for _ in range(length):
            if rng.random() < config.topic_adherence:
                word_idx = int(member_idx[rng.choice(member_idx.size, p=member_probs)])
            else:
                word_idx = int(all_indices[rng.choice(all_indices.size, p=frequencies)])
            sentence.append(vocabulary[word_idx])
        yield sentence


def corpus_to_text(sentences: Iterable[Sequence[str]]) -> str:
    """Join tokenized sentences back into a whitespace/newline text blob."""
    return "\n".join(" ".join(sentence) for sentence in sentences)
