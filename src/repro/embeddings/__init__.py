"""Embedding substrate: the dense-retrieval vector spaces of the paper.

The paper represents documents and queries with 300-d GloVe word vectors.  With
no network access, this package provides two from-scratch substitutes:

* :mod:`repro.embeddings.synthetic` — a clustered unit-vector model calibrated
  to the geometric properties retrieval relies on (high-cosine gold neighbors,
  near-orthogonal irrelevant words).
* :mod:`repro.embeddings.cooccurrence` — a miniature GloVe-style trainer
  (synthetic corpus → co-occurrence counts → SPPMI → truncated SVD).

Both produce a :class:`repro.embeddings.model.WordEmbeddingModel`.
"""

from repro.embeddings.model import WordEmbeddingModel
from repro.embeddings.similarity import (
    l2_normalize,
    cosine_similarity,
    dot_scores,
    pairwise_cosine,
)
from repro.embeddings.synthetic import SyntheticCorpusConfig, synthetic_word_embeddings
from repro.embeddings.cooccurrence import (
    CooccurrenceCounts,
    count_cooccurrences,
    sppmi_matrix,
    train_svd_embeddings,
)
from repro.embeddings.text import ZipfCorpusConfig, generate_topic_corpus, tokenize

__all__ = [
    "WordEmbeddingModel",
    "l2_normalize",
    "cosine_similarity",
    "dot_scores",
    "pairwise_cosine",
    "SyntheticCorpusConfig",
    "synthetic_word_embeddings",
    "CooccurrenceCounts",
    "count_cooccurrences",
    "sppmi_matrix",
    "train_svd_embeddings",
    "ZipfCorpusConfig",
    "generate_topic_corpus",
    "tokenize",
]
