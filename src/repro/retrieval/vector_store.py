"""Per-node document store: the local collection ``D_u`` of paper §III-B."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

import numpy as np

from repro.embeddings.similarity import dot_scores
from repro.retrieval.scoring import top_k_indices


@dataclass(frozen=True)
class StoredDocument:
    """A document held by a node: opaque id plus its embedding."""

    doc_id: Hashable
    embedding: np.ndarray

    def __post_init__(self) -> None:
        embedding = np.asarray(self.embedding, dtype=np.float64)
        if embedding.ndim != 1:
            raise ValueError(
                f"embedding must be 1-D, got shape {embedding.shape}"
            )
        object.__setattr__(self, "embedding", embedding)


class DocumentStore:
    """A node's local document collection with exact top-k scoring.

    Embeddings are kept in a contiguous matrix so a query is scored against
    every local document with a single matrix-vector product (the exact
    retrieval of eq. 1, cheap at per-node collection sizes).  The matrix is
    an amortized-doubling capacity buffer: ``add`` appends into spare rows
    and only reallocates when the buffer is full, so building a store of
    ``m`` documents copies O(m) rows instead of the O(m²) of re-stacking the
    whole matrix per document.
    """

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self._doc_ids: list[Hashable] = []
        self._positions: dict[Hashable, int] = {}
        # Capacity buffer; rows beyond len(self._doc_ids) are uninitialized.
        self._matrix = np.empty((0, dim), dtype=np.float64)

    @classmethod
    def from_documents(
        cls,
        dim: int,
        doc_ids: Iterable[Hashable],
        embeddings: np.ndarray,
    ) -> "DocumentStore":
        """Bulk-build a store from aligned ids and an embedding matrix.

        One validation and one matrix copy for the whole collection — the
        fast path for the simulation drivers, which build hundreds of stores
        per iteration.  Duplicate ids fall back to sequential ``add``
        semantics (later occurrences replace earlier ones).
        """
        store = cls(dim)
        matrix = np.array(embeddings, dtype=np.float64, ndmin=2)
        ids = list(doc_ids)
        if matrix.shape != (len(ids), store.dim):
            raise ValueError(
                f"embeddings must have shape ({len(ids)}, {store.dim}), "
                f"got {matrix.shape}"
            )
        positions = {doc_id: i for i, doc_id in enumerate(ids)}
        if len(positions) != len(ids):
            store.add_many(
                StoredDocument(doc_id, matrix[i]) for i, doc_id in enumerate(ids)
            )
            return store
        store._doc_ids = ids
        store._positions = positions
        store._matrix = matrix
        return store

    # ------------------------------------------------------------- mutation

    def _reserve(self, extra: int) -> None:
        """Grow the buffer (geometrically) to fit ``extra`` more rows."""
        needed = len(self._doc_ids) + extra
        capacity = self._matrix.shape[0]
        if needed <= capacity:
            return
        grown = np.empty(
            (max(needed, 2 * capacity, 4), self.dim), dtype=np.float64
        )
        grown[: len(self._doc_ids)] = self._matrix[: len(self._doc_ids)]
        self._matrix = grown

    def _check_shape(self, embedding: np.ndarray) -> None:
        if embedding.shape != (self.dim,):
            raise ValueError(
                f"embedding must have shape ({self.dim},), got {embedding.shape}"
            )

    def add(self, doc_id: Hashable, embedding: np.ndarray) -> None:
        """Add a document; re-adding an existing id replaces its embedding."""
        embedding = np.asarray(embedding, dtype=np.float64)
        self._check_shape(embedding)
        position = self._positions.get(doc_id)
        if position is not None:
            self._matrix[position] = embedding
            return
        self._reserve(1)
        self._matrix[len(self._doc_ids)] = embedding
        self._positions[doc_id] = len(self._doc_ids)
        self._doc_ids.append(doc_id)

    def add_many(self, documents: Iterable[StoredDocument]) -> None:
        """Add several documents atomically w.r.t. validation.

        Every embedding's shape is checked before the first row is written,
        so a bad document mid-batch cannot leave the store half-updated.
        """
        new_docs = list(documents)
        for doc in new_docs:
            self._check_shape(doc.embedding)
        fresh_ids = {d.doc_id for d in new_docs} - self._positions.keys()
        self._reserve(len(fresh_ids))
        for doc in new_docs:
            position = self._positions.get(doc.doc_id)
            if position is None:
                position = len(self._doc_ids)
                self._positions[doc.doc_id] = position
                self._doc_ids.append(doc.doc_id)
            self._matrix[position] = doc.embedding

    def remove(self, doc_id: Hashable) -> None:
        """Remove a document (swap-with-last, O(1) row moves)."""
        pos = self._positions.pop(doc_id)
        last = len(self._doc_ids) - 1
        if pos != last:
            moved_id = self._doc_ids[last]
            self._doc_ids[pos] = moved_id
            self._matrix[pos] = self._matrix[last]
            self._positions[moved_id] = pos
        self._doc_ids.pop()

    # -------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._doc_ids)

    def __contains__(self, doc_id: Hashable) -> bool:
        return doc_id in self._positions

    @property
    def doc_ids(self) -> list[Hashable]:
        """All stored document ids (insertion order, modulo removals)."""
        return list(self._doc_ids)

    def embedding_of(self, doc_id: Hashable) -> np.ndarray:
        """Embedding of a stored document (copy)."""
        return self._matrix[self._positions[doc_id]].copy()

    def score(self, query: np.ndarray) -> np.ndarray:
        """Dot-product score of ``query`` against every stored document."""
        if len(self._doc_ids) == 0:
            return np.empty(0, dtype=np.float64)
        return dot_scores(query, self._matrix[: len(self._doc_ids)])

    def top_k(self, query: np.ndarray, k: int) -> list[tuple[Hashable, float]]:
        """Best ``k`` local documents as ``(doc_id, score)``, best first."""
        scores = self.score(query)
        return [
            (self._doc_ids[i], float(scores[i])) for i in top_k_indices(scores, k)
        ]

    def sum_of_embeddings(self) -> np.ndarray:
        """Sum of all stored document embeddings.

        This is the node personalization vector of paper §IV-A (eq. 3) in its
        raw "sum" form; weighting variants live in
        :mod:`repro.core.personalization`.
        """
        if len(self._doc_ids) == 0:
            return np.zeros(self.dim, dtype=np.float64)
        return self._matrix[: len(self._doc_ids)].sum(axis=0)

    def matrix(self) -> np.ndarray:
        """The ``(n_docs, dim)`` embedding matrix (copy)."""
        return self._matrix[: len(self._doc_ids)].copy()
