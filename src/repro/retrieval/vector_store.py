"""Per-node document store: the local collection ``D_u`` of paper §III-B."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

import numpy as np

from repro.embeddings.similarity import dot_scores
from repro.retrieval.scoring import top_k_indices


@dataclass(frozen=True)
class StoredDocument:
    """A document held by a node: opaque id plus its embedding."""

    doc_id: Hashable
    embedding: np.ndarray

    def __post_init__(self) -> None:
        embedding = np.asarray(self.embedding, dtype=np.float64)
        if embedding.ndim != 1:
            raise ValueError(
                f"embedding must be 1-D, got shape {embedding.shape}"
            )
        object.__setattr__(self, "embedding", embedding)


class DocumentStore:
    """A node's local document collection with exact top-k scoring.

    Embeddings are kept in a contiguous matrix so a query is scored against
    every local document with a single matrix-vector product (the exact
    retrieval of eq. 1, cheap at per-node collection sizes).
    """

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self._doc_ids: list[Hashable] = []
        self._positions: dict[Hashable, int] = {}
        self._matrix = np.empty((0, dim), dtype=np.float64)

    # ------------------------------------------------------------- mutation

    def add(self, doc_id: Hashable, embedding: np.ndarray) -> None:
        """Add a document; re-adding an existing id replaces its embedding."""
        embedding = np.asarray(embedding, dtype=np.float64)
        if embedding.shape != (self.dim,):
            raise ValueError(
                f"embedding must have shape ({self.dim},), got {embedding.shape}"
            )
        if doc_id in self._positions:
            self._matrix[self._positions[doc_id]] = embedding
            return
        self._positions[doc_id] = len(self._doc_ids)
        self._doc_ids.append(doc_id)
        self._matrix = np.vstack([self._matrix, embedding[None, :]])

    def add_many(self, documents: Iterable[StoredDocument]) -> None:
        """Add several documents (single reallocation for the common path)."""
        new_docs = [d for d in documents]
        fresh = [d for d in new_docs if d.doc_id not in self._positions]
        replace = [d for d in new_docs if d.doc_id in self._positions]
        for doc in replace:
            self._matrix[self._positions[doc.doc_id]] = doc.embedding
        if fresh:
            for doc in fresh:
                if doc.embedding.shape != (self.dim,):
                    raise ValueError(
                        f"embedding must have shape ({self.dim},), "
                        f"got {doc.embedding.shape}"
                    )
                self._positions[doc.doc_id] = len(self._doc_ids)
                self._doc_ids.append(doc.doc_id)
            block = np.vstack([doc.embedding[None, :] for doc in fresh])
            self._matrix = np.vstack([self._matrix, block])

    def remove(self, doc_id: Hashable) -> None:
        """Remove a document (swap-with-last, O(1) row moves)."""
        pos = self._positions.pop(doc_id)
        last = len(self._doc_ids) - 1
        if pos != last:
            moved_id = self._doc_ids[last]
            self._doc_ids[pos] = moved_id
            self._matrix[pos] = self._matrix[last]
            self._positions[moved_id] = pos
        self._doc_ids.pop()
        self._matrix = self._matrix[:last]

    # -------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._doc_ids)

    def __contains__(self, doc_id: Hashable) -> bool:
        return doc_id in self._positions

    @property
    def doc_ids(self) -> list[Hashable]:
        """All stored document ids (insertion order, modulo removals)."""
        return list(self._doc_ids)

    def embedding_of(self, doc_id: Hashable) -> np.ndarray:
        """Embedding of a stored document (copy)."""
        return self._matrix[self._positions[doc_id]].copy()

    def score(self, query: np.ndarray) -> np.ndarray:
        """Dot-product score of ``query`` against every stored document."""
        if len(self._doc_ids) == 0:
            return np.empty(0, dtype=np.float64)
        return dot_scores(query, self._matrix)

    def top_k(self, query: np.ndarray, k: int) -> list[tuple[Hashable, float]]:
        """Best ``k`` local documents as ``(doc_id, score)``, best first."""
        scores = self.score(query)
        return [
            (self._doc_ids[i], float(scores[i])) for i in top_k_indices(scores, k)
        ]

    def sum_of_embeddings(self) -> np.ndarray:
        """Sum of all stored document embeddings.

        This is the node personalization vector of paper §IV-A (eq. 3) in its
        raw "sum" form; weighting variants live in
        :mod:`repro.core.personalization`.
        """
        if len(self._doc_ids) == 0:
            return np.zeros(self.dim, dtype=np.float64)
        return self._matrix.sum(axis=0)

    def matrix(self) -> np.ndarray:
        """The ``(n_docs, dim)`` embedding matrix (copy)."""
        return self._matrix.copy()
