"""Dense retrieval substrate (paper §II-B, §III-A).

Implements the bi-encoder vector space model: per-node document stores with
exact top-k scoring, the running top-k tracker carried by queries, and two
approximate nearest-neighbor back-ends (random-hyperplane LSH and HNSW) of
the kind the paper cites for efficient centralized retrieval.
"""

from repro.retrieval.vector_store import DocumentStore, StoredDocument
from repro.retrieval.scoring import rank_documents, top_k_indices
from repro.retrieval.topk import TopKTracker, ScoredDocument
from repro.retrieval.lsh import LSHIndex
from repro.retrieval.hnsw import HNSWIndex

__all__ = [
    "DocumentStore",
    "StoredDocument",
    "rank_documents",
    "top_k_indices",
    "TopKTracker",
    "ScoredDocument",
    "LSHIndex",
    "HNSWIndex",
]
