"""Random-hyperplane LSH for approximate maximum-inner-product search.

One of the two ANN families the paper cites for making bi-encoder retrieval
cheap (§II-B / §III-A).  Each table hashes a vector to the sign pattern of
``n_planes`` random projections; cosine-similar vectors collide with high
probability (collision probability per plane is ``1 − θ/π``).
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.embeddings.similarity import dot_scores, l2_normalize
from repro.retrieval.scoring import top_k_indices
from repro.utils import check_positive, ensure_rng
from repro.utils.rng import RngLike


class LSHIndex:
    """Multi-table random-hyperplane index over unit vectors.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    n_planes:
        Hyperplanes per table (bucket granularity; more planes ⇒ smaller,
        purer buckets).
    n_tables:
        Independent tables (more tables ⇒ higher recall, more memory).
    """

    def __init__(
        self,
        dim: int,
        *,
        n_planes: int = 12,
        n_tables: int = 8,
        seed: RngLike = None,
    ) -> None:
        check_positive(dim, "dim")
        check_positive(n_planes, "n_planes")
        check_positive(n_tables, "n_tables")
        if n_planes > 62:
            raise ValueError("n_planes must be <= 62 to pack hashes into int64")
        rng = ensure_rng(seed)
        self.dim = int(dim)
        self.n_planes = int(n_planes)
        self.n_tables = int(n_tables)
        self._planes = rng.standard_normal((n_tables, n_planes, dim))
        self._powers = (2 ** np.arange(n_planes)).astype(np.int64)
        self._tables: list[dict[int, list[int]]] = [dict() for _ in range(n_tables)]
        self._ids: list[Hashable] = []
        self._vectors: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._ids)

    def _hashes(self, vector: np.ndarray) -> np.ndarray:
        """Bucket key of ``vector`` in each table."""
        projections = self._planes @ vector  # (n_tables, n_planes)
        bits = (projections > 0).astype(np.int64)
        return bits @ self._powers

    def add(self, item_id: Hashable, vector: np.ndarray) -> None:
        """Index a vector under ``item_id``."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"vector must have shape ({self.dim},), got {vector.shape}")
        internal = len(self._ids)
        self._ids.append(item_id)
        self._vectors.append(vector)
        for table, key in zip(self._tables, self._hashes(vector)):
            table.setdefault(int(key), []).append(internal)

    def candidates(self, query: np.ndarray) -> np.ndarray:
        """Internal indices colliding with ``query`` in any table."""
        query = np.asarray(query, dtype=np.float64)
        found: set[int] = set()
        for table, key in zip(self._tables, self._hashes(query)):
            found.update(table.get(int(key), ()))
        return np.fromiter(sorted(found), dtype=np.int64, count=len(found))

    def query(
        self, query: np.ndarray, k: int, *, rerank: bool = True
    ) -> list[tuple[Hashable, float]]:
        """Approximate top-k by exact reranking of the collision candidates."""
        if not self._ids:
            return []
        candidate_idx = self.candidates(query)
        if candidate_idx.size == 0:
            return []
        matrix = np.vstack([self._vectors[i] for i in candidate_idx])
        scores = dot_scores(np.asarray(query, dtype=np.float64), matrix)
        keep = top_k_indices(scores, k) if rerank else np.arange(min(k, scores.size))
        return [
            (self._ids[int(candidate_idx[i])], float(scores[i])) for i in keep
        ]

    def recall_against_exact(self, queries: np.ndarray, k: int) -> float:
        """Fraction of exact top-k results the index retrieves (diagnostics)."""
        if not self._ids:
            raise ValueError("index is empty")
        matrix = np.vstack(self._vectors)
        hits = 0
        total = 0
        for query in np.atleast_2d(np.asarray(queries, dtype=np.float64)):
            exact = {
                self._ids[int(i)]
                for i in top_k_indices(dot_scores(query, matrix), k)
            }
            approx = {item_id for item_id, _ in self.query(query, k)}
            hits += len(exact & approx)
            total += len(exact)
        return hits / total if total else 1.0

    @classmethod
    def build(
        cls,
        ids: list[Hashable],
        vectors: np.ndarray,
        *,
        n_planes: int = 12,
        n_tables: int = 8,
        normalize: bool = True,
        seed: RngLike = None,
    ) -> "LSHIndex":
        """Construct and populate an index from parallel id/vector arrays."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise ValueError(f"vectors must be 2-D, got shape {vectors.shape}")
        if len(ids) != vectors.shape[0]:
            raise ValueError(f"{len(ids)} ids for {vectors.shape[0]} vectors")
        if normalize:
            vectors = l2_normalize(vectors)
        index = cls(
            vectors.shape[1], n_planes=n_planes, n_tables=n_tables, seed=seed
        )
        for item_id, vector in zip(ids, vectors):
            index.add(item_id, vector)
        return index
