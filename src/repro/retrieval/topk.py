"""The running top-k tracker carried by forwarded queries (paper §IV-C).

"Queries keep track of the k most relevant documents they have encountered
along with their relevance score."  The tracker is a bounded best-k set with
deterministic ordering (score descending, then document id ascending) and a
merge operation used when parallel walks rejoin at the query source.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator


@dataclass(frozen=True, order=True)
class ScoredDocument:
    """A document hit recorded by a query.

    ``sort_key`` makes higher scores sort first and ties break on document id,
    so tracker contents are a deterministic function of the inserted set.
    """

    score: float
    doc_id: Hashable
    node: Hashable | None = None

    @property
    def sort_key(self) -> tuple[float, str]:
        return (-self.score, str(self.doc_id))


class TopKTracker:
    """Bounded container of the best ``k`` scored documents seen so far."""

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = int(k)
        # Min-heap keyed on (score, reversed tie-break) so the *worst* kept
        # document is at the root and can be evicted in O(log k).
        self._heap: list[tuple[float, _ReverseStr, ScoredDocument]] = []
        self._doc_ids: set[Hashable] = set()

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, doc_id: Hashable) -> bool:
        return doc_id in self._doc_ids

    @property
    def is_full(self) -> bool:
        """True once ``k`` documents are being tracked."""
        return len(self._heap) >= self.k

    def worst_score(self) -> float:
        """Lowest score currently kept; −inf when not full."""
        if not self.is_full:
            return float("-inf")
        return self._heap[0][0]

    def offer(self, doc_id: Hashable, score: float, node: Hashable | None = None) -> bool:
        """Offer a document; returns True when it was (or already is) kept.

        A document id is tracked at most once — re-offering an id already in
        the tracker keeps its existing entry (document scores are a pure
        function of the query, so duplicates carry identical scores).
        """
        if doc_id in self._doc_ids:
            return True
        entry = (float(score), _ReverseStr(str(doc_id)), ScoredDocument(float(score), doc_id, node))
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
            self._doc_ids.add(doc_id)
            return True
        if entry <= self._heap[0]:
            return False
        evicted = heapq.heappushpop(self._heap, entry)
        self._doc_ids.discard(evicted[2].doc_id)
        self._doc_ids.add(doc_id)
        return True

    def merge(self, other: "TopKTracker") -> None:
        """Fold another tracker's documents into this one."""
        for item in other.items():
            self.offer(item.doc_id, item.score, item.node)

    def items(self) -> list[ScoredDocument]:
        """Tracked documents, best first (deterministic order)."""
        return sorted((entry[2] for entry in self._heap), key=lambda d: d.sort_key)

    def best(self) -> ScoredDocument | None:
        """The single best document, or None when empty."""
        if not self._heap:
            return None
        return min((entry[2] for entry in self._heap), key=lambda d: d.sort_key)

    def doc_ids(self) -> list[Hashable]:
        """Tracked document ids, best first."""
        return [item.doc_id for item in self.items()]

    def __iter__(self) -> Iterator[ScoredDocument]:
        return iter(self.items())

    @classmethod
    def from_items(cls, k: int, items: Iterable[ScoredDocument]) -> "TopKTracker":
        """Build a tracker of size ``k`` pre-loaded with ``items``."""
        tracker = cls(k)
        for item in items:
            tracker.offer(item.doc_id, item.score, item.node)
        return tracker


class _ReverseStr:
    """String wrapper with inverted ordering.

    Used inside min-heap entries so that, at equal score, lexicographically
    *smaller* doc ids are considered better (evicted last).
    """

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        self.value = value

    def __lt__(self, other: "_ReverseStr") -> bool:
        return self.value > other.value

    def __le__(self, other: "_ReverseStr") -> bool:
        return self.value >= other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ReverseStr) and self.value == other.value

    def __repr__(self) -> str:  # pragma: no cover
        return f"_ReverseStr({self.value!r})"
