"""Bi-encoder scoring helpers (the ``arg top-k`` of paper eq. 1)."""

from __future__ import annotations

import numpy as np

from repro.embeddings.similarity import dot_scores


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest scores, sorted by descending score.

    Ties are broken by ascending index, making results deterministic across
    runs and platforms (argsort alone is not stable under ``-scores``).
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise ValueError(f"scores must be 1-D, got shape {scores.shape}")
    k = min(int(k), scores.shape[0])
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    # lexsort: last key is primary; sort by (-score, index).
    order = np.lexsort((np.arange(scores.shape[0]), -scores))
    return order[:k].astype(np.int64)


def rank_documents(
    query: np.ndarray,
    documents: np.ndarray,
    k: int,
) -> list[tuple[int, float]]:
    """Exact top-k retrieval: ``(row_index, score)`` pairs, best first."""
    scores = dot_scores(query, documents)
    return [(int(i), float(scores[i])) for i in top_k_indices(scores, k)]
