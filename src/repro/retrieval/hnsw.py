"""Hierarchical Navigable Small World (HNSW) index, from scratch.

The second ANN family the paper cites (§III-A): a layered proximity graph
searched greedily from a sparse top layer down to a dense base layer.  This
implementation follows Malkov & Yashunin (2018) with the simple neighbor
selection heuristic, maximizing dot-product similarity over unit vectors.
"""

from __future__ import annotations

import heapq
from math import floor, log
from typing import Hashable

import numpy as np

from repro.embeddings.similarity import l2_normalize
from repro.utils import check_positive, ensure_rng
from repro.utils.rng import RngLike


class HNSWIndex:
    """Approximate maximum-inner-product search over unit vectors.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    m:
        Target out-degree per layer (layer 0 allows ``2 m``).
    ef_construction:
        Beam width while inserting; larger values build a higher-recall graph.
    ef_search:
        Default beam width at query time (can be overridden per query).
    """

    def __init__(
        self,
        dim: int,
        *,
        m: int = 8,
        ef_construction: int = 64,
        ef_search: int = 32,
        seed: RngLike = None,
    ) -> None:
        check_positive(dim, "dim")
        check_positive(m, "m")
        check_positive(ef_construction, "ef_construction")
        check_positive(ef_search, "ef_search")
        self.dim = int(dim)
        self.m = int(m)
        self.max_m = int(m)
        self.max_m0 = int(2 * m)
        self.ef_construction = int(ef_construction)
        self.ef_search = int(ef_search)
        self._level_mult = 1.0 / log(max(2, m))
        self._rng = ensure_rng(seed)
        self._ids: list[Hashable] = []
        self._vectors: list[np.ndarray] = []
        # _neighbors[node][level] -> list of neighbor internal ids
        self._neighbors: list[list[list[int]]] = []
        self._entry: int | None = None
        self._max_level = -1

    def __len__(self) -> int:
        return len(self._ids)

    # ------------------------------------------------------------- internals

    def _similarity(self, query: np.ndarray, node: int) -> float:
        return float(query @ self._vectors[node])

    def _search_layer(
        self,
        query: np.ndarray,
        entry_points: list[int],
        ef: int,
        level: int,
    ) -> list[tuple[float, int]]:
        """Beam search within one layer; returns (similarity, node) pairs."""
        visited = set(entry_points)
        candidates: list[tuple[float, int]] = []
        results: list[tuple[float, int]] = []
        for point in entry_points:
            sim = self._similarity(query, point)
            heapq.heappush(candidates, (-sim, point))
            heapq.heappush(results, (sim, point))
        while candidates:
            neg_sim, node = heapq.heappop(candidates)
            if len(results) >= ef and -neg_sim < results[0][0]:
                break
            for neighbor in self._neighbors[node][level]:
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                sim = self._similarity(query, neighbor)
                if len(results) < ef or sim > results[0][0]:
                    heapq.heappush(candidates, (-sim, neighbor))
                    heapq.heappush(results, (sim, neighbor))
                    if len(results) > ef:
                        heapq.heappop(results)
        return results

    def _select_neighbors(
        self, results: list[tuple[float, int]], count: int
    ) -> list[int]:
        """Simple selection: keep the ``count`` most similar."""
        return [node for _, node in heapq.nlargest(count, results)]

    def _prune(self, node: int, level: int) -> None:
        limit = self.max_m0 if level == 0 else self.max_m
        links = self._neighbors[node][level]
        if len(links) <= limit:
            return
        vector = self._vectors[node]
        scored = [(float(vector @ self._vectors[other]), other) for other in links]
        self._neighbors[node][level] = [
            other for _, other in heapq.nlargest(limit, scored)
        ]

    # -------------------------------------------------------------- mutation

    def add(self, item_id: Hashable, vector: np.ndarray) -> None:
        """Insert a vector under ``item_id`` (duplicates ids not checked)."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"vector must have shape ({self.dim},), got {vector.shape}")
        level = floor(-log(max(self._rng.random(), 1e-12)) * self._level_mult)
        node = len(self._ids)
        self._ids.append(item_id)
        self._vectors.append(vector)
        self._neighbors.append([[] for _ in range(level + 1)])

        if self._entry is None:
            self._entry = node
            self._max_level = level
            return

        entry_points = [self._entry]
        for current_level in range(self._max_level, level, -1):
            best = max(
                self._search_layer(vector, entry_points, 1, current_level),
                key=lambda pair: pair[0],
            )
            entry_points = [best[1]]

        for current_level in range(min(level, self._max_level), -1, -1):
            results = self._search_layer(
                vector, entry_points, self.ef_construction, current_level
            )
            limit = self.max_m0 if current_level == 0 else self.max_m
            for neighbor in self._select_neighbors(results, self.m):
                if neighbor == node:
                    continue
                self._neighbors[node][current_level].append(neighbor)
                self._neighbors[neighbor][current_level].append(node)
                self._prune(neighbor, current_level)
            self._neighbors[node][current_level] = self._neighbors[node][
                current_level
            ][:limit]
            entry_points = [point for _, point in results]

        if level > self._max_level:
            self._entry = node
            self._max_level = level

    # --------------------------------------------------------------- queries

    def query(
        self, query: np.ndarray, k: int, *, ef: int | None = None
    ) -> list[tuple[Hashable, float]]:
        """Approximate top-k ``(item_id, score)`` pairs, best first."""
        if self._entry is None:
            return []
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (self.dim,):
            raise ValueError(f"query must have shape ({self.dim},), got {query.shape}")
        ef = max(int(ef or self.ef_search), k)
        entry_points = [self._entry]
        for current_level in range(self._max_level, 0, -1):
            best = max(
                self._search_layer(query, entry_points, 1, current_level),
                key=lambda pair: pair[0],
            )
            entry_points = [best[1]]
        results = self._search_layer(query, entry_points, ef, 0)
        top = heapq.nlargest(k, results)
        return [(self._ids[node], float(sim)) for sim, node in top]

    @classmethod
    def build(
        cls,
        ids: list[Hashable],
        vectors: np.ndarray,
        *,
        m: int = 8,
        ef_construction: int = 64,
        ef_search: int = 32,
        normalize: bool = True,
        seed: RngLike = None,
    ) -> "HNSWIndex":
        """Construct and populate an index from parallel id/vector arrays."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise ValueError(f"vectors must be 2-D, got shape {vectors.shape}")
        if len(ids) != vectors.shape[0]:
            raise ValueError(f"{len(ids)} ids for {vectors.shape[0]} vectors")
        if normalize:
            vectors = l2_normalize(vectors)
        index = cls(
            vectors.shape[1],
            m=m,
            ef_construction=ef_construction,
            ef_search=ef_search,
            seed=seed,
        )
        for item_id, vector in zip(ids, vectors):
            index.add(item_id, vector)
        return index
